(* colring — command-line driver for the content-oblivious leader
   election reproduction.

   Subcommands: elect, orient, anonymous, solitude, compose, baseline,
   sweep, batch, serve, adversary, check, fast, graph.
   Run `colring <cmd> --help` for details. *)

open Cmdliner
open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng
module Classic = Colring_classic
module Compose = Colring_compose
module LB = Colring_lowerbound
module Harness = Colring_harness
module Backend = Colring_transport.Backend

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

(* All numeric flags go through lib/harness Cli validators, so a bad
   value is a one-line usage error at parse time — the same rules the
   bench runner applies — instead of a backtrace from whatever
   constructor first chokes on it. *)
let validated_int validate ~flag =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "%s %s: expected an integer" flag s))
    | Some v -> (
        match validate ~flag v with
        | Ok v -> Ok v
        | Error msg -> Error (`Msg msg))
  in
  Arg.conv (parse, Format.pp_print_int)

let ring_size_conv = validated_int Harness.Cli.ring_size ~flag:"-n"
let positive_conv ~flag = validated_int Harness.Cli.positive ~flag
let non_negative_conv ~flag = validated_int Harness.Cli.non_negative ~flag

let n_arg =
  Arg.(
    value & opt ring_size_conv 8
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Ring size (at least 2).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let id_max_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "id-max" ] ~docv:"MAX"
        ~doc:"Largest assignable ID (default: 2n). IDs are distinct, MAX is used.")

let sched_arg =
  Arg.(
    value
    & opt string "random"
    & info [ "scheduler" ] ~docv:"NAME"
        ~doc:
          "Delivery adversary: random, fifo, global-fifo, lifo, round-robin, \
           bias-cw, bias-ccw.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL run journal to $(docv): one self-describing JSON \
           object per event/record (validate with $(b,colring journal)).")

let snapshot_arg =
  Arg.(
    value
    & opt (positive_conv ~flag:"--snapshot-every") 10_000
    & info [ "snapshot-every" ] ~docv:"K"
        ~doc:
          "With $(b,--journal): emit a counter snapshot record every $(docv) \
           deliveries (a final snapshot is always emitted). The cadence means \
           the same thing for every subcommand that accepts it.")

(* Run [f] with a jsonl sink on [path] (the null sink when no journal
   was asked for).  Sink.with_jsonl_channel flushes on ALL exits, so a
   run that raises still leaves a valid journal prefix behind. *)
let with_journal path f =
  match path with
  | None -> f Sink.null
  | Some p -> Sink.with_jsonl_channel p f

let diagram_arg =
  Arg.(
    value & flag
    & info [ "diagram" ] ~doc:"Print an ASCII space-time diagram of the run.")

let topo_conv =
  let parse s =
    match Harness.Topo.parse s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun ppf t -> Format.pp_print_string ppf (Harness.Topo.to_string t))

(* The shared --topology grammar (elect, sweep, check, batch): rings
   are the default and keep their legacy engine path byte-for-byte;
   anything else materializes a graph and runs the walk election. *)
let topology_doc =
  "Network topology: $(b,ring)[:N] (the default; the ring engine exactly as \
   before), $(b,theta:N), $(b,k4), $(b,bowtie) (alias two-ear), \
   $(b,random2ec:N:SEED). Non-ring topologies run the content-oblivious walk \
   election on the graph engine."

let topology_arg =
  Arg.(
    value
    & opt topo_conv (Harness.Topo.Ring None)
    & info [ "topology" ] ~docv:"TOPO" ~doc:topology_doc)

let scheduler_of_name name ~seed =
  match name with
  | "random" -> Scheduler.random (Rng.create ~seed)
  | "fifo" -> Scheduler.fifo
  | "global-fifo" -> Scheduler.global_fifo
  | "lifo" -> Scheduler.lifo
  | "round-robin" -> Scheduler.round_robin ()
  | "bias-cw" -> Scheduler.bias_direction ~cw:true
  | "bias-ccw" -> Scheduler.bias_direction ~cw:false
  | other -> failwith (Printf.sprintf "unknown scheduler %S" other)

let make_ids ~n ~id_max ~seed =
  let id_max = Option.value ~default:(2 * n) id_max in
  Ids.distinct (Rng.create ~seed) ~n ~id_max

let fmt_ids ids =
  Printf.sprintf "[%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int ids)))

let print_report (r : Election.report) =
  Printf.printf "algorithm           %s\n" r.algorithm;
  Printf.printf "ring size           %d\n" r.n;
  Printf.printf "ID_max              %d\n" r.id_max;
  Printf.printf "pulses sent         %d (paper: %d)  [cw %d / ccw %d]\n"
    r.sends r.expected_sends r.sends_cw r.sends_ccw;
  Printf.printf "leader              %s\n"
    (match r.leader with
    | Some v -> Printf.sprintf "node %d%s" v (if r.leader_is_max then " (max ID)" else "")
    | None -> "NONE");
  Printf.printf "quiescent           %b\n" r.quiescent;
  Printf.printf "all terminated      %b\n" r.all_terminated;
  Printf.printf "post-term pulses    %d\n" r.post_term_deliveries;
  (match r.orientation_ok with
  | Some ok -> Printf.printf "orientation         %s\n" (if ok then "consistent" else "INCONSISTENT")
  | None -> ());
  match r.termination_order_ok with
  | Some ok -> Printf.printf "termination order   %s\n" (if ok then "leader-last, ccw" else "UNEXPECTED")
  | None -> ()

let print_output_array outs =
  Array.iteri
    (fun v (o : Output.t) -> Format.printf "  node %d: %a@." v Output.pp o)
    outs

let print_outputs net = print_output_array (Network.outputs net)

let maybe_trace net want =
  if want then
    match Network.trace net with
    | Some tr -> Format.printf "%a@." Trace.pp tr
    | None -> ()

(* ------------------------------------------------------------------ *)
(* elect *)

let algo_conv =
  let parse = function
    | "algo1" -> Ok Election.Algo1
    | "algo2" -> Ok Election.Algo2
    | "algo3-doubled" -> Ok (Election.Algo3 Algo3.Doubled)
    | "algo3-improved" -> Ok (Election.Algo3 Algo3.Improved)
    | "resample" -> Ok Election.Algo3_resample
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print ppf a = Format.pp_print_string ppf (Election.algorithm_name a) in
  Arg.conv (parse, print)

let algo_arg =
  Arg.(
    value
    & opt algo_conv Election.Algo2
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:
          "algo1 (stabilizing), algo2 (terminating), algo3-doubled, \
           algo3-improved (non-oriented), resample (Prop. 19).")

let backend_conv =
  let parse s =
    match Backend.of_name s with Ok b -> Ok b | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Backend.name b))

let backend_arg =
  Arg.(
    value
    & opt backend_conv Backend.Sim
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Transport backend: $(b,sim) (deterministic simulator), \
           $(b,domains) (one OCaml domain per node, shared-memory pulse \
           channels), $(b,socket) (one OS process per node over Unix \
           sockets), $(b,socket-tcp) (same over loopback TCP). Every \
           backend's recorded delivery schedule is replayed on the \
           simulator and cross-checked; the journal always comes from the \
           replay.")

let latency_arg =
  Arg.(
    value
    & opt (non_negative_conv ~flag:"--latency") 0
    & info [ "latency" ] ~docv:"MICROS"
        ~doc:
          "Fault injection: base per-pulse link delay in microseconds \
           (deterministic; on $(b,sim) it reorders the schedule, on the \
           real backends it also sleeps).")

let jitter_arg =
  Arg.(
    value
    & opt (non_negative_conv ~flag:"--jitter") 0
    & info [ "jitter" ] ~docv:"MICROS"
        ~doc:
          "Fault injection: extra per-pulse delay drawn uniformly from \
           [0, $(docv)] by a seeded hash — the same seed gives the same \
           delays on every backend.")

let max_deliveries_arg =
  Arg.(
    value
    & opt (some (positive_conv ~flag:"--max-deliveries")) None
    & info [ "max-deliveries" ] ~docv:"K"
        ~doc:
          "Abort the run after $(docv) pulse deliveries (the run is then \
           reported as exhausted and fails).")

let print_greport (r : Colring_graph.Gelection.report) =
  Printf.printf "algorithm           %s\n" r.algorithm;
  Printf.printf "nodes               %d (covered %d)\n" r.n r.covered;
  Printf.printf "walk length         %d (%d ears beyond the base cycle)\n"
    r.walk_len r.num_ears;
  Printf.printf "ID_max              %d\n" r.id_max;
  Printf.printf "pulses sent         %d (walk formula: %d)\n" r.sends
    r.expected_sends;
  Printf.printf "leader              %s\n"
    (match r.leader with
    | Some v ->
        Printf.sprintf "node %d%s" v (if r.leader_is_max then " (max ID)" else "")
    | None -> "NONE");
  Printf.printf "quiescent           %b\n" r.quiescent;
  Printf.printf "post-term pulses    %d\n" r.post_term_deliveries;
  Printf.printf "roles               %s\n"
    (if r.roles_ok then "consistent" else "INCONSISTENT")

(* elect on a non-ring topology: the walk election on the graph
   engine.  Only the direct simulator path exists here — the transport
   backends, fault injection and the trace/diagram renderers are ring
   machinery. *)
let gelect topo_spec ~n ~seed ~id_max ~sched_name ~journal ~snapshot_every
    ~max_deliveries =
  let g = Harness.Topo.materialize ~default_n:n topo_spec in
  let module G = Colring_graph.Gtopology in
  let n = G.n g in
  let ids = make_ids ~n ~id_max ~seed in
  let sched = scheduler_of_name sched_name ~seed in
  let plan = Colring_graph.Gelection.plan g in
  Printf.printf "topology: %s (%d nodes, %d links)\n"
    (Harness.Topo.to_string topo_spec)
    n (G.num_links g);
  Printf.printf "ids: %s\n" (fmt_ids ids);
  let report, net =
    with_journal journal (fun sink ->
        Colring_graph.Gelection.run ~seed ?max_deliveries ~sink ~snapshot_every
          ~workload:(Harness.Topo.to_string topo_spec) plan ~ids ~sched)
  in
  print_greport report;
  print_output_array (Colring_graph.Gnetwork.outputs net);
  if Colring_graph.Gelection.ok report then 0 else 1

let elect n seed id_max sched_name algo trace diagram journal snapshot_every
    backend latency jitter max_deliveries topology =
  if not (Harness.Topo.is_ring topology) then begin
    if backend <> Backend.Sim || latency <> 0 || jitter <> 0 || trace || diagram
    then begin
      prerr_endline
        "colring elect: a non-ring --topology needs the direct simulator path \
         (--backend sim, no --latency/--jitter/--trace/--diagram)";
      2
    end
    else
      gelect topology ~n ~seed ~id_max ~sched_name ~journal ~snapshot_every
        ~max_deliveries
  end
  else
  let n = Harness.Topo.node_count ~default_n:n topology in
  let ids = make_ids ~n ~id_max ~seed in
  let topo =
    match algo with
    | Election.Algo1 | Election.Algo2 -> Topology.oriented n
    | Election.Algo3 _ | Election.Algo3_resample ->
        Topology.random_non_oriented (Rng.create ~seed:(seed + 1)) n
  in
  let sched = scheduler_of_name sched_name ~seed in
  let faults =
    if latency = 0 && jitter = 0 then Transport.no_fault
    else Transport.faults ~seed ~latency ~jitter ()
  in
  Printf.printf "ids: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int ids)));
  match backend with
  | Backend.Sim when Transport.is_pure faults ->
      (* The direct simulator path: no verification pass, and the only
         one where the engine records an event trace. *)
      let memory = if trace || diagram then Sink.memory () else Sink.null in
      let report, net =
        with_journal journal (fun journal_sink ->
            Election.run ~seed ?max_deliveries
              ~sink:(Sink.tee memory journal_sink) ~snapshot_every algo ~topo
              ~ids ~sched)
      in
      print_report report;
      print_outputs net;
      maybe_trace net trace;
      if diagram then begin
        match Network.trace net with
        | Some tr ->
            print_endline (Diagram.render tr ~n);
            print_endline Diagram.legend
        | None -> ()
      end;
      if Election.ok report then 0 else 1
  | spec ->
      if trace || diagram then begin
        prerr_endline
          "colring elect: --trace/--diagram need the direct simulator path \
           (--backend sim without --latency/--jitter)";
        2
      end
      else begin
        let r =
          with_journal journal (fun sink ->
              Backend.elect ~seed ?max_deliveries ~faults ~sink ~snapshot_every
                ~sched spec algo ~topo ~ids)
        in
        Printf.printf "backend             %s%s\n" (Backend.name spec)
          (if Transport.is_pure faults then ""
           else Printf.sprintf " (latency %dus, jitter %dus)" latency jitter);
        Printf.printf "replay verified     %b\n" r.Backend.verified;
        print_report r.Backend.report;
        print_output_array r.Backend.live.Transport.outputs;
        if Election.ok r.Backend.report && r.Backend.verified then 0 else 1
      end

let elect_cmd =
  Cmd.v
    (Cmd.info "elect" ~doc:"Run a content-oblivious leader election.")
    Term.(
      const elect $ n_arg $ seed_arg $ id_max_arg $ sched_arg $ algo_arg
      $ trace_arg $ diagram_arg $ journal_arg $ snapshot_arg $ backend_arg
      $ latency_arg $ jitter_arg $ max_deliveries_arg $ topology_arg)

(* ------------------------------------------------------------------ *)
(* orient *)

let orient n seed id_max sched_name =
  let ids = make_ids ~n ~id_max ~seed in
  let topo = Topology.random_non_oriented (Rng.create ~seed:(seed + 1)) n in
  let sched = scheduler_of_name sched_name ~seed in
  Format.printf "%a@." Topology.pp topo;
  let report, net =
    Election.run (Election.Algo3 Algo3.Improved) ~topo ~ids ~sched
  in
  print_report report;
  Array.iteri
    (fun v (o : Output.t) ->
      match o.cw_port with
      | Some p ->
          Printf.printf "  node %d claims its clockwise port is %s%s\n" v
            (Port.to_string p)
            (if Port.equal p (Topology.cw_send_port topo v) then
               " (matches ground truth)"
             else " (opposite of construction order — still globally consistent)")
      | None -> Printf.printf "  node %d: no orientation\n" v)
    (Network.outputs net);
  if Election.ok report then 0 else 1

let orient_cmd =
  Cmd.v
    (Cmd.info "orient"
       ~doc:"Orient a non-oriented ring while electing a leader (Theorem 2).")
    Term.(const orient $ n_arg $ seed_arg $ id_max_arg $ sched_arg)

(* ------------------------------------------------------------------ *)
(* anonymous *)

let c_arg =
  Arg.(
    value & opt float 1.0
    & info [ "c" ] ~docv:"C" ~doc:"Algorithm 4 confidence parameter (c > 0).")

let anonymous n seed c sched_name =
  let rng = Rng.create ~seed in
  let ids = Sampling.sample_ring rng ~c ~n in
  Printf.printf "sampled ids: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int ids)));
  Printf.printf "unique max: %b\n" (Sampling.max_is_unique ids);
  if Ids.id_max ids > 1_000_000 then begin
    Printf.printf
      "ID_max is %d — the run would need %d pulses; re-run with another seed\n"
      (Ids.id_max ids)
      (Formulas.algo3_improved_total ~n ~id_max:(Ids.id_max ids));
    1
  end
  else begin
    let topo = Topology.random_non_oriented rng n in
    let sched = scheduler_of_name sched_name ~seed in
    let report, net =
      Election.run (Election.Algo3 Algo3.Improved) ~topo ~ids ~sched
    in
    print_report report;
    print_outputs net;
    if Election.ok report then 0 else 1
  end

let anonymous_cmd =
  Cmd.v
    (Cmd.info "anonymous"
       ~doc:"Anonymous-ring election: Algorithm 4 sampling + Algorithm 3 (Theorem 3).")
    Term.(const anonymous $ n_arg $ seed_arg $ c_arg $ sched_arg)

(* ------------------------------------------------------------------ *)
(* solitude *)

let id_arg =
  Arg.(value & opt int 8 & info [ "id" ] ~docv:"ID" ~doc:"Node ID.")

let upto_arg =
  Arg.(
    value & opt (some int) None
    & info [ "upto" ] ~docv:"K" ~doc:"Print patterns for all IDs 1..K.")

let solitude id upto =
  let factory ~id = Algo2.program ~id in
  (match upto with
  | None ->
      let p = LB.Solitude.extract factory ~id in
      Printf.printf "solitude pattern of Algorithm 2, id %d (%d pulses):\n%s\n"
        id (LB.Solitude.length p) p
  | Some k ->
      let tagged = LB.Solitude.extract_range factory ~lo:1 ~hi:k in
      List.iter
        (fun (i, p) -> Printf.printf "%4d  %s\n" i p)
        tagged;
      Printf.printf "all distinct (Lemma 22): %b\n"
        (LB.Analysis.first_collision tagged = None));
  0

let solitude_cmd =
  Cmd.v
    (Cmd.info "solitude"
       ~doc:"Extract solitude patterns (Definition 21) of Algorithm 2.")
    Term.(const solitude $ id_arg $ upto_arg)

(* ------------------------------------------------------------------ *)
(* compose *)

let app_arg =
  Arg.(
    value & opt string "discovery"
    & info [ "app" ] ~docv:"APP"
        ~doc:"discovery | gather | sum | chang-roberts | broadcast.")

let compose n seed id_max sched_name app =
  let ids = make_ids ~n ~id_max ~seed in
  let sched = scheduler_of_name sched_name ~seed in
  let mk_app v =
    match app with
    | "discovery" -> Compose.Corollary5.app_ring_discovery
    | "gather" -> Compose.Corollary5.app_gather_ids ~my_id:ids.(v)
    | "sum" -> Compose.Corollary5.app_sync_sum ~my_value:ids.(v)
    | "chang-roberts" ->
        Compose.Corollary5.app_sync_chang_roberts ~my_id:ids.(v)
    | "broadcast" ->
        Compose.Corollary5.app_broadcast ~payload:[ 72; 69; 76; 76; 79 ]
    | other -> failwith (Printf.sprintf "unknown app %S" other)
  in
  let net =
    Network.create ~seed (Topology.oriented n) (fun v ->
        Compose.Corollary5.program ~id:ids.(v) ~app:(mk_app v))
  in
  let result = Network.run net sched in
  let id_max = Ids.id_max ids in
  let election = Formulas.algo2_total ~n ~id_max in
  Printf.printf "ids: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int ids)));
  Printf.printf
    "pulses: total %d = election %d (Theorem 1) + composition %d\n"
    result.sends election (result.sends - election);
  Printf.printf "quiescent %b, all terminated %b\n" result.quiescent
    result.all_terminated;
  print_outputs net;
  if result.quiescent && result.all_terminated then 0 else 1

let compose_cmd =
  Cmd.v
    (Cmd.info "compose"
       ~doc:
         "Corollary 5: elect with Algorithm 2, then run a computation over \
          the fully-defective ring.")
    Term.(const compose $ n_arg $ seed_arg $ id_max_arg $ sched_arg $ app_arg)

(* ------------------------------------------------------------------ *)
(* baseline *)

let baseline_arg =
  Arg.(
    value & opt string "chang-roberts"
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:
          "chang-roberts | lelann | hirschberg-sinclair | peterson | \
           franklin | itai-rodeh.")

let baseline n seed sched_name algo journal snapshot_every =
  let ids = Ids.dense (Rng.create ~seed) ~n in
  let topo = Topology.oriented n in
  let sched = scheduler_of_name sched_name ~seed in
  let r =
    with_journal journal (fun sink ->
        match algo with
        | "chang-roberts" ->
            Classic.Driver.run ~seed ~sink ~snapshot_every ~name:algo ~expect_max:ids
              (fun v -> Classic.Chang_roberts.program ~id:ids.(v))
              ~topo ~sched
        | "lelann" ->
            Classic.Driver.run ~seed ~sink ~snapshot_every ~name:algo ~expect_max:ids
              (fun v -> Classic.Lelann.program ~id:ids.(v))
              ~topo ~sched
        | "hirschberg-sinclair" ->
            Classic.Driver.run ~seed ~sink ~snapshot_every ~name:algo ~expect_max:ids
              (fun v -> Classic.Hirschberg_sinclair.program ~id:ids.(v))
              ~topo ~sched
        | "peterson" ->
            Classic.Driver.run ~seed ~sink ~snapshot_every ~name:algo ~expect_max:ids
              (fun v -> Classic.Peterson.program ~id:ids.(v))
              ~topo ~sched
        | "franklin" ->
            Classic.Driver.run ~seed ~sink ~snapshot_every ~name:algo ~expect_max:ids
              (fun v -> Classic.Franklin.program ~id:ids.(v))
              ~topo ~sched
        | "itai-rodeh" ->
            Classic.Driver.run ~seed ~sink ~snapshot_every ~name:algo
              (fun _ -> Classic.Itai_rodeh.program ~n ~range:8)
              ~topo ~sched
        | other -> failwith (Printf.sprintf "unknown baseline %S" other))
  in
  Printf.printf "%s on n=%d: %d messages, leader=%s, terminated=%b, drops=%d\n"
    r.algorithm r.n r.messages
    (match r.leader with Some v -> string_of_int v | None -> "NONE")
    r.all_terminated r.post_term_drops;
  if Classic.Driver.ok r then 0 else 1

let baseline_cmd =
  Cmd.v
    (Cmd.info "baseline" ~doc:"Run a classic content-carrying baseline.")
    Term.(
      const baseline $ n_arg $ seed_arg $ sched_arg $ baseline_arg
      $ journal_arg $ snapshot_arg)

(* ------------------------------------------------------------------ *)
(* sweep *)

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit raw per-run CSV instead of a summary.")

let jobs_arg =
  Arg.(
    value
    & opt (some (positive_conv ~flag:"--jobs")) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the sweep. Defaults to $(b,COLRING_JOBS) if \
           set, else the machine's recommended domain count. The results \
           are bit-identical for every N.")

let resolve_jobs jobs =
  Harness.Cli.exit_or ~cmd:"colring" (Harness.Cli.jobs ~flag:"--jobs" jobs)

let sweep_topology_arg =
  Arg.(
    value & opt_all topo_conv []
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:
          (topology_doc
         ^ " Repeatable; with at least one $(b,--topology) the sweep runs the \
            walk election over the given topology grid instead of the ring \
            algorithm grid."))

(* The graph sweep: topology × seed × scheduler cells of the walk
   election (rings included — here they run through the graph engine,
   the walk of a ring being the ring itself). *)
let gsweep topos seed sched_name csv jobs journal =
  let journal_oc = Option.map open_out journal in
  let ms =
    Harness.Sweep.gelection ~jobs
      ?journal:(Option.map (fun oc -> output_string oc) journal_oc)
      ~topologies:topos
      ~seeds:[ seed; seed + 1; seed + 2 ]
      ~schedulers:[ (fun s -> scheduler_of_name sched_name ~seed:s) ]
      ()
  in
  Option.iter close_out journal_oc;
  if csv then print_string (Harness.Sweep.gelection_to_csv ms)
  else begin
    Printf.printf "%-24s %6s %6s %6s %6s %10s\n" "topology" "n" "walk" "runs"
      "ok" "max sends";
    let groups =
      List.fold_left
        (fun acc (m : Harness.Sweep.gmeasurement) ->
          if List.mem m.g_topology acc then acc else m.g_topology :: acc)
        [] ms
      |> List.rev
    in
    List.iter
      (fun name ->
        let same =
          List.filter
            (fun (m : Harness.Sweep.gmeasurement) -> m.g_topology = name)
            ms
        in
        let one = List.hd same in
        Printf.printf "%-24s %6d %6d %6d %6d %10d\n" name one.g_n
          one.g_walk_len (List.length same)
          (List.length
             (List.filter (fun (m : Harness.Sweep.gmeasurement) -> m.g_ok) same))
          (List.fold_left
             (fun acc (m : Harness.Sweep.gmeasurement) -> max acc m.g_sends)
             0 same))
      groups
  end;
  if List.for_all (fun (m : Harness.Sweep.gmeasurement) -> m.g_ok) ms then 0
  else 1

let sweep seed sched_name algo csv jobs journal topologies =
  if topologies <> [] then
    gsweep topologies seed sched_name csv (resolve_jobs jobs) journal
  else
  let journal_oc = Option.map open_out journal in
  let measurements =
    Harness.Sweep.election
      ~jobs:(resolve_jobs jobs)
      ?journal:(Option.map (fun oc -> output_string oc) journal_oc)
      ~algorithms:[ algo ]
      ~workloads:
        (match algo with
        | Election.Algo1 | Election.Algo2 -> Harness.Workload.all_for_election
        | Election.Algo3 _ | Election.Algo3_resample ->
            [
              Harness.Workload.dense_scrambled;
              Harness.Workload.sparse_scrambled ~factor:8;
            ])
      ~ns:[ 2; 4; 8; 16; 32; 64; 128 ]
      ~seeds:[ seed; seed + 1; seed + 2 ]
      ~schedulers:[ (fun s -> scheduler_of_name sched_name ~seed:s) ]
      ()
  in
  Option.iter close_out journal_oc;
  if csv then print_string (Harness.Sweep.to_csv measurements)
  else
    Format.printf "%a@." Harness.Sweep.pp_summary
      (Harness.Sweep.summarize measurements);
  if List.for_all (fun m -> m.Harness.Sweep.ok) measurements then 0 else 1

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep message counts over workloads and ring sizes (summary or CSV).")
    Term.(
      const sweep $ seed_arg $ sched_arg $ algo_arg $ csv_arg $ jobs_arg
      $ journal_arg $ sweep_topology_arg)

(* ------------------------------------------------------------------ *)
(* batch / serve: many elections over per-domain flocks *)

let pool_mode_arg =
  Arg.(
    value
    & opt (enum [ ("static", Colring_runtime.Pool.Static);
                  ("steal", Colring_runtime.Pool.Steal) ])
        Colring_runtime.Pool.Static
    & info [ "pool" ] ~docv:"MODE"
        ~doc:
          "How workers claim job waves: $(b,static) (shared cursor) or \
           $(b,steal) (per-worker deques with work stealing). Results are \
           bit-identical either way.")

let slots_arg =
  Arg.(
    value
    & opt (positive_conv ~flag:"--slots") 256
    & info [ "slots" ] ~docv:"K"
        ~doc:"Instances per flock wave (struct-of-arrays batch width).")

let journal_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal-dir" ] ~docv:"DIR"
        ~doc:
          "Write per-instance JSONL journals, sharded by instance index into \
           $(docv)/shard-NNNN.jsonl (validate with $(b,colring journal)).")

let shards_arg =
  Arg.(
    value
    & opt (positive_conv ~flag:"--shards") 1
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Number of journal shard files; instance $(i,i) of $(i,N) lands in \
           shard $(i,i*S/N), so shard contents are independent of --jobs and \
           --pool.")

let events_arg =
  Arg.(
    value & flag
    & info [ "events" ]
        ~doc:
          "Include per-event records (send/deliver/consume/...) in the \
           journals, not just lifecycle records. Journals get large.")

let spec_file_arg =
  Arg.(
    value
    & pos 0 string "-"
    & info [] ~docv:"SPEC"
        ~doc:
          "Job spec file: one $(b,algo n seed \\[id_max\\]) line per \
           election ($(b,#) comments). $(b,-) reads standard input.")

let read_spec_file path =
  let buf = Buffer.create 4096 in
  let ic = if path = "-" then stdin else open_in path in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> if path <> "-" then close_in ic);
  Buffer.contents buf

(* Shard [count] jobs over [shards] files in contiguous index blocks:
   job [i] lands in shard [i * shards / count], so shard contents
   depend only on the spec order — never on --jobs or --pool. *)
let with_shards dir ~shards ~count f =
  (match Sys.is_directory dir with
  | true -> ()
  | false -> failwith (Printf.sprintf "--journal-dir %s: not a directory" dir)
  | exception Sys_error _ -> Sys.mkdir dir 0o755);
  let ocs =
    Array.init shards (fun s ->
        open_out (Filename.concat dir (Printf.sprintf "shard-%04d.jsonl" s)))
  in
  Fun.protect
    ~finally:(fun () -> Array.iter close_out ocs)
    (fun () ->
      f (fun i chunk ->
          output_string ocs.(if count = 0 then 0 else i * shards / count) chunk))

let print_batch_summary (o : Harness.Batch.outcome) =
  let count = Array.length o.reports in
  let ok = Array.fold_left (fun a r -> if Election.ok r then a + 1 else a) 0 o.reports in
  let lat = Array.copy o.latencies in
  Array.sort Float.compare lat;
  Printf.printf "jobs                %d\n" count;
  Printf.printf "ok                  %d\n" ok;
  Printf.printf "elapsed             %.3f s\n" o.elapsed;
  if o.elapsed > 0. then
    Printf.printf "elections/sec       %.0f\n" (float_of_int count /. o.elapsed);
  if Array.length lat > 0 then begin
    Printf.printf "p50 latency         %.3f ms\n"
      (Harness.Batch.percentile lat 0.50 *. 1e3);
    Printf.printf "p99 latency         %.3f ms\n"
      (Harness.Batch.percentile lat 0.99 *. 1e3)
  end;
  ok = count

(* batch on a non-ring topology: one walk election per spec line on
   the single materialized graph (the line's seed draws the ids and
   the adversary; its algorithm and n fields are ring machinery and
   are ignored), fanned out job-per-job over the domain pool. *)
let gbatch topo_spec specs sched_name jobs journal_dir shards events =
  let module GE = Colring_graph.Gelection in
  let g = Harness.Topo.materialize ~default_n:8 topo_spec in
  let plan = GE.plan g in
  let gn = Colring_graph.Gtopology.n g in
  let count = Array.length specs in
  let t0 = Unix.gettimeofday () in
  let run_jobs want_journal =
    Colring_runtime.Pool.map ~jobs count (fun i ->
        let s = specs.(i) in
        let seed = s.Harness.Batch.seed in
        let ids =
          Ids.distinct (Rng.create ~seed) ~n:gn
            ~id_max:(max gn s.Harness.Batch.id_max)
        in
        let buf = Buffer.create 512 in
        let sink =
          if want_journal then Sink.jsonl_buffer ~events buf else Sink.null
        in
        let r =
          GE.run_report plan ~ids ~sched:(scheduler_of_name sched_name ~seed)
            ~sink ~seed
            ~workload:(Harness.Topo.to_string topo_spec)
        in
        (r, Buffer.contents buf, Unix.gettimeofday () -. t0))
  in
  let out =
    match journal_dir with
    | None -> run_jobs false
    | Some dir ->
        with_shards dir ~shards ~count (fun emit ->
            let out = run_jobs true in
            Array.iteri (fun i (_, chunk, _) -> emit i chunk) out;
            out)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let ok =
    Array.fold_left (fun a (r, _, _) -> if GE.ok r then a + 1 else a) 0 out
  in
  let lat = Array.map (fun (_, _, l) -> l) out in
  Array.sort Float.compare lat;
  Printf.printf "topology            %s (%d nodes)\n"
    (Harness.Topo.to_string topo_spec)
    gn;
  Printf.printf "jobs                %d\n" count;
  Printf.printf "ok                  %d\n" ok;
  Printf.printf "elapsed             %.3f s\n" elapsed;
  if elapsed > 0. then
    Printf.printf "elections/sec       %.0f\n" (float_of_int count /. elapsed);
  if Array.length lat > 0 then begin
    Printf.printf "p50 latency         %.3f ms\n"
      (Harness.Batch.percentile lat 0.50 *. 1e3);
    Printf.printf "p99 latency         %.3f ms\n"
      (Harness.Batch.percentile lat 0.99 *. 1e3)
  end;
  if ok = count then 0 else 1

let batch spec_path sched_name jobs mode slots journal_dir shards events
    topology =
  match Harness.Batch.parse_spec (read_spec_file spec_path) with
  | Error msg ->
      prerr_endline ("colring batch: " ^ msg);
      2
  | Ok specs when not (Harness.Topo.is_ring topology) ->
      gbatch topology specs sched_name (resolve_jobs jobs) journal_dir shards
        events
  | Ok specs ->
      let jobs = resolve_jobs jobs in
      let sched seed = scheduler_of_name sched_name ~seed in
      let run journal =
        Harness.Batch.run ~jobs ~mode ~slots ~events ?journal
          ~now:Unix.gettimeofday ~sched specs
      in
      let outcome =
        match journal_dir with
        | None -> run None
        | Some dir ->
            with_shards dir ~shards ~count:(Array.length specs) (fun emit ->
                run (Some emit))
      in
      if print_batch_summary outcome then 0 else 1

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a batch of elections over per-domain multi-instance flocks and \
          report throughput and completion-latency percentiles.")
    Term.(
      const batch $ spec_file_arg $ sched_arg $ jobs_arg $ pool_mode_arg
      $ slots_arg $ journal_dir_arg $ shards_arg $ events_arg $ topology_arg)

(* One result line per job, in the serve loop's request order. *)
let serve_result_line (s : Harness.Batch.spec) (r : Election.report) =
  Printf.sprintf "%s algo=%s n=%d seed=%d leader=%s sends=%d deliveries=%d"
    (if Election.ok r then "ok" else "FAIL")
    r.Election.algorithm r.Election.n s.Harness.Batch.seed
    (match r.Election.leader with Some v -> string_of_int v | None -> "none")
    r.Election.sends r.Election.deliveries

let serve sched_name slots journal =
  let sched seed = scheduler_of_name sched_name ~seed in
  let journal_oc = Option.map open_out journal in
  let emit = Option.map (fun oc _i chunk -> output_string oc chunk) journal_oc in
  let bad = ref 0 in
  (try
     while true do
       let line = input_line stdin in
       match Harness.Batch.parse_line line with
       | Ok None -> ()
       | Error msg ->
           incr bad;
           print_endline ("error: " ^ msg);
           flush stdout
       | Ok (Some spec) ->
           (* One-job batches reuse this domain's warm flock cache, so
              the steady state of the loop allocates per-election
              state only. *)
           let o = Harness.Batch.run ~slots ?journal:emit ~sched [| spec |] in
           if not (Election.ok o.Harness.Batch.reports.(0)) then incr bad;
           print_endline (serve_result_line spec o.Harness.Batch.reports.(0));
           flush stdout
     done
   with End_of_file -> ());
  Option.iter close_out journal_oc;
  if !bad = 0 then 0 else 1

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Job server: read spec lines ($(b,algo n seed \\[id_max\\])) from \
          standard input, run each election on a warm flock, answer one \
          result line per job.")
    Term.(const serve $ sched_arg $ slots_arg $ journal_arg)

(* ------------------------------------------------------------------ *)
(* journal: shape-validate a JSONL run journal *)

let journal_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"JSONL run journal to validate.")

let journal file =
  let ic = open_in file in
  let counts = Hashtbl.create 16 in
  let errors = ref 0 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         match Bench_io.of_string line with
         | exception Bench_io.Parse_error msg ->
             incr errors;
             Printf.eprintf "line %d: parse error: %s\n" !lineno msg
         | json -> (
             match Bench_io.check_journal_line json with
             | Ok typ ->
                 Hashtbl.replace counts typ
                   (1 + Option.value ~default:0 (Hashtbl.find_opt counts typ))
             | Error msg ->
                 incr errors;
                 Printf.eprintf "line %d: %s\n" !lineno msg)
       end
     done
   with End_of_file -> ());
  close_in ic;
  let types =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  Printf.printf "%s: %d lines, %d invalid\n" file !lineno !errors;
  List.iter (fun (typ, c) -> Printf.printf "  %-12s %8d\n" typ c) types;
  if !errors = 0 && !lineno > 0 then 0 else 1

let journal_cmd =
  Cmd.v
    (Cmd.info "journal"
       ~doc:
         "Shape-validate a JSONL run journal written by --journal: every \
          line must be a self-describing record of a known type with its \
          required fields.")
    Term.(const journal $ journal_file_arg)

(* ------------------------------------------------------------------ *)
(* adversary *)

let k_arg =
  Arg.(
    value & opt int 256
    & info [ "k" ] ~docv:"K" ~doc:"Number of assignable IDs (1..K).")

let adversary n k =
  let r = LB.Adversary.replay ~k ~n (fun ~id -> Algo2.program ~id) in
  Printf.printf
    "Theorem 20 adversary against Algorithm 2, k=%d assignable IDs, n=%d:\n"
    r.k r.n;
  Printf.printf "  chosen ids            [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int r.ids)));
  Printf.printf "  shared solitude prefix %d  (Corollary 24 floor: %d)\n"
    r.shared_prefix r.formula_prefix;
  Printf.printf "  forced pulses          >= n*s = %d\n" r.bound;
  Printf.printf "  run actually sent      %d\n" r.sends;
  Printf.printf "  per-node solitude agreement: [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int r.per_node_agreement)));
  Printf.printf "  every node mimicked its solitude run for >= s steps: %b\n"
    r.mimicry;
  if r.mimicry then 0 else 1

let adversary_cmd =
  Cmd.v
    (Cmd.info "adversary"
       ~doc:"Replay the Theorem 20 lower-bound adversary against Algorithm 2.")
    Term.(const adversary $ n_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* check: exhaustive schedule-space model checking (lib/mc) *)

module Mc = Colring_mc.Mc
module McSpec = Colring_mc.Spec
module GSpec = Colring_mc.Gspec

let target_arg =
  Arg.(
    value & opt string "algo2"
    & info [ "algo"; "target" ] ~docv:"TARGET"
        ~doc:
          "What to check: algo1, algo2, algo3-doubled, algo3-improved, an \
           ablation (ablation:no-lag, ablation:same-virtual-ids, \
           ablation:no-absorption — these MUST yield a counterexample), or a \
           classic baseline (chang-roberts, lelann, hirschberg-sinclair, \
           peterson, franklin), or anon:relay (an anonymous uniform ring, \
           checked under rotation symmetry). Graph targets with fixed tiny \
           instances: \
           walk:theta3, walk:k4, walk:bowtie, ablation:bridge (the walk \
           election beyond a bridge MUST yield a counterexample); any \
           non-ring $(b,--topology) instead checks the walk election on \
           that graph.")

let max_states_arg =
  Arg.(
    value
    & opt (positive_conv ~flag:"--max-states") 1_000_000
    & info [ "max-states" ] ~docv:"K"
        ~doc:
          "Global state budget shared by every worker: at most K states are \
           expanded in total, regardless of $(b,--jobs). Exceeding it \
           reports a truncated (non-exhaustive) exploration, which fails \
           the check.")

let fmt_schedule schedule =
  Printf.sprintf "[%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int schedule)))

(* Everything below the [check] call is engine-independent: the
   result/stats/counterexample types live outside the Mc functor, so
   the ring and graph checkers share this reporting path.
   [replay_violates] re-runs a minimized schedule on a fresh instance
   of whichever engine produced it. *)
let report_check ~name ~expect_violation ~replay_violates ~ids_str ~n ~seed
    ~id_max ~jobs ~journal (r : Mc.result) =
  Printf.printf
    "model-checking %s on ids %s: every delivery schedule, %d worker%s\n" name
    ids_str jobs
    (if jobs = 1 then "" else "s");
  let s = r.Mc.stats in
  Printf.printf "states expanded     %d\n" s.Mc.states;
  Printf.printf "schedules           %d\n" s.Mc.schedules;
  Printf.printf "replayed deliveries %d\n" s.Mc.replayed_deliveries;
  Printf.printf "undone deliveries   %d\n" s.Mc.undone_deliveries;
  Printf.printf "sleep-set pruned    %d\n" s.Mc.sleep_pruned;
  Printf.printf "state-cache pruned  %d\n" s.Mc.dedup_pruned;
  Printf.printf "max depth           %d\n" s.Mc.max_depth_seen;
  Printf.printf "exhaustive          %b\n" (not s.Mc.truncated);
  let confirmed =
    match r.Mc.counterexample with
    | None ->
        Printf.printf "counterexample      none\n";
        true
    | Some ce ->
        Printf.printf "counterexample      %s\n" (fmt_schedule ce.Mc.schedule);
        Printf.printf "violation           %s\n" ce.Mc.violation;
        (* Replay the minimized schedule on a fresh instance — the
           counterexample is only reported if it reproduces. *)
        let again = replay_violates ce.Mc.schedule in
        Printf.printf "replay reproduces   %b\n" again;
        again
  in
  with_journal journal (fun sink ->
      sink.Sink.on_row ~table:"check"
        [
          ("target", Sink.String name);
          ("n", Sink.Int n);
          ("id_max", Sink.Int id_max);
          ("seed", Sink.Int seed);
          ("jobs", Sink.Int jobs);
          ("states", Sink.Int s.Mc.states);
          ("schedules", Sink.Int s.Mc.schedules);
          ("replayed_deliveries", Sink.Int s.Mc.replayed_deliveries);
          ("undone_deliveries", Sink.Int s.Mc.undone_deliveries);
          ("sleep_pruned", Sink.Int s.Mc.sleep_pruned);
          ("dedup_pruned", Sink.Int s.Mc.dedup_pruned);
          ("max_depth", Sink.Int s.Mc.max_depth_seen);
          ("exhaustive", Sink.Bool (not s.Mc.truncated));
          ( "counterexample",
            Sink.String
              (match r.Mc.counterexample with
              | None -> "-"
              | Some ce -> fmt_schedule ce.Mc.schedule) );
          ( "violation",
            Sink.String
              (match r.Mc.counterexample with
              | None -> "-"
              | Some ce -> ce.Mc.violation) );
        ]);
  let found = r.Mc.counterexample <> None in
  if expect_violation then begin
    if found && confirmed then begin
      Printf.printf "verdict             broken as predicted (counterexample found)\n";
      0
    end
    else begin
      Printf.printf "verdict             FAILED to find the predicted violation\n";
      1
    end
  end
  else if (not found) && not s.Mc.truncated then begin
    Printf.printf "verdict             verified over the whole schedule space\n";
    0
  end
  else begin
    Printf.printf "verdict             %s\n"
      (if found then "VIOLATION found" else "INCONCLUSIVE (state budget hit)");
    1
  end

let check_packed n seed id_max ids jobs max_states journal
    (McSpec.Packed spec) =
  report_check ~name:spec.Mc.name ~expect_violation:spec.Mc.expect_violation
    ~replay_violates:(fun sched -> snd (Mc.replay spec sched) <> None)
    ~ids_str:(fmt_ids ids) ~n ~seed ~id_max ~jobs ~journal
    (Mc.check ~jobs ~max_states spec)

let check_gspec n seed id_max ~ids_str jobs max_states journal
    (spec : unit GSpec.Gmc.spec) =
  report_check ~name:spec.GSpec.Gmc.name
    ~expect_violation:spec.GSpec.Gmc.expect_violation
    ~replay_violates:(fun sched -> snd (GSpec.Gmc.replay spec sched) <> None)
    ~ids_str ~n ~seed ~id_max ~jobs ~journal
    (GSpec.Gmc.check ~jobs ~max_states spec)

let check n seed id_max target jobs max_states journal topology =
  let jobs = resolve_jobs jobs in
  if not (Harness.Topo.is_ring topology) then begin
    (* A non-ring topology: exhaustively verify the walk election on
       the materialized graph (distinct seeded ids, like elect). *)
    let g = Harness.Topo.materialize ~default_n:n topology in
    let gn = Colring_graph.Gtopology.n g in
    let id_max = Option.value ~default:gn id_max in
    let ids = Ids.distinct (Rng.create ~seed) ~n:gn ~id_max in
    match
      GSpec.walk_election
        ~name:("walk:" ^ Harness.Topo.to_string topology)
        g ~ids
    with
    | exception Invalid_argument msg ->
        Printf.eprintf "colring check: %s\n" msg;
        1
    | spec ->
        check_gspec gn seed id_max ~ids_str:(fmt_ids ids) jobs max_states
          journal spec
  end
  else if List.mem target GSpec.targets then
    (* The named graph targets carry their own fixed tiny instance. *)
    check_gspec n seed
      (Option.value ~default:n id_max)
      ~ids_str:"(fixed instance)" jobs max_states journal
      (GSpec.of_target target)
  else begin
    let n = Harness.Topo.node_count ~default_n:n topology in
    let id_max = Option.value ~default:n id_max in
    let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max in
    match McSpec.of_target target ~ids ~topo_seed:(seed + 1) with
    | exception Invalid_argument msg ->
        Printf.eprintf "colring check: %s\n" msg;
        1
    | packed -> check_packed n seed id_max ids jobs max_states journal packed
  end

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively model-check an algorithm: explore every delivery \
          schedule of a small instance (sleep-set reduced), verify the \
          paper's invariants at every step, and minimize any counterexample \
          into a replayable delivery sequence.")
    Term.(
      const check $ n_arg $ seed_arg $ id_max_arg $ target_arg $ jobs_arg
      $ max_states_arg $ journal_arg $ topology_arg)

(* ------------------------------------------------------------------ *)
(* fast: the analytical simulator at scale *)

let fast n seed id_max =
  let id_max = Option.value ~default:(1_000_000 * n) id_max in
  let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max in
  let rng = Rng.create ~seed:(seed + 1) in
  let flips = Array.init n (fun _ -> Rng.bool rng) in
  Printf.printf "analytical simulation, n=%d, ID_max=%d\n" n id_max;
  let a1 = Colring_fastsim.Fast.algo1 ~ids in
  Printf.printf "algo1: %d pulses (formula %d), last absorber is max: %b\n"
    a1.total
    (Formulas.algo1_total ~n ~id_max)
    a1.last_absorber_is_max;
  let a2 = Colring_fastsim.Fast.algo2 ~ids in
  Printf.printf "algo2: %d pulses (formula %d), leader node %d\n" a2.total
    (Formulas.algo2_total ~n ~id_max)
    a2.leader;
  let a3 = Colring_fastsim.Fast.algo3 ~scheme:Algo3.Improved ~ids ~flips in
  Printf.printf
    "algo3 (improved, random flips): %d pulses (formula %d), oriented: %b\n"
    a3.total
    (Formulas.algo3_improved_total ~n ~id_max)
    a3.orientation_consistent;
  if
    a1.total = Formulas.algo1_total ~n ~id_max
    && a2.total = Formulas.algo2_total ~n ~id_max
    && a3.total = Formulas.algo3_improved_total ~n ~id_max
  then 0
  else 1

let fast_cmd =
  Cmd.v
    (Cmd.info "fast"
       ~doc:
         "Exact analytical simulation at scales (huge ID_max) the event \
          engine cannot reach.")
    Term.(const fast $ n_arg $ seed_arg $ id_max_arg)

(* ------------------------------------------------------------------ *)
(* graph: the general-graph exploration *)

let graph_arg =
  Arg.(
    value & opt string "theta"
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:"theta | k4 | k6 | ring | chords (cycle with 2 chords).")

let graph n seed shape =
  let module G = Colring_graph.Gtopology in
  let module GN = Colring_graph.Gnetwork in
  let g =
    match shape with
    | "theta" -> G.theta 1 2 3
    | "k4" -> G.complete 4
    | "k6" -> G.complete 6
    | "ring" -> G.ring (max 2 n)
    | "chords" -> G.cycle_with_chords (Rng.create ~seed:(seed + 9)) ~n:(max 4 n) ~chords:2
    | other -> failwith (Printf.sprintf "unknown shape %S" other)
  in
  Format.printf "%a@." G.pp g;
  let n = G.n g in
  let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max:(3 * n) in
  let net =
    GN.create g (fun v -> Colring_graph.Circulate.rotor ~id:ids.(v))
  in
  let r =
    GN.run ~max_deliveries:500_000 net (Scheduler.random (Rng.create ~seed:(seed + 50)))
  in
  Printf.printf
    "rotor circulation (exploratory): pulses=%d quiescent=%b exhausted=%b\n"
    r.GN.sends r.GN.quiescent r.GN.exhausted;
  Array.iteri
    (fun v (o : Output.t) ->
      Printf.printf "  node %d (id %2d): %s\n" v ids.(v)
        (Output.role_to_string o.role))
    (GN.outputs net);
  0

let graph_cmd =
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Explore pulse circulation on general 2-edge-connected graphs (the \
          paper's open question; no correctness claim).")
    Term.(const graph $ n_arg $ seed_arg $ graph_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc =
    "Content-oblivious leader election on rings (Frei, Gelles, Ghazy, Nolin; \
     DISC 2024) — simulator and experiments."
  in
  Cmd.group (Cmd.info "colring" ~version:"1.0.0" ~doc)
    [
      elect_cmd;
      orient_cmd;
      anonymous_cmd;
      solitude_cmd;
      compose_cmd;
      baseline_cmd;
      sweep_cmd;
      batch_cmd;
      serve_cmd;
      journal_cmd;
      adversary_cmd;
      check_cmd;
      fast_cmd;
      graph_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
