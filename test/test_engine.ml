(* Tests for the discrete-event simulator: topology invariants, FIFO
   channel semantics, scheduler behaviour, mailboxes, termination
   accounting, traces, and the effects-based blocking layer. *)

open Colring_engine
module Rng = Colring_stats.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_oriented () =
  let t = Topology.oriented 5 in
  Topology.check t;
  checkb "oriented" true (Topology.is_oriented t);
  checki "cw neighbor" 3 (Topology.cw_neighbor t 2);
  checki "ccw neighbor" 1 (Topology.ccw_neighbor t 2);
  checki "wraps" 0 (Topology.cw_neighbor t 4);
  checki "distance" 3 (Topology.distance_cw t 4 2);
  let w, p = Topology.peer t 1 Port.P1 in
  checki "peer node" 2 w;
  checkb "peer port" true (Port.equal p Port.P0)

let test_topology_non_oriented () =
  let t = Topology.non_oriented ~flips:[| false; true; false; true |] in
  Topology.check t;
  checkb "not oriented" false (Topology.is_oriented t);
  checkb "flip ground truth" true (Topology.flipped t 1);
  (* Flipping relabels ports but not the ring structure. *)
  checki "cw neighbor" 2 (Topology.cw_neighbor t 1);
  checki "ccw neighbor" 0 (Topology.ccw_neighbor t 1);
  let w, p = Topology.peer t 1 Port.P0 in
  (* Node 1 is flipped, so its clockwise port is P0; node 2 is not
     flipped, so clockwise pulses arrive on its P0. *)
  checki "peer node" 2 w;
  checkb "peer port" true (Port.equal p Port.P0)

let test_topology_self_ring () =
  let t = Topology.oriented 1 in
  Topology.check t;
  checki "self cw" 0 (Topology.cw_neighbor t 0);
  let w, p = Topology.peer t 0 Port.P1 in
  checki "self peer" 0 w;
  checkb "arrives other port" true (Port.equal p Port.P0)

let test_topology_all_flip_patterns_are_rings () =
  for n = 1 to 6 do
    for mask = 0 to (1 lsl n) - 1 do
      let flips = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
      Topology.check (Topology.non_oriented ~flips)
    done
  done;
  checkb "all valid" true true

let test_link_direction () =
  let t = Topology.oriented 3 in
  let cw_link = Topology.link_id t 0 Port.P1 in
  let ccw_link = Topology.link_id t 0 Port.P0 in
  checkb "cw" true (Topology.link_travels_cw t cw_link);
  checkb "ccw" false (Topology.link_travels_cw t ccw_link)

(* ------------------------------------------------------------------ *)
(* Network semantics *)

(* A relay that forwards everything from P0 to P1 with payloads. *)
let relay_program () =
  {
    Network.snap = None;
    Network.start = (fun _ -> ());
    wake =
      (fun api ->
        let continue = ref true in
        while !continue do
          match api.recv Port.P0 with
          | Some m -> api.send Port.P1 m
          | None -> continue := false
        done);
    inspect = (fun () -> []);
  }

(* Node 0 injects [k] numbered messages, everyone forwards, node 0
   collects them back. *)
let test_fifo_order_preserved () =
  let collected = ref [] in
  let injector k =
    {
      Network.snap = None;
      Network.start =
        (fun api ->
          for i = 1 to k do
            api.send Port.P1 i
          done);
      wake =
        (fun api ->
          let continue = ref true in
          while !continue do
            match api.recv Port.P0 with
            | Some m -> collected := m :: !collected
            | None -> continue := false
          done);
      inspect = (fun () -> []);
    }
  in
  let topo = Topology.oriented 4 in
  List.iter
    (fun sched ->
      collected := [];
      let net =
        Network.create topo (fun v ->
            if v = 0 then injector 5 else relay_program ())
      in
      let result = Network.run net sched in
      checkb (sched.Scheduler.name ^ " quiescent") true result.quiescent;
      Alcotest.(check (list int))
        (sched.Scheduler.name ^ " fifo order")
        [ 1; 2; 3; 4; 5 ] (List.rev !collected))
    (Scheduler.all_deterministic ()
    @ [ Scheduler.random (Rng.create ~seed:1) ])

let test_send_counts_and_metrics () =
  let topo = Topology.oriented 3 in
  let net =
    Network.create topo (fun v ->
        if v = 0 then
          {
            Network.snap = None;
            Network.start = (fun api -> api.send Port.P1 ());
            wake = (fun _ -> ());
            inspect = (fun () -> []);
          }
        else Network.silent_program)
  in
  let result = Network.run net Scheduler.fifo in
  checki "sends" 1 result.sends;
  checki "deliveries" 1 result.deliveries;
  checkb "not quiescent (mailbox backlog)" false result.quiescent;
  checki "backlog" 1 (Network.mailbox_backlog net);
  checki "cw sends" 1 (Metrics.sends_cw (Network.metrics net))

let test_terminated_nodes_drop_pulses () =
  let topo = Topology.oriented 2 in
  (* Node 0 sends two pulses; node 1 terminates after consuming one. *)
  let net =
    Network.create topo (fun v ->
        if v = 0 then
          {
            Network.snap = None;
            Network.start =
              (fun api ->
                api.send Port.P1 ();
                api.send Port.P1 ());
            wake = (fun _ -> ());
            inspect = (fun () -> []);
          }
        else
          {
            Network.snap = None;
            Network.start = (fun _ -> ());
            wake =
              (fun api ->
                match api.recv Port.P0 with
                | Some () -> api.terminate ()
                | None -> ());
            inspect = (fun () -> []);
          })
  in
  let result = Network.run net Scheduler.fifo in
  checki "one dropped" 1
    (Metrics.post_termination_deliveries (Network.metrics net));
  checkb "quiescent" true result.quiescent;
  Alcotest.(check (list int)) "termination order" [ 1 ] result.termination_order

let test_send_after_terminate_rejected () =
  let topo = Topology.oriented 1 in
  Alcotest.check_raises "send after terminate"
    (Failure "Network: send after terminate") (fun () ->
      ignore
        (Network.create topo (fun _ ->
             {
               Network.snap = None;
               Network.start =
                 (fun api ->
                   api.terminate ();
                   api.send Port.P1 ());
               wake = (fun _ -> ());
               inspect = (fun () -> []);
             })))

let test_scheduler_determinism () =
  (* Same seed => identical executions, different seed => (almost surely)
     different delivery traces for a workload with interleaving. *)
  let run seed =
    let topo = Topology.oriented 6 in
    let net =
      Network.create ~sink:(Sink.memory ()) topo (fun v ->
          Colring_core.Algo2.program ~id:(v + 3))
    in
    let _ = Network.run net (Scheduler.random (Rng.create ~seed)) in
    match Network.trace net with
    | Some tr -> Trace.events tr
    | None -> []
  in
  checkb "same seed same trace" true (run 5 = run 5);
  checkb "different seed different trace" true (run 5 <> run 6)

let test_trace_consume_sequence () =
  let topo = Topology.oriented 1 in
  let net =
    Network.create ~sink:(Sink.memory ()) topo (fun _ ->
        Colring_core.Algo1.program ~id:3)
  in
  let _ = Network.run net Scheduler.fifo in
  match Network.trace net with
  | None -> Alcotest.fail "no trace"
  | Some tr ->
      (* Algorithm 1 with id 3 alone: the node consumes 3 CW pulses. *)
      checki "consumes" 3 (List.length (Trace.consumed_ports tr ~node:0))

let test_max_deliveries_exhaustion () =
  (* A two-node pulse ping-pong never quiesces; the engine must stop and
     flag exhaustion. *)
  let forever =
    {
      Network.snap = None;
      Network.start = (fun api -> api.send Port.P1 ());
      wake =
        (fun api ->
          let continue = ref true in
          while !continue do
            match api.recv Port.P0 with
            | Some () -> api.send Port.P1 ()
            | None -> continue := false
          done);
      inspect = (fun () -> []);
    }
  in
  let net = Network.create (Topology.oriented 2) (fun _ -> forever) in
  let result = Network.run ~max_deliveries:100 net Scheduler.fifo in
  checkb "exhausted" true result.exhausted;
  checki "stopped at bound" 100 result.deliveries

let test_per_node_rng_streams_differ () =
  let seen = ref [] in
  let net =
    Network.create ~seed:7 (Topology.oriented 4) (fun _ ->
        {
          Network.snap = None;
          Network.start =
            (fun api -> seen := Rng.int api.rng 1_000_000 :: !seen);
          wake = (fun _ -> ());
          inspect = (fun () -> []);
        })
  in
  ignore (Network.run net Scheduler.fifo);
  let sorted = List.sort_uniq compare !seen in
  checki "four distinct draws" 4 (List.length sorted)

(* ------------------------------------------------------------------ *)
(* Schedulers *)

let mk_two_senders () =
  (* Node 0 sends CW then CCW in one batch; a fifo scheduler with CW
     priority must deliver the CW pulse first. *)
  Network.create (Topology.oriented 2) (fun v ->
      if v = 0 then
        {
          Network.snap = None;
          Network.start =
            (fun api ->
              api.send Port.P0 ();
              (* CCW, sent first *)
              api.send Port.P1 () (* CW, sent second *));
          wake = (fun _ -> ());
          inspect = (fun () -> []);
        }
      else Network.silent_program)

let test_fifo_cw_priority () =
  let net = mk_two_senders () in
  let m = Network.metrics net in
  ignore (Network.step net Scheduler.fifo);
  (* The CW pulse from node 0 arrives at node 1's P0. *)
  checki "cw delivered first" 1 (Metrics.delivered_to m ~node:1 ~port_index:0);
  checki "ccw not yet" 0 (Metrics.delivered_to m ~node:1 ~port_index:1)

let test_global_fifo_send_order () =
  let net = mk_two_senders () in
  let m = Network.metrics net in
  ignore (Network.step net Scheduler.global_fifo);
  (* Strict send order: the CCW pulse was sent first. *)
  checki "ccw delivered first" 1 (Metrics.delivered_to m ~node:1 ~port_index:1)

let test_starve_node_delays () =
  (* With two pulses headed to different nodes, starve-node-1 must pick
     the other node's delivery first. *)
  let net =
    Network.create (Topology.oriented 3) (fun v ->
        if v = 0 then
          {
            Network.snap = None;
            Network.start =
              (fun api ->
                api.send Port.P1 ();
                (* to node 1 *)
                api.send Port.P0 () (* to node 2 *));
            wake = (fun _ -> ());
            inspect = (fun () -> []);
          }
        else Network.silent_program)
  in
  let m = Network.metrics net in
  ignore (Network.step net (Scheduler.starve_node ~node:1));
  checki "node 2 first" 1 (Metrics.delivered_to m ~node:2 ~port_index:1)

(* ------------------------------------------------------------------ *)
(* Blocking layer *)

let test_blocking_ping_pong () =
  (* Node 0: send CW, await reply CCW, terminate.  Node 1: await CW,
     reply CCW, terminate.  Written in direct style. *)
  let zero api =
    api.Network.send Port.P1 ();
    Blocking.recv Port.P1;
    api.set_output (Output.with_value 1 Output.empty);
    api.terminate ()
  in
  let one api =
    Blocking.recv Port.P0;
    api.Network.send Port.P0 ();
    api.set_output (Output.with_value 2 Output.empty);
    api.terminate ()
  in
  let net =
    Network.create (Topology.oriented 2) (fun v ->
        Blocking.make (if v = 0 then zero else one))
  in
  let result = Network.run net Scheduler.fifo in
  checkb "all terminated" true result.all_terminated;
  checkb "quiescent" true result.quiescent;
  checki "sends" 2 result.sends;
  Alcotest.(check (option int)) "node0 value" (Some 1)
    (Network.output net 0).Output.value

let test_blocking_recv_any () =
  (* Node 0 sends on both ports; node 1 (blocking) consumes two pulses
     with recv_any and records the ports. *)
  let got = ref [] in
  let one _api =
    let p1 = Blocking.recv_any () in
    let p2 = Blocking.recv_any () in
    got := [ p1; p2 ]
  in
  let net =
    Network.create (Topology.oriented 2) (fun v ->
        if v = 0 then
          {
            Network.snap = None;
            Network.start =
              (fun api ->
                api.send Port.P1 ();
                api.send Port.P0 ());
            wake = (fun _ -> ());
            inspect = (fun () -> []);
          }
        else Blocking.make one)
  in
  let result = Network.run net Scheduler.fifo in
  checkb "quiescent" true result.quiescent;
  checki "both consumed" 2 (List.length !got)

let test_blocking_immediate_mailbox () =
  (* A blocking recv must consume a pulse that is already waiting. *)
  let order = ref [] in
  let one _api =
    Blocking.recv Port.P0;
    order := 1 :: !order;
    Blocking.recv Port.P0;
    order := 2 :: !order
  in
  let net =
    Network.create (Topology.oriented 2) (fun v ->
        if v = 0 then
          {
            Network.snap = None;
            Network.start =
              (fun api ->
                api.send Port.P1 ();
                api.send Port.P1 ());
            wake = (fun _ -> ());
            inspect = (fun () -> []);
          }
        else Blocking.make one)
  in
  let result = Network.run net Scheduler.fifo in
  checkb "quiescent" true result.quiescent;
  Alcotest.(check (list int)) "both recvs ran" [ 2; 1 ] !order

(* ------------------------------------------------------------------ *)
(* Forced stepping and state accessors (the explorer's toolkit) *)

let test_force_step_and_accessors () =
  let topo = Topology.oriented 3 in
  let net =
    Network.create topo (fun v -> Colring_core.Algo1.program ~id:(v + 1))
  in
  (* Three start-up pulses in flight, one per clockwise link. *)
  checki "three active links" 3 (List.length (Network.active_links net));
  checki "in flight" 3 (Network.in_flight net);
  let link = Topology.link_id topo 0 Port.P1 in
  checki "channel length" 1 (Network.channel_length net ~link);
  Network.force_step net ~link;
  checki "consumed from that link" 0 (Network.channel_length net ~link);
  Alcotest.check_raises "empty link rejected"
    (Invalid_argument "Network.force_step: empty link") (fun () ->
      Network.force_step net ~link)

let test_mailbox_length_tracks_guarded_pulses () =
  (* A program that never consumes: deliveries pile up in the mailbox. *)
  let net =
    Network.create (Topology.oriented 2) (fun v ->
        if v = 0 then
          {
            Network.snap = None;
            Network.start =
              (fun api ->
                api.send Port.P1 ();
                api.send Port.P1 ());
            wake = (fun _ -> ());
            inspect = (fun () -> []);
          }
        else Network.silent_program)
  in
  let _ = Network.run net Scheduler.fifo in
  checki "mailbox holds both" 2
    (Network.mailbox_length net ~node:1 ~port:Port.P0);
  checki "backlog" 2 (Network.mailbox_backlog net);
  checkb "not quiescent" false (Network.is_quiescent net)

let test_diagram_deterministic () =
  let render () =
    let net =
      Network.create ~sink:(Sink.memory ()) (Topology.oriented 2) (fun v ->
          Colring_core.Algo2.program ~id:(v + 1))
    in
    let _ = Network.run net Scheduler.fifo in
    match Network.trace net with
    | Some tr -> Diagram.render tr ~n:2
    | None -> ""
  in
  Alcotest.(check string) "stable" (render ()) (render ())

let test_explore_trivial_instances () =
  (* A network with no sends at all: one state, one terminal. *)
  let stats =
    Explore.exhaustive
      ~make:(fun () ->
        Network.create (Topology.oriented 2) (fun _ -> Network.silent_program))
      ~check:(fun net -> Network.is_quiescent net)
      ()
  in
  checki "one state" 1 stats.Explore.distinct_states;
  checki "one terminal" 1 stats.Explore.terminal_states;
  checki "no failures" 0 stats.Explore.failures

let test_explore_respects_max_states () =
  let stats =
    Explore.exhaustive ~max_states:5
      ~make:(fun () ->
        Network.create (Topology.oriented 3) (fun v ->
            Colring_core.Algo2.program ~id:(v + 2)))
      ~check:(fun _ -> true)
      ()
  in
  checkb "truncated" true stats.Explore.truncated;
  checkb "bounded" true (stats.Explore.distinct_states <= 6)

(* ------------------------------------------------------------------ *)
(* Round-robin over synthetic views *)

(* A view over a fixed link set with trivial metadata, as the network
   would present it — the buffer is deliberately unordered. *)
let synthetic_view links =
  {
    Scheduler.nonempty = Array.copy links;
    count = Array.length links;
    head_seq = (fun l -> l);
    head_batch = (fun _ -> 0);
    travels_cw = (fun _ -> None);
    dst_node = (fun _ -> 0);
    step = 0;
  }

(* ------------------------------------------------------------------ *)
(* Direction keys over the optional ground truth *)

(* Even link ids travel cw, odd ids ccw, and links >= 100 belong to a
   directionless (general-graph) topology. *)
let directed_view links =
  {
    (synthetic_view links) with
    Scheduler.head_batch = (fun _ -> 0);
    head_seq = (fun l -> l);
    travels_cw =
      (fun l -> if l >= 100 then None else Some (l mod 2 = 0));
  }

let test_direction_bias_option () =
  (* fifo breaks batch ties cw-first; [None] links count as
     non-preferred, so the oldest cw link wins over both. *)
  let v = directed_view [| 101; 3; 4; 2 |] in
  checki "fifo prefers oldest cw" 2 (Scheduler.fifo.Scheduler.pick v);
  let v = directed_view [| 101; 3; 5 |] in
  checki "fifo falls back to seq among non-cw" 3
    (Scheduler.fifo.Scheduler.pick v);
  let bias_ccw = Scheduler.bias_direction ~cw:false in
  let v = directed_view [| 101; 2; 5; 3 |] in
  checki "bias-ccw prefers oldest ccw" 3 (bias_ccw.Scheduler.pick v);
  let bias_cw = Scheduler.bias_direction ~cw:true in
  (* A directionless view never satisfies either bias: both degrade to
     their seq tie-break over the whole link set. *)
  let v = synthetic_view [| 104; 101; 103 |] in
  checki "bias-cw degrades to seq on None" 101 (bias_cw.Scheduler.pick v);
  let v = synthetic_view [| 104; 101; 103 |] in
  checki "bias-ccw degrades to seq on None" 101 (bias_ccw.Scheduler.pick v)

let test_round_robin_fairness () =
  (* Over a static link set every link must be picked equally often,
     regardless of buffer order. *)
  let v = synthetic_view [| 9; 1; 6 |] in
  let rr = Scheduler.round_robin () in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3_000 do
    let l = rr.Scheduler.pick v in
    Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l))
  done;
  checki "link 1" 1_000 (Hashtbl.find counts 1);
  checki "link 6" 1_000 (Hashtbl.find counts 6);
  checki "link 9" 1_000 (Hashtbl.find counts 9)

let test_round_robin_wrap () =
  (* After picking the largest link the cursor passes every link id;
     the next pick must wrap to the smallest non-empty link. *)
  let v = synthetic_view [| 9; 1; 6 |] in
  let rr = Scheduler.round_robin () in
  checki "first" 1 (rr.Scheduler.pick v);
  checki "second" 6 (rr.Scheduler.pick v);
  checki "third" 9 (rr.Scheduler.pick v);
  checki "wraps to smallest" 1 (rr.Scheduler.pick v)

(* ------------------------------------------------------------------ *)
(* Every scheduler picks a member of the non-empty prefix *)

let assert_member (s : Scheduler.t) =
  {
    Scheduler.name = s.Scheduler.name ^ "+member";
    pick =
      (fun v ->
        let l = s.Scheduler.pick v in
        let ok = ref false in
        for i = 0 to v.Scheduler.count - 1 do
          if v.Scheduler.nonempty.(i) = l then ok := true
        done;
        if not !ok then
          Alcotest.failf "%s picked link %d outside the non-empty prefix"
            s.Scheduler.name l;
        l);
  }

let test_all_schedulers_pick_members () =
  let schedulers =
    Scheduler.all_deterministic () @ [ Scheduler.random (Rng.create ~seed:3) ]
  in
  List.iter
    (fun s ->
      let n = 8 in
      let net =
        Network.create ~seed:1 (Topology.oriented n) (fun v ->
            Colring_core.Algo2.program ~id:(v + 1))
      in
      let r = Network.run ~max_deliveries:20_000 net (assert_member s) in
      checkb
        (Printf.sprintf "%s made progress" s.Scheduler.name)
        true (r.deliveries > 0))
    schedulers

(* ------------------------------------------------------------------ *)
(* Whole-run determinism *)

let run_fingerprint ~seed ~sched_seed n =
  let net =
    Network.create ~seed (Topology.oriented n) (fun v ->
        Colring_core.Algo2.program ~id:(v + 1))
  in
  let r = Network.run net (Scheduler.random (Rng.create ~seed:sched_seed)) in
  (r, Metrics.to_assoc (Network.metrics net), Network.causal_span net)

let test_determinism_same_seed () =
  (* The reusable mutable view and the unordered non-empty buffer must
     not leak nondeterminism: equal seeds give bit-equal runs. *)
  let r1, m1, c1 = run_fingerprint ~seed:5 ~sched_seed:11 9 in
  let r2, m2, c2 = run_fingerprint ~seed:5 ~sched_seed:11 9 in
  checkb "run_result equal" true (r1 = r2);
  checkb "metrics equal" true (m1 = m2);
  checki "causal span equal" c1 c2

(* ------------------------------------------------------------------ *)
(* Injection uses the send path's batch convention *)

let test_inject_batch_stamp () =
  let net =
    Network.create (Topology.oriented 2) (fun _ -> Network.silent_program)
  in
  (* Two start activations have run, so the current batch is 2; an
     injected pulse must be stamped with it, exactly as a send from the
     most recent activation would be. *)
  Network.inject net ~node:0 ~port:Port.P1 ();
  let seen = ref (-1) in
  let probe =
    {
      Scheduler.name = "probe";
      pick =
        (fun v ->
          let l = v.Scheduler.nonempty.(0) in
          seen := v.Scheduler.head_batch l;
          l);
    }
  in
  checkb "stepped" true (Network.step net probe);
  checki "inject stamps current batch" 2 !seen

(* ------------------------------------------------------------------ *)
(* Ring / Envq backing stores: growth with a wrapped live span, and
   the pop-retention fix (popped slots must not keep payloads alive) *)

let test_ring_grow_mid_wrap () =
  let r = Ring.create () in
  let model = Queue.create () in
  (* Fill to the initial power-of-two capacity, drain past the
     midpoint so [head] is non-zero, then push enough to force [grow]
     while the live span wraps around the array end. *)
  for i = 0 to 7 do
    Ring.push r i;
    Queue.push i model
  done;
  for _ = 0 to 4 do
    checki "drain" (Queue.pop model) (Ring.pop r)
  done;
  for i = 8 to 40 do
    Ring.push r i;
    Queue.push i model
  done;
  while not (Ring.is_empty r) do
    checki "fifo across grow" (Queue.pop model) (Ring.pop r)
  done;
  checki "model drained too" 0 (Queue.length model)

let test_envq_grow_mid_wrap_meta () =
  let q = Envq.create () in
  let model = Queue.create () in
  let push i =
    Envq.push q (100 + i) ~seq:i ~batch:(2 * i) ~depth:(3 * i);
    Queue.push i model
  in
  let pop_and_check () =
    let i = Queue.pop model in
    checki "seq" i (Envq.head_seq q);
    checki "batch" (2 * i) (Envq.head_batch q);
    checki "depth" (3 * i) (Envq.head_depth q);
    checki "payload" (100 + i) (Envq.pop q)
  in
  for i = 0 to 7 do
    push i
  done;
  for _ = 0 to 4 do
    pop_and_check ()
  done;
  (* Growth happens with head = 5: payloads and the stride-3 meta
     array must both be unwrapped consistently. *)
  for i = 8 to 40 do
    push i
  done;
  while not (Envq.is_empty q) do
    pop_and_check ()
  done

(* The probes live in [@inline never] helpers so no caller register
   keeps the popped payload reachable.  The queues retain at most the
   FIRST element ever pushed (their clearing filler), so the tracked
   payload is the second push. *)
let[@inline never] ring_push_pop_probe r (w : int ref Weak.t) =
  let filler = ref 0 in
  let probe = ref 42 in
  Weak.set w 0 (Some probe);
  Ring.push r filler;
  Ring.push r probe;
  ignore (Ring.pop r);
  ignore (Ring.pop r)

let test_ring_pop_releases_payload () =
  let r = Ring.create () in
  let w = Weak.create 1 in
  ring_push_pop_probe r w;
  Gc.full_major ();
  Gc.full_major ();
  checkb "popped payload is collectable" true (Weak.get w 0 = None)

let[@inline never] envq_push_pop_probe q (w : int ref Weak.t) =
  let filler = ref 0 in
  let probe = ref 42 in
  Weak.set w 0 (Some probe);
  Envq.push q filler ~seq:0 ~batch:0 ~depth:0;
  Envq.push q probe ~seq:1 ~batch:0 ~depth:1;
  ignore (Envq.pop q);
  ignore (Envq.pop q)

let test_envq_pop_releases_payload () =
  let q = Envq.create () in
  let w = Weak.create 1 in
  envq_push_pop_probe q w;
  Gc.full_major ();
  Gc.full_major ();
  checkb "popped payload is collectable" true (Weak.get w 0 = None)

let prop_envq_meta_survives_growth =
  (* Model check against Stdlib.Queue: any interleaving of pushes and
     pops (biased toward pushes so growth triggers) keeps payloads and
     their seq/batch/depth triples in FIFO lockstep. *)
  QCheck.Test.make ~name:"envq matches a queue of (payload, meta) triples"
    ~count:300
    QCheck.(list (QCheck.make QCheck.Gen.(int_range 0 5)))
    (fun ops ->
      let q = Envq.create () in
      let model = Queue.create () in
      let counter = ref 0 in
      let push () =
        incr counter;
        let c = !counter in
        Envq.push q c ~seq:(c * 7) ~batch:(c * 11) ~depth:(c * 13);
        Queue.push c model
      in
      let pop_matches () =
        let c = Queue.pop model in
        Envq.head_seq q = c * 7
        && Envq.head_batch q = c * 11
        && Envq.head_depth q = c * 13
        && Envq.pop q = c
      in
      List.for_all
        (fun op ->
          if op = 0 && not (Envq.is_empty q) then pop_matches ()
          else begin
            push ();
            true
          end)
        ops
      &&
      let ok = ref true in
      while !ok && not (Envq.is_empty q) do
        ok := pop_matches ()
      done;
      !ok && Queue.is_empty model)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_random_topologies_check =
  QCheck.Test.make ~name:"random non-oriented topologies are rings" ~count:200
    QCheck.(pair (QCheck.make QCheck.Gen.(int_range 1 64)) small_nat)
    (fun (n, seed) ->
      let t = Topology.random_non_oriented (Rng.create ~seed) n in
      Topology.check t;
      Topology.distance_cw t 0 0 = 0)

let prop_conservation =
  (* Sends = deliveries + in-flight at all times; after a full run of a
     quiescent algorithm, sends = deliveries + drops. *)
  QCheck.Test.make ~name:"pulse conservation" ~count:100
    QCheck.(pair (QCheck.make QCheck.Gen.(int_range 1 16)) small_nat)
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Colring_core.Ids.dense rng ~n in
      let net =
        Network.create (Topology.oriented n) (fun v ->
            Colring_core.Algo2.program ~id:ids.(v))
      in
      let result = Network.run net (Scheduler.random (Rng.split rng)) in
      let m = Network.metrics net in
      result.sends
      = result.deliveries + Metrics.post_termination_deliveries m
        + Network.in_flight net)

let () =
  Alcotest.run "colring-engine"
    [
      ( "topology",
        [
          Alcotest.test_case "oriented" `Quick test_topology_oriented;
          Alcotest.test_case "non-oriented" `Quick test_topology_non_oriented;
          Alcotest.test_case "self ring" `Quick test_topology_self_ring;
          Alcotest.test_case "all flip patterns" `Quick
            test_topology_all_flip_patterns_are_rings;
          Alcotest.test_case "link direction" `Quick test_link_direction;
        ] );
      ( "network",
        [
          Alcotest.test_case "fifo order" `Quick test_fifo_order_preserved;
          Alcotest.test_case "metrics" `Quick test_send_counts_and_metrics;
          Alcotest.test_case "terminated drop" `Quick
            test_terminated_nodes_drop_pulses;
          Alcotest.test_case "send after terminate" `Quick
            test_send_after_terminate_rejected;
          Alcotest.test_case "scheduler determinism" `Quick
            test_scheduler_determinism;
          Alcotest.test_case "trace consumes" `Quick test_trace_consume_sequence;
          Alcotest.test_case "exhaustion" `Quick test_max_deliveries_exhaustion;
          Alcotest.test_case "per-node rng" `Quick
            test_per_node_rng_streams_differ;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "fifo cw priority" `Quick test_fifo_cw_priority;
          Alcotest.test_case "global fifo" `Quick test_global_fifo_send_order;
          Alcotest.test_case "starve node" `Quick test_starve_node_delays;
          Alcotest.test_case "round-robin fairness" `Quick
            test_round_robin_fairness;
          Alcotest.test_case "round-robin wrap" `Quick test_round_robin_wrap;
          Alcotest.test_case "direction bias option" `Quick
            test_direction_bias_option;
          Alcotest.test_case "picks are members" `Quick
            test_all_schedulers_pick_members;
          Alcotest.test_case "same seed, same run" `Quick
            test_determinism_same_seed;
          Alcotest.test_case "inject batch stamp" `Quick
            test_inject_batch_stamp;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "ping pong" `Quick test_blocking_ping_pong;
          Alcotest.test_case "recv_any" `Quick test_blocking_recv_any;
          Alcotest.test_case "immediate mailbox" `Quick
            test_blocking_immediate_mailbox;
        ] );
      ( "exploration-toolkit",
        [
          Alcotest.test_case "force step" `Quick test_force_step_and_accessors;
          Alcotest.test_case "mailbox length" `Quick
            test_mailbox_length_tracks_guarded_pulses;
          Alcotest.test_case "diagram deterministic" `Quick
            test_diagram_deterministic;
          Alcotest.test_case "explore trivial" `Quick
            test_explore_trivial_instances;
          Alcotest.test_case "explore max states" `Quick
            test_explore_respects_max_states;
        ] );
      ( "queues",
        [
          Alcotest.test_case "ring grow mid-wrap" `Quick test_ring_grow_mid_wrap;
          Alcotest.test_case "envq grow mid-wrap meta" `Quick
            test_envq_grow_mid_wrap_meta;
          Alcotest.test_case "ring pop releases payload" `Quick
            test_ring_pop_releases_payload;
          Alcotest.test_case "envq pop releases payload" `Quick
            test_envq_pop_releases_payload;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [
            prop_random_topologies_check;
            prop_conservation;
            prop_envq_meta_survives_growth;
          ] );
    ]
