(* Tests for the analytical fast simulator: differential equality with
   the event engine on every overlapping scale, plus exactness at
   scales only the fast simulator can reach. *)

open Colring_core
open Colring_engine
open Colring_fastsim
module Rng = Colring_stats.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Differential: fast vs engine *)

let prop_algo1_differential =
  QCheck.Test.make ~name:"fast algo1 = engine algo1" ~count:150
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 24) (int_range 0 10_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 60) in
      let fast = Fast.algo1 ~ids in
      let _, net =
        Election.run Election.Algo1 ~topo:(Topology.oriented n) ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      fast.Fast.total = Metrics.sends (Network.metrics net)
      && Array.for_all
           (fun v ->
             fast.Fast.receives.(v)
             = Network.inspect_counter net v "rho_cw")
           (Array.init n Fun.id))

let prop_algo1_differential_duplicates =
  QCheck.Test.make ~name:"fast algo1 = engine (duplicate ids)" ~count:100
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 2 16) (int_range 0 10_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let id_max = 2 + Rng.int rng 30 in
      let ids = Ids.duplicated rng ~n ~id_max ~dup_max:(1 + Rng.int rng n) in
      let fast = Fast.algo1 ~ids in
      let _, net =
        Election.run Election.Algo1 ~topo:(Topology.oriented n) ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      fast.Fast.total = Metrics.sends (Network.metrics net))

let prop_algo2_differential =
  QCheck.Test.make ~name:"fast algo2 = engine algo2" ~count:120
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 20) (int_range 0 10_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 50) in
      let fast = Fast.algo2 ~ids in
      let r =
        Election.run_report Election.Algo2 ~topo:(Topology.oriented n) ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      fast.Fast.total = r.sends
      && fast.Fast.cw = r.sends_cw
      && fast.Fast.ccw = r.sends_ccw
      && Some fast.Fast.leader = r.leader)

let prop_algo2_termination_order =
  QCheck.Test.make ~name:"fast algo2 termination order = engine" ~count:60
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 14) (int_range 0 10_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 20) in
      let fast = Fast.algo2 ~ids in
      let _, net =
        Election.run Election.Algo2 ~topo:(Topology.oriented n) ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      fast.Fast.termination_order = Network.termination_order net)

let prop_algo3_differential =
  QCheck.Test.make ~name:"fast algo3 = engine algo3" ~count:100
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 16) (int_range 0 10_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 30) in
      let flips = Array.init n (fun _ -> Rng.bool rng) in
      let topo = Topology.non_oriented ~flips in
      List.for_all
        (fun scheme ->
          let fast = Fast.algo3 ~scheme ~ids ~flips in
          let r, net =
            Election.run (Election.Algo3 scheme) ~topo ~ids
              ~sched:(Scheduler.random (Rng.split rng))
          in
          fast.Fast.total = r.sends
          && Some fast.Fast.leader = r.leader
          && fast.Fast.leader_unique
          && fast.Fast.orientation_consistent
             = (r.orientation_ok = Some true)
          && Array.for_all
               (fun v ->
                 match (Network.output net v).Output.cw_port with
                 | Some p -> Port.equal p fast.Fast.cw_ports.(v)
                 | None -> false)
               (Array.init n Fun.id))
        [ Algo3.Doubled; Algo3.Improved ])

(* ------------------------------------------------------------------ *)
(* Exactness at large scale *)

let test_large_scale_formulas () =
  List.iter
    (fun (n, id_max) ->
      let ids = Ids.distinct (Rng.create ~seed:n) ~n ~id_max in
      let a1 = Fast.algo1 ~ids in
      checki
        (Printf.sprintf "algo1 n=%d idmax=%d" n id_max)
        (Formulas.algo1_total ~n ~id_max)
        a1.Fast.total;
      checkb "all receives = idmax" true
        (Array.for_all (fun r -> r = id_max) a1.Fast.receives);
      checkb "lemma 7 order" true a1.Fast.last_absorber_is_max;
      let a2 = Fast.algo2 ~ids in
      checki "algo2 total" (Formulas.algo2_total ~n ~id_max) a2.Fast.total;
      checki "algo2 cw" (n * id_max) a2.Fast.cw;
      checki "algo2 ccw" (n * (id_max + 1)) a2.Fast.ccw)
    [ (4, 1_000_000); (64, 1_000_000); (512, 100_000); (3, 1_000_000_000) ]

let test_large_scale_algo3 () =
  let n = 128 and id_max = 500_000 in
  let rng = Rng.create ~seed:7 in
  let ids = Ids.distinct rng ~n ~id_max in
  let flips = Array.init n (fun _ -> Rng.bool rng) in
  List.iter
    (fun (scheme, expected) ->
      let r = Fast.algo3 ~scheme ~ids ~flips in
      checki "total" expected r.Fast.total;
      checkb "leader" true (r.Fast.leader = Ids.argmax ids);
      checkb "oriented" true r.Fast.orientation_consistent)
    [
      (Algo3.Doubled, Formulas.algo3_doubled_total ~n ~id_max);
      (Algo3.Improved, Formulas.algo3_improved_total ~n ~id_max);
    ]

let test_driver_single_node () =
  let r = Driver.run ~ids:[| 42 |] () in
  checki "deliveries" 42 r.Driver.deliveries;
  checki "receives" 42 r.Driver.receives.(0);
  Alcotest.(check (list int)) "order" [ 0 ] r.Driver.absorb_order

let test_driver_rejects_bad_ids () =
  Alcotest.check_raises "zero id"
    (Invalid_argument "Driver.run: ids must be positive") (fun () ->
      ignore (Driver.run ~ids:[| 1; 0 |] ()))

let () =
  Alcotest.run "colring-fastsim"
    [
      ( "differential",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [
            prop_algo1_differential;
            prop_algo1_differential_duplicates;
            prop_algo2_differential;
            prop_algo2_termination_order;
            prop_algo3_differential;
          ] );
      ( "scale",
        [
          Alcotest.test_case "formulas at 10^6..10^9" `Quick
            test_large_scale_formulas;
          Alcotest.test_case "algo3 at scale" `Quick test_large_scale_algo3;
        ] );
      ( "driver",
        [
          Alcotest.test_case "single node" `Quick test_driver_single_node;
          Alcotest.test_case "input validation" `Quick
            test_driver_rejects_bad_ids;
        ] );
    ]
