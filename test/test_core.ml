(* Tests for the paper's algorithms: correctness of the election, exact
   message counts, quiescence, termination order, orientation — under
   every scheduler, including randomized ones (qcheck). *)

open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let schedulers () = Scheduler.all_deterministic ()

let random_sched seed = Scheduler.random (Rng.create ~seed)

(* ------------------------------------------------------------------ *)
(* Algorithm 1 *)

let run_algo1 ~ids ~sched =
  Election.run_report Election.Algo1
    ~topo:(Topology.oriented (Array.length ids))
    ~ids ~sched

let test_algo1_basic () =
  let ids = [| 3; 7; 5; 1 |] in
  List.iter
    (fun sched ->
      let r = run_algo1 ~ids ~sched in
      check (sched.Scheduler.name ^ " quiescent") true r.quiescent;
      check (sched.Scheduler.name ^ " roles") true r.roles_ok;
      check (sched.Scheduler.name ^ " max wins") true r.leader_is_max;
      check_int (sched.Scheduler.name ^ " total = n*idmax") (4 * 7) r.sends)
    (schedulers ())

let test_algo1_single_node () =
  let r = run_algo1 ~ids:[| 5 |] ~sched:Scheduler.fifo in
  check "quiescent" true r.quiescent;
  check "leader" true (r.leader = Some 0);
  check_int "total" 5 r.sends

let test_algo1_counters_stabilize () =
  (* Lemma 11(3): at quiescence every node has rho = sigma = ID_max. *)
  let ids = [| 2; 9; 4; 6; 1 |] in
  let topo = Topology.oriented 5 in
  let _, net = Election.run Election.Algo1 ~topo ~ids ~sched:Scheduler.lifo in
  for v = 0 to 4 do
    check_int "rho = idmax" 9 (Network.inspect_counter net v "rho_cw");
    check_int "sigma = idmax" 9 (Network.inspect_counter net v "sigma_cw")
  done

let test_algo1_duplicate_ids () =
  (* Lemma 16: with duplicated non-maximal ids, Algorithm 1 behaves the
     same; with duplicated maxima, all maxima end in the Leader state. *)
  let ids = [| 4; 9; 4; 9; 2 |] in
  let topo = Topology.oriented 5 in
  let _, net = Election.run Election.Algo1 ~topo ~ids ~sched:Scheduler.fifo in
  check "quiescent" true (Network.is_quiescent net);
  for v = 0 to 4 do
    check_int "rho = idmax" 9 (Network.inspect_counter net v "rho_cw");
    let role = (Network.output net v).Output.role in
    let expect = if ids.(v) = 9 then Output.Leader else Output.Non_leader in
    check "role" true (Output.equal_role role expect)
  done

(* ------------------------------------------------------------------ *)
(* Algorithm 2 *)

let run_algo2 ~ids ~sched =
  Election.run_report Election.Algo2
    ~topo:(Topology.oriented (Array.length ids))
    ~ids ~sched

let test_algo2_all_schedulers () =
  let ids = [| 6; 2; 11; 5; 8; 3 |] in
  List.iter
    (fun sched ->
      let r = run_algo2 ~ids ~sched in
      check (sched.Scheduler.name ^ " ok") true (Election.ok r);
      check_int
        (sched.Scheduler.name ^ " exact count")
        (6 * ((2 * 11) + 1))
        r.sends)
    (schedulers ())

let test_algo2_termination_order () =
  (* Leader at position 2; CCW order from the leader is 1,0,5,4,3,2. *)
  let ids = [| 6; 2; 11; 5; 8; 3 |] in
  let topo = Topology.oriented 6 in
  let _, net = Election.run Election.Algo2 ~topo ~ids ~sched:Scheduler.fifo in
  Alcotest.(check (list int))
    "order" [ 1; 0; 5; 4; 3; 2 ]
    (Network.termination_order net)

let test_algo2_single_node () =
  let r = run_algo2 ~ids:[| 4 |] ~sched:Scheduler.fifo in
  check "ok" true (Election.ok r);
  check_int "total" 9 r.sends

let test_algo2_two_nodes () =
  List.iter
    (fun sched ->
      let r = run_algo2 ~ids:[| 1; 2 |] ~sched in
      check (sched.Scheduler.name ^ " ok") true (Election.ok r);
      check_int (sched.Scheduler.name ^ " total") (2 * 5) r.sends)
    (schedulers ())

let test_algo2_directional_split () =
  (* n*ID_max clockwise pulses, n*(ID_max+1) counterclockwise. *)
  let ids = [| 5; 9; 1; 7 |] in
  let r = run_algo2 ~ids ~sched:(random_sched 42) in
  check_int "cw" (4 * 9) r.sends_cw;
  check_int "ccw" (4 * 10) r.sends_ccw

let test_algo2_large_gap_ids () =
  (* ID_max >> n: the regime where the ID_max term dominates. *)
  let ids = [| 3; 200; 50 |] in
  let r = run_algo2 ~ids ~sched:(random_sched 7) in
  check "ok" true (Election.ok r);
  check_int "total" (3 * 401) r.sends

(* Lemma 6 invariants checked at every reachable configuration. *)
let test_algo2_invariants_probed () =
  let ids = [| 4; 7; 2; 5 |] in
  let topo = Topology.oriented 4 in
  let net =
    Network.create topo (fun v -> Algo2.program ~id:ids.(v))
  in
  let violations = ref 0 in
  let probe ~step:_ =
    for v = 0 to 3 do
      if not (Network.terminated net v) then begin
        let c name = Network.inspect_counter net v name in
        let rho = c "rho_cw" and sigma = c "sigma_cw" and id = c "id" in
        (* Lemma 6 for the CW instance. *)
        if rho < id && sigma <> rho + 1 then incr violations;
        if rho >= id && sigma <> rho then incr violations;
        (* CCW instance: same invariants, but it only starts (first
           send) when rho_cw >= id; before that everything is 0. *)
        let rho' = c "rho_ccw" and sigma' = c "sigma_ccw" in
        let initiated = c "term_initiated" = 1 in
        if sigma' > 0 && not initiated then begin
          if rho' < id && sigma' <> rho' + 1 then incr violations;
          if rho' >= id && sigma' <> rho' then incr violations
        end
      end
    done
  in
  let result = Network.run ~probe net Scheduler.fifo in
  check "terminated" true result.all_terminated;
  check_int "no invariant violations" 0 !violations

(* Lemma 7: the node of maximal ID is the last to reach rho_cw >= id. *)
let test_algo2_max_last_to_cross () =
  let ids = [| 4; 7; 2; 5; 6 |] in
  let topo = Topology.oriented 5 in
  let net = Network.create topo (fun v -> Algo2.program ~id:ids.(v)) in
  let crossed = Array.make 5 false in
  let cross_order = ref [] in
  let probe ~step:_ =
    for v = 0 to 4 do
      if (not crossed.(v)) && not (Network.terminated net v) then
        if Network.inspect_counter net v "rho_cw" >= ids.(v) then begin
          crossed.(v) <- true;
          cross_order := v :: !cross_order
        end
    done
  in
  let _ = Network.run ~probe net (random_sched 3) in
  match !cross_order with
  | last :: _ -> check_int "max id crossed last" 1 last
  | [] -> Alcotest.fail "nobody crossed"

(* ------------------------------------------------------------------ *)
(* Algorithm 3 *)

let test_algo3_doubled () =
  let ids = [| 6; 2; 11; 5 |] in
  let flips = [| false; true; true; false |] in
  let topo = Topology.non_oriented ~flips in
  List.iter
    (fun sched ->
      let r =
        Election.run_report (Election.Algo3 Algo3.Doubled) ~topo ~ids ~sched
      in
      check (sched.Scheduler.name ^ " ok") true (Election.ok r);
      check_int
        (sched.Scheduler.name ^ " count")
        (4 * ((4 * 11) - 1))
        r.sends)
    (schedulers ())

let test_algo3_improved () =
  let ids = [| 6; 2; 11; 5; 9 |] in
  let flips = [| true; true; false; true; false |] in
  let topo = Topology.non_oriented ~flips in
  List.iter
    (fun sched ->
      let r =
        Election.run_report (Election.Algo3 Algo3.Improved) ~topo ~ids ~sched
      in
      check (sched.Scheduler.name ^ " ok") true (Election.ok r);
      check_int
        (sched.Scheduler.name ^ " count")
        (5 * ((2 * 11) + 1))
        r.sends)
    (schedulers ())

let test_algo3_oriented_ring_too () =
  (* A non-oriented-ring algorithm must also work when the ring happens
     to be oriented. *)
  let ids = [| 4; 1; 9 |] in
  let topo = Topology.oriented 3 in
  let r =
    Election.run_report (Election.Algo3 Algo3.Improved) ~topo ~ids
      ~sched:(random_sched 11)
  in
  check "ok" true (Election.ok r)

let test_algo3_orientation_agrees_with_leader_port1 () =
  (* Proof of Prop. 15: clockwise is defined as the direction out of the
     max-ID node's Port_1. *)
  let ids = [| 6; 2; 11; 5 |] in
  let flips = [| true; false; true; false |] in
  let topo = Topology.non_oriented ~flips in
  let _, net =
    Election.run (Election.Algo3 Algo3.Improved) ~topo ~ids
      ~sched:Scheduler.fifo
  in
  let leader = 2 in
  (match (Network.output net leader).Output.cw_port with
  | Some p -> check "leader cw port is Port1" true (Port.equal p Port.P1)
  | None -> Alcotest.fail "leader has no orientation");
  check "consistent" true
    (Election.orientation_consistent topo (Network.outputs net))

(* ------------------------------------------------------------------ *)
(* Sampling (Algorithm 4) and resampling (Proposition 19) *)

let test_sampling_positive_and_deterministic () =
  let rng = Rng.create ~seed:5 in
  let ids = Sampling.sample_ring rng ~c:2.0 ~n:64 in
  Array.iter (fun id -> check "positive" true (id >= 1)) ids;
  let rng' = Rng.create ~seed:5 in
  let ids' = Sampling.sample_ring rng' ~c:2.0 ~n:64 in
  check "deterministic" true (ids = ids')

let test_sampling_unique_max_rate () =
  (* Lemma 18: unique max w.h.p.  With c=2 and n=32 the failure rate is
     a few percent; over 200 seeds require at least 80% success. *)
  let successes = ref 0 in
  for seed = 1 to 200 do
    let ids = Sampling.sample_ring (Rng.create ~seed) ~c:2.0 ~n:32 in
    if Sampling.max_is_unique ids then incr successes
  done;
  check "unique max rate >= 80%" true (!successes >= 160)

let test_anonymous_election_end_to_end () =
  (* Theorem 3: sample ids, run Algorithm 3; success iff max unique.
     Complexity is Θ(n * ID_max), so skip the rare astronomically-large
     draws to keep the test fast — the skip does not bias correctness,
     only which instances get exercised. *)
  let seeds_ok = ref 0 and ran = ref 0 in
  for seed = 1 to 60 do
    let rng = Rng.create ~seed in
    let n = 12 in
    let ids = Sampling.sample_ring rng ~c:1.0 ~n in
    let topo = Topology.random_non_oriented rng n in
    if Sampling.max_is_unique ids && Ids.id_max ids <= 20_000 then begin
      incr ran;
      let r =
        Election.run_report (Election.Algo3 Algo3.Improved) ~topo ~ids
          ~sched:(random_sched seed)
      in
      check "roles" true r.roles_ok;
      check "quiescent" true r.quiescent;
      if Election.ok r then incr seeds_ok
    end
  done;
  check "ran a good sample" true (!ran >= 20);
  check "all sampled instances succeed" true (!seeds_ok = !ran)

let test_resampling_distinct_ids () =
  (* Proposition 19: after the run all ids are distinct (w.h.p.; large
     ID_max makes collisions vanishingly rare), and the message count is
     unchanged. *)
  let rng = Rng.create ~seed:9 in
  let n = 12 in
  let ids = Ids.distinct rng ~n ~id_max:100_000 in
  let topo = Topology.random_non_oriented rng n in
  let r =
    Election.run_report Election.Algo3_resample ~topo ~ids
      ~sched:(random_sched 13)
  in
  check "count unchanged" true (r.sends = r.expected_sends);
  check "roles" true r.roles_ok;
  check "max kept" true r.leader_is_max;
  let sorted = Array.copy r.final_ids in
  Array.sort compare sorted;
  let distinct = ref true in
  for i = 0 to n - 2 do
    if sorted.(i) = sorted.(i + 1) then distinct := false
  done;
  check "all distinct" true !distinct

let test_resampling_on_sampled_ids () =
  (* Proposition 19 as stated: the input IDs come from Algorithm 4, so
     non-maximal duplicates are possible; after the run all IDs are
     distinct (w.h.p. — the instances below are deterministic given the
     seeds and all succeed). *)
  let ran = ref 0 in
  for seed = 1 to 40 do
    let rng = Rng.create ~seed:(seed * 7) in
    let n = 10 in
    let ids = Sampling.sample_ring rng ~c:2.0 ~n in
    (* Keep instances in the regime the proposition addresses: the
       resampled IDs are drawn from ~[1, ID_max], so distinctness needs
       ID_max >> n² (here >= 50 n²); the cap keeps runs cheap. *)
    if
      Sampling.max_is_unique ids
      && Ids.id_max ids <= 60_000
      && Ids.id_max ids >= 50 * n * n
    then begin
      incr ran;
      let topo = Topology.random_non_oriented rng n in
      let r =
        Election.run_report Election.Algo3_resample ~topo ~ids
          ~sched:(random_sched (seed + 3))
      in
      check "quiescent" true r.quiescent;
      check "count" true (r.sends = r.expected_sends);
      let sorted = Array.copy r.final_ids in
      Array.sort compare sorted;
      for i = 0 to n - 2 do
        check "distinct" true (sorted.(i) <> sorted.(i + 1))
      done
    end
  done;
  check "exercised enough instances" true (!ran >= 4)

(* ------------------------------------------------------------------ *)
(* Causal span (asynchronous time) *)

let test_algo1_causal_span_schedule_invariant () =
  (* In a single-direction instance, node v's k-th receive is always
     its predecessor's k-th send (FIFO), and per-channel depths are
     monotone, so the dependency structure — hence the span — does not
     depend on the schedule. *)
  let ids = [| 6; 2; 11; 5; 8; 3 |] in
  let topo = Topology.oriented 6 in
  let spans =
    List.map
      (fun sched ->
        let _, net = Election.run Election.Algo1 ~topo ~ids ~sched in
        Network.causal_span net)
      (schedulers () @ [ random_sched 1; random_sched 2 ])
  in
  match spans with
  | s :: rest -> List.iter (fun s' -> check_int "same span" s s') rest
  | [] -> ()

let test_algo2_causal_span_bounds () =
  (* Two chained directional instances plus the termination circle:
     the span is at least 2*ID_max and at most the pulse total. *)
  List.iter
    (fun sched ->
      let ids = [| 6; 2; 11; 5; 8; 3 |] in
      let r =
        Election.run_report Election.Algo2 ~topo:(Topology.oriented 6) ~ids
          ~sched
      in
      check "lower" true (r.causal_span >= 2 * 11);
      check "upper" true (r.causal_span <= r.sends))
    (schedulers ())

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let arb_instance =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 1 24) (int_range 0 10_000))

let prop_algo2_ok =
  QCheck.Test.make ~name:"algo2 correct on random instances" ~count:120
    arb_instance (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 40) in
      let r =
        Election.run_report Election.Algo2 ~topo:(Topology.oriented n) ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      Election.ok r)

let prop_algo1_quiescence_iff_all_reached =
  QCheck.Test.make ~name:"algo1 stabilizes with rho=sigma=idmax" ~count:100
    arb_instance (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.dense rng ~n in
      let topo = Topology.oriented n in
      let _, net =
        Election.run Election.Algo1 ~topo ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      let id_max = Ids.id_max ids in
      Network.is_quiescent net
      && Array.for_all
           (fun v ->
             Network.inspect_counter net v "rho_cw" = id_max
             && Network.inspect_counter net v "sigma_cw" = id_max)
           (Array.init n Fun.id))

let prop_algo3_improved_ok =
  QCheck.Test.make ~name:"algo3 improved on random non-oriented rings"
    ~count:120 arb_instance (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 30) in
      let topo = Topology.random_non_oriented rng n in
      let r =
        Election.run_report (Election.Algo3 Algo3.Improved) ~topo ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      Election.ok r)

let prop_algo3_doubled_ok =
  QCheck.Test.make ~name:"algo3 doubled on random non-oriented rings"
    ~count:80 arb_instance (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 30) in
      let topo = Topology.random_non_oriented rng n in
      let r =
        Election.run_report (Election.Algo3 Algo3.Doubled) ~topo ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      Election.ok r)

let prop_algo3_duplicate_nonmax =
  (* Lemma 16 applied to Algorithm 3 (the basis of the anonymous
     setting): duplicated non-maximal ids are harmless as long as the
     maximum is unique. *)
  QCheck.Test.make ~name:"algo3 with duplicate non-max ids" ~count:80
    arb_instance (fun (n, seed) ->
      QCheck.assume (n >= 2);
      let rng = Rng.create ~seed in
      let id_max = n + 2 + Rng.int rng 20 in
      let ids =
        Array.init n (fun v ->
            if v = Rng.int (Rng.create ~seed:(seed + 1)) n then id_max
            else 1 + Rng.int rng (id_max - 1))
      in
      (* Force exactly one maximum. *)
      let max_pos = ref (-1) in
      Array.iteri (fun v id -> if id = id_max && !max_pos < 0 then max_pos := v) ids;
      Array.iteri
        (fun v id -> if id = id_max && v <> !max_pos then ids.(v) <- id_max - 1)
        ids;
      if !max_pos < 0 then ids.(0) <- id_max;
      let topo = Topology.random_non_oriented rng n in
      let r =
        Election.run_report (Election.Algo3 Algo3.Improved) ~topo ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      r.quiescent && r.roles_ok && r.leader_is_max
      && r.sends = r.expected_sends
      && r.orientation_ok = Some true)

let prop_sampling_magnitude =
  (* Lemma 18's magnitude statement, loosely: the maximum of n samples
     grows with n (statistical smoke, generous margins). *)
  QCheck.Test.make ~name:"sampling max grows with n" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let med n =
        let s = Colring_stats.Summary.create () in
        for i = 1 to 60 do
          let ids =
            Sampling.sample_ring
              (Rng.create ~seed:((seed * 100) + i))
              ~c:1.0 ~n
          in
          Colring_stats.Summary.add_int s (Ids.id_max ids)
        done;
        Colring_stats.Summary.median s
      in
      med 64 > med 4)

let prop_algo2_outcome_schedule_independent =
  (* Not just the totals: leader, role vector, per-node final counters
     and even the termination order coincide across adversaries. *)
  QCheck.Test.make ~name:"algo2 outcome schedule-independent" ~count:40
    arb_instance (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 20) in
      let topo = Topology.oriented n in
      let outcome sched =
        let r, net = Election.run Election.Algo2 ~topo ~ids ~sched in
        (r.leader, r.sends, r.sends_cw, Network.termination_order net)
      in
      let reference = outcome Scheduler.fifo in
      List.for_all
        (fun sched -> outcome sched = reference)
        [ Scheduler.lifo; Scheduler.random (Rng.split rng) ])

let prop_algo1_duplicates =
  QCheck.Test.make ~name:"algo1 with duplicated ids (Lemma 16)" ~count:80
    arb_instance (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let id_max = 2 + Rng.int rng 20 in
      let dup_max = 1 + Rng.int rng n in
      let ids = Ids.duplicated rng ~n ~id_max ~dup_max in
      let topo = Topology.oriented n in
      let _, net =
        Election.run Election.Algo1 ~topo ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      Network.is_quiescent net
      && Array.for_all
           (fun v -> Network.inspect_counter net v "rho_cw" = id_max)
           (Array.init n Fun.id))

let () =
  let qsuite = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "colring-core"
    [
      ( "algo1",
        [
          Alcotest.test_case "basic all schedulers" `Quick test_algo1_basic;
          Alcotest.test_case "single node" `Quick test_algo1_single_node;
          Alcotest.test_case "counters stabilize" `Quick
            test_algo1_counters_stabilize;
          Alcotest.test_case "duplicate ids" `Quick test_algo1_duplicate_ids;
        ] );
      ( "algo2",
        [
          Alcotest.test_case "all schedulers" `Quick test_algo2_all_schedulers;
          Alcotest.test_case "termination order" `Quick
            test_algo2_termination_order;
          Alcotest.test_case "single node" `Quick test_algo2_single_node;
          Alcotest.test_case "two nodes" `Quick test_algo2_two_nodes;
          Alcotest.test_case "directional split" `Quick
            test_algo2_directional_split;
          Alcotest.test_case "large id gap" `Quick test_algo2_large_gap_ids;
          Alcotest.test_case "lemma 6 invariants" `Quick
            test_algo2_invariants_probed;
          Alcotest.test_case "lemma 7 max last" `Quick
            test_algo2_max_last_to_cross;
        ] );
      ( "algo3",
        [
          Alcotest.test_case "doubled scheme" `Quick test_algo3_doubled;
          Alcotest.test_case "improved scheme" `Quick test_algo3_improved;
          Alcotest.test_case "works on oriented rings" `Quick
            test_algo3_oriented_ring_too;
          Alcotest.test_case "orientation from leader port1" `Quick
            test_algo3_orientation_agrees_with_leader_port1;
        ] );
      ( "causal-time",
        [
          Alcotest.test_case "algo1 span schedule-invariant" `Quick
            test_algo1_causal_span_schedule_invariant;
          Alcotest.test_case "algo2 span bounds" `Quick
            test_algo2_causal_span_bounds;
        ] );
      ( "anonymous",
        [
          Alcotest.test_case "sampling deterministic" `Quick
            test_sampling_positive_and_deterministic;
          Alcotest.test_case "unique max rate" `Quick
            test_sampling_unique_max_rate;
          Alcotest.test_case "end to end" `Quick
            test_anonymous_election_end_to_end;
          Alcotest.test_case "prop 19 resampling" `Quick
            test_resampling_distinct_ids;
          Alcotest.test_case "prop 19 on sampled ids" `Quick
            test_resampling_on_sampled_ids;
        ] );
      ( "properties",
        qsuite
          [
            prop_algo2_ok;
            prop_algo1_quiescence_iff_all_reached;
            prop_algo3_improved_ok;
            prop_algo3_doubled_ok;
            prop_algo1_duplicates;
            prop_algo2_outcome_schedule_independent;
            prop_algo3_duplicate_nonmax;
            prop_sampling_magnitude;
          ] );
    ]
