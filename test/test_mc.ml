(* Tests for the lib/mc schedule-space model checker: exhaustive
   verification of the paper's algorithms and the classic baselines on
   small rings, guaranteed minimized counterexamples for every
   ablation variant, schedule replay (including the
   Scheduler.of_schedule bridge back into the ordinary run loop),
   depth budgets, state budgets, and worker-count independence. *)

open Colring_engine
open Colring_core
open Colring_mc
module Rng = Colring_stats.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A fixed scrambled assignment so the max ID is not at node 0. *)
let ids n = Ids.distinct (Rng.create ~seed:1) ~n ~id_max:n

let correct_targets =
  [
    "algo1";
    "algo2";
    "algo3-doubled";
    "algo3-improved";
    "chang-roberts";
    "lelann";
    "hirschberg-sinclair";
    "peterson";
    "franklin";
  ]

let ablation_targets =
  [ "ablation:no-lag"; "ablation:same-virtual-ids"; "ablation:no-absorption" ]

(* ------------------------------------------------------------------ *)
(* Exhaustive verification of everything that should be correct *)

let test_correct_targets_verify_at_n3 () =
  List.iter
    (fun target ->
      let (Spec.Packed spec) = Spec.of_target target ~ids:(ids 3) ~topo_seed:2 in
      checkb (target ^ " does not expect a violation") false
        spec.Mc.expect_violation;
      let r = Mc.check spec in
      checkb (target ^ " explored exhaustively") false r.Mc.stats.Mc.truncated;
      checkb
        (target ^ " reached at least one terminal state")
        true
        (r.Mc.stats.Mc.schedules >= 1);
      checkb (target ^ " has no counterexample") true
        (r.Mc.counterexample = None))
    correct_targets

let test_algo2_exhaustive_at_n4 () =
  let spec = Spec.election Election.Algo2 ~ids:(ids 4) ~topo_seed:2 in
  let r = Mc.check spec in
  checkb "exhaustive" false r.Mc.stats.Mc.truncated;
  checkb "verified" true (r.Mc.counterexample = None);
  (* Every full schedule runs the exact pulse total: n(2*ID_max+1). *)
  checki "max depth is the paper total"
    (Formulas.algo2_total ~n:4 ~id_max:4)
    r.Mc.stats.Mc.max_depth_seen;
  checkb "sleep sets pruned something" true (r.Mc.stats.Mc.sleep_pruned > 0);
  checkb "state cache pruned something" true (r.Mc.stats.Mc.dedup_pruned > 0)

(* ------------------------------------------------------------------ *)
(* Ablations: the checker MUST break every broken variant *)

(* Replay [schedule] and return the violation, [None] when the
   schedule is violation-free or does not even fit the run. *)
let violation_of spec schedule =
  match Mc.replay spec schedule with
  | _, v -> v
  | exception Invalid_argument _ -> None

let drop_one schedule i =
  Array.init
    (Array.length schedule - 1)
    (fun j -> if j < i then schedule.(j) else schedule.(j + 1))

let test_ablations_yield_minimized_counterexamples () =
  List.iter
    (fun target ->
      let (Spec.Packed spec) = Spec.of_target target ~ids:(ids 3) ~topo_seed:2 in
      checkb (target ^ " expects a violation") true spec.Mc.expect_violation;
      let r = Mc.check spec in
      match r.Mc.counterexample with
      | None -> Alcotest.failf "%s: no counterexample found" target
      | Some ce ->
          (* Replayable: the minimized schedule reproduces the same
             violation on a fresh instance. *)
          (match Mc.replay spec ce.Mc.schedule with
          | _, Some v ->
              Alcotest.(check string) (target ^ " reproduces") ce.Mc.violation v
          | _, None -> Alcotest.failf "%s: counterexample does not replay" target);
          (* Confirmed through the engine's ordinary run loop
             (Scheduler.of_schedule), not just the checker's forcing
             path. *)
          checkb (target ^ " confirmed via of_schedule") true
            (Mc.confirm spec ce);
          (* 1-minimal: dropping any single delivery loses the bug
             (the depth violation is minimal by construction). *)
          if ce.Mc.violation <> Mc.depth_violation then
            Array.iteri
              (fun i _ ->
                checkb
                  (Printf.sprintf "%s minimal at %d" target i)
                  true
                  (violation_of spec (drop_one ce.Mc.schedule i) = None))
              ce.Mc.schedule)
    ablation_targets

(* ------------------------------------------------------------------ *)
(* Graph checking: the Mc functor on the graph engine (Gspec.Gmc) *)

let graph_correct_targets = [ "walk:theta3"; "walk:k4"; "walk:bowtie" ]

let test_graph_targets_verify_exhaustively () =
  List.iter
    (fun target ->
      let spec = Gspec.of_target target in
      checkb (target ^ " does not expect a violation") false
        spec.Gspec.Gmc.expect_violation;
      let r = Gspec.Gmc.check ~jobs:2 spec in
      checkb (target ^ " explored exhaustively") false r.Mc.stats.Mc.truncated;
      checkb
        (target ^ " reached at least one terminal state")
        true
        (r.Mc.stats.Mc.schedules >= 1);
      checkb (target ^ " has no counterexample") true
        (r.Mc.counterexample = None);
      (* The source-set reduction must agree with plain sleep sets on
         the verdict while exploring no more of the space. *)
      let sleepy =
        Gspec.Gmc.check ~jobs:2 { spec with Gspec.Gmc.reduction = Mc.Sleep }
      in
      checkb
        (target ^ " sleep-only run is exhaustive")
        false sleepy.Mc.stats.Mc.truncated;
      checkb
        (target ^ " sleep-only run agrees")
        true
        (sleepy.Mc.counterexample = None);
      checkb
        (target ^ " sleep-only run pruned something")
        true
        (sleepy.Mc.stats.Mc.sleep_pruned > 0);
      checkb
        (target ^ " source sets do not enlarge the space")
        true
        (r.Mc.stats.Mc.states <= sleepy.Mc.stats.Mc.states))
    graph_correct_targets

let gviolation_of spec schedule =
  match Gspec.Gmc.replay spec schedule with
  | _, v -> v
  | exception Invalid_argument _ -> None

let test_bridge_ablation_minimized_counterexample () =
  let spec = Gspec.of_target "ablation:bridge" in
  checkb "expects a violation" true spec.Gspec.Gmc.expect_violation;
  let r = Gspec.Gmc.check spec in
  match r.Mc.counterexample with
  | None -> Alcotest.fail "ablation:bridge: no counterexample found"
  | Some ce ->
      (* Replayable on a fresh instance with the same violation. *)
      (match Gspec.Gmc.replay spec ce.Mc.schedule with
      | _, Some v -> Alcotest.(check string) "reproduces" ce.Mc.violation v
      | _, None -> Alcotest.fail "counterexample does not replay");
      checkb "confirmed via of_schedule" true (Gspec.Gmc.confirm spec ce);
      (* 1-minimal: quiescence needs every pulse delivered, so the
         minimal schedule is one complete run of the covered walk. *)
      Array.iteri
        (fun i _ ->
          checkb
            (Printf.sprintf "minimal at %d" i)
            true
            (gviolation_of spec (drop_one ce.Mc.schedule i) = None))
        ce.Mc.schedule

let test_graph_check_jobs_independence () =
  List.iter
    (fun target ->
      let spec = Gspec.of_target target in
      let r1 = Gspec.Gmc.check ~jobs:1 spec in
      let r4 = Gspec.Gmc.check ~jobs:4 spec in
      checkb (target ^ " identical for -j 1 and -j 4") true (r1 = r4))
    [ "walk:k4"; "ablation:bridge" ]

(* The functor applied to the ring engine IS the toplevel Mc API: a
   ring spec checked through an explicit [Mc.Make (Unify.Ring_network)]
   instantiation agrees with [Mc.check] result-for-result. *)
module Ring_mc = Mc.Make (Unify.Ring_network)

let test_ring_instantiation_agrees_with_toplevel () =
  let spec = Spec.election Election.Algo2 ~ids:(ids 3) ~topo_seed:2 in
  let via_functor =
    Ring_mc.check
      {
        Ring_mc.name = spec.Mc.name;
        make = spec.Mc.make;
        monitor = spec.Mc.monitor;
        terminal = spec.Mc.terminal;
        max_depth = spec.Mc.max_depth;
        dedup = spec.Mc.dedup;
        reduction = spec.Mc.reduction;
        symmetry = spec.Mc.symmetry;
        expect_violation = spec.Mc.expect_violation;
      }
  in
  checkb "same result through Make" true (via_functor = Mc.check spec)

(* ------------------------------------------------------------------ *)
(* Worker-count independence *)

let test_results_independent_of_jobs () =
  List.iter
    (fun target ->
      let (Spec.Packed spec) = Spec.of_target target ~ids:(ids 3) ~topo_seed:2 in
      let r1 = Mc.check ~jobs:1 spec in
      let r4 = Mc.check ~jobs:4 spec in
      checkb (target ^ " identical for -j 1 and -j 4") true (r1 = r4))
    [ "algo2"; "algo3-improved"; "ablation:no-lag"; "franklin" ]

(* ------------------------------------------------------------------ *)
(* Replay: force_step-driven and Scheduler.of_schedule-driven runs
   land in the same state *)

let test_of_schedule_matches_force_step_replay () =
  let spec = Spec.ablation Spec.No_lag ~ids:(ids 3) ~topo_seed:2 in
  let r = Mc.check spec in
  let ce = Option.get r.Mc.counterexample in
  let via_replay, _ = Mc.replay spec ce.Mc.schedule in
  let via_sched = spec.Mc.make () in
  let sched = Scheduler.of_schedule ce.Mc.schedule in
  Array.iter (fun _ -> ignore (Network.step via_sched sched)) ce.Mc.schedule;
  Alcotest.(check string)
    "same state either way"
    (Explore.fingerprint via_replay)
    (Explore.fingerprint via_sched)

let test_of_schedule_rejects_empty_link_and_delegates () =
  let make () =
    Network.create (Topology.oriented 3) (fun v -> Algo2.program ~id:(v + 1))
  in
  (* A prefix of real choices, then fifo finishes the run. *)
  let net = make () in
  let l0 = Network.enabled_link net ~after:(-1) in
  let result =
    Network.run net (Scheduler.of_schedule ~after:Scheduler.fifo [| l0 |])
  in
  checkb "run completed under the hybrid scheduler" true result.quiescent;
  (* Scheduling a drained link is a contract violation, not a skip. *)
  let net = make () in
  let empty_link = Network.enabled_link net ~after:(-1) + 1 in
  let bad = Scheduler.of_schedule [| empty_link |] in
  checkb "empty link rejected" true
    (match Network.run net bad with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Budgets and guards *)

let toy ~max_depth ~monitor =
  {
    Mc.name = "toy";
    make =
      (fun () ->
        Network.create (Topology.oriented 2) (fun v -> Algo1.program ~id:(v + 1)));
    monitor;
    terminal = (fun _ -> None);
    max_depth;
    dedup = false;
    reduction = Mc.Sleep;
    symmetry = None;
    expect_violation = true;
  }

let test_depth_budget_is_a_violation () =
  (* Algorithm 1 on ids {1,2} needs 4 deliveries; a budget of 2 makes
     every schedule a depth violation, reported (not raised) and left
     unshrunk (every proper subsequence is below the budget). *)
  let r = Mc.check (toy ~max_depth:2 ~monitor:(fun () _ -> None)) in
  match r.Mc.counterexample with
  | Some ce ->
      Alcotest.(check string) "depth violation" Mc.depth_violation ce.Mc.violation;
      checki "schedule at the budget" 2 (Array.length ce.Mc.schedule)
  | None -> Alcotest.fail "expected a depth violation"

let test_initial_state_violation_is_empty_schedule () =
  let r =
    Mc.check (toy ~max_depth:8 ~monitor:(fun () _ -> Some "broken at birth"))
  in
  match r.Mc.counterexample with
  | Some ce ->
      Alcotest.(check string) "violation" "broken at birth" ce.Mc.violation;
      checki "empty schedule" 0 (Array.length ce.Mc.schedule)
  | None -> Alcotest.fail "expected an initial-state violation"

let test_max_states_reports_truncation () =
  let spec = Spec.election (Election.Algo3 Algo3.Doubled) ~ids:(ids 3) ~topo_seed:2 in
  let r = Mc.check ~max_states:10 spec in
  checkb "truncated" true r.Mc.stats.Mc.truncated

let test_link_mask_guard () =
  (* 31 nodes = 62 directed links: beyond the int sleep-set masks. *)
  let spec = Spec.election Election.Algo1 ~ids:(ids 31) ~topo_seed:2 in
  checkb "guarded" true
    (match Mc.check spec with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_max_states_budget_is_global () =
  (* The budget caps states expanded across ALL frontier units, not
     per unit: a truncated run never reports more states than the
     budget, and truncation is bit-identical across worker counts. *)
  let spec =
    Spec.election (Election.Algo3 Algo3.Doubled) ~ids:(ids 4) ~topo_seed:2
  in
  let budget = 500 in
  let r1 = Mc.check ~jobs:1 ~max_states:budget spec in
  checkb "truncated" true r1.Mc.stats.Mc.truncated;
  checkb "global cap respected" true (r1.Mc.stats.Mc.states <= budget);
  checkb "made real progress" true (r1.Mc.stats.Mc.states > budget / 2);
  let r4 = Mc.check ~jobs:4 ~max_states:budget spec in
  checkb "truncation identical across jobs" true (r1 = r4)

let test_undo_depth_hybrid_equivalence () =
  (* The hybrid backtracker — incremental undo above [undo_depth],
     replay below — must be invisible in the results, for any depth
     (0 = pure replay, the pre-scale-up engine). *)
  List.iter
    (fun target ->
      (* n=4: big enough that exploration reaches the parallel units
         (n=3 fits inside the seed BFS, which always replays). *)
      let (Spec.Packed spec) = Spec.of_target target ~ids:(ids 4) ~topo_seed:2 in
      let full = Mc.check spec in
      (* Ablations can die inside the seed BFS (which always replays),
         so only the exhaustive target must show undo activity. *)
      if String.equal target "algo2" then
        checkb (target ^ " uses undo by default") true
          (full.Mc.stats.Mc.undone_deliveries > 0);
      List.iter
        (fun undo_depth ->
          let r = Mc.check ~undo_depth spec in
          checkb
            (Printf.sprintf "%s identical at undo_depth %d" target undo_depth)
            true
            ({ r with Mc.stats = full.Mc.stats } = full
            && { r.Mc.stats with Mc.undone_deliveries = 0; replayed_deliveries = 0 }
               = {
                   full.Mc.stats with
                   Mc.undone_deliveries = 0;
                   replayed_deliveries = 0;
                 }))
        [ 0; 1; 3 ])
    [ "algo2"; "ablation:no-absorption" ]

(* ------------------------------------------------------------------ *)
(* Scale: n=5 and n=6 exhaustive verification *)

let test_verification_scale_n5_n6 () =
  let verify target n =
    let (Spec.Packed spec) = Spec.of_target target ~ids:(ids n) ~topo_seed:2 in
    let r = Mc.check spec in
    checkb (Printf.sprintf "%s n=%d exhaustive" target n) false
      r.Mc.stats.Mc.truncated;
    checkb (Printf.sprintf "%s n=%d verified" target n) true
      (r.Mc.counterexample = None);
    checkb
      (Printf.sprintf "%s n=%d reached a terminal state" target n)
      true
      (r.Mc.stats.Mc.schedules >= 1)
  in
  List.iter (fun t -> verify t 5) [ "algo1"; "algo2"; "chang-roberts" ];
  List.iter (fun t -> verify t 6) [ "algo1"; "algo2" ]

(* ------------------------------------------------------------------ *)
(* Symmetry reduction: the anonymous relay ring *)

let test_relay_symmetry_reduction () =
  let spec = Spec.anon_relay ~n:5 in
  let r = Mc.check spec in
  checkb "exhaustive" false r.Mc.stats.Mc.truncated;
  checkb "verified" true (r.Mc.counterexample = None);
  checkb "reached a terminal state" true (r.Mc.stats.Mc.schedules >= 1);
  (* Dropping the rotation canonicalization must not change the
     verdict, only enlarge the explored quotient. *)
  let plain = Mc.check { spec with Mc.symmetry = None } in
  checkb "plain run exhaustive" false plain.Mc.stats.Mc.truncated;
  checkb "plain run agrees" true (plain.Mc.counterexample = None);
  checkb "symmetry shrinks the space" true
    (r.Mc.stats.Mc.states < plain.Mc.stats.Mc.states)

(* ------------------------------------------------------------------ *)
(* Properties: undo = replay, and inductive invariants on samples *)

module Undo_prop (N : Engine_intf.NETWORK) = struct
  (* Drive [plen] random deliveries, then [slen] more through the
     incremental-undo path, roll them back, and require the state to
     match both the pre-suffix fingerprint and a fresh replay of the
     prefix — the exact contract the checker's backtracker leans on. *)
  let holds ~make (plen, slen, seed) =
    let rng = Rng.create ~seed in
    let net = make () in
    let prefix = ref [] in
    let pick net =
      let count = N.enabled_count net in
      if count = 0 then None
      else begin
        let k = Rng.int rng count in
        let l = ref (N.enabled_link net ~after:(-1)) in
        for _ = 1 to k do
          l := N.enabled_link net ~after:!l
        done;
        Some !l
      end
    in
    (try
       for _ = 1 to plen do
         match pick net with
         | None -> raise Exit
         | Some link ->
             N.force_step net ~link;
             prefix := link :: !prefix
       done
     with Exit -> ());
    let fp0 = N.fingerprint net in
    let undos = ref [] in
    (try
       for _ = 1 to slen do
         match pick net with
         | None -> raise Exit
         | Some link -> undos := N.force_step_undo net ~link :: !undos
       done
     with Exit -> ());
    List.iter (fun u -> N.undo_step net u) !undos;
    let replayed = make () in
    List.iter (fun link -> N.force_step replayed ~link) (List.rev !prefix);
    String.equal (N.fingerprint net) fp0
    && String.equal (N.fingerprint replayed) fp0
end

module Ring_undo = Undo_prop (Unify.Ring_network)
module Graph_undo = Undo_prop (Colring_graph.Unified.Graph_network)

let arb_undo =
  QCheck.make
    ~print:(fun (p, s, seed) -> Printf.sprintf "prefix=%d suffix=%d seed=%d" p s seed)
    QCheck.Gen.(triple (int_range 0 30) (int_range 0 15) (int_range 0 10_000))

let prop_undo_ring =
  QCheck.Test.make ~name:"ring undo-after-suffix = replay-from-prefix" ~count:200
    arb_undo (fun inst ->
      Ring_undo.holds
        ~make:(fun () ->
          Network.create (Topology.oriented 4) (fun v -> Algo2.program ~id:(v + 1)))
        inst)

let prop_undo_graph =
  QCheck.Test.make ~name:"graph undo-after-suffix = replay-from-prefix"
    ~count:100 arb_undo
    (fun inst ->
      let spec = Gspec.of_target "walk:theta3" in
      Graph_undo.holds ~make:spec.Gspec.Gmc.make inst)

let arb_ring_instance =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 3 5) (int_range 0 10_000))

let inductive_ids (n, seed) =
  Ids.distinct (Rng.create ~seed) ~n ~id_max:(n + 5)

let prop_inductive_algo1 =
  QCheck.Test.make ~name:"algo1 lemmas hold on sampled walks" ~count:15
    arb_ring_instance (fun ((_, seed) as inst) ->
      Inductive.ok
        (Inductive.algo1 ~ids:(inductive_ids inst) ~seed ~walks:4 ~max_steps:40))

let prop_inductive_algo2 =
  QCheck.Test.make ~name:"algo2 lemmas hold on sampled walks" ~count:15
    arb_ring_instance (fun ((_, seed) as inst) ->
      Inductive.ok
        (Inductive.algo2 ~ids:(inductive_ids inst) ~seed ~walks:4 ~max_steps:40))

let prop_inductive_chang_roberts =
  QCheck.Test.make ~name:"chang-roberts btw invariant is one-step closed"
    ~count:15 arb_ring_instance
    (fun ((_, seed) as inst) ->
      let v =
        Inductive.chang_roberts ~ids:(inductive_ids inst) ~seed ~walks:4
          ~max_steps:40
      in
      Inductive.ok v && v.Inductive.transitions > 0)

let test_randomized_targets_rejected () =
  List.iter
    (fun target ->
      checkb (target ^ " rejected") true
        (match Spec.of_target target ~ids:(ids 3) ~topo_seed:2 with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ "itai-rodeh"; "algo3-resample"; "no-such-algorithm" ]

let () =
  Alcotest.run "colring-mc"
    [
      ( "verify",
        [
          Alcotest.test_case "all correct targets at n=3" `Quick
            test_correct_targets_verify_at_n3;
          Alcotest.test_case "algo2 exhaustive at n=4" `Quick
            test_algo2_exhaustive_at_n4;
          Alcotest.test_case "n=5 and n=6 exhaustive" `Quick
            test_verification_scale_n5_n6;
          Alcotest.test_case "anonymous relay under rotation symmetry" `Quick
            test_relay_symmetry_reduction;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "minimized counterexamples" `Quick
            test_ablations_yield_minimized_counterexamples;
        ] );
      ( "graphs",
        [
          Alcotest.test_case "walk election verified exhaustively" `Quick
            test_graph_targets_verify_exhaustively;
          Alcotest.test_case "bridge ablation counterexample" `Quick
            test_bridge_ablation_minimized_counterexample;
          Alcotest.test_case "graph jobs independence" `Quick
            test_graph_check_jobs_independence;
          Alcotest.test_case "ring functor instantiation" `Quick
            test_ring_instantiation_agrees_with_toplevel;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs independence" `Quick
            test_results_independent_of_jobs;
          Alcotest.test_case "undo-depth hybrid equivalence" `Quick
            test_undo_depth_hybrid_equivalence;
        ] );
      ( "replay",
        [
          Alcotest.test_case "of_schedule matches force_step" `Quick
            test_of_schedule_matches_force_step_replay;
          Alcotest.test_case "of_schedule contract" `Quick
            test_of_schedule_rejects_empty_link_and_delegates;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "depth budget" `Quick test_depth_budget_is_a_violation;
          Alcotest.test_case "initial violation" `Quick
            test_initial_state_violation_is_empty_schedule;
          Alcotest.test_case "max states" `Quick test_max_states_reports_truncation;
          Alcotest.test_case "max states is global" `Quick
            test_max_states_budget_is_global;
          Alcotest.test_case "link mask guard" `Quick test_link_mask_guard;
          Alcotest.test_case "randomized rejected" `Quick
            test_randomized_targets_rejected;
        ] );
      ( "properties",
        List.map
          (fun t -> QCheck_alcotest.to_alcotest t)
          [
            prop_undo_ring;
            prop_undo_graph;
            prop_inductive_algo1;
            prop_inductive_algo2;
            prop_inductive_chang_roberts;
          ] );
    ]
