(* Tests for the Corollary 5 composition layer: codec round-trips, the
   chain combinator, tape establishment, collectives, synchronous
   simulation, and full quiescent termination of composed runs. *)

open Colring_engine
open Colring_compose
module Rng = Colring_stats.Rng
module Ids = Colring_core.Ids

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_gamma_known_values () =
  Alcotest.(check (list bool)) "gamma 1" [ true ] (Codec.gamma 1);
  Alcotest.(check (list bool))
    "gamma 2" [ false; true; false ] (Codec.gamma 2);
  Alcotest.(check (list bool))
    "gamma 5"
    [ false; false; true; false; true ]
    (Codec.gamma 5)

let test_gamma_starts_with_zero_from_2 () =
  for n = 2 to 200 do
    match Codec.gamma n with
    | false :: _ -> ()
    | _ -> Alcotest.failf "gamma %d does not start with 0" n
  done

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"gamma round-trip" ~count:500
    QCheck.(int_range 0 1_000_000)
    (fun v ->
      let v', rest = Codec.decode_list (Codec.encode_value v) in
      v' = v + 1 && rest = [])

let prop_codec_concat =
  QCheck.Test.make ~name:"gamma self-delimiting over concatenation" ~count:200
    QCheck.(small_list (int_range 0 10_000))
    (fun vs ->
      let tape = List.concat_map Codec.encode_value vs in
      let rec decode_all acc rest =
        match rest with
        | [] -> List.rev acc
        | _ ->
            let v, rest = Codec.decode_list rest in
            decode_all ((v - 1) :: acc) rest
      in
      decode_all [] tape = vs)

let test_gamma_length () =
  List.iter
    (fun n ->
      checki
        (Printf.sprintf "length gamma %d" n)
        (List.length (Codec.gamma n))
        (Codec.gamma_length n))
    [ 1; 2; 3; 7; 8; 100; 1023; 1024 ]

(* ------------------------------------------------------------------ *)
(* Chain *)

let test_chain_switches_on_terminate () =
  (* First phase: terminate immediately at start.  Second phase: send a
     pulse and terminate for real. *)
  let first =
    {
      Network.snap = None;
      Network.start =
        (fun api ->
          api.set_output (Output.with_value 1 Output.empty);
          api.terminate ());
      wake = (fun _ -> ());
      inspect = (fun () -> [ ("a", 1) ]);
    }
  in
  let second (out : Output.t) =
    checki "first output visible" (Some 1 |> Option.get)
      (Option.get out.value);
    {
      Network.snap = None;
      Network.start =
        (fun api ->
          api.send Port.P1 ();
          api.set_output (Output.with_value 2 Output.empty));
      wake =
        (fun api ->
          match api.recv Port.P0 with
          | Some () -> api.terminate ()
          | None -> ());
      inspect = (fun () -> [ ("b", 2) ]);
    }
  in
  let net =
    Network.create (Topology.oriented 1) (fun _ -> Chain.chain first second)
  in
  let result = Network.run net Scheduler.fifo in
  checkb "terminated for real" true result.all_terminated;
  checki "second ran" 2 (Option.get (Network.output net 0).Output.value);
  checkb "inspect merged" true
    (List.mem_assoc "a.a" (Network.inspect net 0)
    && List.mem_assoc "b.b" (Network.inspect net 0))

(* ------------------------------------------------------------------ *)
(* Tape establishment and collectives, via full composed runs *)

let sched_pool seed =
  [
    Scheduler.fifo;
    Scheduler.global_fifo;
    Scheduler.lifo;
    Scheduler.random (Rng.create ~seed);
    Scheduler.bias_direction ~cw:false;
  ]

let test_ring_discovery () =
  let ids = [| 4; 9; 2; 7; 5 |] in
  (* Leader (id 9) sits at position 1; distances are CW from it. *)
  List.iter
    (fun sched ->
      let r = Corollary5.run ~app:Corollary5.app_ring_discovery ~ids sched in
      checkb (sched.Scheduler.name ^ " quiescent") true r.quiescent;
      checkb (sched.Scheduler.name ^ " terminated") true r.all_terminated;
      checki (sched.Scheduler.name ^ " no leaks") 0 r.post_term_deliveries;
      Array.iteri
        (fun v (o : Output.t) ->
          checki (Printf.sprintf "%s n at node %d" sched.Scheduler.name v) 5
            (Option.get o.value);
          let expected_dist = (v - 1 + 5) mod 5 in
          Alcotest.(check (list int))
            (Printf.sprintf "%s dist at %d" sched.Scheduler.name v)
            [ expected_dist ] o.values)
        r.outputs)
    (sched_pool 1)

let test_ring_discovery_sizes () =
  (* Degenerate and small sizes, all schedulers. *)
  List.iter
    (fun n ->
      let ids = Array.init n (fun v -> v + 1) in
      List.iter
        (fun sched ->
          let r =
            Corollary5.run ~app:Corollary5.app_ring_discovery ~ids sched
          in
          checkb
            (Printf.sprintf "n=%d %s ok" n sched.Scheduler.name)
            true
            (r.quiescent && r.all_terminated && r.post_term_deliveries = 0);
          Array.iter
            (fun (o : Output.t) -> checki "n" n (Option.get o.value))
            r.outputs)
        (sched_pool n))
    [ 1; 2; 3; 4; 8 ]

let test_gather_ids_correct_vector () =
  let ids = [| 4; 9; 2; 7; 5 |] in
  (* app_gather_ids needs the node's own id; Corollary5.run applies the
     same app everywhere, so use the lower-level program builder. *)
  let net =
    Network.create (Topology.oriented 5) (fun v ->
        Corollary5.program ~id:ids.(v)
          ~app:(Corollary5.app_gather_ids ~my_id:ids.(v)))
  in
  let result = Network.run net Scheduler.fifo in
  checkb "quiescent" true result.quiescent;
  checkb "terminated" true result.all_terminated;
  (* Leader is node 1 (id 9); CW order from it: 9,2,7,5,4. *)
  Array.iteri
    (fun v (o : Output.t) ->
      Alcotest.(check (list int))
        (Printf.sprintf "vector at %d" v)
        [ 9; 2; 7; 5; 4 ] o.values;
      checki "max" 9 (Option.get o.value);
      checkb "role" true
        (Output.equal_role o.role
           (if ids.(v) = 9 then Output.Leader else Output.Non_leader)))
    (Network.outputs net)

let test_broadcast_payload () =
  let ids = [| 3; 8; 1 |] in
  let payload = [ 42; 0; 7; 1000; 5 ] in
  List.iter
    (fun sched ->
      let r = Corollary5.run ~app:(Corollary5.app_broadcast ~payload) ~ids sched in
      checkb (sched.Scheduler.name ^ " quiescent") true
        (r.quiescent && r.all_terminated);
      Array.iter
        (fun (o : Output.t) ->
          Alcotest.(check (list int)) "payload" payload o.values)
        r.outputs)
    (sched_pool 2)

let test_compose_pulse_accounting () =
  let ids = [| 3; 8; 1 |] in
  let r =
    Corollary5.run ~app:Corollary5.app_ring_discovery ~ids Scheduler.fifo
  in
  checki "election part is the theorem 1 count" (3 * ((2 * 8) + 1))
    r.election_pulses;
  checkb "compose part positive" true (r.compose_pulses > 0);
  checki "total splits" r.total_pulses
    (r.election_pulses + r.compose_pulses)

(* ------------------------------------------------------------------ *)
(* Synchronous machines over the tape *)

let run_per_node_app ~ids ~mk_app sched =
  let n = Array.length ids in
  let net =
    Network.create (Topology.oriented n) (fun v ->
        Corollary5.program ~id:ids.(v) ~app:(mk_app v))
  in
  let result = Network.run ~max_deliveries:20_000_000 net sched in
  (result, Network.outputs net)

let test_sync_max () =
  let ids = [| 4; 9; 2; 7; 5 |] in
  let values = [| 10; 3; 99; 5; 42 |] in
  let result, outputs =
    run_per_node_app ~ids
      ~mk_app:(fun v -> Corollary5.app_sync_max ~my_value:values.(v))
      Scheduler.fifo
  in
  checkb "quiescent+terminated" true (result.quiescent && result.all_terminated);
  Array.iteri
    (fun v (o : Output.t) ->
      checki (Printf.sprintf "max at %d" v) 99 (Option.get o.value))
    outputs

let test_sync_sum () =
  let ids = [| 4; 9; 2 |] in
  let values = [| 10; 3; 29 |] in
  List.iter
    (fun sched ->
      let result, outputs =
        run_per_node_app ~ids
          ~mk_app:(fun v -> Corollary5.app_sync_sum ~my_value:values.(v))
          sched
      in
      checkb (sched.Scheduler.name ^ " done") true
        (result.quiescent && result.all_terminated);
      Array.iter
        (fun (o : Output.t) -> checki "sum" 42 (Option.get o.value))
        outputs)
    (sched_pool 3)

let test_sync_chang_roberts_over_defective_ring () =
  (* The paper's Corollary 5 pitch: run a classic content-carrying
     election on the fully-defective ring. *)
  let ids = [| 4; 9; 2; 7 |] in
  let result, outputs =
    run_per_node_app ~ids
      ~mk_app:(fun v -> Corollary5.app_sync_chang_roberts ~my_id:ids.(v))
      Scheduler.fifo
  in
  checkb "quiescent+terminated" true (result.quiescent && result.all_terminated);
  Array.iteri
    (fun v (o : Output.t) ->
      checki "winner" 9 (Option.get o.value);
      checkb "role" true
        (Output.equal_role o.role
           (if ids.(v) = 9 then Output.Leader else Output.Non_leader)))
    outputs

let test_broadcast_text () =
  let ids = [| 3; 8; 1; 5 |] in
  let text = "defective rings still talk" in
  let r =
    Corollary5.run ~app:(Corollary5.app_broadcast_text ~text) ~ids
      (Scheduler.random (Rng.create ~seed:4))
  in
  checkb "done" true (r.quiescent && r.all_terminated);
  Array.iter
    (fun (o : Output.t) ->
      let received =
        String.concat ""
          (List.map (fun c -> String.make 1 (Char.chr c)) o.values)
      in
      Alcotest.(check string) "text" text received)
    r.outputs

let test_assign_ids () =
  let ids = [| 30; 80; 10; 50; 20 |] in
  List.iter
    (fun sched ->
      let r = Corollary5.run ~app:Corollary5.app_assign_ids ~ids sched in
      checkb (sched.Scheduler.name ^ " done") true
        (r.quiescent && r.all_terminated);
      (* New ids are 1..n, distinct, with the old leader holding 1. *)
      let news =
        Array.to_list (Array.map (fun (o : Output.t) -> Option.get o.value) r.outputs)
      in
      Alcotest.(check (list int))
        (sched.Scheduler.name ^ " fresh ids sorted")
        [ 1; 2; 3; 4; 5 ]
        (List.sort compare news);
      checki (sched.Scheduler.name ^ " leader gets 1") 1
        (Option.get r.outputs.(1).Output.value);
      Array.iter
        (fun (o : Output.t) ->
          Alcotest.(check (list int))
            "gathered vector" [ 1; 2; 3; 4; 5 ] o.values)
        r.outputs)
    (sched_pool 9)

let test_string_roundtrip_empty_and_binary () =
  let texts = [ ""; "a"; String.init 16 Char.chr ] in
  List.iter
    (fun text ->
      let ids = [| 2; 5 |] in
      let r =
        Corollary5.run ~app:(Corollary5.app_broadcast_text ~text) ~ids
          Scheduler.fifo
      in
      let o = r.outputs.(0) in
      checki (Printf.sprintf "len %d" (String.length text))
        (String.length text) (List.length o.Output.values))
    texts

let test_cost_model_exact () =
  (* The Costs formulas must match measured pulse counts exactly. *)
  List.iter
    (fun n ->
      let ids = Ids.distinct (Rng.create ~seed:n) ~n ~id_max:(3 * n) in
      let id_max = Ids.id_max ids in
      let r =
        Corollary5.run ~app:Corollary5.app_ring_discovery ~ids Scheduler.fifo
      in
      checki
        (Printf.sprintf "discovery n=%d" n)
        (Costs.ring_discovery_total ~n ~id_max)
        r.total_pulses)
    [ 1; 2; 3; 5; 9 ];
  (* Gather: need ids in distance order from the leader. *)
  let ids = [| 4; 9; 2; 7; 5 |] in
  let net =
    Network.create (Topology.oriented 5) (fun v ->
        Corollary5.program ~id:ids.(v)
          ~app:(Corollary5.app_gather_ids ~my_id:ids.(v)))
  in
  let result = Network.run net Scheduler.lifo in
  let ids_by_distance = [| 9; 2; 7; 5; 4 |] in
  checki "gather total"
    (Costs.gather_ids_total ~ids_by_distance ~id_max:9)
    result.sends

let test_universal_simulation () =
  (* The full Corollary 5 statement: simulate an arbitrary asynchronous
     algorithm — here, a *nested reliable-network run* of the classic
     Hirschberg-Sinclair election with real message contents — on the
     fully-defective ring.  Node inputs are their original ids. *)
  let ids = [| 4; 9; 2; 7; 5 |] in
  let simulate ~inputs =
    let n = Array.length inputs in
    let net =
      Network.create (Topology.oriented n) (fun v ->
          Colring_classic.Hirschberg_sinclair.program ~id:inputs.(v))
    in
    let result =
      Network.run net (Scheduler.random (Rng.create ~seed:99))
    in
    assert result.all_terminated;
    Network.outputs net
  in
  let result, outputs =
    run_per_node_app ~ids
      ~mk_app:(fun v ->
        Corollary5.app_universal ~my_input:ids.(v) ~simulate)
      Scheduler.fifo
  in
  checkb "quiescent+terminated" true (result.quiescent && result.all_terminated);
  (* HS elects the max id; the node at ring position 1 holds it.  The
     gathered inputs are in clockwise order from the leader of the
     outer election (also position 1), so distance 0 wins. *)
  Array.iteri
    (fun v (o : Output.t) ->
      checkb
        (Printf.sprintf "role at %d" v)
        true
        (Output.equal_role o.role
           (if ids.(v) = 9 then Output.Leader else Output.Non_leader)))
    outputs

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_discovery_random =
  QCheck.Test.make ~name:"ring discovery on random instances" ~count:40
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 12) (int_range 0 1000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 20) in
      let r =
        Corollary5.run ~app:Corollary5.app_ring_discovery ~ids
          (Scheduler.random (Rng.split rng))
      in
      r.quiescent && r.all_terminated
      && r.post_term_deliveries = 0
      && Array.for_all (fun (o : Output.t) -> o.value = Some n) r.outputs)

let prop_all_gather_roundtrip =
  QCheck.Test.make ~name:"all_gather round-trips arbitrary values" ~count:25
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 8) (int_range 0 1000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 10) in
      let values = Array.init n (fun _ -> Rng.int rng 100_000) in
      let net =
        Network.create (Topology.oriented n) (fun v ->
            Corollary5.program ~id:ids.(v) ~app:(fun s ->
                let gathered = Tape.all_gather s ~value:values.(v) in
                (Tape.api s).set_output
                  (Output.with_values (Array.to_list gathered) Output.empty);
                (Tape.api s).terminate ()))
      in
      let result = Network.run net (Scheduler.random (Rng.split rng)) in
      (* Gathered vector is in distance order from the leader. *)
      let leader = Ids.argmax ids in
      let expected =
        List.init n (fun d -> values.((leader + d) mod n))
      in
      result.quiescent && result.all_terminated
      && Array.for_all
           (fun (o : Output.t) -> o.values = expected)
           (Network.outputs net))

let prop_sum_random =
  QCheck.Test.make ~name:"ring sum on random instances" ~count:25
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 8) (int_range 0 1000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 10) in
      let values = Array.init n (fun _ -> Rng.int rng 50) in
      let expected = Array.fold_left ( + ) 0 values in
      let result, outputs =
        run_per_node_app ~ids
          ~mk_app:(fun v -> Corollary5.app_sync_sum ~my_value:values.(v))
          (Scheduler.random (Rng.split rng))
      in
      result.quiescent && result.all_terminated
      && Array.for_all (fun (o : Output.t) -> o.value = Some expected) outputs)

let () =
  Alcotest.run "colring-compose"
    [
      ( "codec",
        [
          Alcotest.test_case "known values" `Quick test_gamma_known_values;
          Alcotest.test_case "leading zero" `Quick
            test_gamma_starts_with_zero_from_2;
          Alcotest.test_case "lengths" `Quick test_gamma_length;
        ]
        @ List.map (fun t -> QCheck_alcotest.to_alcotest t)
            [ prop_codec_roundtrip; prop_codec_concat ] );
      ("chain", [ Alcotest.test_case "switch" `Quick test_chain_switches_on_terminate ]);
      ( "tape",
        [
          Alcotest.test_case "ring discovery" `Quick test_ring_discovery;
          Alcotest.test_case "sizes" `Quick test_ring_discovery_sizes;
          Alcotest.test_case "gather ids" `Quick test_gather_ids_correct_vector;
          Alcotest.test_case "broadcast" `Quick test_broadcast_payload;
          Alcotest.test_case "pulse accounting" `Quick
            test_compose_pulse_accounting;
          Alcotest.test_case "broadcast text" `Quick test_broadcast_text;
          Alcotest.test_case "assign ids" `Quick test_assign_ids;
          Alcotest.test_case "string edge cases" `Quick
            test_string_roundtrip_empty_and_binary;
        ] );
      ( "sync",
        [
          Alcotest.test_case "max" `Quick test_sync_max;
          Alcotest.test_case "sum" `Quick test_sync_sum;
          Alcotest.test_case "chang-roberts over defective ring" `Quick
            test_sync_chang_roberts_over_defective_ring;
          Alcotest.test_case "universal simulation (nested HS)" `Quick
            test_universal_simulation;
          Alcotest.test_case "cost model exact" `Quick test_cost_model_exact;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_discovery_random; prop_all_gather_roundtrip; prop_sum_random ] );
    ]
