(* Tests for the telemetry sink layer: the frozen Metrics schema, the
   allocation guarantee of the null sink, memory-sink tracing (the one
   event-buffer path since [?record_trace] was removed), jsonl
   journals (shape-checked and replayed back into counters), sweep
   journal determinism across domain counts, and the fast simulator's
   lifecycle records. *)

open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng
module Sweep = Colring_harness.Sweep
module Workload = Colring_harness.Workload
module Fastsim = Colring_fastsim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* The frozen counter schema. *)

let test_metrics_schema () =
  let m = Metrics.create ~n_nodes:2 ~n_links:4 () in
  Metrics.on_send m ~link:0 ~node:0 ~cw:true;
  Metrics.on_deliver m ~node:1 ~port_index:0;
  Alcotest.(check (list string))
    "to_assoc keys are the documented stable schema"
    [
      "consumes";
      "deliveries";
      "post_termination_deliveries";
      "sends";
      "sends_ccw";
      "sends_cw";
      "wakes";
    ]
    (List.map fst (Metrics.to_assoc m))

(* ------------------------------------------------------------------ *)
(* Null sink: the steady-state hot path must not allocate. *)

let test_null_sink_steady_state_allocates_nothing () =
  let n = 64 in
  let ids = Ids.dense (Rng.create ~seed:7) ~n in
  let net =
    Network.create (Topology.oriented n) (fun v -> Algo2.program ~id:ids.(v))
  in
  (* Warm up past start-up transients, then measure a window well
     inside the run (total is n(2*ID_max+1) = 8256 deliveries). *)
  for _ = 1 to 1_000 do
    ignore (Network.step net Scheduler.fifo)
  done;
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 2_000 do
    ignore (Network.step net Scheduler.fifo)
  done;
  let dw = Gc.minor_words () -. w0 in
  (* The engine emits ~3 events per delivery (deliver, wake, send)
     through the sink record.  With immediate-typed callbacks this
     costs zero words; if the sink layer ever boxed an argument or
     built an event value it would add several words per event —
     tens of thousands over this window.  The budget below leaves
     room only for the pre-existing sub-word-per-step residue
     (channel/mailbox buffer doubling, occasional Output publishing),
     measured at ~0.8 words/step before the sink layer existed. *)
  checkb
    (Printf.sprintf
       "sink adds no per-event allocation (%.3f words over 2000 steps)" dw)
    true (dw < 3_000.0)

(* The pop-retention fix clears each popped slot with a plain store;
   a pop-heavy steady state (every iteration pops AND pushes on both
   queue kinds) must stay allocation-free — the clearing must not
   box, Array.fill, or re-grow. *)
let test_pop_heavy_queue_churn_allocates_nothing () =
  let r = Ring.create () in
  let q = Envq.create () in
  let x = ref 0 in
  for i = 1 to 64 do
    Ring.push r x;
    Envq.push q x ~seq:i ~batch:i ~depth:i
  done;
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for i = 1 to 50_000 do
    ignore (Ring.pop r);
    Ring.push r x;
    ignore (Envq.pop q);
    Envq.push q x ~seq:i ~batch:i ~depth:i
  done;
  let dw = Gc.minor_words () -. w0 in
  checkb
    (Printf.sprintf "pop-heavy churn allocates nothing (%.1f words)" dw)
    true (dw < 64.0)

(* ------------------------------------------------------------------ *)
(* Memory sinks are the one tracing path ([?record_trace] is gone). *)

let run_algo2 ?sink () =
  let n = 6 in
  let ids = Ids.distinct (Rng.create ~seed:11) ~n ~id_max:15 in
  Election.run Election.Algo2 ~seed:3 ?sink ~topo:(Topology.oriented n) ~ids
    ~sched:(Scheduler.random (Rng.create ~seed:5))

let test_memory_sink_traces () =
  let mem = Sink.memory () in
  let report, net = run_algo2 ~sink:mem () in
  let tr = Option.get (Sink.trace mem) in
  checkb "trace is non-empty" true (Trace.length tr > 0);
  (* Every send of the run reached the buffer: the trace and the
     metrics count the same pulses. *)
  let sends =
    List.length
      (List.filter
         (function Trace.Send _ -> true | _ -> false)
         (Trace.events tr))
  in
  checki "trace sends = report sends" report.Election.sends sends;
  checkb "network exposes the sink's buffer" true
    (match Network.trace net with Some t -> t == tr | None -> false);
  (* Two identically-seeded runs buffer identical event lists. *)
  let mem2 = Sink.memory () in
  let _, _ = run_algo2 ~sink:mem2 () in
  checkb "same events across identical runs" true
    (Trace.events tr = Trace.events (Option.get (Sink.trace mem2)))

let test_tee () =
  let mem = Sink.memory () in
  checkb "tee null s is s" true (Sink.tee Sink.null mem == mem);
  checkb "tee s null is s" true (Sink.tee mem Sink.null == mem);
  let buf = Buffer.create 64 in
  let both = Sink.tee mem (Sink.jsonl_buffer buf) in
  checkb "tee of live sinks is enabled" true both.Sink.enabled;
  let _, _ = run_algo2 ~sink:both () in
  checkb "memory side saw events" true
    (Trace.length (Option.get (Sink.trace both)) > 0);
  checkb "jsonl side saw the same run" true (Buffer.length buf > 0)

(* ------------------------------------------------------------------ *)
(* Snapshot cadence: [~snapshot_every] means the same thing to every
   driver.  The same Algorithm 2 run journaled through Election.run
   and through Classic.Driver.run must produce byte-identical
   snapshot records (run_start/run_end legitimately differ). *)

let snapshot_lines buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l ->
         String.length l > 0
         && String.starts_with ~prefix:"{\"type\":\"snapshot\"" l)

let test_snapshot_cadence_matches_across_drivers () =
  let n = 6 in
  let ids = Ids.distinct (Rng.create ~seed:11) ~n ~id_max:8 in
  let topo = Topology.oriented n in
  let election_buf = Buffer.create 4096 in
  let sink = Sink.jsonl_buffer election_buf in
  ignore
    (Election.run_report ~seed:3 ~sink ~snapshot_every:25 Election.Algo2 ~topo
       ~ids
       ~sched:(Scheduler.random (Rng.create ~seed:5)));
  sink.Sink.flush ();
  let driver_buf = Buffer.create 4096 in
  let sink = Sink.jsonl_buffer driver_buf in
  ignore
    (Colring_classic.Driver.run ~seed:3 ~sink ~snapshot_every:25 ~name:"algo2"
       ~expect_max:ids
       (fun v -> Algo2.program ~id:ids.(v))
       ~topo
       ~sched:(Scheduler.random (Rng.create ~seed:5)));
  sink.Sink.flush ();
  let e = snapshot_lines election_buf and d = snapshot_lines driver_buf in
  checkb "snapshots were emitted" true (List.length e > 1);
  checki "same snapshot count" (List.length e) (List.length d);
  List.iter2 (fun a b -> checks "snapshot line" a b) e d

(* ------------------------------------------------------------------ *)
(* jsonl journals: shape and replay. *)

let journal_lines buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.map Bench_io.of_string

let line_type line =
  match Option.bind (Bench_io.member "type" line) Bench_io.get_string with
  | Some t -> t
  | None -> Alcotest.fail "journal line without a type"

let test_jsonl_journal_replays () =
  let buf = Buffer.create 4096 in
  let report, net = run_algo2 ~sink:(Sink.jsonl_buffer buf) () in
  let lines = journal_lines buf in
  List.iter
    (fun l ->
      match Bench_io.check_journal_line l with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("invalid journal line: " ^ e))
    lines;
  (* Replay the event lines into counters. *)
  let count ty = List.length (List.filter (fun l -> line_type l = ty) lines) in
  let get_int l k =
    Option.get (Option.bind (Bench_io.member k l) Bench_io.get_int)
  in
  let cw_sends =
    List.length
      (List.filter
         (fun l ->
           line_type l = "send"
           && Option.bind (Bench_io.member "cw" l) Bench_io.get_bool
              = Some true)
         lines)
  in
  let live = Metrics.to_assoc (Network.metrics net) in
  let assoc k = List.assoc k live in
  checki "replayed sends" (assoc "sends") (count "send");
  checki "replayed cw sends" (assoc "sends_cw") cw_sends;
  checki "replayed ccw sends" (assoc "sends_ccw") (count "send" - cw_sends);
  checki "replayed deliveries" (assoc "deliveries") (count "deliver");
  checki "replayed drops" (assoc "post_termination_deliveries") (count "drop");
  checki "replayed consumes" (assoc "consumes") (count "consume");
  checki "replayed wakes" (assoc "wakes") (count "wake");
  (* The final snapshot is the exact counter state. *)
  let snapshots = List.filter (fun l -> line_type l = "snapshot") lines in
  let final = List.nth snapshots (List.length snapshots - 1) in
  checki "final snapshot step" report.Election.deliveries (get_int final "step");
  let counters = Option.get (Bench_io.member "counters" final) in
  List.iter
    (fun (k, v) ->
      checki ("snapshot counter " ^ k) v
        (Option.get (Option.bind (Bench_io.member k counters) Bench_io.get_int)))
    live;
  (* run_start and run_end frame the journal and carry the verdicts. *)
  let first = List.hd lines and last = List.nth lines (List.length lines - 1) in
  checks "first line" "run_start" (line_type first);
  checks "last line" "run_end" (line_type last);
  checks "run_start algorithm" "algo2"
    (Option.get
       (Option.bind (Bench_io.member "algorithm" first) Bench_io.get_string));
  checki "run_end sends" report.Election.sends (get_int last "sends");
  checkb "run_end verdict" (Election.ok report)
    (Option.get (Option.bind (Bench_io.member "ok" last) Bench_io.get_bool))

let test_jsonl_events_off_keeps_lifecycle_only () =
  let buf = Buffer.create 256 in
  let _ = run_algo2 ~sink:(Sink.jsonl_buffer ~events:false buf) () in
  let types = List.map line_type (journal_lines buf) in
  checkb "only lifecycle records" true
    (List.for_all
       (fun t -> List.mem t [ "run_start"; "snapshot"; "run_end" ])
       types);
  checkb "still frames the run" true
    (List.mem "run_start" types && List.mem "run_end" types)

(* A raising run must not lose the journal's buffered tail:
   with_jsonl_channel flushes on the exception path too, so the file
   is a valid prefix (at least the run_start record — well under the
   channel's 64KiB buffer, so an unflushed close would lose it all). *)
let test_jsonl_flush_on_raise () =
  let path = Filename.temp_file "colring_sink" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  checkb "run raises" true
    (match
       Sink.with_jsonl_channel path (fun sink ->
           Fastsim.Driver.run ~sink ~max_deliveries:1 ~ids:[| 3; 7; 2; 5 |] ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if l <> "" then lines := l :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  checkb "journal prefix survived the raise" true (lines <> []);
  List.iter
    (fun l ->
      match Bench_io.check_journal_line (Bench_io.of_string l) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("invalid journal line after raise: " ^ e))
    lines;
  checks "prefix starts at run_start" "run_start"
    (line_type (Bench_io.of_string (List.hd lines)))

(* ------------------------------------------------------------------ *)
(* Sweep journals are byte-identical for every domain count. *)

let sweep_journal ~jobs =
  let buf = Buffer.create 4096 in
  let ms =
    Sweep.election ~jobs ~journal:(Buffer.add_string buf)
      ~algorithms:[ Election.Algo1; Election.Algo2 ]
      ~workloads:[ Workload.dense; Workload.sparse ~factor:4 ]
      ~ns:[ 3; 5 ] ~seeds:[ 1; 2 ]
      ~schedulers:[ (fun seed -> Scheduler.random (Rng.create ~seed)) ]
      ()
  in
  (ms, Buffer.contents buf)

let test_sweep_journal_deterministic_across_jobs () =
  let ms1, j1 = sweep_journal ~jobs:1 in
  let ms4, j4 = sweep_journal ~jobs:4 in
  checkb "measurements identical" true (ms1 = ms4);
  checks "journals byte-identical" j1 j4;
  checkb "journal non-empty" true (String.length j1 > 0);
  String.split_on_char '\n' j1
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun l ->
         match Bench_io.check_journal_line (Bench_io.of_string l) with
         | Ok _ -> ()
         | Error e -> Alcotest.fail ("invalid sweep journal line: " ^ e))

(* ------------------------------------------------------------------ *)
(* Fast simulator: explicit seed, budget contract, lifecycle records. *)

let test_fastsim_seed_permutes_only_the_order () =
  let ids = [| 3; 7; 2; 5 |] in
  let base = Fastsim.Driver.run ~ids () in
  List.iter
    (fun seed ->
      let r = Fastsim.Driver.run ~seed ~ids () in
      checki "total is schedule-independent" base.Fastsim.Driver.deliveries
        r.Fastsim.Driver.deliveries;
      checkb "receives uniform" true
        (r.Fastsim.Driver.receives = base.Fastsim.Driver.receives);
      checki "last absorber holds the max"
        ids.(List.nth r.Fastsim.Driver.absorb_order
               (List.length r.Fastsim.Driver.absorb_order - 1))
        (Ids.id_max ids))
    [ 1; 2; 3; 17 ]

let test_fastsim_budget_is_a_contract () =
  let ids = [| 3; 7; 2; 5 |] in
  let total = (Fastsim.Driver.run ~ids ()).Fastsim.Driver.deliveries in
  checkb "raises below the exact total" true
    (match Fastsim.Driver.run ~max_deliveries:(total - 1) ~ids () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checki "exact budget is fine" total
    (Fastsim.Driver.run ~max_deliveries:total ~ids ()).Fastsim.Driver
      .deliveries

let test_fastsim_sink_lifecycle_only () =
  let buf = Buffer.create 256 in
  let _ = Fastsim.Driver.run ~sink:(Sink.jsonl_buffer buf) ~ids:[| 2; 4 |] () in
  match List.map line_type (journal_lines buf) with
  | [ "run_start"; "run_end" ] -> ()
  | types ->
      Alcotest.fail
        ("expected run_start;run_end, got " ^ String.concat ";" types)

let () =
  Alcotest.run "colring-sink"
    [
      ( "schema",
        [ Alcotest.test_case "metrics to_assoc keys" `Quick test_metrics_schema ] );
      ( "null",
        [
          Alcotest.test_case "steady state allocates nothing" `Quick
            test_null_sink_steady_state_allocates_nothing;
          Alcotest.test_case "pop-heavy churn allocates nothing" `Quick
            test_pop_heavy_queue_churn_allocates_nothing;
        ] );
      ( "memory",
        [
          Alcotest.test_case "memory sink traces" `Quick
            test_memory_sink_traces;
          Alcotest.test_case "tee" `Quick test_tee;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "journal replays" `Quick test_jsonl_journal_replays;
          Alcotest.test_case "events:false keeps lifecycle" `Quick
            test_jsonl_events_off_keeps_lifecycle_only;
          Alcotest.test_case "snapshot cadence across drivers" `Quick
            test_snapshot_cadence_matches_across_drivers;
          Alcotest.test_case "flush on raise" `Quick test_jsonl_flush_on_raise;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "journal identical across jobs" `Quick
            test_sweep_journal_deterministic_across_jobs;
        ] );
      ( "fastsim",
        [
          Alcotest.test_case "seed permutes only order" `Quick
            test_fastsim_seed_permutes_only_the_order;
          Alcotest.test_case "budget contract" `Quick
            test_fastsim_budget_is_a_contract;
          Alcotest.test_case "lifecycle-only sink" `Quick
            test_fastsim_sink_lifecycle_only;
        ] );
    ]
