(* Transport backend tests: the fault model's determinism, schedule
   recording fidelity on the simulator, and the cross-backend
   equivalence matrix — every backend's recorded schedule must replay
   on the simulator byte-identically (journals included), fault
   injection and all.  Plus the error paths: raising node programs
   must leave the domains pool reusable, and budget exhaustion must
   not wedge any backend. *)

open Colring_engine
module Election = Colring_core.Election
module Ids = Colring_core.Ids
module Rng = Colring_stats.Rng
module Backend = Colring_transport.Backend

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let algos =
  [
    ("algo1", Election.Algo1);
    ("algo2", Election.Algo2);
    ("algo3", Election.Algo3 Colring_core.Algo3.Improved);
  ]

let topo_for algo n =
  match algo with
  | Election.Algo1 | Election.Algo2 -> Topology.oriented n
  | _ -> Topology.random_non_oriented (Rng.create ~seed:(77 + n)) n

(* ------------------------------------------------------------------ *)
(* Fault model *)

let test_delay_us_bounds () =
  let f =
    Transport.faults ~seed:5 ~latency:100 ~jitter:40
      ~per_link:[ (3, { Transport.latency = 7; jitter = 0 }) ]
      ()
  in
  for link = 0 to 5 do
    for k = 0 to 50 do
      let d = Transport.delay_us f ~link ~k in
      if link = 3 then checki "override" 7 d
      else begin
        checkb "lower" true (d >= 100);
        checkb "upper" true (d <= 140)
      end
    done
  done;
  (* Pure hash: same draw for the same coordinates, different seeds
     give a different pattern somewhere. *)
  checki "pure" (Transport.delay_us f ~link:1 ~k:9)
    (Transport.delay_us f ~link:1 ~k:9);
  let g = Transport.faults ~seed:6 ~latency:100 ~jitter:40 () in
  let differs = ref false in
  for k = 0 to 63 do
    if Transport.delay_us f ~link:1 ~k <> Transport.delay_us g ~link:1 ~k then
      differs := true
  done;
  checkb "seed matters" true !differs;
  checkb "invalid rejected" true
    (match Transport.faults ~latency:(-1) ~jitter:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_jittered_deterministic () =
  let faults = Transport.faults ~seed:3 ~latency:50 ~jitter:200 () in
  let run () =
    let t = Transport.sim () in
    t.Transport.run ~seed:11 ~faults (Topology.oriented 5) (fun v ->
        Election.program_of Election.Algo2 ~id:(v + 1))
  in
  let a = run () and b = run () in
  checkb "same schedule twice" true (Transport.equivalent a b);
  checkb "jitter actually reorders" true
    (let plain =
       (Transport.sim ()).Transport.run ~seed:11 (Topology.oriented 5)
         (fun v -> Election.program_of Election.Algo2 ~id:(v + 1))
     in
     not (Array.for_all2 Int.equal plain.Transport.schedule a.Transport.schedule))

(* ------------------------------------------------------------------ *)
(* Replay fidelity on the simulator *)

let journal_of_replay (trace : Transport.trace) algorithm ~topo ~ids ~seed =
  let buf = Buffer.create 4096 in
  let sink = Sink.jsonl_buffer buf in
  let sched =
    Scheduler.of_schedule ~name:trace.Transport.scheduler
      trace.Transport.schedule
  in
  let _report =
    Election.run_report ~seed ~sink algorithm ~topo ~ids ~sched
  in
  Buffer.contents buf

let test_sim_live_journal_equals_replay_journal () =
  (* The sim backend's live run, journaled directly, must byte-match
     the journal of its recorded schedule replayed via of_schedule:
     recording is faithful and ?name keeps run_start identical. *)
  let n = 6 and seed = 4 in
  let topo = Topology.oriented n in
  let ids = Ids.dense (Rng.create ~seed:9) ~n in
  let live_buf = Buffer.create 4096 in
  let sched, recorded = Transport.recording Scheduler.fifo in
  let _ =
    Election.run_report ~seed ~sink:(Sink.jsonl_buffer live_buf) Election.Algo2
      ~topo ~ids ~sched
  in
  let trace =
    {
      Transport.backend = "sim";
      scheduler = "fifo-cw-priority";
      n;
      schedule = recorded ();
      outputs = [||];
      sends = 0;
      deliveries = 0;
      drops = 0;
      quiescent = true;
      all_terminated = true;
      exhausted = false;
      termination_order = [];
    }
  in
  let replay_journal = journal_of_replay trace Election.Algo2 ~topo ~ids ~seed in
  checks "live journal = replay journal" (Buffer.contents live_buf)
    replay_journal

(* ------------------------------------------------------------------ *)
(* The cross-backend matrix *)

let matrix_cell ?faults (aname, algo) n backend =
  let seed = 13 + n in
  let topo = topo_for algo n in
  let ids = Ids.dense (Rng.create ~seed:(100 + n)) ~n in
  let label what =
    Printf.sprintf "%s n=%d %s %s" aname n (Backend.name backend) what
  in
  let buf = Buffer.create 4096 in
  let r =
    Backend.elect ~seed ?faults ~sink:(Sink.jsonl_buffer buf) backend algo
      ~topo ~ids
  in
  checkb (label "verified") true r.Backend.verified;
  checkb (label "ok") true (Election.ok r.Backend.report);
  checkb (label "quiescent trace") true r.Backend.live.Transport.quiescent;
  (* Schedule-replay journal byte-identity: replaying the recorded
     schedule again produces the same journal bytes Backend.elect
     emitted. *)
  let again =
    journal_of_replay r.Backend.live algo ~topo ~ids ~seed
  in
  checks (label "replay journal stable") (Buffer.contents buf) again;
  r

let matrix_ns = [ 3; 4; 8 ]

(* Unix.fork is forbidden for the rest of the process once any domain
   has ever been spawned (OCaml 5), so every socket cell must run
   before the first domains cell.  Alcotest runs test cases
   sequentially in registration order, which makes the group order at
   the bottom of this file load-bearing: the "socket" group runs all
   fork-based cells and parks their results here; the "matrix" group
   then runs the domain-spawning cells and compares against them. *)
let socket_results : (string, Backend.elect_result) Hashtbl.t =
  Hashtbl.create 16

let cell_key aname n = Printf.sprintf "%s:%d" aname n

let test_socket_matrix () =
  List.iter
    (fun (aname, algo) ->
      List.iter
        (fun n ->
          let r = matrix_cell (aname, algo) n (Backend.Socket { tcp = false }) in
          Hashtbl.replace socket_results (cell_key aname n) r)
        matrix_ns)
    algos

let jitter_faults = Transport.faults ~seed:21 ~latency:120 ~jitter:400 ()

let test_socket_matrix_jitter () =
  (* Jitter-injected socket cells (the issue's acceptance bar asks for
     schedule-replay byte-identity on a jittered socket run
     specifically).  Latencies are microseconds on the real backends —
     keep them small so the matrix stays fast. *)
  List.iter
    (fun (aname, algo) ->
      ignore
        (matrix_cell ~faults:jitter_faults (aname, algo) 4
           (Backend.Socket { tcp = false })))
    algos

let test_cross_backend_matrix () =
  List.iter
    (fun (aname, algo) ->
      List.iter
        (fun n ->
          let base = matrix_cell (aname, algo) n Backend.Sim in
          let domains = matrix_cell (aname, algo) n Backend.Domains in
          let socket =
            match Hashtbl.find_opt socket_results (cell_key aname n) with
            | Some r -> r
            | None ->
                Alcotest.fail
                  (Printf.sprintf
                     "%s n=%d: socket cell missing — the socket group must run \
                      first"
                     aname n)
          in
          (* Same inputs, same algorithm: every backend agrees on the
             outputs and the schedule-independent totals. *)
          List.iter
            (fun r ->
              checkb
                (Printf.sprintf "%s n=%d outputs agree" aname n)
                true
                (Array.for_all2 Output.equal base.Backend.live.Transport.outputs
                   r.Backend.live.Transport.outputs);
              checki
                (Printf.sprintf "%s n=%d sends agree" aname n)
                base.Backend.live.Transport.sends
                r.Backend.live.Transport.sends)
            [ domains; socket ])
        matrix_ns)
    algos

let test_cross_backend_matrix_jitter () =
  (* The same honesty check under live fault injection on the
     remaining backends (socket ran in the socket group). *)
  List.iter
    (fun (aname, algo) ->
      List.iter
        (fun backend ->
          ignore (matrix_cell ~faults:jitter_faults (aname, algo) 4 backend))
        [ Backend.Sim; Backend.Domains ])
    algos

let test_socket_tcp_smoke () =
  let n = 4 in
  let topo = Topology.oriented n in
  let ids = Ids.dense (Rng.create ~seed:2) ~n in
  let faults = Transport.faults ~seed:1 ~latency:100 ~jitter:300 () in
  let r =
    Backend.elect ~seed:5 ~faults (Backend.Socket { tcp = true })
      Election.Algo2 ~topo ~ids
  in
  checkb "tcp verified" true r.Backend.verified;
  checkb "tcp ok" true (Election.ok r.Backend.report);
  checks "tcp backend name" "socket-tcp" r.Backend.live.Transport.backend

(* ------------------------------------------------------------------ *)
(* Error paths *)

exception Boom

let raising_program =
  {
    Network.snap = None;
    Network.start = (fun _ -> raise Boom);
    wake = (fun _ -> ());
    inspect = (fun () -> []);
  }

let test_domains_raise_then_reuse () =
  let topo = Topology.oriented 4 in
  (* A raising node program propagates out of the domains backend
     without wedging any node loop... *)
  checkb "raise propagates" true
    (match
       Colring_transport.Domains.run topo (fun v ->
           if v = 2 then raising_program
           else Election.program_of Election.Algo2 ~id:(v + 1))
     with
    | exception Boom -> true
    | _ -> false);
  (* ...and the very next run on the same pool machinery succeeds. *)
  let trace =
    Colring_transport.Domains.run topo (fun v ->
        Election.program_of Election.Algo2 ~id:(v + 1))
  in
  checkb "reuse after raise" true trace.Transport.quiescent

let test_domains_budget_exhaustion () =
  let topo = Topology.oriented 4 in
  let trace =
    Colring_transport.Domains.run ~max_deliveries:5 topo (fun v ->
        Election.program_of Election.Algo2 ~id:(v + 1))
  in
  checkb "exhausted" true trace.Transport.exhausted;
  checkb "not quiescent" false trace.Transport.quiescent;
  checkb "budget respected" true (trace.Transport.deliveries <= 5)

let test_backend_of_name () =
  checkb "sim" true
    (match Backend.of_name "sim" with Ok Backend.Sim -> true | _ -> false);
  checkb "socket-tcp" true
    (match Backend.of_name "socket-tcp" with
    | Ok (Backend.Socket { tcp = true }) -> true
    | _ -> false);
  checkb "unknown is Error" true
    (match Backend.of_name "carrier-pigeon" with Error _ -> true | Ok _ -> false)

let () =
  Alcotest.run "colring-transport"
    [
      ( "faults",
        [
          Alcotest.test_case "delay_us bounds and purity" `Quick
            test_delay_us_bounds;
          Alcotest.test_case "jittered scheduler deterministic" `Quick
            test_jittered_deterministic;
        ] );
      ( "replay",
        [
          Alcotest.test_case "sim live journal = replay journal" `Quick
            test_sim_live_journal_equals_replay_journal;
        ] );
      (* Fork-based cells first: Unix.fork is permanently unavailable
         once the "matrix"/"errors" groups spawn their first domain. *)
      ( "socket",
        [
          Alcotest.test_case "socket matrix cells" `Slow test_socket_matrix;
          Alcotest.test_case "socket matrix cells under jitter" `Slow
            test_socket_matrix_jitter;
          Alcotest.test_case "socket tcp smoke" `Slow test_socket_tcp_smoke;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "cross-backend equivalence" `Slow
            test_cross_backend_matrix;
          Alcotest.test_case "cross-backend equivalence under jitter" `Slow
            test_cross_backend_matrix_jitter;
        ] );
      ( "errors",
        [
          Alcotest.test_case "domains raise then reuse" `Quick
            test_domains_raise_then_reuse;
          Alcotest.test_case "domains budget exhaustion" `Quick
            test_domains_budget_exhaustion;
          Alcotest.test_case "backend of_name" `Quick test_backend_of_name;
        ] );
    ]
