(* Batched-determinism tests: a flock-run job's journal and report are
   byte-identical to what a sequential Election.run produces for the
   same inputs — for every pool width and both pool modes.  This is
   the contract that makes `colring batch` a drop-in for a loop of
   `colring elect` calls. *)

module Election = Colring_core.Election
module Batch = Colring_harness.Batch
module Pool = Colring_runtime.Pool
module Topology = Colring_engine.Topology
module Scheduler = Colring_engine.Scheduler
module Sink = Colring_engine.Sink
module Rng = Colring_stats.Rng

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let sched seed = Scheduler.random (Rng.create ~seed)

let oriented (s : Batch.spec) =
  match s.algorithm with
  | Election.Algo1 | Election.Algo2 -> true
  | Election.Algo3 _ | Election.Algo3_resample -> false

(* The topology Batch uses: oriented, or the shared scramble drawn
   from the ring size (a batch is many elections on the same ring). *)
let topology_of (s : Batch.spec) =
  if oriented s then Topology.oriented s.n
  else Topology.random_non_oriented (Rng.create ~seed:s.n) s.n

let sequential_journal ?(events = false) (s : Batch.spec) =
  let b = Buffer.create 256 in
  ignore
    (Election.run_report ~seed:s.seed
       ~sink:(Sink.jsonl_buffer ~events b)
       s.algorithm ~topo:(topology_of s) ~ids:(Batch.ids_of_spec s)
       ~sched:(sched s.seed));
  Buffer.contents b

let batch_journals ?(jobs = 1) ?(mode = Pool.Static) ?slots ?events specs =
  let chunks = Array.make (Array.length specs) "" in
  ignore
    (Batch.run ~jobs ~mode ?slots ?events
       ~journal:(fun i chunk -> chunks.(i) <- chunk)
       ~sched specs);
  chunks

let spec algorithm n seed = { Batch.algorithm; n; seed; id_max = 2 * n }

let check_byte_identical specs =
  let expected = Array.map (fun s -> sequential_journal s) specs in
  List.iter
    (fun (mode, mode_name) ->
      List.iter
        (fun jobs ->
          let got = batch_journals ~jobs ~mode specs in
          Array.iteri
            (fun i chunk ->
              checks
                (Printf.sprintf "job %d (%s -j%d)" i mode_name jobs)
                expected.(i) chunk)
            got)
        [ 1; 2; 4 ])
    [ (Pool.Static, "static"); (Pool.Steal, "steal") ]

let test_oriented_journals () =
  check_byte_identical
    (Array.init 9 (fun i -> spec Election.Algo2 8 (i + 1)))

let test_non_oriented_journals () =
  (* The resample path is the one that reads per-node RNG streams, so
     it pins the stream-splitting convention too. *)
  check_byte_identical
    (Array.init 6 (fun i -> spec Election.Algo3_resample 6 (i + 1)))

let test_event_journals () =
  (* Full per-event records, not just snapshots. *)
  let specs = Array.init 4 (fun i -> spec Election.Algo2 5 (i + 11)) in
  let expected = Array.map (sequential_journal ~events:true) specs in
  let got =
    batch_journals ~jobs:2 ~mode:Pool.Steal ~events:true specs
  in
  Array.iteri
    (fun i chunk -> checks (Printf.sprintf "job %d" i) expected.(i) chunk)
    got

let test_wave_split_is_invisible () =
  (* slots smaller than the batch forces several waves through one
     warm flock; reloading slots must not leak state across waves. *)
  let specs = Array.init 7 (fun i -> spec Election.Algo2 6 (i + 1)) in
  let expected = Array.map (fun s -> sequential_journal s) specs in
  let got = batch_journals ~jobs:2 ~slots:2 specs in
  Array.iteri
    (fun i chunk -> checks (Printf.sprintf "job %d" i) expected.(i) chunk)
    got

let test_mixed_batch_reports () =
  (* Mixed algorithms and ring sizes in one batch: reports land in
     spec order and equal the sequential reports field-for-field. *)
  let specs =
    [|
      spec Election.Algo2 8 1;
      spec Election.Algo3_resample 5 2;
      spec Election.Algo2 4 3;
      spec (Election.Algo3 Colring_core.Algo3.Improved) 5 4;
      spec Election.Algo2 8 5;
    |]
  in
  let expected =
    Array.map
      (fun s ->
        Election.run_report ~seed:s.Batch.seed s.Batch.algorithm
          ~topo:(topology_of s) ~ids:(Batch.ids_of_spec s)
          ~sched:(sched s.Batch.seed))
      specs
  in
  List.iter
    (fun jobs ->
      let outcome = Batch.run ~jobs ~sched specs in
      Array.iteri
        (fun i r ->
          checkb
            (Printf.sprintf "report %d at -j%d" i jobs)
            true
            (expected.(i) = r);
          checkb (Printf.sprintf "ok %d" i) true (Election.ok r))
        outcome.Batch.reports)
    [ 1; 4 ]

let test_snapshot_cadence_and_exhaustion () =
  (* Non-default snapshot cadence and a budget that exhausts mid-run
     flow through run_flock unchanged: journal and exhausted flag
     match the sequential run exactly. *)
  let n = 8 and seed = 3 in
  let ids = Batch.ids_of_spec (spec Election.Algo2 n seed) in
  let topo = Topology.oriented n in
  let journal_of run =
    let b = Buffer.create 256 in
    let r = run (Sink.jsonl_buffer b) in
    (Buffer.contents b, r)
  in
  let seq, seq_r =
    journal_of (fun sink ->
        Election.run_report ~seed ~max_deliveries:100 ~snapshot_every:7
          ~sink Election.Algo2 ~topo ~ids ~sched:(sched seed))
  in
  let flocked, flock_r =
    journal_of (fun sink ->
        let job =
          Election.job ~seed ~max_deliveries:100 ~snapshot_every:7 ~sink
            Election.Algo2 ~ids ~sched:(sched seed)
        in
        (Election.run_flock ~topo [| job |]).(0))
  in
  checkb "run exhausted" true seq_r.Election.exhausted;
  checkb "flock report matches" true (seq_r = flock_r);
  checks "journal" seq flocked

let test_parse_line () =
  let ok = function Ok (Some s) -> Some s | _ -> None in
  (match ok (Batch.parse_line "algo2 8 42") with
  | Some s ->
      checkb "algo" true (s.Batch.algorithm = Election.Algo2);
      Alcotest.(check int) "n" 8 s.Batch.n;
      Alcotest.(check int) "seed" 42 s.Batch.seed;
      Alcotest.(check int) "id_max defaults to 2n" 16 s.Batch.id_max
  | None -> Alcotest.fail "valid line rejected");
  (match ok (Batch.parse_line "resample 6 1 9") with
  | Some s -> Alcotest.(check int) "explicit id_max" 9 s.Batch.id_max
  | None -> Alcotest.fail "valid line rejected");
  checkb "blank" true (Batch.parse_line "" = Ok None);
  checkb "comment" true (Batch.parse_line "  # algo2 8 1" = Ok None);
  checkb "trailing comment" true
    (match Batch.parse_line "algo2 8 1 # why" with
    | Ok (Some _) -> true
    | _ -> false);
  let err l =
    match Batch.parse_line l with Error _ -> true | Ok _ -> false
  in
  checkb "unknown algo" true (err "bogus 8 1");
  checkb "n too small" true (err "algo2 1 1");
  checkb "id_max < n" true (err "algo2 8 1 7");
  checkb "non-integer" true (err "algo2 eight 1");
  checkb "too few fields" true (err "algo2 8");
  checkb "too many fields" true (err "algo2 8 1 16 extra")

let test_parse_spec_line_numbers () =
  (match Batch.parse_spec "algo2 8 1\n\n# c\nresample 6 2\n" with
  | Ok specs -> Alcotest.(check int) "count" 2 (Array.length specs)
  | Error msg -> Alcotest.failf "rejected: %s" msg);
  match Batch.parse_spec "algo2 8 1\nbogus 4 1\n" with
  | Error msg ->
      checkb "1-based line number" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "bad line accepted"

let () =
  Alcotest.run "colring-flock"
    [
      ( "determinism",
        [
          Alcotest.test_case "oriented journals byte-identical" `Quick
            test_oriented_journals;
          Alcotest.test_case "non-oriented journals byte-identical" `Quick
            test_non_oriented_journals;
          Alcotest.test_case "event journals byte-identical" `Quick
            test_event_journals;
          Alcotest.test_case "wave split is invisible" `Quick
            test_wave_split_is_invisible;
          Alcotest.test_case "mixed batch reports" `Quick
            test_mixed_batch_reports;
          Alcotest.test_case "snapshot cadence and exhaustion" `Quick
            test_snapshot_cadence_and_exhaustion;
        ] );
      ( "spec parsing",
        [
          Alcotest.test_case "parse_line" `Quick test_parse_line;
          Alcotest.test_case "parse_spec line numbers" `Quick
            test_parse_spec_line_numbers;
        ] );
    ]
