(* Tests for the lib/runtime domain pool: full index coverage under any
   jobs/chunk combination, degenerate grids, exception propagation
   without wedging, COLRING_JOBS parsing, and the Rng.split_at
   properties the parallel sweep's determinism rests on. *)

module Pool = Colring_runtime.Pool
module Rng = Colring_stats.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_map_matches_sequential () =
  let f i = (i * i) - (3 * i) + 7 in
  let expected = Array.init 100 f in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
            expected
            (Pool.map ~chunk ~jobs 100 f))
        [ 1; 3; 7; 128 ])
    [ 1; 2; 4; 9 ]

let test_run_covers_each_index_once () =
  List.iter
    (fun jobs ->
      let n = 257 in
      (* Each index is claimed exactly once, so slot [i] sees one
         write and no cross-domain contention. *)
      let hits = Array.make n 0 in
      Pool.run ~jobs ~chunk:5 n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i h -> checki (Printf.sprintf "index %d" i) 1 h)
        hits)
    [ 1; 2; 4 ]

let test_empty_grid () =
  List.iter
    (fun jobs ->
      Pool.run ~jobs 0 (fun _ -> Alcotest.fail "job ran on empty grid");
      checki "map length" 0 (Array.length (Pool.map ~jobs 0 (fun i -> i))))
    [ 1; 4 ]

let test_more_jobs_than_cells () =
  Alcotest.(check (array int))
    "jobs=16 n=3" [| 0; 10; 20 |]
    (Pool.map ~jobs:16 3 (fun i -> 10 * i))

let test_invalid_args () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "jobs=0" true (raises (fun () -> Pool.run ~jobs:0 1 ignore));
  checkb "chunk=0" true (raises (fun () -> Pool.run ~chunk:0 ~jobs:1 1 ignore));
  checkb "n<0" true (raises (fun () -> Pool.map ~jobs:1 (-1) (fun i -> i)))

let test_exception_propagates_and_pool_survives () =
  List.iter
    (fun jobs ->
      (match Pool.run ~jobs 64 (fun i -> if i = 37 then failwith "boom") with
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "message at jobs=%d" jobs)
            "boom" msg
      | () -> Alcotest.fail "exception was swallowed");
      (* The pool has no persistent state, so the next call must work. *)
      Alcotest.(check (array int))
        (Printf.sprintf "reusable at jobs=%d" jobs)
        [| 0; 1; 2; 3 |]
        (Pool.map ~jobs 4 (fun i -> i)))
    [ 1; 4 ]

(* The domains transport backend hands the pool jobs that block on
   shared state until every peer has progressed; if one peer raises,
   the others would spin forever unless [on_failure] runs before the
   failing domain stops processing.  This is that contract: the
   blocked jobs exit as soon as the hook fires, the exception still
   propagates, the hook ran exactly once, and the pool stays
   reusable. *)
let test_on_failure_unblocks_blocked_jobs () =
  let abort = Atomic.make false in
  let calls = Atomic.make 0 in
  (match
     Pool.run ~jobs:4
       ~on_failure:(fun () ->
         Atomic.incr calls;
         Atomic.set abort true)
       4
       (fun i ->
         if i = 0 then failwith "boom"
         else
           while not (Atomic.get abort) do
             Domain.cpu_relax ()
           done)
   with
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
  | () -> Alcotest.fail "exception was swallowed");
  checki "on_failure ran exactly once" 1 (Atomic.get calls);
  Alcotest.(check (array int))
    "pool reusable after abort" [| 0; 1; 2; 3 |]
    (Pool.map ~jobs:4 4 (fun i -> i))

let test_on_failure_sequential_path () =
  (* jobs = 1 never spawns a domain but honours the same hook. *)
  let calls = ref 0 in
  (match
     Pool.run ~jobs:1
       ~on_failure:(fun () -> incr calls)
       3
       (fun i -> if i = 1 then failwith "seq")
   with
  | exception Failure msg -> Alcotest.(check string) "message" "seq" msg
  | () -> Alcotest.fail "exception was swallowed");
  checki "on_failure ran exactly once" 1 !calls

let test_steal_matches_sequential () =
  let f i = (i * 5) - (i * i) in
  let expected = Array.init 211 f in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "steal jobs=%d chunk=%d" jobs chunk)
            expected
            (Pool.map ~mode:Pool.Steal ~chunk ~jobs 211 f))
        [ 1; 4; 64 ])
    [ 1; 2; 4; 9 ]

let test_steal_covers_each_index_once () =
  List.iter
    (fun jobs ->
      let n = 143 in
      let hits = Array.make n 0 in
      Pool.run ~mode:Pool.Steal ~jobs ~chunk:3 n (fun i ->
          hits.(i) <- hits.(i) + 1);
      Array.iteri (fun i h -> checki (Printf.sprintf "index %d" i) 1 h) hits;
      (* Auto-tuned chunk covers the same set. *)
      let hits = Array.make n 0 in
      Pool.run ~mode:Pool.Steal ~jobs n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri (fun i h -> checki (Printf.sprintf "auto %d" i) 1 h) hits)
    [ 1; 2; 4 ]

let test_auto_chunk_covers () =
  (* No explicit chunk: the auto-tuned size must still cover every
     index exactly once, including when it rounds to 0-remainder
     boundaries. *)
  List.iter
    (fun (jobs, n) ->
      let hits = Array.make (max n 1) 0 in
      Pool.run ~jobs n (fun i -> hits.(i) <- hits.(i) + 1);
      for i = 0 to n - 1 do
        checki (Printf.sprintf "jobs=%d n=%d i=%d" jobs n i) 1 hits.(i)
      done)
    [ (1, 10_000); (4, 10_000); (4, 7); (3, 1); (4, 0) ]

let test_steal_exception_propagates () =
  List.iter
    (fun jobs ->
      (match
         Pool.run ~mode:Pool.Steal ~jobs 64 (fun i ->
             if i = 11 then failwith "steal-boom")
       with
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "message at jobs=%d" jobs)
            "steal-boom" msg
      | () -> Alcotest.fail "exception was swallowed");
      Alcotest.(check (array int))
        (Printf.sprintf "reusable at jobs=%d" jobs)
        [| 0; 1; 2; 3 |]
        (Pool.map ~mode:Pool.Steal ~jobs 4 (fun i -> i)))
    [ 1; 4 ]

let test_map_first_slot_failure () =
  (* [f 0] runs eagerly in the caller; its failure must still fire
     [on_failure] exactly once and propagate. *)
  let calls = ref 0 in
  (match
     Pool.map ~jobs:4
       ~on_failure:(fun () -> incr calls)
       4
       (fun i -> if i = 0 then failwith "slot0" else i)
   with
  | exception Failure msg -> Alcotest.(check string) "message" "slot0" msg
  | _ -> Alcotest.fail "exception was swallowed");
  checki "on_failure ran exactly once" 1 !calls

let test_default_jobs_env () =
  Unix.putenv "COLRING_JOBS" "3";
  checki "COLRING_JOBS=3" 3 (Pool.default_jobs ());
  Unix.putenv "COLRING_JOBS" "";
  checkb "empty falls back" true (Pool.default_jobs () >= 1);
  Unix.putenv "COLRING_JOBS" "zero";
  checkb "garbage rejected" true
    (match Pool.default_jobs () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Unix.putenv "COLRING_JOBS" "0";
  checkb "non-positive rejected" true
    (match Pool.default_jobs () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Unix.putenv "COLRING_JOBS" ""

(* The parallel sweep hands cell [i] the child stream [split_at rng i];
   determinism and decorrelation need: children don't advance the
   parent, equal indices give equal streams, distinct indices give
   streams that disagree quickly. *)
let test_split_at_does_not_advance_parent () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  ignore (Rng.split_at a 5);
  ignore (Rng.split_at a 6);
  let xs = List.init 8 (fun _ -> Rng.bits a 62) in
  let ys = List.init 8 (fun _ -> Rng.bits b 62) in
  checkb "parent unchanged" true (xs = ys)

let test_split_at_reproducible () =
  let mk () = Rng.split_at (Rng.create ~seed:7) 3 in
  let xs = let t = mk () in List.init 8 (fun _ -> Rng.bits t 62) in
  let ys = let t = mk () in List.init 8 (fun _ -> Rng.bits t 62) in
  checkb "same child" true (xs = ys)

let test_split_at_children_distinct () =
  let parent = Rng.create ~seed:11 in
  let draws i =
    let t = Rng.split_at parent i in
    List.init 4 (fun _ -> Rng.bits t 62)
  in
  let streams = List.init 32 draws in
  let distinct = List.sort_uniq compare streams in
  checki "32 distinct children" 32 (List.length distinct)

let () =
  Alcotest.run "colring-runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "covers each index once" `Quick
            test_run_covers_each_index_once;
          Alcotest.test_case "empty grid" `Quick test_empty_grid;
          Alcotest.test_case "more jobs than cells" `Quick
            test_more_jobs_than_cells;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "on_failure unblocks blocked jobs" `Quick
            test_on_failure_unblocks_blocked_jobs;
          Alcotest.test_case "on_failure on the sequential path" `Quick
            test_on_failure_sequential_path;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates_and_pool_survives;
          Alcotest.test_case "steal matches sequential" `Quick
            test_steal_matches_sequential;
          Alcotest.test_case "steal covers each index once" `Quick
            test_steal_covers_each_index_once;
          Alcotest.test_case "auto chunk covers" `Quick test_auto_chunk_covers;
          Alcotest.test_case "steal exception propagates" `Quick
            test_steal_exception_propagates;
          Alcotest.test_case "map first-slot failure" `Quick
            test_map_first_slot_failure;
          Alcotest.test_case "COLRING_JOBS" `Quick test_default_jobs_env;
        ] );
      ( "split_at",
        [
          Alcotest.test_case "parent not advanced" `Quick
            test_split_at_does_not_advance_parent;
          Alcotest.test_case "reproducible" `Quick test_split_at_reproducible;
          Alcotest.test_case "children distinct" `Quick
            test_split_at_children_distinct;
        ] );
    ]
