(* Tests for the classic content-carrying baselines: correct winner,
   termination, message-count bounds and exact counts where known. *)

open Colring_engine
open Colring_classic
module Rng = Colring_stats.Rng
module Ids = Colring_core.Ids

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let oriented n = Topology.oriented n

let run_cr ~ids ~sched =
  Driver.run ~name:"chang-roberts" ~expect_max:ids
    (fun v -> Chang_roberts.program ~id:ids.(v))
    ~topo:(oriented (Array.length ids))
    ~sched

let run_ll ~ids ~sched =
  Driver.run ~name:"lelann" ~expect_max:ids
    (fun v -> Lelann.program ~id:ids.(v))
    ~topo:(oriented (Array.length ids))
    ~sched

let run_hs ~ids ~sched =
  Driver.run ~name:"hs" ~expect_max:ids
    (fun v -> Hirschberg_sinclair.program ~id:ids.(v))
    ~topo:(oriented (Array.length ids))
    ~sched

let run_peterson ~ids ~sched =
  Driver.run ~name:"peterson" ~expect_max:ids
    (fun v -> Peterson.program ~id:ids.(v))
    ~topo:(oriented (Array.length ids))
    ~sched

let run_ir ?(seed = 0) ~n ~sched () =
  Driver.run ~seed ~name:"itai-rodeh"
    (fun _ -> Itai_rodeh.program ~n ~range:8)
    ~topo:(oriented n) ~sched

let all_schedulers () =
  Scheduler.all_deterministic () @ [ Scheduler.random (Rng.create ~seed:3) ]

(* ------------------------------------------------------------------ *)

let test_chang_roberts_basic () =
  let ids = [| 3; 9; 1; 7; 5 |] in
  List.iter
    (fun sched ->
      let r = run_cr ~ids ~sched in
      checkb (sched.Scheduler.name ^ " ok") true (Driver.ok r);
      checki (sched.Scheduler.name ^ " no drops") 0 r.post_term_drops)
    (all_schedulers ())

let test_chang_roberts_worst_case () =
  (* IDs decreasing clockwise from the max: candidate i travels i hops. *)
  let n = 8 in
  let ids = Array.init n (fun v -> n - v) in
  let r = run_cr ~ids ~sched:Scheduler.fifo in
  checkb "ok" true (Driver.ok r);
  checki "worst case count" (Chang_roberts.worst_case_messages ~n) r.messages

let test_chang_roberts_best_case () =
  (* IDs increasing clockwise: every candidate dies after one hop except
     the max, which travels n; plus n announcements. *)
  let n = 8 in
  let ids = Array.init n (fun v -> v + 1) in
  let r = run_cr ~ids ~sched:Scheduler.fifo in
  checkb "ok" true (Driver.ok r);
  checki "best case count" ((n - 1) + n + n) r.messages

let test_lelann_exact_count () =
  let ids = [| 4; 2; 9; 6; 1; 8 |] in
  List.iter
    (fun sched ->
      let r = run_ll ~ids ~sched in
      checkb (sched.Scheduler.name ^ " ok") true (Driver.ok r);
      checki (sched.Scheduler.name ^ " n^2") (Lelann.messages ~n:6) r.messages;
      checki (sched.Scheduler.name ^ " no drops") 0 r.post_term_drops)
    (all_schedulers ())

let test_hs_basic () =
  let ids = [| 3; 9; 1; 7; 5; 2; 8; 4 |] in
  List.iter
    (fun sched ->
      let r = run_hs ~ids ~sched in
      checkb (sched.Scheduler.name ^ " leader") true
        (r.leader <> None && r.leader_is_max && r.roles_ok && r.all_terminated);
      checkb (sched.Scheduler.name ^ " within bound") true
        (r.messages <= Hirschberg_sinclair.message_bound ~n:8))
    (all_schedulers ())

let test_peterson_basic () =
  let ids = [| 3; 9; 1; 7; 5; 2; 8; 4 |] in
  List.iter
    (fun sched ->
      let r = run_peterson ~ids ~sched in
      checkb (sched.Scheduler.name ^ " leader") true
        (r.leader <> None && r.leader_is_max && r.roles_ok && r.all_terminated))
    (all_schedulers ())

let test_single_node_all () =
  let ids = [| 5 |] in
  checkb "cr" true (Driver.ok (run_cr ~ids ~sched:Scheduler.fifo));
  checkb "ll" true (Driver.ok (run_ll ~ids ~sched:Scheduler.fifo));
  let hs = run_hs ~ids ~sched:Scheduler.fifo in
  checkb "hs" true (hs.leader = Some 0 && hs.all_terminated);
  let p = run_peterson ~ids ~sched:Scheduler.fifo in
  checkb "peterson" true (p.leader = Some 0 && p.all_terminated)

let test_itai_rodeh_terminates_uniquely () =
  for seed = 1 to 25 do
    let r = run_ir ~seed ~n:9 ~sched:(Scheduler.random (Rng.create ~seed)) () in
    checkb
      (Printf.sprintf "seed %d unique leader" seed)
      true
      (r.leader <> None && r.roles_ok && r.all_terminated && not r.exhausted)
  done

let test_itai_rodeh_single_node () =
  let r = run_ir ~n:1 ~sched:Scheduler.fifo () in
  checkb "n=1" true (r.leader = Some 0 && r.all_terminated)

let test_peterson_phase_bound () =
  (* Active candidates halve per phase, so any node's phase counter is
     at most ceil(log2 n) + 1. *)
  let ceil_log2 n =
    let rec go acc v = if 1 lsl acc >= v then acc else go (acc + 1) v in
    go 0 n
  in
  List.iter
    (fun n ->
      let ids = Ids.dense (Rng.create ~seed:n) ~n in
      let net =
        Network.create (oriented n) (fun v -> Peterson.program ~id:ids.(v))
      in
      let result = Network.run net (Scheduler.random (Rng.create ~seed:n)) in
      checkb "terminated" true result.all_terminated;
      for v = 0 to n - 1 do
        checkb
          (Printf.sprintf "n=%d node %d phase bound" n v)
          true
          (Network.inspect_counter net v "phases" <= ceil_log2 n + 1)
      done)
    [ 2; 4; 8; 16; 32; 64 ]

let test_itai_rodeh_range_sweep () =
  (* Larger value ranges make first-round ties rarer; all must elect. *)
  List.iter
    (fun range ->
      let r =
        Driver.run ~seed:range ~name:"ir"
          (fun _ -> Itai_rodeh.program ~n:8 ~range)
          ~topo:(oriented 8)
          ~sched:(Scheduler.random (Rng.create ~seed:(range * 3)))
      in
      checkb
        (Printf.sprintf "range %d" range)
        true
        (r.leader <> None && r.roles_ok && r.all_terminated && not r.exhausted))
    [ 2; 3; 8; 64; 1024 ]

let test_lelann_message_independent_of_placement () =
  (* LeLann's n^2 is placement-independent; compare two rotations. *)
  let base = [| 5; 3; 9; 1; 7 |] in
  let rotated = Array.init 5 (fun i -> base.((i + 2) mod 5)) in
  let m ids = (run_ll ~ids ~sched:Scheduler.fifo).messages in
  checki "same" (m base) (m rotated)

let test_chang_roberts_sensitive_to_placement () =
  (* Chang-Roberts is placement-sensitive: increasing vs decreasing
     clockwise differ (that is the whole O(n log n)-average story). *)
  let n = 16 in
  let inc = Array.init n (fun v -> v + 1) in
  let dec = Array.init n (fun v -> n - v) in
  let m ids = (run_cr ~ids ~sched:Scheduler.fifo).messages in
  checkb "worst > best" true (m dec > m inc)

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_instance =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 1 20) (int_range 0 10_000))

let with_random_instance (n, seed) f =
  let rng = Rng.create ~seed in
  let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 50) in
  let sched = Scheduler.random (Rng.split rng) in
  f ~ids ~sched

let prop_cr =
  QCheck.Test.make ~name:"chang-roberts random instances" ~count:100
    arb_instance (fun inst ->
      with_random_instance inst (fun ~ids ~sched ->
          let r = run_cr ~ids ~sched in
          Driver.ok r
          && r.messages <= Chang_roberts.worst_case_messages ~n:(Array.length ids)))

let prop_lelann =
  QCheck.Test.make ~name:"lelann always n^2" ~count:100 arb_instance
    (fun inst ->
      with_random_instance inst (fun ~ids ~sched ->
          let r = run_ll ~ids ~sched in
          Driver.ok r && r.messages = Array.length ids * Array.length ids))

let prop_hs =
  QCheck.Test.make ~name:"hirschberg-sinclair random instances" ~count:100
    arb_instance (fun inst ->
      with_random_instance inst (fun ~ids ~sched ->
          let r = run_hs ~ids ~sched in
          r.leader <> None && r.leader_is_max && r.roles_ok && r.all_terminated
          && (not r.exhausted)
          && r.messages <= Hirschberg_sinclair.message_bound ~n:(Array.length ids)))

let prop_peterson =
  QCheck.Test.make ~name:"peterson random instances" ~count:100 arb_instance
    (fun inst ->
      with_random_instance inst (fun ~ids ~sched ->
          let r = run_peterson ~ids ~sched in
          r.leader <> None && r.leader_is_max && r.roles_ok && r.all_terminated
          && not r.exhausted))

let prop_itai_rodeh =
  QCheck.Test.make ~name:"itai-rodeh random instances" ~count:60
    QCheck.(
      make
        ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
        Gen.(pair (int_range 1 12) (int_range 0 10_000)))
    (fun (n, seed) ->
      let r =
        run_ir ~seed ~n ~sched:(Scheduler.random (Rng.create ~seed:(seed + 1))) ()
      in
      r.leader <> None && r.roles_ok && r.all_terminated && not r.exhausted)

let () =
  Alcotest.run "colring-classic"
    [
      ( "chang-roberts",
        [
          Alcotest.test_case "basic" `Quick test_chang_roberts_basic;
          Alcotest.test_case "worst case" `Quick test_chang_roberts_worst_case;
          Alcotest.test_case "best case" `Quick test_chang_roberts_best_case;
        ] );
      ("lelann", [ Alcotest.test_case "exact count" `Quick test_lelann_exact_count ]);
      ("hirschberg-sinclair", [ Alcotest.test_case "basic" `Quick test_hs_basic ]);
      ("peterson", [ Alcotest.test_case "basic" `Quick test_peterson_basic ]);
      ( "degenerate",
        [ Alcotest.test_case "single node" `Quick test_single_node_all ] );
      ( "itai-rodeh",
        [
          Alcotest.test_case "unique leader" `Quick
            test_itai_rodeh_terminates_uniquely;
          Alcotest.test_case "single node" `Quick test_itai_rodeh_single_node;
          Alcotest.test_case "range sweep" `Quick test_itai_rodeh_range_sweep;
        ] );
      ( "structure",
        [
          Alcotest.test_case "peterson phase bound" `Quick
            test_peterson_phase_bound;
          Alcotest.test_case "lelann placement-free" `Quick
            test_lelann_message_independent_of_placement;
          Alcotest.test_case "chang-roberts placement-sensitive" `Quick
            test_chang_roberts_sensitive_to_placement;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_cr; prop_lelann; prop_hs; prop_peterson; prop_itai_rodeh ] );
    ]
