(* Tests for the statistics substrate. *)

open Colring_stats

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let test_rng_determinism () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent_of_parent_use () =
  let a = Rng.create ~seed:2 in
  let child_before = Rng.split_at a 7 in
  let x = Rng.int child_before 1_000_000 in
  let a' = Rng.create ~seed:2 in
  let child_again = Rng.split_at a' 7 in
  checki "split_at stable" x (Rng.int child_again 1_000_000)

let test_rng_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int_incl r 5 9 in
    checkb "in range" true (v >= 5 && v <= 9)
  done;
  checki "bits 0" 0 (Rng.bits r 0)

let test_rng_geometric_mean () =
  (* Geo(1-p) with p = 0.5 has mean p/(1-p) = 1. *)
  let r = Rng.create ~seed:4 in
  let s = Summary.create () in
  for _ = 1 to 20_000 do
    Summary.add_int s (Rng.geometric r ~p:0.5)
  done;
  checkb "mean near 1" true (abs_float (Summary.mean s -. 1.0) < 0.05)

let test_summary_basics () =
  let s = Summary.of_ints [ 1; 2; 3; 4; 5 ] in
  checkf "mean" 3.0 (Summary.mean s);
  checkf "min" 1.0 (Summary.min s);
  checkf "max" 5.0 (Summary.max s);
  checkf "median" 3.0 (Summary.median s);
  checkf "variance" 2.5 (Summary.variance s)

let test_summary_quantile_interpolation () =
  let s = Summary.of_list [ 0.; 10. ] in
  checkf "q25" 2.5 (Summary.quantile s 0.25)

let test_fit_linear_exact () =
  let line = Fit.linear [ (1., 5.); (2., 7.); (3., 9.) ] in
  checkf "slope" 2.0 line.Fit.slope;
  checkf "intercept" 3.0 line.Fit.intercept;
  checkf "r2" 1.0 line.Fit.r2

let test_fit_proportional () =
  let a = Fit.proportional [ (1., 3.); (2., 6.); (10., 30.) ] in
  checkf "a" 3.0 a

let test_fit_loglog () =
  let pts = List.init 10 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 4. *. (x ** 2.))) in
  checkb "slope near 2" true (abs_float (Fit.loglog_slope pts -. 2.) < 1e-6)

let test_max_rel_err () =
  checkf "zero" 0. (Fit.max_rel_err [ (10., 10.); (5., 5.) ]);
  checkb "nonzero" true (Fit.max_rel_err [ (10., 12.) ] > 0.19)

let test_table_render () =
  let t =
    Table.create ~title:"demo"
      [ ("name", Table.Left); ("count", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "12" ];
  Table.add_rule t;
  Table.add_row t [ "b"; "3" ];
  let s = Table.render t in
  checkb "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  checkb "aligned" true
    (String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0)
    |> List.map String.length
    |> fun ls -> List.for_all (fun l -> l = List.nth ls 1) (List.tl ls))

let test_table_arity_checked () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_histogram () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 1; 2; 8; 8; 8 ];
  checki "count 8" 3 (Histogram.count h 8);
  checki "total" 6 (Histogram.total h);
  checki "distinct" 3 (Histogram.distinct h);
  (match Histogram.mode h with
  | Some (v, c) ->
      checki "mode value" 8 v;
      checki "mode count" 3 c
  | None -> Alcotest.fail "no mode");
  Alcotest.(check (list (pair int int)))
    "log2 bins"
    [ (0, 2); (1, 1); (3, 3) ]
    (Histogram.log2_bins h)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles monotone" ~count:100
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.))
    (fun xs ->
      QCheck.assume (List.length xs >= 2);
      let s = Summary.of_list xs in
      Summary.quantile s 0.1 <= Summary.quantile s 0.5
      && Summary.quantile s 0.5 <= Summary.quantile s 0.9)

let prop_geometric_nonneg =
  QCheck.Test.make ~name:"geometric nonnegative" ~count:200
    QCheck.(pair small_nat (float_range 0.01 1.0))
    (fun (seed, p) ->
      let r = Rng.create ~seed in
      Rng.geometric r ~p >= 0)

let () =
  Alcotest.run "colring-stats"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split stability" `Quick
            test_rng_split_independent_of_parent_use;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
        ] );
      ( "summary",
        [
          Alcotest.test_case "basics" `Quick test_summary_basics;
          Alcotest.test_case "quantile interpolation" `Quick
            test_summary_quantile_interpolation;
        ] );
      ( "fit",
        [
          Alcotest.test_case "linear exact" `Quick test_fit_linear_exact;
          Alcotest.test_case "proportional" `Quick test_fit_proportional;
          Alcotest.test_case "loglog slope" `Quick test_fit_loglog;
          Alcotest.test_case "max rel err" `Quick test_max_rel_err;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity_checked;
        ] );
      ("histogram", [ Alcotest.test_case "basics" `Quick test_histogram ]);
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_quantile_monotone; prop_geometric_nonneg ] );
    ]
