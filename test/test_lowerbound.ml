(* Tests for the lower-bound machinery: solitude patterns of
   Algorithm 2, Lemma 22 uniqueness, Lemma 23 / Corollary 24 prefix
   combinatorics, and the Theorem 20 bound against the measured
   complexity of Algorithm 2. *)

open Colring_core
open Colring_lowerbound

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let algo2 = fun ~id -> Algo2.program ~id

let test_pattern_closed_form () =
  for id = 1 to 40 do
    Alcotest.(check string)
      (Printf.sprintf "id %d" id)
      (Solitude.algo2_expected ~id)
      (Solitude.extract algo2 ~id)
  done

let test_pattern_length_matches_complexity () =
  (* On the one-node ring the pattern length equals the total number of
     pulses, which Theorem 1 pins to 2*id + 1. *)
  List.iter
    (fun id ->
      checki
        (Printf.sprintf "id %d" id)
        ((2 * id) + 1)
        (Solitude.length (Solitude.extract algo2 ~id)))
    [ 1; 2; 5; 17; 64 ]

let test_lemma22_uniqueness () =
  let tagged = Solitude.extract_range algo2 ~lo:1 ~hi:256 in
  checkb "all unique" true (Analysis.all_unique (List.map snd tagged));
  checkb "no collision" true (Analysis.first_collision tagged = None)

let test_prefix_helpers () =
  checki "common prefix" 3 (Analysis.common_prefix_length "0010" "0011");
  checki "disjoint" 0 (Analysis.common_prefix_length "10" "01");
  let pats = [ "0000"; "0001"; "0111"; "10" ] in
  checki "group len2" 2 (Analysis.max_group_sharing pats ~prefix_len:3);
  checki "group len1" 3 (Analysis.max_group_sharing pats ~prefix_len:1);
  checki "best for 3" 1 (Analysis.best_shared_prefix pats ~group:3);
  checki "best for 2" 3 (Analysis.best_shared_prefix pats ~group:2)

let test_corollary24_on_algo2_patterns () =
  (* Any k distinct binary strings contain n sharing a prefix of length
     floor(log2 (k/n)); check on the actual pattern sets. *)
  let k = 128 in
  let patterns = List.map snd (Solitude.extract_range algo2 ~lo:1 ~hi:k) in
  List.iter
    (fun n ->
      let s = Analysis.best_shared_prefix patterns ~group:n in
      let promised = Formulas.lower_bound ~n ~k / n in
      checkb
        (Printf.sprintf "n=%d: %d >= %d" n s promised)
        true (s >= promised))
    [ 1; 2; 4; 8; 16; 32 ]

let test_theorem20_bound_below_algo2_cost () =
  (* The adversary's bound must of course not exceed what Algorithm 2
     actually sends on the worst assignment: for ids drawn from [1..k],
     ID_max <= k, so Algorithm 2 sends at most n(2k+1) — and the bound
     n * floor(log2(k/n)) is far below it.  Also sanity-check the bound
     is positive once k/n >= 2. *)
  let k = 256 in
  let patterns = List.map snd (Solitude.extract_range algo2 ~lo:1 ~hi:k) in
  List.iter
    (fun n ->
      let bound = Analysis.implied_message_bound patterns ~n in
      checkb "positive" true (bound >= n * Formulas.floor_log2 (k / n));
      checkb "below algorithm cost" true
        (bound <= Formulas.algo2_total ~n ~id_max:k))
    [ 2; 4; 8 ]

let test_lower_bound_formula () =
  checki "k=n" 0 (Formulas.lower_bound ~n:4 ~k:4);
  checki "k=2n" 4 (Formulas.lower_bound ~n:4 ~k:8);
  checki "k=1024,n=4" (4 * 8) (Formulas.lower_bound ~n:4 ~k:1024);
  checki "n=1" 10 (Formulas.lower_bound ~n:1 ~k:1024)

let prop_pattern_deterministic =
  QCheck.Test.make ~name:"patterns deterministic" ~count:30
    QCheck.(int_range 1 64)
    (fun id -> Solitude.extract algo2 ~id = Solitude.extract algo2 ~id)

let prop_unbounded_growth =
  (* Theorem 20's parting remark: message count grows without bound in
     the ID, even on a single-node ring. *)
  QCheck.Test.make ~name:"solitude cost grows with id" ~count:30
    QCheck.(int_range 1 100)
    (fun id ->
      Solitude.length (Solitude.extract algo2 ~id)
      < Solitude.length (Solitude.extract algo2 ~id:(id + 7)))

let () =
  Alcotest.run "colring-lowerbound"
    [
      ( "solitude",
        [
          Alcotest.test_case "closed form" `Quick test_pattern_closed_form;
          Alcotest.test_case "length = complexity" `Quick
            test_pattern_length_matches_complexity;
        ] );
      ( "lemma22",
        [ Alcotest.test_case "uniqueness" `Quick test_lemma22_uniqueness ] );
      ( "prefixes",
        [
          Alcotest.test_case "helpers" `Quick test_prefix_helpers;
          Alcotest.test_case "corollary 24" `Quick
            test_corollary24_on_algo2_patterns;
          Alcotest.test_case "theorem 20 vs algo2" `Quick
            test_theorem20_bound_below_algo2_cost;
          Alcotest.test_case "formula" `Quick test_lower_bound_formula;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_pattern_deterministic; prop_unbounded_growth ] );
    ]
