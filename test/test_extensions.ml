(* Tests for the extensions beyond the core reproduction: Franklin's
   baseline, the ablation variants (each must actually exhibit its
   documented failure), the constructive Theorem 20 adversary, and the
   pulse-injection model-necessity experiment. *)

open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng
module Classic = Colring_classic
module LB = Colring_lowerbound

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Franklin *)

let run_franklin ~ids ~sched =
  Classic.Driver.run ~name:"franklin" ~expect_max:ids
    (fun v -> Classic.Franklin.program ~id:ids.(v))
    ~topo:(Topology.oriented (Array.length ids))
    ~sched

let test_franklin_basic () =
  let ids = [| 3; 9; 1; 7; 5; 2; 8; 4 |] in
  List.iter
    (fun sched ->
      let r = run_franklin ~ids ~sched in
      checkb (sched.Scheduler.name ^ " correct") true
        (r.leader <> None && r.leader_is_max && r.roles_ok && r.all_terminated
       && not r.exhausted))
    (Scheduler.all_deterministic () @ [ Scheduler.random (Rng.create ~seed:5) ])

let test_franklin_small () =
  checkb "n=1" true
    (let r = run_franklin ~ids:[| 4 |] ~sched:Scheduler.fifo in
     r.leader = Some 0 && r.all_terminated);
  checkb "n=2" true
    (let r = run_franklin ~ids:[| 4; 9 |] ~sched:Scheduler.lifo in
     r.leader = Some 1 && r.all_terminated)

let prop_franklin =
  QCheck.Test.make ~name:"franklin random instances" ~count:100
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 20) (int_range 0 10_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 50) in
      let r = run_franklin ~ids ~sched:(Scheduler.random (Rng.split rng)) in
      r.leader <> None && r.leader_is_max && r.roles_ok && r.all_terminated
      && not r.exhausted)

(* ------------------------------------------------------------------ *)
(* Ablations: each broken variant must actually fail somewhere, and the
   real algorithms must pass the same gauntlet. *)

let gauntlet factory ~topo_of ~ids_of =
  (* Run a factory over a set of instances and schedulers; count
     failing runs. *)
  let failures = ref 0 and runs = ref 0 in
  List.iter
    (fun seed ->
      let ids = ids_of seed in
      let topo = topo_of seed ids in
      List.iter
        (fun sched ->
          incr runs;
          let f = Ablation.observe factory ~topo ~ids ~sched in
          if Ablation.failed f then incr failures)
        (Scheduler.all_deterministic ()
        @ [ Scheduler.random (Rng.create ~seed) ]))
    [ 1; 2; 3; 4; 5 ];
  (!failures, !runs)

let oriented_instances =
  ( (fun _ ids -> Topology.oriented (Array.length ids)),
    fun seed -> Ids.distinct (Rng.create ~seed) ~n:6 ~id_max:14 )

let test_ablation_no_lag_fails () =
  let topo_of, ids_of = oriented_instances in
  let failures, runs = gauntlet (fun ~id -> Ablation.algo2_no_lag ~id) ~topo_of ~ids_of in
  checkb
    (Printf.sprintf "no-lag variant fails somewhere (%d/%d)" failures runs)
    true (failures > 0)

let test_real_algo2_passes_gauntlet () =
  let topo_of, ids_of = oriented_instances in
  let failures, runs = gauntlet (fun ~id -> Algo2.program ~id) ~topo_of ~ids_of in
  checki (Printf.sprintf "algo2 never fails (%d runs)" runs) 0 failures

let test_ablation_same_virtual_ids_fails () =
  let ids_of seed = Ids.distinct (Rng.create ~seed) ~n:6 ~id_max:14 in
  let topo_of seed ids =
    Topology.random_non_oriented (Rng.create ~seed:(seed + 50)) (Array.length ids)
  in
  let failures, _ =
    gauntlet (fun ~id -> Ablation.algo3_same_virtual_ids ~id) ~topo_of ~ids_of
  in
  checkb "same-virtual-ids variant fails" true (failures > 0)

let test_ablation_no_absorption_never_quiesces () =
  let ids = [| 3; 7; 5; 1 |] in
  let f =
    Ablation.observe ~max_deliveries:5_000
      (fun ~id -> Ablation.algo1_no_absorption ~id)
      ~topo:(Topology.oriented 4) ~ids ~sched:Scheduler.fifo
  in
  checkb "exhausts the budget" true f.exhausted;
  checkb "kept sending the whole time" true (f.sends >= 5_000)

(* ------------------------------------------------------------------ *)
(* Theorem 20 adversary replay *)

let test_adversary_replay_mimicry () =
  List.iter
    (fun (k, n) ->
      let r = LB.Adversary.replay ~k ~n (fun ~id -> Algo2.program ~id) in
      checkb
        (Printf.sprintf "k=%d n=%d mimicry" k n)
        true r.mimicry;
      checkb "shared prefix meets corollary 24" true
        (r.shared_prefix >= r.formula_prefix);
      checkb "run sends at least the bound" true (r.sends >= r.bound))
    [ (16, 2); (64, 4); (128, 8); (64, 1) ]

let test_adversary_chooses_distinct_ids () =
  let r = LB.Adversary.replay ~k:64 ~n:8 (fun ~id -> Algo2.program ~id) in
  let sorted = Array.copy r.ids in
  Array.sort compare sorted;
  let distinct = ref true in
  for i = 0 to Array.length sorted - 2 do
    if sorted.(i) = sorted.(i + 1) then distinct := false
  done;
  checkb "distinct" true !distinct;
  Array.iter (fun id -> checkb "in range" true (id >= 1 && id <= 64)) r.ids

let test_best_group_matches_best_shared_prefix () =
  let tagged =
    LB.Solitude.extract_range (fun ~id -> Algo2.program ~id) ~lo:1 ~hi:100
  in
  let patterns = List.map snd tagged in
  List.iter
    (fun group ->
      let _, len = LB.Analysis.best_group tagged ~group in
      checki
        (Printf.sprintf "group %d" group)
        (LB.Analysis.best_shared_prefix patterns ~group)
        len)
    [ 1; 2; 3; 8; 20 ]

(* ------------------------------------------------------------------ *)
(* Model necessity: a single injected pulse breaks Algorithm 2. *)

let test_injection_breaks_algo2 () =
  let ids = [| 4; 9; 2; 7 |] in
  let net =
    Network.create (Topology.oriented 4) (fun v -> Algo2.program ~id:ids.(v))
  in
  (* Let the run make some progress, then let the channel "invent" one
     clockwise pulse out of node 0. *)
  for _ = 1 to 10 do
    ignore (Network.step net Scheduler.fifo)
  done;
  Network.inject net ~node:0 ~port:Port.P1 ();
  let result = Network.run ~max_deliveries:100_000 net Scheduler.fifo in
  let outputs = Network.outputs net in
  let leaders =
    Array.to_list outputs
    |> List.filter (fun (o : Output.t) ->
           Output.equal_role o.role Output.Leader)
    |> List.length
  in
  let healthy =
    result.quiescent && result.all_terminated && (not result.exhausted)
    && leaders = 1
    && result.sends = 1 + Formulas.algo2_total ~n:4 ~id_max:9
    && Metrics.post_termination_deliveries (Network.metrics net) = 0
  in
  checkb "one spurious pulse visibly corrupts the run" false healthy

let test_injection_counted () =
  let net =
    Network.create (Topology.oriented 2) (fun _ -> Network.silent_program)
  in
  Network.inject net ~node:0 ~port:Port.P1 ();
  checki "in flight" 1 (Network.in_flight net);
  checki "counted as send" 1 (Metrics.sends (Network.metrics net))

(* ------------------------------------------------------------------ *)
(* Differential testing: the blocking re-implementation of Algorithm 2
   must match the event-driven one observation for observation. *)

let final_counters net v =
  List.filter
    (fun (k, _) -> k <> "term_initiated")
    (Network.inspect net v)

let run_impl make_program ~ids ~sched =
  let n = Array.length ids in
  let net = Network.create (Topology.oriented n) (fun v -> make_program ids.(v)) in
  let result = Network.run net sched in
  (result, net)

let test_blocking_algo2_matches () =
  let instances =
    [
      ([| 4 |], 1);
      ([| 2; 5 |], 2);
      ([| 6; 2; 11; 5; 8; 3 |], 3);
      ([| 30; 7; 19; 2 |], 4);
    ]
  in
  List.iter
    (fun (ids, seed) ->
      List.iter
        (fun mk_sched ->
          let r1, net1 = run_impl (fun id -> Algo2.program ~id) ~ids ~sched:(mk_sched ()) in
          let r2, net2 =
            run_impl (fun id -> Algo2_blocking.program ~id) ~ids ~sched:(mk_sched ())
          in
          checki "sends" r1.sends r2.sends;
          checkb "both quiescent+terminated" true
            (r1.quiescent && r2.quiescent && r1.all_terminated
           && r2.all_terminated);
          Alcotest.(check (list int))
            "termination order" r1.termination_order r2.termination_order;
          for v = 0 to Array.length ids - 1 do
            checkb "same output" true
              (Network.output net1 v = Network.output net2 v);
            checkb "same counters" true
              (final_counters net1 v = final_counters net2 v)
          done)
        [
          (fun () -> Scheduler.fifo);
          (fun () -> Scheduler.lifo);
          (fun () -> Scheduler.random (Rng.create ~seed));
        ])
    instances

let prop_blocking_algo2_matches =
  QCheck.Test.make ~name:"blocking algo2 differential" ~count:60
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 16) (int_range 0 5_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 30) in
      let r1, net1 =
        run_impl (fun id -> Algo2.program ~id) ~ids
          ~sched:(Scheduler.random (Rng.create ~seed:(seed + 1)))
      in
      let r2, net2 =
        run_impl (fun id -> Algo2_blocking.program ~id) ~ids
          ~sched:(Scheduler.random (Rng.create ~seed:(seed + 1)))
      in
      r1.sends = r2.sends
      && r1.termination_order = r2.termination_order
      && Array.for_all
           (fun v -> Network.output net1 v = Network.output net2 v)
           (Array.init n Fun.id))

let test_exhaustive_terminal_equivalence () =
  (* The two Algorithm 2 implementations must have the same *set* of
     reachable terminal states (they do not share intermediate states —
     the blocking one stages mailbox pulses eagerly — but every
     schedule must end in the same unique configuration). *)
  let terminals make =
    let acc = ref [] in
    let stats =
      Explore.exhaustive ~make
        ~check:(fun net ->
          acc := Explore.fingerprint net :: !acc;
          true)
        ()
    in
    checkb "complete" false stats.Explore.truncated;
    List.sort_uniq compare !acc
  in
  let ids = [| 2; 3; 1 |] in
  let a =
    terminals (fun () ->
        Network.create (Topology.oriented 3) (fun v ->
            Algo2.program ~id:ids.(v)))
  in
  let b =
    terminals (fun () ->
        Network.create (Topology.oriented 3) (fun v ->
            Algo2_blocking.program ~id:ids.(v)))
  in
  Alcotest.(check (list string)) "same terminal fingerprints" a b

(* ------------------------------------------------------------------ *)
(* Invariants module *)

let test_invariants_clean_on_algo2 () =
  let ids = [| 6; 2; 11; 5; 8 |] in
  let net =
    Network.create (Topology.oriented 5) (fun v -> Algo2.program ~id:ids.(v))
  in
  let checker = Invariants.attach net ~ids in
  let result =
    Network.run ~probe:(fun ~step -> Invariants.probe checker ~step) net
      (Scheduler.random (Rng.create ~seed:9))
  in
  checkb "terminated" true result.all_terminated;
  (match Invariants.violations checker with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "violation: %s"
        (Format.asprintf "%a" Invariants.pp_violation v));
  checkb "ok" true (Invariants.ok checker)

let test_invariants_catch_broken_algorithm () =
  (* The no-lag ablation must trip the Lemma 6/7 machinery or produce a
     bad run; at minimum the checker stays sound (never crashes) and
     the observed failure matches Ablation.observe. *)
  let ids = [| 6; 2; 11; 5; 8 |] in
  let net =
    Network.create (Topology.oriented 5) (fun v ->
        Ablation.algo2_no_lag ~id:ids.(v))
  in
  let checker = Invariants.attach net ~ids in
  let _ =
    Network.run ~max_deliveries:50_000
      ~probe:(fun ~step -> Invariants.probe checker ~step)
      net Scheduler.fifo
  in
  (* The broken variant lacks sigma counters for the CW direction?  No:
     it exposes only rho counters, so Lemma 6 checks are skipped; the
     checker must simply not produce spurious reports. *)
  checkb "checker total function" true
    (List.for_all (fun (v : Invariants.violation) -> v.step >= 0)
       (Invariants.violations checker))

(* ------------------------------------------------------------------ *)
(* Exhaustive exploration (bounded model checking) *)

let algo2_terminal_ok ids net =
  let n = Array.length ids in
  let max_pos = Ids.argmax ids in
  Network.is_quiescent net
  && Network.all_terminated net
  && Metrics.post_termination_deliveries (Network.metrics net) = 0
  && Metrics.sends (Network.metrics net)
     = Formulas.algo2_total ~n ~id_max:(Ids.id_max ids)
  && Array.for_all
       (fun v ->
         Output.equal_role (Network.output net v).Output.role
           (if v = max_pos then Output.Leader else Output.Non_leader))
       (Array.init n Fun.id)

let test_explore_algo2_all_schedules_n2 () =
  (* Every ID pair in {1..4}^2, every schedule: Theorem 1 holds in all
     reachable executions. *)
  let checked = ref 0 in
  for a = 1 to 4 do
    for b = 1 to 4 do
      if a <> b then begin
        let ids = [| a; b |] in
        let stats =
          Explore.exhaustive
            ~make:(fun () ->
              Network.create (Topology.oriented 2) (fun v ->
                  Algo2.program ~id:ids.(v)))
            ~check:(algo2_terminal_ok ids) ()
        in
        checked := !checked + stats.Explore.terminal_states;
        checkb
          (Printf.sprintf "ids (%d,%d) truncation" a b)
          false stats.Explore.truncated;
        checki (Printf.sprintf "ids (%d,%d) failures" a b) 0
          stats.Explore.failures;
        checkb "reached terminals" true (stats.Explore.terminal_states >= 1)
      end
    done
  done;
  checkb "checked some terminals" true (!checked >= 12)

let test_explore_algo2_all_schedules_n3 () =
  let ids = [| 2; 3; 1 |] in
  let stats =
    Explore.exhaustive
      ~make:(fun () ->
        Network.create (Topology.oriented 3) (fun v ->
            Algo2.program ~id:ids.(v)))
      ~check:(algo2_terminal_ok ids) ()
  in
  checkb "not truncated" false stats.Explore.truncated;
  checki "no failures" 0 stats.Explore.failures;
  checkb "explored a real tree" true (stats.Explore.distinct_states > 50)

let test_explore_algo1_all_schedules () =
  let ids = [| 2; 3 |] in
  let stats =
    Explore.exhaustive
      ~make:(fun () ->
        Network.create (Topology.oriented 2) (fun v ->
            Algo1.program ~id:ids.(v)))
      ~check:(fun net ->
        Network.is_quiescent net
        && Metrics.sends (Network.metrics net) = 2 * 3
        && Output.equal_role (Network.output net 1).Output.role Output.Leader
        && Output.equal_role (Network.output net 0).Output.role
             Output.Non_leader)
      ()
  in
  checki "no failures" 0 stats.Explore.failures;
  checkb "not truncated" false stats.Explore.truncated

let test_explore_algo1_duplicate_maxima () =
  (* Lemma 16/17 model-checked: with two copies of the maximal ID, every
     schedule ends quiescent with exactly the two max nodes in the
     Leader state and n*ID_max pulses. *)
  let ids = [| 3; 3; 1 |] in
  let stats =
    Explore.exhaustive
      ~make:(fun () ->
        Network.create (Topology.oriented 3) (fun v ->
            Algo1.program ~id:ids.(v)))
      ~check:(fun net ->
        Network.is_quiescent net
        && Metrics.sends (Network.metrics net) = 3 * 3
        && Array.for_all
             (fun v ->
               Output.equal_role (Network.output net v).Output.role
                 (if ids.(v) = 3 then Output.Leader else Output.Non_leader))
             (Array.init 3 Fun.id))
      ()
  in
  checkb "complete" false stats.Explore.truncated;
  checki "no failures" 0 stats.Explore.failures

let test_explore_finds_ablation_bugs () =
  (* The no-lag ablation must have at least one reachable bad terminal
     state for some instance — exhaustive search will find it if any
     sampled scheduler could. *)
  let found = ref false in
  List.iter
    (fun ids ->
      let stats =
        Explore.exhaustive ~max_states:100_000
          ~make:(fun () ->
            Network.create
              (Topology.oriented (Array.length ids))
              (fun v -> Ablation.algo2_no_lag ~id:ids.(v)))
          ~check:(algo2_terminal_ok ids) ()
      in
      if stats.Explore.failures > 0 then found := true)
    [ [| 1; 2 |]; [| 2; 1 |]; [| 3; 1 |]; [| 2; 3; 1 |] ];
  checkb "exhaustive search exposes the no-lag bug" true !found

let test_fingerprint_distinguishes () =
  let mk () =
    Network.create (Topology.oriented 2) (fun v -> Algo2.program ~id:(v + 1))
  in
  let a = mk () and b = mk () in
  checkb "same initial fingerprint" true
    (Explore.fingerprint a = Explore.fingerprint b);
  ignore (Network.step b Scheduler.fifo);
  checkb "diverges after a delivery" false
    (Explore.fingerprint a = Explore.fingerprint b)

(* ------------------------------------------------------------------ *)
(* Diagram *)

let test_diagram_renders () =
  let ids = [| 2; 3 |] in
  let net =
    Network.create ~sink:(Sink.memory ()) (Topology.oriented 2) (fun v ->
        Algo2.program ~id:ids.(v))
  in
  let _ = Network.run net Scheduler.fifo in
  match Network.trace net with
  | None -> Alcotest.fail "no trace"
  | Some tr ->
      let s = Diagram.render tr ~n:2 in
      checkb "has arrows" true
        (String.exists (fun c -> c = '>') s && String.exists (fun c -> c = '<') s);
      checkb "has termination marks" true (String.exists (fun c -> c = 'X') s);
      let s' = Diagram.render ~max_rows:3 tr ~n:2 in
      checkb "elision note" true
        (String.length s' < String.length s)

let () =
  Alcotest.run "colring-extensions"
    [
      ( "franklin",
        [
          Alcotest.test_case "basic" `Quick test_franklin_basic;
          Alcotest.test_case "small rings" `Quick test_franklin_small;
          QCheck_alcotest.to_alcotest prop_franklin;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "no-lag fails" `Quick test_ablation_no_lag_fails;
          Alcotest.test_case "algo2 passes gauntlet" `Quick
            test_real_algo2_passes_gauntlet;
          Alcotest.test_case "same-virtual-ids fails" `Quick
            test_ablation_same_virtual_ids_fails;
          Alcotest.test_case "no-absorption never quiesces" `Quick
            test_ablation_no_absorption_never_quiesces;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "mimicry" `Quick test_adversary_replay_mimicry;
          Alcotest.test_case "distinct ids" `Quick
            test_adversary_chooses_distinct_ids;
          Alcotest.test_case "best group consistent" `Quick
            test_best_group_matches_best_shared_prefix;
        ] );
      ( "injection",
        [
          Alcotest.test_case "breaks algo2" `Quick test_injection_breaks_algo2;
          Alcotest.test_case "counted" `Quick test_injection_counted;
        ] );
      ( "differential",
        [
          Alcotest.test_case "blocking algo2 matches" `Quick
            test_blocking_algo2_matches;
          QCheck_alcotest.to_alcotest prop_blocking_algo2_matches;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean on algo2" `Quick
            test_invariants_clean_on_algo2;
          Alcotest.test_case "sound on broken variant" `Quick
            test_invariants_catch_broken_algorithm;
        ] );
      ( "explore",
        [
          Alcotest.test_case "algo2 n=2 all schedules" `Quick
            test_explore_algo2_all_schedules_n2;
          Alcotest.test_case "algo2 n=3 all schedules" `Quick
            test_explore_algo2_all_schedules_n3;
          Alcotest.test_case "algo1 all schedules" `Quick
            test_explore_algo1_all_schedules;
          Alcotest.test_case "lemma 16/17 all schedules" `Quick
            test_explore_algo1_duplicate_maxima;
          Alcotest.test_case "finds ablation bugs" `Quick
            test_explore_finds_ablation_bugs;
          Alcotest.test_case "fingerprints" `Quick test_fingerprint_distinguishes;
          Alcotest.test_case "impl-equivalent terminals" `Quick
            test_exhaustive_terminal_equivalence;
        ] );
      ("diagram", [ Alcotest.test_case "renders" `Quick test_diagram_renders ]);
    ]
