(* Tests for the sweep harness: workload generators produce valid
   instances, the grid covers what it should, CSV round-trips shape,
   and summaries aggregate correctly. *)

open Colring_engine
open Colring_core
open Colring_harness
module Rng = Colring_stats.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cli: the one set of flag-validation rules both entry points use. *)

let contains_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let is_error ~flag = function
  (* The message must name the offending flag, so the user sees which
     of several numeric options was bad. *)
  | Error msg -> contains_sub msg flag
  | Ok _ -> false

let test_cli_validators () =
  checkb "positive accepts 1" true (Cli.positive ~flag:"-j" 1 = Ok 1);
  checkb "positive rejects 0" true (is_error ~flag:"-j" (Cli.positive ~flag:"-j" 0));
  checkb "positive rejects negative" true
    (is_error ~flag:"--max-deliveries"
       (Cli.positive ~flag:"--max-deliveries" (-5)));
  checkb "non_negative accepts 0" true
    (Cli.non_negative ~flag:"--jitter" 0 = Ok 0);
  checkb "non_negative rejects -1" true
    (is_error ~flag:"--jitter" (Cli.non_negative ~flag:"--jitter" (-1)));
  checkb "ring_size accepts 2" true (Cli.ring_size ~flag:"-n" 2 = Ok 2);
  checkb "ring_size rejects 1" true
    (is_error ~flag:"-n" (Cli.ring_size ~flag:"-n" 1));
  checkb "ring_size rejects negative" true
    (is_error ~flag:"-n" (Cli.ring_size ~flag:"-n" (-3)))

let test_cli_jobs_default () =
  checkb "Some 3 passes through" true (Cli.jobs ~flag:"-j" (Some 3) = Ok 3);
  checkb "Some 0 rejected" true (is_error ~flag:"-j" (Cli.jobs ~flag:"-j" (Some 0)));
  checkb "None resolves to default_jobs" true
    (Cli.jobs ~flag:"-j" None = Ok (Colring_runtime.Pool.default_jobs ()))

let test_workload_shapes () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun n ->
          let ids, topo = w.generate (Rng.create ~seed:n) ~n in
          checki (w.name ^ " n") n (Array.length ids);
          Topology.check topo;
          Array.iter
            (fun id -> checkb (w.name ^ " positive") true (id >= 1))
            ids;
          if w.oriented then
            checkb (w.name ^ " oriented") true (Topology.is_oriented topo))
        [ 1; 2; 5; 16 ])
    (Workload.all_for_election
    @ [
        Workload.dense_scrambled;
        Workload.sparse_scrambled ~factor:4;
        Workload.duplicated_max ~copies:3;
        Workload.anonymous ~c:1.0;
      ])

let test_workload_determinism () =
  let w = Workload.sparse ~factor:8 in
  let a, _ = w.generate (Rng.create ~seed:3) ~n:10 in
  let b, _ = w.generate (Rng.create ~seed:3) ~n:10 in
  checkb "same" true (a = b)

let test_decreasing_is_cr_worst () =
  let ids, _ = Workload.decreasing.generate (Rng.create ~seed:1) ~n:5 in
  Alcotest.(check (array int)) "ids" [| 5; 4; 3; 2; 1 |] ids

let test_duplicated_max_has_copies () =
  let w = Workload.duplicated_max ~copies:3 in
  let ids, _ = w.generate (Rng.create ~seed:2) ~n:8 in
  let id_max = Ids.id_max ids in
  checki "copies" 3
    (Array.fold_left (fun acc x -> if x = id_max then acc + 1 else acc) 0 ids)

let small_grid () =
  Sweep.election
    ~algorithms:[ Election.Algo2; Election.Algo3 Algo3.Improved ]
    ~workloads:[ Workload.dense; Workload.dense_scrambled ]
    ~ns:[ 2; 5 ] ~seeds:[ 1; 2 ]
    ~schedulers:[ (fun s -> Scheduler.random (Rng.create ~seed:s)) ]
    ()

let test_sweep_grid_coverage () =
  let ms = small_grid () in
  (* algo2 runs only on the oriented workload (1), algo3 on both (2):
     3 combos x 2 ns x 2 seeds x 1 scheduler = 12. *)
  checki "cells" 12 (List.length ms);
  checkb "all ok" true (List.for_all (fun m -> m.Sweep.ok) ms);
  checkb "exact counts" true
    (List.for_all (fun m -> m.Sweep.sends = m.Sweep.expected) ms)

let test_sweep_skips_incompatible () =
  let ms =
    Sweep.election ~algorithms:[ Election.Algo1 ]
      ~workloads:[ Workload.dense_scrambled ]
      ~ns:[ 4 ] ~seeds:[ 1 ]
      ~schedulers:[ (fun _ -> Scheduler.fifo) ]
      ()
  in
  checki "skipped" 0 (List.length ms)

let test_sweep_id_cap () =
  let ms =
    Sweep.election ~id_max_cap:10
      ~algorithms:[ Election.Algo2 ]
      ~workloads:[ Workload.sparse ~factor:100 ]
      ~ns:[ 4 ] ~seeds:[ 1 ]
      ~schedulers:[ (fun _ -> Scheduler.fifo) ]
      ()
  in
  checki "capped out" 0 (List.length ms)

let test_csv_shape () =
  let ms = small_grid () in
  let csv = Sweep.to_csv ms in
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> l <> "")
  in
  checki "lines" (1 + List.length ms) (List.length lines);
  checkb "header" true
    (List.hd lines
    = "algorithm,workload,n,id_max,seed,scheduler,sends,expected,deliveries,ok");
  List.iter
    (fun line ->
      checki "fields" 10 (List.length (String.split_on_char ',' line)))
    lines

let par_grid ~jobs () =
  Sweep.election ~jobs
    ~algorithms:[ Election.Algo2; Election.Algo3 Algo3.Improved ]
    ~workloads:[ Workload.dense; Workload.sparse_scrambled ~factor:4 ]
    ~ns:[ 2; 5; 9 ] ~seeds:[ 1; 2; 3 ]
    ~schedulers:
      [
        (fun s -> Scheduler.random (Rng.create ~seed:s));
        (fun _ -> Scheduler.lifo);
      ]
    ()

let test_sweep_parallel_determinism () =
  let reference = par_grid ~jobs:1 () in
  checkb "non-trivial grid" true (List.length reference > 20);
  List.iter
    (fun jobs ->
      let ms = par_grid ~jobs () in
      checkb
        (Printf.sprintf "measurements identical at jobs=%d" jobs)
        true
        (ms = reference);
      Alcotest.(check string)
        (Printf.sprintf "csv bytes identical at jobs=%d" jobs)
        (Sweep.to_csv reference) (Sweep.to_csv ms))
    [ 2; 4 ]

(* The scheduler constructor receives a per-cell seed derived from the
   cell's own stream, so a random adversary is decorrelated across
   cells — except under ~shared_adversary, where every cell gets the
   raw trial seed (E2's "same instance, many adversaries" mode). *)
let test_sweep_scheduler_seeds () =
  let record seen s =
    seen := s :: !seen;
    Scheduler.fifo
  in
  let run ~shared_adversary seen =
    ignore
      (Sweep.election ~shared_adversary
         ~algorithms:[ Election.Algo2 ]
         ~workloads:[ Workload.dense ]
         ~ns:[ 2; 4; 8 ] ~seeds:[ 5; 6 ]
         ~schedulers:[ record seen ]
         ())
  in
  let seen = ref [] in
  run ~shared_adversary:false seen;
  checki "one seed per cell" 6 (List.length !seen);
  checki "seeds distinct across cells" 6
    (List.length (List.sort_uniq compare !seen));
  checkb "seeds are not the trial seeds" true
    (List.for_all (fun s -> s <> 5 && s <> 6) !seen);
  let seen = ref [] in
  run ~shared_adversary:true seen;
  checkb "shared adversary passes trial seeds" true
    (List.sort_uniq compare !seen = [ 5; 6 ])

let test_summary_groups () =
  let ms = small_grid () in
  let rows = Sweep.summarize ms in
  (* 3 combos x 2 ns = 6 groups. *)
  checki "groups" 6 (List.length rows);
  List.iter
    (fun (r : Sweep.summary_row) ->
      checki (r.group ^ " runs") 2 r.runs;
      checki (r.group ^ " all ok") 2 r.ok_runs;
      checkb (r.group ^ " exact") true (r.max_rel_err_vs_expected < 1e-9))
    rows

(* ------------------------------------------------------------------ *)
(* Topo: the shared --topology grammar and its materializer *)

let test_topo_parse_round_trip () =
  List.iter
    (fun s ->
      match Topo.parse s with
      | Ok t -> Alcotest.(check string) (s ^ " round-trips") s (Topo.to_string t)
      | Error msg -> Alcotest.failf "%s rejected: %s" s msg)
    [ "ring"; "ring:6"; "theta:8"; "k4"; "bowtie"; "random2ec:12:5" ];
  checkb "two-ear is bowtie" true (Topo.parse "two-ear" = Ok Topo.Bowtie);
  List.iter
    (fun s ->
      checkb (s ^ " rejected, naming the flag") true
        (match Topo.parse s with
        | Error msg -> contains_sub msg "--topology"
        | Ok _ -> false))
    [ "ring:1"; "theta:3"; "theta"; "random2ec:12"; "random2ec:3:5"; "k5"; "" ]

let test_topo_materialize () =
  let module G = Colring_graph.Gtopology in
  List.iter
    (fun (s, expect_n) ->
      let t = Result.get_ok (Topo.parse s) in
      let g = Topo.materialize ~default_n:8 t in
      checki (s ^ " node count") expect_n (G.n g);
      checki (s ^ " node_count agrees") expect_n (Topo.node_count ~default_n:8 t);
      checkb (s ^ " 2ec") true (G.is_two_edge_connected g))
    [
      ("ring", 8);
      ("ring:5", 5);
      ("theta:4", 4);
      ("theta:9", 9);
      ("k4", 4);
      ("bowtie", 5);
      ("random2ec:12:5", 12);
    ];
  checkb "ring is ring" true (Topo.is_ring (Result.get_ok (Topo.parse "ring:5")));
  checkb "theta is not ring" false
    (Topo.is_ring (Result.get_ok (Topo.parse "theta:4")))

let test_gelection_sweep_determinism () =
  let grid jobs =
    let chunks = Buffer.create 256 in
    let ms =
      Sweep.gelection ~jobs
        ~journal:(Buffer.add_string chunks)
        ~topologies:
          [ Topo.Theta 5; Topo.K4; Topo.Bowtie; Topo.Ring (Some 6) ]
        ~seeds:[ 1; 2 ]
        ~schedulers:
          [
            (fun s -> Scheduler.random (Rng.create ~seed:s));
            (fun _ -> Scheduler.fifo);
          ]
        ()
    in
    (ms, Buffer.contents chunks)
  in
  let ms1, j1 = grid 1 in
  let ms4, j4 = grid 4 in
  checkb "measurements identical across jobs" true (ms1 = ms4);
  checkb "journal identical across jobs" true (String.equal j1 j4);
  checki "grid size" (4 * 2 * 2) (List.length ms1);
  List.iter
    (fun (m : Sweep.gmeasurement) ->
      checkb (m.g_topology ^ " ok") true m.g_ok;
      checki (m.g_topology ^ " exact sends") m.g_expected m.g_sends;
      checkb (m.g_topology ^ " covered") true (m.g_covered = m.g_n))
    ms1

let cli_tests =
  [
    Alcotest.test_case "validators" `Quick test_cli_validators;
    Alcotest.test_case "jobs default" `Quick test_cli_jobs_default;
    Alcotest.test_case "topology grammar" `Quick test_topo_parse_round_trip;
    Alcotest.test_case "topology materializer" `Quick test_topo_materialize;
  ]

let () =
  Alcotest.run "colring-harness"
    [
      ( "workloads",
        [
          Alcotest.test_case "shapes" `Quick test_workload_shapes;
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "decreasing" `Quick test_decreasing_is_cr_worst;
          Alcotest.test_case "duplicated max" `Quick
            test_duplicated_max_has_copies;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "grid coverage" `Quick test_sweep_grid_coverage;
          Alcotest.test_case "incompatible skipped" `Quick
            test_sweep_skips_incompatible;
          Alcotest.test_case "id cap" `Quick test_sweep_id_cap;
          Alcotest.test_case "csv" `Quick test_csv_shape;
          Alcotest.test_case "parallel determinism" `Quick
            test_sweep_parallel_determinism;
          Alcotest.test_case "scheduler seeds" `Quick
            test_sweep_scheduler_seeds;
          Alcotest.test_case "summary" `Quick test_summary_groups;
          Alcotest.test_case "graph sweep determinism" `Quick
            test_gelection_sweep_determinism;
        ] );
      ("cli", cli_tests);
    ]
