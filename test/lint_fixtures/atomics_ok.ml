(* Fixture: disciplined atomics — manifested make, read-modify-write
   through fetch_and_add, CAS retry with backoff. *)

let total = Atomic.make 0
let bump () = ignore (Atomic.fetch_and_add total 1)

let rec spin c =
  let v = Atomic.get c in
  if Atomic.compare_and_set c v (v + 1) then ()
  else begin
    Domain.cpu_relax ();
    spin c
  end
