(* Fires [determinism] when linted as lib/engine/*.ml; clean when
   linted as lib/stats/rng.ml. *)
let draw () = Random.int 3
