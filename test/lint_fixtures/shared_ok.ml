(* Fixture: clean domain-spawned code — every mutation target is
   either allocated inside the walked body or declared in the test's
   shared manifest ([results]). *)

type acc = { mutable hits : int }

let results = Array.make 8 0

let go jobs =
  Pool.run ~jobs 8 (fun i ->
      let scratch = Array.make 4 0 in
      let st = { hits = 0 } in
      let r = ref 0 in
      scratch.(0) <- i;
      st.hits <- st.hits + 1;
      r := !r + 1;
      results.(i) <- scratch.(0) + st.hits + !r)
