(* Fixture: dls-discipline violations — a key minted inside a
   function, and a payload escaping its owning domain both ways
   (stored, then captured by a spawned closure). *)

let make_key () = Domain.DLS.new_key (fun () -> Buffer.create 16)
let cache = Domain.DLS.new_key (fun () -> Buffer.create 16)
let leak = ref None

let escape () =
  let b = Domain.DLS.get cache in
  leak := Some b;
  Domain.spawn (fun () -> Buffer.clear b)
