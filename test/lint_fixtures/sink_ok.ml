(* Clean everywhere: pattern-matching Trace events is consumption,
   not construction. *)
let is_deliver = function Trace.Deliver _ -> true | _ -> false
