(* Fixture: un-manifested shared-state mutation inside domain-spawned
   code.  Linted "as" a lib/ path by test_lint; never compiled. *)

type counter = { mutable count : int }

let c = { count = 0 }
let tally = Array.make 8 0

(* A closure handed straight to the pool: writes a module-level array
   and writes + reads a mutable field, none of it manifested. *)
let go jobs =
  Pool.run ~jobs 8 (fun i ->
      tally.(i) <- i;
      c.count <- c.count + 1)

(* Reached through the unit call graph, not the literal closure: the
   spawned closure calls [helper], whose [Bytes] write on a parameter
   must still be flagged. *)
let helper buf = Bytes.set buf 0 'x'
let indirect buf = Domain.spawn (fun () -> helper buf)
