(* Fires [determinism] (three times) under lib/; clean under bench/. *)
let h x = Hashtbl.hash x
let m x = Marshal.to_string x []
let o x = Obj.repr x
