(* Fires [hot-alloc] when linted as lib/engine/envq.ml (where [push]
   and [pop] are in the hot.sexp manifest): a tuple, a closure, a
   formatting call, and a partial application of a same-file
   function. *)
let helper a b c = a + b + c

let push q x =
  let pair = (q, x) in
  ignore pair;
  let f = fun y -> y + x in
  ignore f;
  Printf.printf "%d" x

let pop q = ignore (helper q 1)
