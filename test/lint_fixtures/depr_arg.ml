(* Fires [deprecated-arg] three times outside the definition sites
   (lib/engine/network.ml, lib/core/election.ml): the call site, the
   optional parameter, and the forwarding application. *)
let create () = Network.create ~record_trace:true ()
let wrap ?record_trace () = Network.run ?record_trace ()
