(* Clean as lib/engine/envq.ml: allocation in a hot function is fine
   behind the live-sink guard, and cold functions may allocate
   freely.  Hot-function parameters are not closures. *)
type q = { mutable observed : bool }

let push q x =
  if q.observed then ignore (q, x);
  x + 1

let cold q x = ignore (q, x)
