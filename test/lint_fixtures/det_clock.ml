(* Fires [determinism] (twice) outside bench/timing.ml; clean there. *)
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
