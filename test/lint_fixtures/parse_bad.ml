(* Fires [parse-error]: not valid OCaml. *)
let x =
