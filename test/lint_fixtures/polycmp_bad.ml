(* Fires [poly-compare] four times when linted under lib/engine/. *)
let c1 a b = compare a b
let c2 a b = Stdlib.compare a b
let e1 (a : int list) b = a = b
let e2 = ( = )
