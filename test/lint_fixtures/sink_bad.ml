(* Fires [sink-discipline] twice outside lib/engine/sink.ml: a Trace
   event construction and a direct Trace.create call. *)
let ev v = Trace.Deliver (v, v)
let buf () = Trace.create ()
