(* Fixture: disciplined DLS use — top-level key, payload consumed
   inside the closure that fetched it and never escaping. *)

let cache = Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let lookup k =
  let tbl = Domain.DLS.get cache in
  match Hashtbl.find_opt tbl k with
  | Some v -> v
  | None ->
      Hashtbl.add tbl k (k * 2);
      k * 2
