(* Fixture: atomics-discipline violations.  Linted "as" a lib/ path
   with a hot manifest containing [spin]; never compiled. *)

(* Un-manifested Atomic.make in library code. *)
let total = Atomic.make 0

(* Lost update: a concurrent write between the get and the set is
   silently discarded. *)
let bump () = Atomic.set total (Atomic.get total + 1)

(* CAS retry loop in a hot function with no Domain.cpu_relax backoff. *)
let rec spin c =
  let v = Atomic.get c in
  if Atomic.compare_and_set c v (v + 1) then () else spin c
