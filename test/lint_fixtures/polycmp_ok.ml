(* Clean under lib/engine/: every comparison has an immediate operand
   or is already monomorphic. *)
let z x = x = 0
let t b = b = true
let n l = l <> []
let o v = v = None
let neg x = x = -1
let mono a b = Int.equal a b
