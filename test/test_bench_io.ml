(* Tests for the bench report reader/writer: values round-trip through
   to_string/of_string, and the accessors used by the schema validation
   behave on the shapes BENCH_engine.json contains. *)

let checkb = Alcotest.(check bool)

let sample =
  Bench_io.(
    Obj
      [
        ("schema_version", Int 2);
        ("domains_recommended", Int 1);
        ("note", String "quote \" backslash \\ newline \n tab \t done");
        ("flags", List [ Bool true; Bool false ]);
        ("empty_list", List []);
        ("empty_obj", Obj []);
        ( "sweep",
          Obj
            [
              ("speedup_4_vs_1", Float 0.5);
              ("cells_per_sec", Float 1234.5);
              ("whole", Float 3.0);
              ("ints", List [ Int 1; Int (-2); Int 3 ]);
            ] );
      ])

let test_round_trip () =
  let once = Bench_io.to_string sample in
  let reparsed = Bench_io.of_string once in
  checkb "value round-trips" true (reparsed = sample);
  Alcotest.(check string) "fixpoint" once (Bench_io.to_string reparsed)

let test_accessors () =
  let open Bench_io in
  checkb "schema_version" true
    (Option.bind (member "schema_version" sample) get_int = Some 2);
  checkb "missing member" true (member "absent" sample = None);
  let sweep = Option.get (member "sweep" sample) in
  checkb "float field" true
    (Option.bind (member "speedup_4_vs_1" sweep) get_float = Some 0.5);
  checkb "int promotes to float" true
    (get_float (Int 7) = Some 7.0);
  checkb "list field" true
    (match Option.bind (member "ints" sweep) get_list with
    | Some [ Int 1; Int (-2); Int 3 ] -> true
    | _ -> false)

let test_parse_errors () =
  let fails s =
    match Bench_io.of_string s with
    | exception Bench_io.Parse_error _ -> true
    | _ -> false
  in
  checkb "trailing garbage" true (fails "{} x");
  checkb "unterminated string" true (fails "\"abc");
  checkb "bare word" true (fails "nope");
  checkb "unclosed object" true (fails "{\"a\": 1")

let () =
  Alcotest.run "colring-bench-io"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
    ]
