(* Adversarial multicore stress: the dynamic cross-check behind the
   domain-safety static rules (DESIGN.md §8).  CI runs this suite on
   a ThreadSanitizer compiler switch (ocaml-option-tsan), where any
   unsynchronized shared access the lint missed becomes a hard
   failure; locally it doubles as a correctness test.

   The assertions are exactly-once counts and byte-identity — the
   things a data race corrupts first.  Every shared write in this
   file is either an [Atomic], or a disjoint per-index slot published
   by the pool join; racy sharing inside the libraries under test is
   exactly what TSan is here to catch. *)

module Pool = Colring_runtime.Pool
module Batch = Colring_harness.Batch
module Backend = Colring_transport.Backend
module Election = Colring_core.Election
module Ids = Colring_core.Ids
module Topology = Colring_engine.Topology
module Scheduler = Colring_engine.Scheduler
module Rng = Colring_stats.Rng

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let sched seed = Scheduler.random (Rng.create ~seed)
let jobs_list = [ 2; 4; 8 ]

(* Adversarial chunkings: maximal contention (1), ragged tails (3 on
   a prime n), and chunks far larger than the queue (4096). *)
let chunks_list = [ 1; 3; 64; 4096 ]

(* ------------------------------------------------------------------ *)
(* Pool: every index claimed exactly once under every chunking, both
   modes. *)

let exactly_once mode mode_name () =
  let n = 1009 in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          let hits = Array.make n 0 in
          let total = Atomic.make 0 in
          Pool.run ~mode ~chunk ~jobs n (fun i ->
              hits.(i) <- hits.(i) + 1;
              Atomic.incr total);
          checki
            (Printf.sprintf "%s -j%d chunk=%d total" mode_name jobs chunk)
            n (Atomic.get total);
          Array.iteri
            (fun i h ->
              if h <> 1 then
                Alcotest.failf "%s -j%d chunk=%d: index %d ran %d times"
                  mode_name jobs chunk i h)
            hits)
        chunks_list)
    jobs_list

let test_static_exactly_once = exactly_once Pool.Static "static"
let test_steal_exactly_once = exactly_once Pool.Steal "steal"

(* Skewed workloads force real steals: sparse indices are ~1000x the
   rest, so eager domains drain their own deques and raid the slow
   one's while it is still popping. *)
let test_steal_skewed () =
  let n = 257 in
  let sink = Array.make n 0 in
  List.iter
    (fun jobs ->
      Array.fill sink 0 n 0;
      Pool.run ~mode:Pool.Steal ~chunk:1 ~jobs n (fun i ->
          let rounds = if i mod 17 = 0 then 20_000 else 20 in
          let acc = ref 0 in
          for k = 1 to rounds do
            acc := !acc + (k land 7)
          done;
          sink.(i) <- Sys.opaque_identity !acc);
      Array.iteri
        (fun i v ->
          if v = 0 then Alcotest.failf "-j%d: index %d never ran" jobs i)
        sink)
    jobs_list

let test_map_under_contention () =
  List.iter
    (fun (mode, mode_name) ->
      List.iter
        (fun jobs ->
          let out = Pool.map ~mode ~chunk:3 ~jobs 2048 (fun i -> i * i) in
          Array.iteri
            (fun i v ->
              if v <> i * i then
                Alcotest.failf "%s -j%d: slot %d holds %d" mode_name jobs i v)
            out)
        jobs_list)
    [ (Pool.Static, "static"); (Pool.Steal, "steal") ]

(* Exception propagation under contention: a mid-run failure races
   against completing workers on every round, must reach the caller
   without wedging the pool, and the pool must be reusable right
   after. *)
exception Boom

let test_failure_race () =
  for round = 1 to 20 do
    (try
       Pool.run ~mode:Pool.Steal ~chunk:1 ~jobs:4 64 (fun i ->
           if i = 17 then raise Boom);
       Alcotest.fail "exception was swallowed"
     with Boom -> ());
    let ok = Atomic.make 0 in
    Pool.run ~jobs:4 64 (fun _ -> Atomic.incr ok);
    checki (Printf.sprintf "round %d reuse" round) 64 (Atomic.get ok)
  done

(* ------------------------------------------------------------------ *)
(* Flock batch waves: many elections per wave across domains, with
   per-job journals byte-identical to the sequential run for every
   pool width and both modes (the bit-identical-for-every--j
   contract under load). *)

let test_batch_waves () =
  let specs =
    Array.init 24 (fun k ->
        let n = 4 + (k mod 5) in
        { Batch.algorithm = Election.Algo2; n; seed = k + 1; id_max = 2 * n })
  in
  let journals ~jobs ~mode =
    let chunks = Array.make (Array.length specs) "" in
    let outcome =
      Batch.run ~jobs ~mode
        ~journal:(fun i chunk -> chunks.(i) <- chunk)
        ~sched specs
    in
    Array.iter
      (fun r -> checkb "job elects" true (Election.ok r))
      outcome.Batch.reports;
    chunks
  in
  let expected = journals ~jobs:1 ~mode:Pool.Static in
  List.iter
    (fun (mode, mode_name) ->
      List.iter
        (fun jobs ->
          let got = journals ~jobs ~mode in
          Array.iteri
            (fun i chunk ->
              checks
                (Printf.sprintf "%s -j%d job %d" mode_name jobs i)
                expected.(i) chunk)
            got)
        [ 2; 4 ])
    [ (Pool.Static, "static"); (Pool.Steal, "steal") ]

(* ------------------------------------------------------------------ *)
(* Domains transport: one OCaml domain per node over atomic pulse
   counters, every live run replay-verified against the simulator. *)

let test_domains_backend () =
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let topo = Topology.oriented n in
          let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max:(2 * n) in
          let r =
            Backend.elect ~seed Backend.Domains Election.Algo2 ~topo ~ids
          in
          checkb
            (Printf.sprintf "n=%d seed=%d verified" n seed)
            true r.Backend.verified;
          checkb
            (Printf.sprintf "n=%d seed=%d elects" n seed)
            true
            (Election.ok r.Backend.report))
        [ 1; 2; 3 ])
    [ 3; 4; 6 ]

let () =
  Alcotest.run "stress"
    [
      ( "pool",
        [
          Alcotest.test_case "static exactly-once" `Quick
            test_static_exactly_once;
          Alcotest.test_case "steal exactly-once" `Quick
            test_steal_exactly_once;
          Alcotest.test_case "steal skewed" `Quick test_steal_skewed;
          Alcotest.test_case "map under contention" `Quick
            test_map_under_contention;
          Alcotest.test_case "failure race" `Quick test_failure_race;
        ] );
      ( "batch",
        [ Alcotest.test_case "flock waves byte-identical" `Quick
            test_batch_waves ] );
      ( "transport",
        [ Alcotest.test_case "domains backend verified" `Quick
            test_domains_backend ] );
    ]
