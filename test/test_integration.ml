(* Cross-library integration tests: harness grids over every algorithm,
   invariants attached to live election runs, fast-simulator cross
   checks inside sweeps, blocking Algorithm 2 composed with the tape,
   and the diagram/trace machinery on real executions. *)

open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng
module Harness = Colring_harness
module Compose = Colring_compose
module Fast = Colring_fastsim.Fast

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_full_grid_all_algorithms () =
  (* Every algorithm x every compatible workload x two sizes x two
     seeds x two schedulers: everything must be exactly on the paper's
     formula. *)
  let ms =
    Harness.Sweep.election
      ~algorithms:
        [
          Election.Algo1;
          Election.Algo2;
          Election.Algo3 Algo3.Doubled;
          Election.Algo3 Algo3.Improved;
          Election.Algo3_resample;
        ]
      ~workloads:
        (Harness.Workload.all_for_election
        @ [
            Harness.Workload.dense_scrambled;
            Harness.Workload.sparse_scrambled ~factor:4;
          ])
      ~ns:[ 3; 9 ] ~seeds:[ 11; 12 ]
      ~schedulers:
        [
          (fun s -> Scheduler.random (Rng.create ~seed:s));
          (fun _ -> Scheduler.lifo);
        ]
      ()
  in
  checkb "grid non-trivial" true (List.length ms > 100);
  List.iter
    (fun (m : Harness.Sweep.measurement) ->
      checkb
        (Printf.sprintf "%s/%s n=%d seed=%d %s ok" m.algorithm m.workload m.n
           m.seed m.scheduler)
        true m.ok;
      checki "exact" m.expected m.sends)
    ms

let test_sweep_agrees_with_fastsim () =
  (* The sweep's measured counts must equal the analytical simulator's
     on the same instances. *)
  let seeds = [ 21; 22; 23 ] in
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 3 + Rng.int rng 10 in
      let ids = Ids.distinct (Rng.split rng) ~n ~id_max:(4 * n) in
      let engine =
        Election.run_report Election.Algo2 ~topo:(Topology.oriented n) ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      let fast = Fast.algo2 ~ids in
      checki "totals" fast.Fast.total engine.sends;
      checki "cw" fast.Fast.cw engine.sends_cw)
    seeds

let test_invariants_during_harness_runs () =
  (* Attach the Lemma 6/7 checker to a run from the harness's dense
     workload at a non-trivial size. *)
  let ids, topo =
    Harness.Workload.dense.generate (Rng.create ~seed:31) ~n:20
  in
  let net = Network.create topo (fun v -> Algo2.program ~id:ids.(v)) in
  let checker = Invariants.attach net ~ids in
  let result =
    Network.run
      ~probe:(fun ~step -> Invariants.probe checker ~step)
      net (Scheduler.random (Rng.create ~seed:32))
  in
  checkb "terminated" true result.all_terminated;
  checkb "no violations" true (Invariants.ok checker)

let test_blocking_algo2_composes_with_tape () =
  (* The chain combinator + tape must work equally with the blocking
     implementation of Algorithm 2 as phase one. *)
  let ids = [| 6; 2; 9; 4 |] in
  let n = Array.length ids in
  let net =
    Network.create (Topology.oriented n) (fun v ->
        Compose.Chain.chain
          (Algo2_blocking.program ~id:ids.(v))
          (fun (out : Output.t) ->
            Blocking.make (fun api ->
                let s =
                  Compose.Tape.establish api
                    ~is_root:(Output.equal_role out.role Output.Leader)
                in
                let gathered = Compose.Tape.all_gather s ~value:ids.(v) in
                api.set_output
                  (Output.with_values (Array.to_list gathered) Output.empty);
                api.terminate ())))
  in
  let result = Network.run net (Scheduler.random (Rng.create ~seed:5)) in
  checkb "quiescent termination" true
    (result.quiescent && result.all_terminated
    && Metrics.post_termination_deliveries (Network.metrics net) = 0);
  (* Leader is node 2 (id 9); clockwise gather order from it. *)
  Array.iter
    (fun (o : Output.t) ->
      Alcotest.(check (list int)) "gathered" [ 9; 4; 6; 2 ] o.values)
    (Network.outputs net)

let test_trace_diagram_on_composed_run () =
  let ids = [| 3; 5 |] in
  let net =
    Network.create ~sink:(Sink.memory ()) (Topology.oriented 2) (fun v ->
        Compose.Corollary5.program ~id:ids.(v)
          ~app:Compose.Corollary5.app_ring_discovery)
  in
  let result = Network.run net Scheduler.fifo in
  checkb "done" true (result.quiescent && result.all_terminated);
  match Network.trace net with
  | None -> Alcotest.fail "no trace"
  | Some tr ->
      let s = Diagram.render tr ~n:2 in
      checkb "diagram renders composed run" true (String.length s > 100);
      (* Trace consume counts must match engine metrics. *)
      let consumes =
        List.length (Trace.consumed_ports tr ~node:0)
        + List.length (Trace.consumed_ports tr ~node:1)
      in
      checki "consumes agree" (Metrics.consumes (Network.metrics net)) consumes

let test_csv_of_real_grid_parses_back () =
  let ms =
    Harness.Sweep.election ~algorithms:[ Election.Algo2 ]
      ~workloads:[ Harness.Workload.dense ] ~ns:[ 4 ] ~seeds:[ 1 ]
      ~schedulers:[ (fun _ -> Scheduler.fifo) ]
      ()
  in
  let csv = Harness.Sweep.to_csv ms in
  let lines = String.split_on_char '\n' csv |> List.filter (( <> ) "") in
  let data = List.tl lines in
  List.iter2
    (fun line (m : Harness.Sweep.measurement) ->
      match String.split_on_char ',' line with
      | [ algo; wl; n; id_max; seed; _sched; sends; expected; _deliv; ok ] ->
          checkb "algo" true (algo = m.algorithm);
          checkb "wl" true (wl = m.workload);
          checki "n" m.n (int_of_string n);
          checki "id_max" m.id_max (int_of_string id_max);
          checki "seed" m.seed (int_of_string seed);
          checki "sends" m.sends (int_of_string sends);
          checki "expected" m.expected (int_of_string expected);
          checkb "ok" m.ok (bool_of_string ok)
      | _ -> Alcotest.fail "bad csv row")
    data ms

let () =
  Alcotest.run "colring-integration"
    [
      ( "grids",
        [
          Alcotest.test_case "all algorithms all workloads" `Quick
            test_full_grid_all_algorithms;
          Alcotest.test_case "sweep vs fastsim" `Quick
            test_sweep_agrees_with_fastsim;
          Alcotest.test_case "csv round trip" `Quick
            test_csv_of_real_grid_parses_back;
        ] );
      ( "cross-library",
        [
          Alcotest.test_case "invariants during runs" `Quick
            test_invariants_during_harness_runs;
          Alcotest.test_case "blocking algo2 + tape" `Quick
            test_blocking_algo2_composes_with_tape;
          Alcotest.test_case "trace/diagram on composed run" `Quick
            test_trace_diagram_on_composed_run;
        ] );
    ]
