(* Tests for the general-graph substrate: topology builders, bridge
   finding / 2-edge-connectivity, cross-validation of the ring
   algorithms on the independent graph simulator, and regression
   observations for the exploratory rotor circulation. *)

open Colring_engine
open Colring_core
open Colring_graph
module Rng = Colring_stats.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_ring_graph_shape () =
  let g = Gtopology.ring 5 in
  checki "n" 5 (Gtopology.n g);
  checki "links" 10 (Gtopology.num_links g);
  for v = 0 to 4 do
    checki "degree" 2 (Gtopology.degree g v)
  done;
  (* Wiring is symmetric. *)
  for id = 0 to Gtopology.num_links g - 1 do
    let v, p = Gtopology.link_src g id in
    let w, q = Gtopology.peer g ~node:v ~port:p in
    let v', p' = Gtopology.peer g ~node:w ~port:q in
    checkb "symmetric" true (v' = v && p' = p)
  done

let test_theta_shape () =
  let g = Gtopology.theta 1 2 3 in
  checki "n" 8 (Gtopology.n g);
  checki "hub degree" 3 (Gtopology.degree g 0);
  checki "hub degree" 3 (Gtopology.degree g 1);
  for v = 2 to 7 do
    checki "inner degree" 2 (Gtopology.degree g v)
  done;
  checkb "2ec" true (Gtopology.is_two_edge_connected g)

let test_complete_shape () =
  let g = Gtopology.complete 5 in
  checki "links" (5 * 4) (Gtopology.num_links g);
  checkb "2ec" true (Gtopology.is_two_edge_connected g)

let test_bridges () =
  (* A path: every edge is a bridge. *)
  let path = Gtopology.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  checki "path bridges" 3 (List.length (Gtopology.bridges path));
  checkb "path not 2ec" false (Gtopology.is_two_edge_connected path);
  (* A cycle: none. *)
  checki "cycle bridges" 0 (List.length (Gtopology.bridges (Gtopology.ring 6)));
  (* Barbell: two triangles joined by one edge — exactly one bridge. *)
  let barbell =
    Gtopology.of_edges ~n:6
      [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ]
  in
  Alcotest.(check (list (pair int int)))
    "barbell bridge" [ (2, 3) ] (Gtopology.bridges barbell);
  (* Two parallel edges are never a bridge. *)
  let digon = Gtopology.of_edges ~n:2 [ (0, 1); (0, 1) ] in
  checki "digon bridges" 0 (List.length (Gtopology.bridges digon));
  checkb "digon 2ec" true (Gtopology.is_two_edge_connected digon)

let test_disconnected () =
  let g = Gtopology.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  checkb "not connected" false (Gtopology.is_connected g);
  checkb "not 2ec" false (Gtopology.is_two_edge_connected g)

let test_of_edges_validation () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Gtopology.of_edges: self-loop") (fun () ->
      ignore (Gtopology.of_edges ~n:2 [ (0, 0) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Gtopology.of_edges: endpoint out of range") (fun () ->
      ignore (Gtopology.of_edges ~n:2 [ (0, 5) ]))

let prop_cycle_with_chords_2ec =
  QCheck.Test.make ~name:"cycle+chords always 2-edge-connected" ~count:100
    QCheck.(pair (QCheck.make QCheck.Gen.(int_range 4 24)) small_nat)
    (fun (n, seed) ->
      let g =
        Gtopology.cycle_with_chords (Rng.create ~seed) ~n ~chords:(seed mod 4)
      in
      Gtopology.is_two_edge_connected g)

(* ------------------------------------------------------------------ *)
(* Ear decomposition and the closed spanning walk *)

(* Structural validity of a walk: non-empty, consecutive links chain
   (dst of one = src of the next, cyclically), no directed link
   repeats, and every covered node appears as a source. *)
let check_walk g d =
  let w = Ears.walk d in
  let len = Array.length w in
  checkb "walk nonempty" true (len > 0);
  for i = 0 to len - 1 do
    let dst = fst (Gtopology.link_dst g w.(i)) in
    let src_next = fst (Gtopology.link_src g w.((i + 1) mod len)) in
    checki (Printf.sprintf "chained at %d" i) dst src_next
  done;
  let sorted = Array.copy w in
  Array.sort compare sorted;
  for i = 1 to len - 1 do
    checkb "no directed link repeats" true (sorted.(i) <> sorted.(i - 1))
  done;
  let seen = Array.make (Gtopology.n g) false in
  Array.iter (fun l -> seen.(fst (Gtopology.link_src g l)) <- true) w;
  for v = 0 to Gtopology.n g - 1 do
    checkb
      (Printf.sprintf "coverage agrees at %d" v)
      (Ears.covered d v) seen.(v)
  done

let test_ears_ring () =
  let g = Gtopology.ring 5 in
  let d = Ears.decompose g in
  check_walk g d;
  checki "ring walk = n" 5 (Ears.walk_length d);
  checki "no ears" 0 (List.length (Ears.ears d));
  checkb "all covered" true (Ears.all_covered d)

let test_ears_theta () =
  let g = Gtopology.theta 0 1 1 in
  let d = Ears.decompose g in
  check_walk g d;
  (* Base 3-cycle plus one open ear with one inner node, walked out
     and back: 3 + 2 links.  A third chain is a chord (the direct hub
     edge), contributing nothing. *)
  checki "walk length" 5 (Ears.walk_length d);
  checkb "all covered" true (Ears.all_covered d)

let test_ears_bowtie () =
  let g = Gtopology.bowtie () in
  let d = Ears.decompose g in
  check_walk g d;
  checki "walk length" 6 (Ears.walk_length d);
  (match Ears.ears d with
  | [ e ] ->
      checkb "closed ear" true (e.Ears.anchor = e.Ears.close);
      checki "two inner nodes" 2 (List.length e.Ears.inner)
  | l -> Alcotest.failf "expected 1 ear, got %d" (List.length l));
  checkb "all covered" true (Ears.all_covered d)

let test_ears_k4 () =
  let g = Gtopology.complete 4 in
  let d = Ears.decompose g in
  check_walk g d;
  checkb "all covered" true (Ears.all_covered d);
  (* Base triangle + one open ear out-and-back for the 4th node; the
     remaining chords contribute nothing. *)
  checki "walk length" 5 (Ears.walk_length d)

let test_ears_bridge_ablation () =
  (* Barbell: root triangle {0,1,2}, bridge (2,3), far triangle
     {3,4,5}.  The decomposition never crosses the bridge, so only the
     root component is covered. *)
  let g =
    Gtopology.of_edges ~n:6
      [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3) ]
  in
  Alcotest.check_raises "2ec required by default"
    (Invalid_argument "Ears.decompose: graph is not 2-edge-connected")
    (fun () -> ignore (Ears.decompose g));
  let d = Ears.decompose ~require_2ec:false g in
  check_walk g d;
  checki "root component covered" 3 (Ears.num_covered d);
  for v = 0 to 2 do
    checkb "triangle covered" true (Ears.covered d v)
  done;
  for v = 3 to 5 do
    checkb "beyond the bridge uncovered" false (Ears.covered d v)
  done

let prop_ears_random2ec =
  QCheck.Test.make ~name:"random 2EC graphs decompose and walk" ~count:60
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 4 20) (int_range 0 10_000)))
    (fun (n, seed) ->
      let g =
        Gtopology.cycle_with_chords (Rng.create ~seed) ~n ~chords:(seed mod 5)
      in
      let d = Ears.decompose g in
      check_walk g d;
      Ears.all_covered d)

(* ------------------------------------------------------------------ *)
(* The walk election *)

let gelection_ok_on g ~seed =
  let n = Gtopology.n g in
  let rng = Rng.create ~seed in
  let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 10) in
  let p = Gelection.plan g in
  let r =
    Gelection.run_report p ~ids ~sched:(Scheduler.random (Rng.split rng))
  in
  Gelection.ok r

let test_gelection_families () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          checkb (Printf.sprintf "%s seed %d" name seed) true
            (gelection_ok_on g ~seed))
        [ 1; 2; 3 ])
    [
      ("ring5", Gtopology.ring 5);
      ("digon", Gtopology.ring 2);
      ("theta011", Gtopology.theta 0 1 1);
      ("theta123", Gtopology.theta 1 2 3);
      ("bowtie", Gtopology.bowtie ());
      ("K4", Gtopology.complete 4);
      ("K5", Gtopology.complete 5);
    ]

let test_gelection_sends_exact () =
  (* The closed form: walk_len * id_max, independent of scheduling. *)
  let g = Gtopology.complete 4 in
  let p = Gelection.plan g in
  let ids = [| 3; 7; 2; 5 |] in
  List.iter
    (fun sched ->
      let r = Gelection.run_report p ~ids ~sched in
      checki "sends" (Gelection.walk_length p * 7) r.Gelection.sends;
      checkb "quiescent" true r.Gelection.quiescent;
      Alcotest.(check (option int)) "leader" (Some 1) r.Gelection.leader)
    [ Scheduler.fifo; Scheduler.lifo; Scheduler.global_fifo ]

let test_gelection_ablation () =
  let g =
    Gtopology.of_edges ~n:6
      [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3) ]
  in
  let p = Gelection.plan ~require_2ec:false g in
  let ids = [| 4; 2; 6; 9; 8; 7 |] in
  let r, net = Gelection.run p ~ids ~sched:Scheduler.fifo in
  checkb "walk part behaves" true r.Gelection.roles_ok;
  checkb "but the election fails" false (Gelection.ok r);
  checki "covered" 3 r.Gelection.covered;
  (* Node 3 carries the global max id yet never decides: content-
     oblivious election cannot reach across a bridge. *)
  checkb "global max undecided" true
    (Output.equal_role (Gnetwork.output net 3).Output.role Output.Undecided);
  Alcotest.(check (option int)) "covered max leads" (Some 2) r.Gelection.leader

let prop_gelection_random2ec =
  QCheck.Test.make ~name:"walk election ok on random 2EC graphs" ~count:60
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 4 16) (int_range 0 10_000)))
    (fun (n, seed) ->
      let g =
        Gtopology.cycle_with_chords (Rng.create ~seed) ~n ~chords:(seed mod 4)
      in
      gelection_ok_on g ~seed)

(* ------------------------------------------------------------------ *)
(* Rings as the Topology special case of the unified API *)

(* One Algorithm 1 run on an oriented ring, journaled (events
   included), driven either through the legacy [Network] module or
   through the [Engine_intf.NETWORK] witness the unified API exposes
   for rings. *)
let ring_journal ~via_unified ~n ~seed =
  let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max:(2 * n) in
  let topo = Topology.oriented n in
  let buf = Buffer.create 1024 in
  let sink = Sink.jsonl_buffer ~events:true buf in
  let sched = Scheduler.random (Rng.create ~seed:(seed + 7)) in
  (if via_unified then begin
     let module N = Unify.Ring_network in
     let net = N.create ~sink topo (fun v -> Algo1.program ~id:ids.(v)) in
     ignore (N.run net sched)
   end
   else begin
     let net = Network.create ~sink topo (fun v -> Algo1.program ~id:ids.(v)) in
     ignore (Network.run net sched)
   end);
  sink.Sink.flush ();
  Buffer.contents buf

let prop_ring_journal_byte_identity =
  QCheck.Test.make
    ~name:"ring journals byte-identical through the unified API" ~count:40
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 2 10) (int_range 0 10_000)))
    (fun (n, seed) ->
      String.equal
        (ring_journal ~via_unified:false ~n ~seed)
        (ring_journal ~via_unified:true ~n ~seed))

(* The walk election on a ring IS Algorithm 1: the walk is the ring,
   so the send total matches the paper's Corollary 13 closed form and
   the max-id node leads. *)
let prop_ring_walk_is_algo1 =
  QCheck.Test.make ~name:"walk election on ring:N matches Algorithm 1"
    ~count:40
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 2 10) (int_range 0 10_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(2 * n) in
      let plan = Gelection.plan (Gtopology.ring n) in
      let r =
        Gelection.run_report plan ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      Gelection.ok r
      && r.Gelection.sends = Formulas.algo1_total ~n ~id_max:(Ids.id_max ids)
      && r.Gelection.leader = Some (Ids.argmax ids))

(* ------------------------------------------------------------------ *)
(* Gnetwork semantics *)

let test_gnetwork_fifo_and_drop () =
  (* Node 0 sends 3 numbered messages along a path-like route on K3;
     node 1 collects them in order then terminates; a late message is
     dropped and counted. *)
  let g = Gtopology.of_edges ~n:2 [ (0, 1); (0, 1) ] in
  let got = ref [] in
  let net =
    Gnetwork.create g (fun v ->
        if v = 0 then
          {
            Gnetwork.snap = None;
            Gnetwork.start =
              (fun api ->
                api.send 0 1;
                api.send 0 2;
                api.send 1 3);
            wake = (fun _ -> ());
            inspect = (fun () -> []);
          }
        else
          {
            Gnetwork.snap = None;
            Gnetwork.start = (fun _ -> ());
            wake =
              (fun api ->
                let continue = ref true in
                while !continue do
                  match api.recv 0 with
                  | Some m ->
                      got := m :: !got;
                      if m = 2 then api.terminate ()
                  | None -> (
                      match api.recv 1 with
                      | Some m -> got := m :: !got
                      | None -> continue := false)
                done);
            inspect = (fun () -> []);
          })
  in
  let r = Gnetwork.run net Scheduler.global_fifo in
  checkb "receiver terminated, sender not" false r.Gnetwork.all_terminated;
  Alcotest.(check (list int)) "fifo per channel" [ 2; 1 ] !got;
  checki "late message dropped" 1 (Gnetwork.post_termination_deliveries net)

let test_gnetwork_per_node_rng () =
  let g = Gtopology.ring 4 in
  let seen = ref [] in
  let net =
    Gnetwork.create ~seed:5 g (fun _ ->
        {
          Gnetwork.snap = None;
          Gnetwork.start =
            (fun api -> seen := Rng.int api.rng 1_000_000 :: !seen);
          wake = (fun _ -> ());
          inspect = (fun () -> []);
        })
  in
  ignore (Gnetwork.run net Scheduler.fifo);
  checki "distinct streams" 4 (List.length (List.sort_uniq compare !seen))

(* ------------------------------------------------------------------ *)
(* Cross-validation: the ring algorithms on the graph simulator *)

let prop_algo3_cross_simulator =
  QCheck.Test.make
    ~name:"algo3 on Gnetwork ring = algo3 on ring engine" ~count:80
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 2 16) (int_range 0 10_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 30) in
      (* Graph simulator on the ring-as-graph. *)
      let g = Gtopology.ring n in
      let gnet =
        Gnetwork.create g (fun v ->
            Circulate.algo3_deg2 ~scheme:Algo3.Improved ~id:ids.(v))
      in
      let gres = Gnetwork.run gnet (Scheduler.random (Rng.split rng)) in
      (* Ring engine on an oriented ring (the graph builder wires node
         v's port 1 toward v+1 except at the wrap nodes; roles and
         totals are topology-labeling-independent). *)
      let r =
        Election.run_report (Election.Algo3 Algo3.Improved)
          ~topo:(Topology.oriented n) ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      gres.Gnetwork.quiescent
      && gres.Gnetwork.sends = r.sends
      && Array.for_all
           (fun v ->
             Output.equal_role
               (Gnetwork.output gnet v).Output.role
               (if v = Ids.argmax ids then Output.Leader else Output.Non_leader))
           (Array.init n Fun.id))

let test_cross_simulator_counters () =
  let ids = [| 6; 2; 11; 5 |] in
  let g = Gtopology.ring 4 in
  let gnet =
    Gnetwork.create g (fun v ->
        Circulate.algo3_deg2 ~scheme:Algo3.Improved ~id:ids.(v))
  in
  let _ = Gnetwork.run gnet Scheduler.lifo in
  (* At quiescence each node received ID_max+1 pulses in one direction
     and ID_max in the other (Theorem 2's analysis). *)
  for v = 0 to 3 do
    let r0 = Gnetwork.inspect_counter gnet v "rho0" in
    let r1 = Gnetwork.inspect_counter gnet v "rho1" in
    Alcotest.(check (list int))
      (Printf.sprintf "counts at %d" v)
      [ 11; 12 ]
      (List.sort compare [ r0; r1 ])
  done

(* ------------------------------------------------------------------ *)
(* Exploratory rotor: recorded observations, not claims. *)

let rotor_run g ~seed =
  let n = Gtopology.n g in
  let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max:(3 * n) in
  let net = Gnetwork.create g (fun v -> Circulate.rotor ~id:ids.(v)) in
  let r =
    Gnetwork.run ~max_deliveries:200_000 net
      (Scheduler.random (Rng.create ~seed:(seed + 50)))
  in
  (r, net, ids)

let test_rotor_observations () =
  (* Exploratory, so the assertions are deliberately weak: every run
     either reaches quiescence or exhausts the budget (no crash, no
     livelock detection needed beyond the cap), and at least one run
     of each kind exists across the sample — i.e. the naive rotor
     generalization is NOT a quiescently-stabilizing algorithm on
     general graphs. *)
  let quiesced = ref 0 and exhausted = ref 0 in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let r, _, _ = rotor_run g ~seed in
          checkb
            (Printf.sprintf "%s seed %d sane" name seed)
            true
            (r.Gnetwork.quiescent || r.Gnetwork.exhausted);
          if r.Gnetwork.quiescent then incr quiesced else incr exhausted)
        [ 1; 2; 3 ])
    [
      ("theta", Gtopology.theta 1 2 3);
      ("K4", Gtopology.complete 4);
      ("K5", Gtopology.complete 5);
      ( "cycle+chords",
        Gtopology.cycle_with_chords (Rng.create ~seed:9) ~n:8 ~chords:2 );
    ];
  checkb "some runs quiesce" true (!quiesced > 0)

let test_gnetwork_budget_reports_exhaustion () =
  (* A run stopped by [max_deliveries] must say so ([exhausted =
     true]) rather than silently truncate — the same budget contract
     as the ring engine's Network.run (and, since this regression, the
     same 50M default). *)
  let g = Gtopology.ring 4 in
  let ids = Ids.distinct (Rng.create ~seed:3) ~n:4 ~id_max:12 in
  let net = Gnetwork.create g (fun v -> Circulate.rotor ~id:ids.(v)) in
  let r = Gnetwork.run ~max_deliveries:2 net Scheduler.fifo in
  checkb "exhaustion reported" true r.Gnetwork.exhausted;
  checki "stopped at the budget" 2 r.Gnetwork.deliveries;
  checkb "not quiescent" false r.Gnetwork.quiescent

let test_rotor_does_not_solve_election () =
  (* The naive generalization is NOT a leader election: some run ends
     without the max-ID node as unique leader — evidence (not proof)
     that the open question needs new ideas, as the paper suggests. *)
  let g = Gtopology.theta 1 2 3 in
  let bad = ref false in
  for seed = 1 to 6 do
    let r, net, ids = rotor_run g ~seed in
    if r.Gnetwork.quiescent then begin
      let leaders =
        Array.fold_left
          (fun acc (o : Output.t) ->
            if Output.equal_role o.role Output.Leader then acc + 1 else acc)
          0 (Gnetwork.outputs net)
      in
      let max_is_leader =
        Output.equal_role
          (Gnetwork.output net (Ids.argmax ids)).Output.role
          Output.Leader
      in
      if leaders <> 1 || not max_is_leader then bad := true
    end
    else bad := true
  done;
  checkb "rotor fails somewhere" true !bad

let () =
  Alcotest.run "colring-graph"
    [
      ( "topology",
        [
          Alcotest.test_case "ring" `Quick test_ring_graph_shape;
          Alcotest.test_case "theta" `Quick test_theta_shape;
          Alcotest.test_case "complete" `Quick test_complete_shape;
          Alcotest.test_case "bridges" `Quick test_bridges;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "validation" `Quick test_of_edges_validation;
          QCheck_alcotest.to_alcotest prop_cycle_with_chords_2ec;
        ] );
      ( "ears",
        [
          Alcotest.test_case "ring" `Quick test_ears_ring;
          Alcotest.test_case "theta" `Quick test_ears_theta;
          Alcotest.test_case "bowtie" `Quick test_ears_bowtie;
          Alcotest.test_case "K4" `Quick test_ears_k4;
          Alcotest.test_case "bridge ablation" `Quick test_ears_bridge_ablation;
          QCheck_alcotest.to_alcotest prop_ears_random2ec;
        ] );
      ( "walk election",
        [
          Alcotest.test_case "families" `Quick test_gelection_families;
          Alcotest.test_case "exact sends" `Quick test_gelection_sends_exact;
          Alcotest.test_case "bridge ablation" `Quick test_gelection_ablation;
          QCheck_alcotest.to_alcotest prop_gelection_random2ec;
        ] );
      ( "ring special case",
        [
          QCheck_alcotest.to_alcotest prop_ring_journal_byte_identity;
          QCheck_alcotest.to_alcotest prop_ring_walk_is_algo1;
        ] );
      ( "gnetwork",
        [
          Alcotest.test_case "fifo and drop" `Quick test_gnetwork_fifo_and_drop;
          Alcotest.test_case "per-node rng" `Quick test_gnetwork_per_node_rng;
        ] );
      ( "cross-validation",
        [
          QCheck_alcotest.to_alcotest prop_algo3_cross_simulator;
          Alcotest.test_case "counters" `Quick test_cross_simulator_counters;
        ] );
      ( "rotor (exploratory)",
        [
          Alcotest.test_case "observations" `Quick test_rotor_observations;
          Alcotest.test_case "budget reports exhaustion" `Quick
            test_gnetwork_budget_reports_exhaustion;
          Alcotest.test_case "does not solve election" `Quick
            test_rotor_does_not_solve_election;
        ] );
    ]
