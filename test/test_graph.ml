(* Tests for the general-graph substrate: topology builders, bridge
   finding / 2-edge-connectivity, cross-validation of the ring
   algorithms on the independent graph simulator, and regression
   observations for the exploratory rotor circulation. *)

open Colring_engine
open Colring_core
open Colring_graph
module Rng = Colring_stats.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_ring_graph_shape () =
  let g = Gtopology.ring 5 in
  checki "n" 5 (Gtopology.n g);
  checki "links" 10 (Gtopology.num_links g);
  for v = 0 to 4 do
    checki "degree" 2 (Gtopology.degree g v)
  done;
  (* Wiring is symmetric. *)
  for id = 0 to Gtopology.num_links g - 1 do
    let v, p = Gtopology.link_src g id in
    let w, q = Gtopology.peer g ~node:v ~port:p in
    let v', p' = Gtopology.peer g ~node:w ~port:q in
    checkb "symmetric" true (v' = v && p' = p)
  done

let test_theta_shape () =
  let g = Gtopology.theta 1 2 3 in
  checki "n" 8 (Gtopology.n g);
  checki "hub degree" 3 (Gtopology.degree g 0);
  checki "hub degree" 3 (Gtopology.degree g 1);
  for v = 2 to 7 do
    checki "inner degree" 2 (Gtopology.degree g v)
  done;
  checkb "2ec" true (Gtopology.is_two_edge_connected g)

let test_complete_shape () =
  let g = Gtopology.complete 5 in
  checki "links" (5 * 4) (Gtopology.num_links g);
  checkb "2ec" true (Gtopology.is_two_edge_connected g)

let test_bridges () =
  (* A path: every edge is a bridge. *)
  let path = Gtopology.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  checki "path bridges" 3 (List.length (Gtopology.bridges path));
  checkb "path not 2ec" false (Gtopology.is_two_edge_connected path);
  (* A cycle: none. *)
  checki "cycle bridges" 0 (List.length (Gtopology.bridges (Gtopology.ring 6)));
  (* Barbell: two triangles joined by one edge — exactly one bridge. *)
  let barbell =
    Gtopology.of_edges ~n:6
      [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ]
  in
  Alcotest.(check (list (pair int int)))
    "barbell bridge" [ (2, 3) ] (Gtopology.bridges barbell);
  (* Two parallel edges are never a bridge. *)
  let digon = Gtopology.of_edges ~n:2 [ (0, 1); (0, 1) ] in
  checki "digon bridges" 0 (List.length (Gtopology.bridges digon));
  checkb "digon 2ec" true (Gtopology.is_two_edge_connected digon)

let test_disconnected () =
  let g = Gtopology.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  checkb "not connected" false (Gtopology.is_connected g);
  checkb "not 2ec" false (Gtopology.is_two_edge_connected g)

let test_of_edges_validation () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Gtopology.of_edges: self-loop") (fun () ->
      ignore (Gtopology.of_edges ~n:2 [ (0, 0) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Gtopology.of_edges: endpoint out of range") (fun () ->
      ignore (Gtopology.of_edges ~n:2 [ (0, 5) ]))

let prop_cycle_with_chords_2ec =
  QCheck.Test.make ~name:"cycle+chords always 2-edge-connected" ~count:100
    QCheck.(pair (QCheck.make QCheck.Gen.(int_range 4 24)) small_nat)
    (fun (n, seed) ->
      let g =
        Gtopology.cycle_with_chords (Rng.create ~seed) ~n ~chords:(seed mod 4)
      in
      Gtopology.is_two_edge_connected g)

(* ------------------------------------------------------------------ *)
(* Gnetwork semantics *)

let test_gnetwork_fifo_and_drop () =
  (* Node 0 sends 3 numbered messages along a path-like route on K3;
     node 1 collects them in order then terminates; a late message is
     dropped and counted. *)
  let g = Gtopology.of_edges ~n:2 [ (0, 1); (0, 1) ] in
  let got = ref [] in
  let net =
    Gnetwork.create g (fun v ->
        if v = 0 then
          {
            Gnetwork.start =
              (fun api ->
                api.send 0 1;
                api.send 0 2;
                api.send 1 3);
            wake = (fun _ -> ());
            inspect = (fun () -> []);
          }
        else
          {
            Gnetwork.start = (fun _ -> ());
            wake =
              (fun api ->
                let continue = ref true in
                while !continue do
                  match api.recv 0 with
                  | Some m ->
                      got := m :: !got;
                      if m = 2 then api.terminate ()
                  | None -> (
                      match api.recv 1 with
                      | Some m -> got := m :: !got
                      | None -> continue := false)
                done);
            inspect = (fun () -> []);
          })
  in
  let r = Gnetwork.run net Scheduler.global_fifo in
  checkb "receiver terminated, sender not" false r.Gnetwork.all_terminated;
  Alcotest.(check (list int)) "fifo per channel" [ 2; 1 ] !got;
  checki "late message dropped" 1 (Gnetwork.post_termination_deliveries net)

let test_gnetwork_per_node_rng () =
  let g = Gtopology.ring 4 in
  let seen = ref [] in
  let net =
    Gnetwork.create ~seed:5 g (fun _ ->
        {
          Gnetwork.start =
            (fun api -> seen := Rng.int api.rng 1_000_000 :: !seen);
          wake = (fun _ -> ());
          inspect = (fun () -> []);
        })
  in
  ignore (Gnetwork.run net Scheduler.fifo);
  checki "distinct streams" 4 (List.length (List.sort_uniq compare !seen))

(* ------------------------------------------------------------------ *)
(* Cross-validation: the ring algorithms on the graph simulator *)

let prop_algo3_cross_simulator =
  QCheck.Test.make
    ~name:"algo3 on Gnetwork ring = algo3 on ring engine" ~count:80
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 2 16) (int_range 0 10_000)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = Ids.distinct rng ~n ~id_max:(n + Rng.int rng 30) in
      (* Graph simulator on the ring-as-graph. *)
      let g = Gtopology.ring n in
      let gnet =
        Gnetwork.create g (fun v ->
            Circulate.algo3_deg2 ~scheme:Algo3.Improved ~id:ids.(v))
      in
      let gres = Gnetwork.run gnet (Scheduler.random (Rng.split rng)) in
      (* Ring engine on an oriented ring (the graph builder wires node
         v's port 1 toward v+1 except at the wrap nodes; roles and
         totals are topology-labeling-independent). *)
      let r =
        Election.run_report (Election.Algo3 Algo3.Improved)
          ~topo:(Topology.oriented n) ~ids
          ~sched:(Scheduler.random (Rng.split rng))
      in
      gres.Gnetwork.quiescent
      && gres.Gnetwork.sends = r.sends
      && Array.for_all
           (fun v ->
             Output.equal_role
               (Gnetwork.output gnet v).Output.role
               (if v = Ids.argmax ids then Output.Leader else Output.Non_leader))
           (Array.init n Fun.id))

let test_cross_simulator_counters () =
  let ids = [| 6; 2; 11; 5 |] in
  let g = Gtopology.ring 4 in
  let gnet =
    Gnetwork.create g (fun v ->
        Circulate.algo3_deg2 ~scheme:Algo3.Improved ~id:ids.(v))
  in
  let _ = Gnetwork.run gnet Scheduler.lifo in
  (* At quiescence each node received ID_max+1 pulses in one direction
     and ID_max in the other (Theorem 2's analysis). *)
  for v = 0 to 3 do
    let r0 = Gnetwork.inspect_counter gnet v "rho0" in
    let r1 = Gnetwork.inspect_counter gnet v "rho1" in
    Alcotest.(check (list int))
      (Printf.sprintf "counts at %d" v)
      [ 11; 12 ]
      (List.sort compare [ r0; r1 ])
  done

(* ------------------------------------------------------------------ *)
(* Exploratory rotor: recorded observations, not claims. *)

let rotor_run g ~seed =
  let n = Gtopology.n g in
  let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max:(3 * n) in
  let net = Gnetwork.create g (fun v -> Circulate.rotor ~id:ids.(v)) in
  let r =
    Gnetwork.run ~max_deliveries:200_000 net
      (Scheduler.random (Rng.create ~seed:(seed + 50)))
  in
  (r, net, ids)

let test_rotor_observations () =
  (* Exploratory, so the assertions are deliberately weak: every run
     either reaches quiescence or exhausts the budget (no crash, no
     livelock detection needed beyond the cap), and at least one run
     of each kind exists across the sample — i.e. the naive rotor
     generalization is NOT a quiescently-stabilizing algorithm on
     general graphs. *)
  let quiesced = ref 0 and exhausted = ref 0 in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let r, _, _ = rotor_run g ~seed in
          checkb
            (Printf.sprintf "%s seed %d sane" name seed)
            true
            (r.Gnetwork.quiescent || r.Gnetwork.exhausted);
          if r.Gnetwork.quiescent then incr quiesced else incr exhausted)
        [ 1; 2; 3 ])
    [
      ("theta", Gtopology.theta 1 2 3);
      ("K4", Gtopology.complete 4);
      ("K5", Gtopology.complete 5);
      ( "cycle+chords",
        Gtopology.cycle_with_chords (Rng.create ~seed:9) ~n:8 ~chords:2 );
    ];
  checkb "some runs quiesce" true (!quiesced > 0)

let test_gnetwork_budget_reports_exhaustion () =
  (* A run stopped by [max_deliveries] must say so ([exhausted =
     true]) rather than silently truncate — the same budget contract
     as the ring engine's Network.run (and, since this regression, the
     same 50M default). *)
  let g = Gtopology.ring 4 in
  let ids = Ids.distinct (Rng.create ~seed:3) ~n:4 ~id_max:12 in
  let net = Gnetwork.create g (fun v -> Circulate.rotor ~id:ids.(v)) in
  let r = Gnetwork.run ~max_deliveries:2 net Scheduler.fifo in
  checkb "exhaustion reported" true r.Gnetwork.exhausted;
  checki "stopped at the budget" 2 r.Gnetwork.deliveries;
  checkb "not quiescent" false r.Gnetwork.quiescent

let test_rotor_does_not_solve_election () =
  (* The naive generalization is NOT a leader election: some run ends
     without the max-ID node as unique leader — evidence (not proof)
     that the open question needs new ideas, as the paper suggests. *)
  let g = Gtopology.theta 1 2 3 in
  let bad = ref false in
  for seed = 1 to 6 do
    let r, net, ids = rotor_run g ~seed in
    if r.Gnetwork.quiescent then begin
      let leaders =
        Array.fold_left
          (fun acc (o : Output.t) ->
            if Output.equal_role o.role Output.Leader then acc + 1 else acc)
          0 (Gnetwork.outputs net)
      in
      let max_is_leader =
        Output.equal_role
          (Gnetwork.output net (Ids.argmax ids)).Output.role
          Output.Leader
      in
      if leaders <> 1 || not max_is_leader then bad := true
    end
    else bad := true
  done;
  checkb "rotor fails somewhere" true !bad

let () =
  Alcotest.run "colring-graph"
    [
      ( "topology",
        [
          Alcotest.test_case "ring" `Quick test_ring_graph_shape;
          Alcotest.test_case "theta" `Quick test_theta_shape;
          Alcotest.test_case "complete" `Quick test_complete_shape;
          Alcotest.test_case "bridges" `Quick test_bridges;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "validation" `Quick test_of_edges_validation;
          QCheck_alcotest.to_alcotest prop_cycle_with_chords_2ec;
        ] );
      ( "gnetwork",
        [
          Alcotest.test_case "fifo and drop" `Quick test_gnetwork_fifo_and_drop;
          Alcotest.test_case "per-node rng" `Quick test_gnetwork_per_node_rng;
        ] );
      ( "cross-validation",
        [
          QCheck_alcotest.to_alcotest prop_algo3_cross_simulator;
          Alcotest.test_case "counters" `Quick test_cross_simulator_counters;
        ] );
      ( "rotor (exploratory)",
        [
          Alcotest.test_case "observations" `Quick test_rotor_observations;
          Alcotest.test_case "budget reports exhaustion" `Quick
            test_gnetwork_budget_reports_exhaustion;
          Alcotest.test_case "does not solve election" `Quick
            test_rotor_does_not_solve_election;
        ] );
    ]
