(* Tests for colring-lint: every rule is exercised against an
   in-tree fixture, both firing (under the path the rule patrols) and
   non-firing (under an exempt path, or a clean fixture under the
   patrolled path).  The self-run over the real tree is the @lint
   alias, which dune runtest depends on. *)

open Colring_lint_core

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* The manifest used by the hot-alloc fixtures: matches the real
   hot.sexp entry for envq.ml closely enough for the tests. *)
let hot_manifest = [ ("lib/engine/envq.ml", [ "push"; "pop" ]) ]

(* dune runtest runs with cwd = test/; dune exec from the root. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let fixture name = Filename.concat fixture_dir name

(* Lint fixture [name] as if it lived at repo path [as_path]; return
   the rule names that fired.  [shared] is the shared.sexp manifest
   for the domain-safety rules (empty by default: nothing declared). *)
let rules_of ?(hot = hot_manifest) ?(shared = []) name ~as_path =
  Lint_driver.lint_file ~as_path ~hot_manifest:hot ~shared_manifest:shared
    (fixture name)
  |> List.map (fun d -> d.Lint_diag.rule)

let shared_entry ~file ?(atomics = []) ?(state = []) () =
  [ (file, { Lint_config.atomics; state; note = "test manifest" }) ]

let count rule rules =
  List.length (List.filter (String.equal rule) rules)

(* ------------------------------------------------------------------ *)
(* determinism *)

let test_determinism_random () =
  checki "fires in engine" 1
    (count "determinism" (rules_of "det_random.ml" ~as_path:"lib/engine/x.ml"));
  checki "rng.ml exempt" 0
    (count "determinism"
       (rules_of "det_random.ml" ~as_path:"lib/stats/rng.ml"));
  checki "fires in test too" 1
    (count "determinism" (rules_of "det_random.ml" ~as_path:"test/x.ml"))

let test_determinism_clock () =
  checki "fires in lib" 2
    (count "determinism" (rules_of "det_clock.ml" ~as_path:"lib/core/x.ml"));
  checki "timing.ml exempt" 0
    (count "determinism" (rules_of "det_clock.ml" ~as_path:"bench/timing.ml"))

let test_determinism_unsafe () =
  checki "fires in lib" 3
    (count "determinism" (rules_of "det_unsafe.ml" ~as_path:"lib/engine/x.ml"));
  checki "bench exempt" 0
    (count "determinism" (rules_of "det_unsafe.ml" ~as_path:"bench/x.ml"))

(* ------------------------------------------------------------------ *)
(* poly-compare *)

let test_poly_compare () =
  checki "bad fixture fires" 4
    (count "poly-compare"
       (rules_of "polycmp_bad.ml" ~as_path:"lib/engine/x.ml"));
  checki "scoped to engine" 0
    (count "poly-compare" (rules_of "polycmp_bad.ml" ~as_path:"lib/core/x.ml"));
  checki "immediate operands pass" 0
    (count "poly-compare"
       (rules_of "polycmp_ok.ml" ~as_path:"lib/engine/x.ml"))

(* ------------------------------------------------------------------ *)
(* hot-alloc *)

let test_hot_alloc () =
  let fired = rules_of "hot_bad.ml" ~as_path:"lib/engine/envq.ml" in
  checki "tuple, closure, printf, partial app" 4 (count "hot-alloc" fired);
  checki "not hot under another path" 0
    (count "hot-alloc" (rules_of "hot_bad.ml" ~as_path:"lib/engine/other.ml"));
  checki "guarded and cold allocations pass" 0
    (count "hot-alloc" (rules_of "hot_ok.ml" ~as_path:"lib/engine/envq.ml"))

(* ------------------------------------------------------------------ *)
(* sink-discipline *)

let test_sink_discipline () =
  checki "construction fires" 2
    (count "sink-discipline"
       (rules_of "sink_bad.ml" ~as_path:"lib/engine/diagram.ml"));
  checki "sink.ml exempt" 0
    (count "sink-discipline"
       (rules_of "sink_bad.ml" ~as_path:"lib/engine/sink.ml"));
  checki "pattern matching passes" 0
    (count "sink-discipline"
       (rules_of "sink_ok.ml" ~as_path:"lib/engine/diagram.ml"))

(* ------------------------------------------------------------------ *)
(* deprecated-arg *)

let test_deprecated_arg () =
  checki "call site and forwarding param fire" 3
    (count "deprecated-arg" (rules_of "depr_arg.ml" ~as_path:"test/x.ml"));
  (* The argument is gone; its old definition sites are no longer
     exempt — the rule now guards against reintroduction anywhere. *)
  checki "former definition site fires too" 3
    (count "deprecated-arg"
       (rules_of "depr_arg.ml" ~as_path:"lib/engine/network.ml"))

(* ------------------------------------------------------------------ *)
(* shared-state *)

let test_shared_state () =
  checki "array write, field write+read, callee Bytes write" 4
    (count "shared-state"
       (rules_of "shared_bad.ml" ~as_path:"lib/runtime/x.ml"));
  checki "tests are not patrolled" 0
    (count "shared-state" (rules_of "shared_bad.ml" ~as_path:"test/x.ml"));
  checki "local allocs and manifested state pass" 0
    (count "shared-state"
       (rules_of "shared_ok.ml" ~as_path:"lib/runtime/x.ml"
          ~shared:
            (shared_entry ~file:"lib/runtime/x.ml" ~state:[ "results" ] ())));
  checki "manifest entry is load-bearing" 1
    (count "shared-state" (rules_of "shared_ok.ml" ~as_path:"lib/runtime/x.ml"))

(* ------------------------------------------------------------------ *)
(* atomics-discipline *)

let test_atomics_discipline () =
  let hot = [ ("lib/runtime/x.ml", [ "spin" ]) ] in
  checki "unmanifested make, lost update, CAS without backoff" 3
    (count "atomics-discipline"
       (rules_of "atomics_bad.ml" ~as_path:"lib/runtime/x.ml" ~hot));
  checki "tests are not patrolled" 0
    (count "atomics-discipline"
       (rules_of "atomics_bad.ml" ~as_path:"test/x.ml"));
  checki "manifested make, fetch_and_add, backed-off CAS pass" 0
    (count "atomics-discipline"
       (rules_of "atomics_ok.ml" ~as_path:"lib/runtime/x.ml" ~hot
          ~shared:
            (shared_entry ~file:"lib/runtime/x.ml" ~atomics:[ "total" ] ())))

(* ------------------------------------------------------------------ *)
(* dls-discipline *)

let test_dls_discipline () =
  checki "nested new_key, stored payload, captured payload" 3
    (count "dls-discipline"
       (rules_of "dls_bad.ml" ~as_path:"lib/harness/x.ml"));
  checki "top-level key with domain-local payload passes" 0
    (count "dls-discipline" (rules_of "dls_ok.ml" ~as_path:"lib/harness/x.ml"))

(* ------------------------------------------------------------------ *)
(* shared.sexp / hot.sexp manifest pins *)

(* The real manifests must keep covering the multicore core: if an
   entry is dropped, the clean-tree run (@lint, pulled in by runtest)
   and this pin both fail. *)
let repo_file p = if Sys.file_exists p then p else Filename.concat ".." p

let test_manifest_pins () =
  let shared =
    Lint_config.load_shared (repo_file "tools/lint/shared.sexp")
  in
  List.iter
    (fun file ->
      match List.assoc_opt file shared with
      | Some e ->
          checkb (file ^ " has a review note") true
            (String.length e.Lint_config.note > 0)
      | None -> Alcotest.failf "shared.sexp lost its entry for %s" file)
    [ "lib/runtime/pool.ml"; "lib/transport/domains.ml"; "lib/harness/batch.ml" ];
  let hot = Lint_config.load_hot (repo_file "tools/lint/hot.sexp") in
  checkb "gelection walk step is patrolled" true
    (List.mem "walk_step"
       (Lint_config.hot_functions hot ~file:"lib/graph/gelection.ml"))

(* ------------------------------------------------------------------ *)
(* parse-error *)

let test_parse_error () =
  checki "syntax error is a diagnostic" 1
    (count "parse-error" (rules_of "parse_bad.ml" ~as_path:"lib/engine/x.ml"))

(* ------------------------------------------------------------------ *)
(* mli-coverage *)

let test_mli_coverage () =
  let diags =
    Lint_rules.mli_coverage
      ~ml_files:[ "lib/engine/a.ml"; "lib/engine/b.ml"; "bin/main.ml" ]
      ~mli_files:[ "lib/engine/a.mli" ]
  in
  checki "one uncovered lib module" 1 (List.length diags);
  checkb "names the module" true
    (match diags with
    | [ d ] -> String.equal d.Lint_diag.file "lib/engine/b.ml"
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* allowlist *)

let test_allowlist () =
  let diag rule file =
    { Lint_diag.rule; file; line = 1; col = 0; msg = "m" }
  in
  let entry rule file = { Lint_config.rule; file; note = "n" } in
  let existing = fixture "det_random.ml" in
  let r =
    Lint_driver.apply_allowlist
      [ entry "determinism" existing; entry "hot-alloc" "missing.ml" ]
      [ diag "determinism" existing; diag "poly-compare" "lib/a.ml" ]
  in
  checki "suppressed one" 1 (List.length r.Lint_driver.kept);
  checki "unused entry is stale" 1 (List.length r.stale);
  checki "absent file reported" 1 (List.length r.missing)

(* ------------------------------------------------------------------ *)
(* config parsing *)

let test_config () =
  let sexps =
    Lint_sexp.parse_string
      "; comment\n(hot (file lib/engine/envq.ml) (functions push pop))"
  in
  checki "one form" 1 (List.length sexps);
  let tmp = Filename.temp_file "lint" ".sexp" in
  Out_channel.with_open_text tmp (fun oc ->
      output_string oc
        "(allow (rule determinism) (file lib/x.ml) (note \"why\"))\n");
  let entries = Lint_config.load_allow tmp in
  Sys.remove tmp;
  checkb "entry parsed" true
    (match entries with
    | [ e ] ->
        String.equal e.Lint_config.rule "determinism"
        && String.equal e.file "lib/x.ml"
        && String.equal e.note "why"
    | _ -> false)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism random" `Quick
            test_determinism_random;
          Alcotest.test_case "determinism clock" `Quick test_determinism_clock;
          Alcotest.test_case "determinism unsafe" `Quick
            test_determinism_unsafe;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "hot-alloc" `Quick test_hot_alloc;
          Alcotest.test_case "sink-discipline" `Quick test_sink_discipline;
          Alcotest.test_case "deprecated-arg" `Quick test_deprecated_arg;
          Alcotest.test_case "shared-state" `Quick test_shared_state;
          Alcotest.test_case "atomics-discipline" `Quick
            test_atomics_discipline;
          Alcotest.test_case "dls-discipline" `Quick test_dls_discipline;
          Alcotest.test_case "manifest pins" `Quick test_manifest_pins;
          Alcotest.test_case "parse-error" `Quick test_parse_error;
          Alcotest.test_case "mli-coverage" `Quick test_mli_coverage;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "config" `Quick test_config;
        ] );
    ]
