type view = {
  nonempty : int array;
  head_seq : int -> int;
  head_batch : int -> int;
  travels_cw : int -> bool;
  dst_node : int -> int;
  step : int;
}

type t = { name : string; pick : view -> int }

let argmin_by key v =
  let best = ref v.nonempty.(0) in
  let best_key = ref (key v v.nonempty.(0)) in
  Array.iter
    (fun link ->
      let k = key v link in
      if k < !best_key then begin
        best := link;
        best_key := k
      end)
    v.nonempty;
  !best

(* Key tuples are packed lexicographically as (a, b, c). *)
let fifo =
  {
    name = "fifo-cw-priority";
    pick =
      argmin_by (fun v link ->
          (v.head_batch link, (if v.travels_cw link then 0 else 1), v.head_seq link));
  }

let global_fifo =
  { name = "global-fifo"; pick = argmin_by (fun v link -> (v.head_seq link, 0, 0)) }

let lifo =
  { name = "lifo"; pick = argmin_by (fun v link -> (-v.head_seq link, 0, 0)) }

let round_robin () =
  let cursor = ref 0 in
  {
    name = "round-robin";
    pick =
      (fun v ->
        (* First non-empty link at or after the cursor, wrapping. *)
        let after = Array.to_seq v.nonempty |> Seq.filter (fun l -> l >= !cursor) in
        let link =
          match after () with
          | Seq.Cons (l, _) -> l
          | Seq.Nil -> v.nonempty.(0)
        in
        cursor := link + 1;
        link);
  }

let random rng =
  {
    name = "random";
    pick = (fun v -> Colring_stats.Rng.choose rng v.nonempty);
  }

let bias_direction ~cw =
  {
    name = (if cw then "bias-cw" else "bias-ccw");
    pick =
      argmin_by (fun v link ->
          ((if v.travels_cw link = cw then 0 else 1), v.head_seq link, 0));
  }

let starve_node ~node =
  {
    name = Printf.sprintf "starve-node-%d" node;
    pick =
      argmin_by (fun v link ->
          ((if v.dst_node link = node then 1 else 0), v.head_seq link, 0));
  }

let hog_node ~node =
  {
    name = Printf.sprintf "hog-node-%d" node;
    pick =
      argmin_by (fun v link ->
          ((if v.dst_node link = node then 0 else 1), v.head_seq link, 0));
  }

let starve_link ~link:starved =
  {
    name = Printf.sprintf "starve-link-%d" starved;
    pick =
      argmin_by (fun v link ->
          ((if link = starved then 1 else 0), v.head_seq link, 0));
  }

let all_deterministic () =
  [
    fifo;
    global_fifo;
    lifo;
    round_robin ();
    bias_direction ~cw:true;
    bias_direction ~cw:false;
    starve_node ~node:0;
    hog_node ~node:0;
    starve_link ~link:0;
  ]

let pp ppf t = Format.pp_print_string ppf t.name
