lib/engine/output.ml: Format List Option Port String
