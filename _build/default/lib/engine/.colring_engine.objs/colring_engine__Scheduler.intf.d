lib/engine/scheduler.mli: Colring_stats Format
