lib/engine/explore.mli: Network
