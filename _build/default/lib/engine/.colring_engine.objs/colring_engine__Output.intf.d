lib/engine/output.mli: Format Port
