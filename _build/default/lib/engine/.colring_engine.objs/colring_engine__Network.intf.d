lib/engine/network.mli: Colring_stats Metrics Output Port Scheduler Topology Trace
