lib/engine/blocking.ml: Effect Network Port
