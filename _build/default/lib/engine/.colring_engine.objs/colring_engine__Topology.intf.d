lib/engine/topology.mli: Colring_stats Format Port
