lib/engine/scheduler.ml: Array Colring_stats Format Printf Seq
