lib/engine/port.ml: Format Printf Stdlib
