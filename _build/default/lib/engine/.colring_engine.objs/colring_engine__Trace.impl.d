lib/engine/trace.ml: Format List Output Port
