lib/engine/topology.ml: Array Colring_stats Format Fun Port
