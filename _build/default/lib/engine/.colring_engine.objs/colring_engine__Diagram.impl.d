lib/engine/diagram.ml: Buffer List Output Port Printf String Trace
