lib/engine/port.mli: Format
