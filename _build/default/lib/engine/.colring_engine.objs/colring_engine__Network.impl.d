lib/engine/network.ml: Array Colring_stats Fun List Metrics Output Port Queue Scheduler Topology Trace
