lib/engine/metrics.ml: Array Format
