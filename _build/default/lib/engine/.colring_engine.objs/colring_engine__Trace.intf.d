lib/engine/trace.mli: Format Output Port
