lib/engine/metrics.mli: Format
