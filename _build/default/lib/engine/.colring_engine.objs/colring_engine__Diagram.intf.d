lib/engine/diagram.mli: Trace
