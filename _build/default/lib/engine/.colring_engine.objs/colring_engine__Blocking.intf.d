lib/engine/blocking.mli: Network Port
