lib/engine/explore.ml: Buffer Format Hashtbl List Network Output Port Topology
