(** Execution traces.

    Traces record sends, deliveries (channel → mailbox), consumptions
    (mailbox → program), termination, and output changes.  They feed
    the solitude-pattern extraction of the lower-bound machinery and
    the debugging pretty-printer; recording is optional because large
    sweeps do not want the allocation. *)

type event =
  | Send of { node : int; port : Port.t; seq : int }
      (** [node] emitted pulse [seq] from its local [port]. *)
  | Deliver of { node : int; port : Port.t; seq : int }
      (** Pulse [seq] moved from the channel into [node]'s mailbox for
          its local [port]. *)
  | Consume of { node : int; port : Port.t }
      (** The program at [node] consumed one pulse from the mailbox of
          its local [port] (the paper's [recv*] returning 1). *)
  | Terminate of { node : int }
  | Decide of { node : int; output : Output.t }
      (** The program revised its output. *)

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** In chronological order. *)

val length : t -> int

val consumed_ports : t -> node:int -> Port.t list
(** The chronological sequence of local ports from which [node]
    consumed pulses — the raw material of a solitude pattern
    (Definition 21). *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
