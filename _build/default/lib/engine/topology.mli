(** Ring topologies (Section 2, Figure 1).

    A ring of [n] nodes is stored with full port wiring: for every node
    and local port, the peer node and the peer's local port.  The
    builder also records the ground truth of which local port of each
    node leads clockwise.  That ground truth is *never* given to node
    programs — it exists so tests and benches can check orientation
    outputs and classify pulse directions.

    Clockwise is, by convention, the direction of increasing node index
    (… → i → i+1 → …).  On an {!oriented} ring, [Port_1] is every
    node's clockwise port, matching the paper's convention that a pulse
    re-sent from [Port_1] by every node traverses all edges.  A
    {!non_oriented} ring swaps the two port labels of every flipped
    node. The degenerate ring [n = 1] wires the node's two ports to
    each other, which is what the solitude construction of
    Definition 21 requires. *)

type t

val oriented : int -> t
(** [oriented n] is the n-node ring with all ports aligned.
    Raises [Invalid_argument] when [n < 1]. *)

val non_oriented : flips:bool array -> t
(** [non_oriented ~flips] builds a ring of [Array.length flips] nodes
    where node [i]'s port labels are swapped iff [flips.(i)]. *)

val random_non_oriented : Colring_stats.Rng.t -> int -> t
(** Ring with independently fair-coin port flips. *)

val n : t -> int

val peer : t -> int -> Port.t -> int * Port.t
(** [peer t v p] is the endpoint reached by sending from node [v]'s
    port [p]. *)

val cw_send_port : t -> int -> Port.t
(** Ground truth: the local port of node [v] whose pulses travel
    clockwise.  Analysis only. *)

val cw_neighbor : t -> int -> int
val ccw_neighbor : t -> int -> int

val flipped : t -> int -> bool
(** Whether the node's port labels are swapped w.r.t. the oriented
    convention. *)

val is_oriented : t -> bool

val distance_cw : t -> int -> int -> int
(** [distance_cw t u v] hops from [u] to [v] walking clockwise. *)

(** {2 Directed links}

    A directed link is identified by its sending endpoint; there are
    [2 * n] of them. *)

val num_links : t -> int
val link_id : t -> int -> Port.t -> int
val link_src : t -> int -> int * Port.t
val link_dst : t -> int -> int * Port.t
val link_travels_cw : t -> int -> bool

val check : t -> unit
(** Asserts ring well-formedness (symmetric wiring, a single cycle
    covering all nodes).  Raises [Failure] otherwise. *)

val pp : Format.formatter -> t -> unit
