(** ASCII space-time diagrams of executions.

    One row per delivery (and per termination/decision), one column per
    node; a [>] is a pulse arriving that travelled clockwise (it came
    in on the node's [Port_0] — meaningful on oriented rings), [<] one
    that travelled counterclockwise, [L]/[l] a node deciding
    Leader/Non-Leader, [X] a node terminating.  Handy for eyeballing
    how Algorithm 2's two instances chase each other; the CLI's
    [elect --diagram] prints one. *)

val render : ?max_rows:int -> Trace.t -> n:int -> string
(** [render trace ~n] with at most [max_rows] (default 500) event
    rows; a trailing line reports elision. *)

val legend : string
