type stats = {
  distinct_states : int;
  terminal_states : int;
  replayed_deliveries : int;
  failures : int;
  truncated : bool;
  max_depth : int;
}

let fingerprint net =
  let buf = Buffer.create 128 in
  let n = Network.size net in
  let topo = Network.topology net in
  for link = 0 to Topology.num_links topo - 1 do
    Buffer.add_string buf (string_of_int (Network.channel_length net ~link));
    Buffer.add_char buf ','
  done;
  Buffer.add_char buf '|';
  for v = 0 to n - 1 do
    Buffer.add_string buf
      (string_of_int (Network.mailbox_length net ~node:v ~port:Port.P0));
    Buffer.add_char buf ':';
    Buffer.add_string buf
      (string_of_int (Network.mailbox_length net ~node:v ~port:Port.P1));
    Buffer.add_char buf ';';
    Buffer.add_string buf (if Network.terminated net v then "T" else "t");
    Buffer.add_string buf (Format.asprintf "%a" Output.pp (Network.output net v));
    List.iter
      (fun (k, x) ->
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf (string_of_int x);
        Buffer.add_char buf ' ')
      (Network.inspect net v);
    Buffer.add_char buf '|'
  done;
  Buffer.contents buf

let replay make path =
  let net = make () in
  List.iter (fun link -> Network.force_step net ~link) (List.rev path);
  net

let exhaustive ?(max_states = 200_000) ~make ~check () =
  let seen = Hashtbl.create 4096 in
  let terminal = ref 0 in
  let failures = ref 0 in
  let replayed = ref 0 in
  let truncated = ref false in
  let max_depth = ref 0 in
  (* The stack holds decision paths (most recent decision first). *)
  let stack = ref [ [] ] in
  while !stack <> [] && not !truncated do
    match !stack with
    | [] -> ()
    | path :: rest ->
        stack := rest;
        let depth = List.length path in
        if depth > !max_depth then max_depth := depth;
        let net = replay make path in
        replayed := !replayed + depth;
        let fp = fingerprint net in
        if not (Hashtbl.mem seen fp) then begin
          Hashtbl.add seen fp ();
          if Hashtbl.length seen >= max_states then truncated := true;
          match Network.active_links net with
          | [] ->
              incr terminal;
              if not (check net) then incr failures
          | links ->
              List.iter (fun link -> stack := (link :: path) :: !stack) links
        end
  done;
  {
    distinct_states = Hashtbl.length seen;
    terminal_states = !terminal;
    replayed_deliveries = !replayed;
    failures = !failures;
    truncated = !truncated;
    max_depth = !max_depth;
  }
