(** The two communication ports of a ring node (Section 2 of the paper).

    A node only ever sees its local port names [Port_0] and [Port_1];
    whether a port leads clockwise is a global property the node cannot
    observe on a non-oriented ring. *)

type t = P0 | P1

val opposite : t -> t
(** [opposite P0 = P1] and vice versa. *)

val index : t -> int
(** [0] or [1]; used for array indexing. *)

val of_index : int -> t
(** Inverse of {!index}; raises [Invalid_argument] outside [{0,1}]. *)

val all : t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
