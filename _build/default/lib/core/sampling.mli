(** Algorithm 4 — message-free random ID sampling for anonymous rings
    (Section 5).

    Each node samples a bit-length from a geometric distribution with
    parameter [1 - p] where [p = 2^(-1/(c+2))], then that many uniform
    bits.  For any [c > 0] the maximal sampled value over [n] nodes is
    attained by a unique node with high probability, is at least
    [n^Ω(c)] and at most [n^O(c²)] (Lemma 18).  The sampled value is
    shifted by one so that IDs are positive integers, as the rest of
    the paper assumes; the shift is order-preserving so none of the
    guarantees change.

    Feeding these IDs to Algorithm 3 (Improved scheme) yields the
    Theorem 3 anonymous-ring election: only the maximal ID must be
    unique (Lemma 16). *)

val bit_length : Colring_stats.Rng.t -> c:float -> int
(** The geometric [BitCount] sample (capped at 62 so values fit in an
    OCaml [int]; the cap is hit with probability far below 2^-40 for
    any [c] and [n] this repository uses). *)

val sample : Colring_stats.Rng.t -> c:float -> int
(** One ID: [1 + uniform {0,1}^BitCount], always [>= 1]. *)

val sample_ring : Colring_stats.Rng.t -> c:float -> n:int -> int array
(** Independent IDs for an [n]-node ring, one stream per node. *)

val max_is_unique : int array -> bool
(** Whether the maximum occurs exactly once — the success event of the
    sampling stage. *)
