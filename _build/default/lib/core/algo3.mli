(** Algorithm 3 — quiescently stabilizing leader election and ring
    orientation on non-oriented rings (Section 4).

    Each node derives two virtual IDs, one per local port, and runs two
    interleaved copies of Algorithm 1 — pulses received on one port are
    forwarded out of the other, so the two directions of travel never
    interfere.  The virtual IDs make the maximal IDs of the two
    directional executions differ, so pulse counts eventually
    distinguish the directions: the node seeing its own large virtual
    ID win declares itself Leader, and every node labels as clockwise
    the port on which fewer pulses arrived.

    The algorithm reaches quiescence but never terminates (the paper
    conjectures termination is impossible here).

    Counter names exposed through [inspect]: ["id"], ["id0"], ["id1"],
    ["rho0"], ["rho1"], ["sigma0"], ["sigma1"], ["resamples"]. *)

type id_scheme =
  | Doubled
      (** [ID^(i) = 2*ID - 1 + i] — Proposition 15; all [2n] virtual
          IDs are globally unique; [n * (4*ID_max - 1)] pulses. *)
  | Improved
      (** [ID^(i) = ID + i] — Theorem 2; virtual IDs repeat across
          nodes but the two directional maxima still differ
          (Lemma 16/17); [n * (2*ID_max + 1)] pulses. *)

val program :
  scheme:id_scheme ->
  id:int ->
  Colring_engine.Network.pulse Colring_engine.Network.program
(** The per-node program; run it on any (oriented or not) ring.
    [id] must be positive; node outputs carry both the role and the
    believed clockwise port. *)

val program_resampling :
  id:int -> Colring_engine.Network.pulse Colring_engine.Network.program
(** The Proposition 19 modification of the [Improved] program: whenever
    a pulse arrives and [min(ρ0, ρ1) > ID], the node resamples its ID
    uniformly from [\[1, min(ρ0,ρ1) - 1\]], so that at quiescence all
    IDs are distinct with high probability.  The pulse dynamics — and
    hence the message complexity — are unchanged. *)

val total_pulses : scheme:id_scheme -> n:int -> id_max:int -> int
