open Colring_engine

let cw_out = Port.P1
let cw_in = Port.P0
let ccw_out = Port.P0
let ccw_in = Port.P1

type state = {
  id : int;
  (* Pulses consumed from the engine mailbox but not yet "received" in
     the paper's sense — the paper's incoming queues. *)
  mutable queue_cw : int;
  mutable queue_ccw : int;
  mutable rho_cw : int;
  mutable sigma_cw : int;
  mutable rho_ccw : int;
  mutable sigma_ccw : int;
  mutable role : Output.role;
  mutable term_initiated : bool;
}

let drain (api : _ Network.api) st =
  let rec go port =
    match api.recv port with
    | Some () ->
        if Port.equal port cw_in then st.queue_cw <- st.queue_cw + 1
        else st.queue_ccw <- st.queue_ccw + 1;
        go port
    | None -> ()
  in
  go cw_in;
  go ccw_in

(* Block until at least one more pulse is queued, then stage it. *)
let await_more (api : _ Network.api) st =
  let port = Blocking.recv_any () in
  if Port.equal port cw_in then st.queue_cw <- st.queue_cw + 1
  else st.queue_ccw <- st.queue_ccw + 1;
  drain api st

let recv_cw st =
  if st.queue_cw > 0 then begin
    st.queue_cw <- st.queue_cw - 1;
    st.rho_cw <- st.rho_cw + 1;
    true
  end
  else false

let recv_ccw st =
  if st.queue_ccw > 0 then begin
    st.queue_ccw <- st.queue_ccw - 1;
    st.rho_ccw <- st.rho_ccw + 1;
    true
  end
  else false

let send_cw (api : _ Network.api) st =
  api.send cw_out ();
  st.sigma_cw <- st.sigma_cw + 1

let send_ccw (api : _ Network.api) st =
  api.send ccw_out ();
  st.sigma_ccw <- st.sigma_ccw + 1

let body st (api : _ Network.api) =
  (* Line 1 *)
  send_cw api st;
  let continue = ref true in
  while !continue do
    drain api st;
    let progress = ref false in
    (* Lines 3-8 *)
    if recv_cw st then begin
      progress := true;
      if st.rho_cw = st.id then st.role <- Output.Leader
      else begin
        st.role <- Output.Non_leader;
        send_cw api st
      end;
      api.set_output (Output.with_role st.role Output.empty)
    end;
    (* Lines 9-13 *)
    if st.rho_cw >= st.id then begin
      if st.sigma_ccw = 0 then begin
        send_ccw api st;
        progress := true
      end;
      if recv_ccw st then begin
        progress := true;
        if st.rho_ccw <> st.id then send_ccw api st
      end
    end;
    (* Lines 14-17: the unique election-complete event, then the
       literal busy-wait for the returning termination pulse. *)
    if (not st.term_initiated) && st.rho_cw = st.id && st.rho_ccw = st.id
    then begin
      send_ccw api st;
      st.term_initiated <- true;
      while not (recv_ccw st) do
        await_more api st
      done;
      progress := true
    end;
    (* Line 18 *)
    if st.rho_ccw > st.rho_cw then continue := false
    else if not !progress then await_more api st
  done;
  (* Line 19 *)
  api.set_output (Output.with_role st.role Output.empty);
  api.terminate ()

let program ~id =
  if id < 1 then invalid_arg "Algo2_blocking.program: id must be positive";
  let st =
    {
      id;
      queue_cw = 0;
      queue_ccw = 0;
      rho_cw = 0;
      sigma_cw = 0;
      rho_ccw = 0;
      sigma_ccw = 0;
      role = Output.Undecided;
      term_initiated = false;
    }
  in
  let inspect () =
    [
      ("id", st.id);
      ("rho_cw", st.rho_cw);
      ("sigma_cw", st.sigma_cw);
      ("rho_ccw", st.rho_ccw);
      ("sigma_ccw", st.sigma_ccw);
      ("term_initiated", if st.term_initiated then 1 else 0);
    ]
  in
  Blocking.make ~inspect (body st)
