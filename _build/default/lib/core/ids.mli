(** ID assignments for experiment workloads.

    The paper's complexity depends on [ID_max], not just [n], so the
    sweeps need control over both: dense assignments ([1..n]), sparse
    ones (distinct values up to a large bound — the regime where the
    [Ω(n log(ID_max/n))] lower bound bites), adversarial placements of
    the maximum, and duplicated IDs for the Lemma 16/17 experiments. *)

val dense : Colring_stats.Rng.t -> n:int -> int array
(** A uniformly random permutation of [1..n]. *)

val distinct : Colring_stats.Rng.t -> n:int -> id_max:int -> int array
(** [n] distinct IDs drawn from [\[1, id_max\]], with [id_max] itself
    always assigned (so the instance's [ID_max] is exactly [id_max]),
    in random ring positions.  Requires [id_max >= n]. *)

val with_max_at : int array -> pos:int -> int array
(** Copy of the assignment with the maximal ID rotated to ring
    position [pos]. *)

val duplicated :
  Colring_stats.Rng.t -> n:int -> id_max:int -> dup_max:int -> int array
(** Assignment where the value [id_max] occurs exactly [dup_max] times
    and all other entries are uniform in [\[1, id_max - 1\]] (repeats
    allowed) — the Lemma 17 workload.  Requires
    [1 <= dup_max <= n]. *)

val id_max : int array -> int
val argmax : int array -> int
(** Position of the maximal value (first one on ties). *)
