(** Deliberately broken variants of the paper's algorithms.

    Each variant removes exactly one design ingredient the paper argues
    is necessary.  The test-suite and the E10 bench run them to show
    the failure actually materialises — the experimental counterpart of
    the paper's "why the algorithm is built this way" discussion
    (Section 3.2's lag argument, Section 4's distinct directional
    maxima, Section 3.1's pulse absorption). *)

val algo2_no_lag :
  id:int -> Colring_engine.Network.pulse Colring_engine.Network.program
(** Algorithm 2 with the counterclockwise instance started at
    initialization instead of being gated on [ρcw >= ID].  The event
    [ρcw = ID = ρccw] is then no longer unique to the maximal node:
    premature termination pulses circulate and runs end with wrong
    leaders, missing leaders, early termination, or pulses arriving at
    terminated nodes — depending on the adversary. *)

val algo3_same_virtual_ids :
  id:int -> Colring_engine.Network.pulse Colring_engine.Network.program
(** Algorithm 3 with [ID^(0) = ID^(1) = ID]: the two directional
    executions then have identical maxima, both port counters stabilize
    at the same value, the leader predicate [ρ0 = ID^(1) > ρ1] can
    never hold, and orientation ties are broken inconsistently.  Shows
    why the virtual IDs must make the directions distinguishable. *)

val algo1_no_absorption :
  id:int -> Colring_engine.Network.pulse Colring_engine.Network.program
(** Algorithm 1 with the [ρcw = ID] absorption removed: every node is a
    pure relay, the initial n pulses circulate forever and the network
    never reaches quiescence (runs end by exhausting the delivery
    budget). *)

type failure = {
  wrong_leader : bool;  (** No unique leader, or not the max-ID node. *)
  not_quiescent : bool;
  post_term_deliveries : int;
  exhausted : bool;
  sends : int;
}

val observe :
  ?max_deliveries:int ->
  (id:int -> Colring_engine.Network.pulse Colring_engine.Network.program) ->
  topo:Colring_engine.Topology.t ->
  ids:int array ->
  sched:Colring_engine.Scheduler.t ->
  failure
(** Run a (possibly broken) program factory and report what went
    wrong; all fields benign means this particular run got lucky. *)

val failed : failure -> bool
