(** Machine-checked invariants of the paper's lemmas, as engine probes.

    Attach a checker to a running network and it validates, after every
    single delivery, the state predicates the paper proves — turning
    the lemmas into executable assertions.  Used by the test-suite and
    available to any experiment. *)

type violation = {
  step : int;  (** Delivery count when the violation was seen. *)
  node : int;
  lemma : string;
  detail : string;
}

type checker

val attach :
  Colring_engine.Network.pulse Colring_engine.Network.t ->
  ids:int array ->
  checker
(** Build a checker for a network running Algorithm 1 or Algorithm 2
    (it reads the standard counter names from [inspect]). *)

val probe : checker -> step:int -> unit
(** Pass as the [~probe] of {!Colring_engine.Network.run}. *)

val violations : checker -> violation list
(** Chronological; empty iff every checked configuration satisfied:

    - Lemma 6(1): [ρ < ID] implies [σ = ρ + 1] (per direction, the CCW
      instance checked only once it has started);
    - Lemma 6(2): [ρ >= ID] implies [σ = ρ];
    - Corollary 14: [ρ <= ID_max] (CW instance; [ID_max + 1] allowed on
      the CCW side for the termination pulse);
    - Lemma 7 order: no node reaches [ρcw >= ID] after the max-ID node
      has;
    - Lemmas 8/9 (and 11): the clockwise instance has pulses in transit
      iff some node still has [ρcw < ID] — checked in both directions
      from the conservation identity in-transit = Σσ − Σρ (violations
      reported with [node = -1]). *)

val ok : checker -> bool

val pp_violation : Format.formatter -> violation -> unit
