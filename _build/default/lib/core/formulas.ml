let algo1_total ~n ~id_max = n * id_max
let algo2_total ~n ~id_max = n * ((2 * id_max) + 1)
let algo3_doubled_total ~n ~id_max = n * ((4 * id_max) - 1)
let algo3_improved_total ~n ~id_max = n * ((2 * id_max) + 1)

let floor_log2 v =
  if v < 1 then invalid_arg "Formulas.floor_log2";
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let lower_bound ~n ~k =
  if k < n then invalid_arg "Formulas.lower_bound: k < n";
  (* floor (log2 (k/n)) = the largest s with n * 2^s <= k. *)
  let rec go s = if n lsl (s + 1) <= k then go (s + 1) else s in
  n * go 0
