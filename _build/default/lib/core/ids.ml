module Rng = Colring_stats.Rng

let dense rng ~n =
  let a = Array.init n (fun i -> i + 1) in
  Rng.shuffle rng a;
  a

let distinct rng ~n ~id_max =
  if id_max < n then invalid_arg "Ids.distinct: id_max < n";
  (* Floyd's sampling of n-1 distinct values from [1, id_max-1], plus
     id_max itself. *)
  let seen = Hashtbl.create (2 * n) in
  let picked = ref [] in
  for j = id_max - n + 1 to id_max - 1 do
    let t = Rng.int_incl rng 1 j in
    let v = if Hashtbl.mem seen t then j else t in
    Hashtbl.replace seen v ();
    picked := v :: !picked
  done;
  let a = Array.of_list (id_max :: !picked) in
  Rng.shuffle rng a;
  a

let argmax a =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > a.(!best) then best := i) a;
  !best

let id_max a = Array.fold_left max min_int a

let with_max_at a ~pos =
  let n = Array.length a in
  let src = argmax a in
  (* Rotate so the max lands at [pos], preserving cyclic order. *)
  Array.init n (fun i -> a.((i - pos + src + n + n) mod n))

let duplicated rng ~n ~id_max ~dup_max =
  if dup_max < 1 || dup_max > n then invalid_arg "Ids.duplicated: bad dup_max";
  if id_max < 2 && n > dup_max then invalid_arg "Ids.duplicated: id_max too small";
  let a =
    Array.init n (fun i ->
        if i < dup_max then id_max else Rng.int_incl rng 1 (id_max - 1))
  in
  Rng.shuffle rng a;
  a
