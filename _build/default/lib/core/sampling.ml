module Rng = Colring_stats.Rng

let bit_length rng ~c =
  if c <= 0. then invalid_arg "Sampling.bit_length: c must be positive";
  let p = 2. ** (-1. /. (c +. 2.)) in
  min 62 (Rng.geometric rng ~p:(1. -. p))

let sample rng ~c = 1 + Rng.bits rng (bit_length rng ~c)

let sample_ring rng ~c ~n =
  if n < 1 then invalid_arg "Sampling.sample_ring: n must be >= 1";
  Array.init n (fun v -> sample (Rng.split_at rng v) ~c)

let max_is_unique ids =
  let m = Array.fold_left max min_int ids in
  Array.fold_left (fun acc x -> if x = m then acc + 1 else acc) 0 ids = 1
