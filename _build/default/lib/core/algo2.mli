(** Algorithm 2 — quiescently terminating leader election on oriented
    rings (Section 3.2, Theorem 1).

    Two copies of Algorithm 1 run in parallel: one over the clockwise
    channel (started at initialization) and one over the
    counterclockwise channel (started at a node once its clockwise
    count reaches its ID, which makes the CCW instance lag behind the
    CW one).  The event [ρcw = ID = ρccw] occurs uniquely at the node
    of maximal ID; that node then emits one extra counterclockwise
    pulse.  Every node that observes [ρccw > ρcw] for the first time
    forwards the extra pulse and terminates; the pulse returns to the
    leader, which terminates last, without forwarding.

    Total pulses sent, on every schedule: [n * (2 * ID_max + 1)]
    ([n * ID_max] clockwise, [n * (ID_max + 1)] counterclockwise).

    Counter names exposed through [inspect]: ["id"], ["rho_cw"],
    ["sigma_cw"], ["rho_ccw"], ["sigma_ccw"], ["term_initiated"]. *)

val program : id:int -> Colring_engine.Network.pulse Colring_engine.Network.program
(** The per-node program; run it on an oriented ring.  [id] must be
    positive and unique network-wide. *)

val total_pulses : n:int -> id_max:int -> int
(** Alias of {!Formulas.algo2_total}. *)
