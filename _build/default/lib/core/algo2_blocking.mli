(** A second, independent implementation of Algorithm 2, written in
    blocking style with effect handlers ({!Colring_engine.Blocking}).

    The code transliterates the paper's pseudocode loop directly:
    it keeps the paper's incoming queues as local counters (pulses are
    moved from the engine mailbox into them eagerly, which is
    observationally identical), runs the repeat-body, and suspends on
    [recv_any] whenever an iteration makes no progress — including the
    literal busy-wait of line 16.

    It exists for differential testing: {!Algo2} (event-driven, wake
    to fixpoint) and this module must produce identical leaders, role
    vectors, exact pulse totals and splits, and termination orders on
    every instance and schedule.  Counter names in [inspect] match
    {!Algo2}. *)

val program : id:int -> Colring_engine.Network.pulse Colring_engine.Network.program
