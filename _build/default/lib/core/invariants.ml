open Colring_engine

type violation = { step : int; node : int; lemma : string; detail : string }

type checker = {
  net : Network.pulse Network.t;
  ids : int array;
  id_max : int;
  max_node : int;
  crossed : bool array; (* rho_cw >= id observed *)
  mutable max_crossed : bool;
  mutable violations : violation list; (* reversed *)
}

let attach net ~ids =
  {
    net;
    ids;
    id_max = Ids.id_max ids;
    max_node = Ids.argmax ids;
    crossed = Array.make (Array.length ids) false;
    max_crossed = false;
    violations = [];
  }

let report c ~step ~node ~lemma detail =
  c.violations <- { step; node; lemma; detail } :: c.violations

let counter counters name = List.assoc_opt name counters

let check_direction c ~step ~node ~id ~rho ~sigma ~started ~suffix =
  if started then begin
    if rho < id && sigma <> rho + 1 then
      report c ~step ~node ~lemma:("lemma6.1" ^ suffix)
        (Printf.sprintf "rho=%d sigma=%d id=%d" rho sigma id);
    if rho >= id && sigma <> rho then
      report c ~step ~node ~lemma:("lemma6.2" ^ suffix)
        (Printf.sprintf "rho=%d sigma=%d id=%d" rho sigma id)
  end

(* Lemmas 8/9 (hence 11): the clockwise instance is quiescent — no
   pulse sent but not yet consumed — iff every node has received at
   least its ID.  Both directions of the equivalence are checked from
   the nodes' own counters (conservation: in-transit = Σσ - Σρ,
   including mailbox pulses, as the paper's footnote 2 counts them). *)
let check_quiescence_iff c ~step =
  let n = Array.length c.ids in
  let sum_sigma = ref 0 and sum_rho = ref 0 in
  let all_crossed = ref true in
  let have_counters = ref true in
  for node = 0 to n - 1 do
    let counters = Network.inspect c.net node in
    match (counter counters "rho_cw", counter counters "sigma_cw") with
    | Some rho, Some sigma ->
        sum_rho := !sum_rho + rho;
        sum_sigma := !sum_sigma + sigma;
        if rho < c.ids.(node) then all_crossed := false
    | _ -> have_counters := false
  done;
  if !have_counters then begin
    let quiescent_cw = !sum_sigma = !sum_rho in
    if quiescent_cw && not !all_crossed then
      report c ~step ~node:(-1) ~lemma:"lemma9"
        "cw quiescent but some node has rho < ID";
    if !all_crossed && not quiescent_cw then
      report c ~step ~node:(-1) ~lemma:"lemma8"
        "all nodes crossed but cw pulses still in transit"
  end

let probe c ~step =
  check_quiescence_iff c ~step;
  let n = Array.length c.ids in
  for node = 0 to n - 1 do
    if not (Network.terminated c.net node) then begin
      let counters = Network.inspect c.net node in
      let id = c.ids.(node) in
      (match (counter counters "rho_cw", counter counters "sigma_cw") with
      | Some rho, Some sigma ->
          check_direction c ~step ~node ~id ~rho ~sigma ~started:true
            ~suffix:".cw";
          if rho > c.id_max then
            report c ~step ~node ~lemma:"corollary14"
              (Printf.sprintf "rho_cw=%d > ID_max=%d" rho c.id_max);
          if rho >= id && not c.crossed.(node) then begin
            c.crossed.(node) <- true;
            if c.max_crossed && node <> c.max_node then
              report c ~step ~node ~lemma:"lemma7"
                "crossed rho >= ID after the max-ID node";
            if node = c.max_node then begin
              c.max_crossed <- true;
              Array.iteri
                (fun v crossed ->
                  if not crossed then
                    report c ~step ~node:v ~lemma:"lemma7"
                      "max-ID node crossed while this node had rho < ID")
                c.crossed
            end
          end
      | _ -> ());
      match
        ( counter counters "rho_ccw",
          counter counters "sigma_ccw",
          counter counters "term_initiated" )
      with
      | Some rho, Some sigma, Some initiated ->
          (* The CCW instance starts with its first send; after the
             leader initiates termination its sigma runs one ahead. *)
          if initiated = 0 then
            check_direction c ~step ~node ~id ~rho ~sigma ~started:(sigma > 0)
              ~suffix:".ccw";
          if rho > c.id_max + 1 then
            report c ~step ~node ~lemma:"corollary14.ccw"
              (Printf.sprintf "rho_ccw=%d > ID_max+1=%d" rho (c.id_max + 1))
      | _ -> ()
    end
  done

let violations c = List.rev c.violations
let ok c = c.violations = []

let pp_violation ppf v =
  Format.fprintf ppf "step %d node %d [%s] %s" v.step v.node v.lemma v.detail
