(** Closed-form message counts from the paper's statements.

    Tests assert exact equality of measured totals with these formulas
    (the totals are schedule-independent), and the benches print them
    as the "paper" column. *)

val algo1_total : n:int -> id_max:int -> int
(** Corollary 13: every node sends exactly [id_max] pulses, so the
    warm-up Algorithm 1 sends [n * id_max] in total. *)

val algo2_total : n:int -> id_max:int -> int
(** Theorem 1: [n * (2 * id_max + 1)]. *)

val algo3_doubled_total : n:int -> id_max:int -> int
(** Proposition 15: [n * (4 * id_max - 1)]. *)

val algo3_improved_total : n:int -> id_max:int -> int
(** Theorem 2: [n * (2 * id_max + 1)]. *)

val lower_bound : n:int -> k:int -> int
(** Theorem 20: with [k >= n] assignable IDs, some assignment forces at
    least [n * floor (log2 (k / n))] pulses. *)

val floor_log2 : int -> int
(** [floor_log2 v] for [v >= 1]. *)
