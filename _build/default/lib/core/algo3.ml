open Colring_engine
module Rng = Colring_stats.Rng

type id_scheme = Doubled | Improved

type state = {
  mutable id : int; (* mutable only for the Proposition 19 variant *)
  scheme : id_scheme;
  rho : int array; (* received per local port *)
  sigma : int array; (* sent per local port *)
  mutable resamples : int;
}

(* ID^(i) governs forwarding *out of* port i (= absorbing pulses that
   arrived on port 1-i), line 2 of Algorithm 3. *)
let virtual_id st i =
  match st.scheme with
  | Doubled -> (2 * st.id) - 1 + i
  | Improved -> st.id + i

let send (api : _ Network.api) st i =
  api.send (Port.of_index i) ();
  st.sigma.(i) <- st.sigma.(i) + 1

let recv (api : _ Network.api) st i =
  match api.recv (Port.of_index i) with
  | Some () ->
      st.rho.(i) <- st.rho.(i) + 1;
      true
  | None -> false

(* Lines 8-16: recompute the (revisable) output from the counters. *)
let decide (api : _ Network.api) st =
  if max st.rho.(0) st.rho.(1) >= virtual_id st 1 then begin
    let role =
      if st.rho.(0) = virtual_id st 1 && st.rho.(1) < virtual_id st 1 then
        Output.Leader
      else Output.Non_leader
    in
    (* More arrivals on a port means the larger-ID direction comes in
       there; clockwise pulses arrive at counterclockwise ports. *)
    let cw_port = if st.rho.(0) > st.rho.(1) then Port.P1 else Port.P0 in
    api.set_output (Output.with_cw_port cw_port (Output.with_role role Output.empty))
  end

(* Proposition 19: resample upon receipt while min(ρ0,ρ1) > ID.  By the
   time this fires the node has absorbed its one pulse in each
   direction, and the fresh ID stays below both counters, so the node
   remains a pure relay: pulse dynamics are unchanged. *)
let maybe_resample (api : _ Network.api) st =
  let m = min st.rho.(0) st.rho.(1) in
  if m > st.id then begin
    st.id <- Rng.int_incl api.rng 1 (m - 1);
    st.resamples <- st.resamples + 1
  end

let make ~resample ~scheme ~id =
  if id < 1 then invalid_arg "Algo3.program: id must be positive";
  let st = { id; scheme; rho = [| 0; 0 |]; sigma = [| 0; 0 |]; resamples = 0 } in
  let start api =
    for i = 0 to 1 do
      send api st i
    done
  in
  let wake (api : _ Network.api) =
    let progress = ref true in
    while !progress do
      progress := false;
      for i = 0 to 1 do
        (* Line 6: pulses received at port 1-i are forwarded at port i
           unless the count matches ID^(i). *)
        if recv api st (1 - i) then begin
          progress := true;
          if st.rho.(1 - i) <> virtual_id st i then send api st i;
          if resample then maybe_resample api st
        end
      done;
      decide api st
    done
  in
  let inspect () =
    [
      ("id", st.id);
      ("id0", virtual_id st 0);
      ("id1", virtual_id st 1);
      ("rho0", st.rho.(0));
      ("rho1", st.rho.(1));
      ("sigma0", st.sigma.(0));
      ("sigma1", st.sigma.(1));
      ("resamples", st.resamples);
    ]
  in
  { Network.start; wake; inspect }

let program ~scheme ~id = make ~resample:false ~scheme ~id
let program_resampling ~id = make ~resample:true ~scheme:Improved ~id

let total_pulses ~scheme ~n ~id_max =
  match scheme with
  | Doubled -> Formulas.algo3_doubled_total ~n ~id_max
  | Improved -> Formulas.algo3_improved_total ~n ~id_max
