(** Algorithm 1 — quiescently stabilizing leader election on oriented
    rings (Section 3.1).

    Each node sends one clockwise pulse at start-up and then relays
    every received clockwise pulse, except the single time its received
    count [ρcw] equals its own ID, at which point it (tentatively)
    declares itself Leader and absorbs the pulse.  Any later pulse
    reverts it to Non-Leader.  The network stabilizes with every node
    having sent and received exactly [ID_max] pulses (Corollary 13) and
    the unique node of maximal ID in the Leader state.  Nodes never
    terminate.

    Counter names exposed through [inspect]: ["id"], ["rho_cw"],
    ["sigma_cw"]. *)

val program : id:int -> Colring_engine.Network.pulse Colring_engine.Network.program
(** The per-node program; run it on an {!Colring_engine.Topology.oriented}
    ring.  [id] must be positive. *)

val total_pulses : n:int -> id_max:int -> int
(** Alias of {!Formulas.algo1_total}. *)
