lib/core/ids.ml: Array Colring_stats Hashtbl
