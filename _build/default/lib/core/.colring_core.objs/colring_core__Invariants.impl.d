lib/core/invariants.ml: Array Colring_engine Format Ids List Network Printf
