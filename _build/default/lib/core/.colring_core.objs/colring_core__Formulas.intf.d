lib/core/formulas.mli:
