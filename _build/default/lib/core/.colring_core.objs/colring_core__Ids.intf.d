lib/core/ids.mli: Colring_stats
