lib/core/sampling.mli: Colring_stats
