lib/core/algo2_blocking.mli: Colring_engine
