lib/core/algo2.ml: Colring_engine Formulas Network Output Port
