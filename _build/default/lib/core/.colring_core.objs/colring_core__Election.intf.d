lib/core/election.mli: Algo3 Colring_engine
