lib/core/algo1.ml: Colring_engine Formulas Network Output Port
