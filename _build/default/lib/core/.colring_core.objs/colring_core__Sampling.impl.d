lib/core/sampling.ml: Array Colring_stats
