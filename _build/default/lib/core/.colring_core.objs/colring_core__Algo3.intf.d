lib/core/algo3.mli: Colring_engine
