lib/core/ablation.mli: Colring_engine
