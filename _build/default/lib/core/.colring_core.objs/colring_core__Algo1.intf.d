lib/core/algo1.mli: Colring_engine
