lib/core/algo3.ml: Array Colring_engine Colring_stats Formulas Network Output Port
