lib/core/ablation.ml: Array Colring_engine Ids Metrics Network Output Port
