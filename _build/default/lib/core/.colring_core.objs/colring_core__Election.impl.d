lib/core/election.ml: Algo1 Algo2 Algo3 Array Colring_engine Formulas Ids List Metrics Network Option Output Port Topology
