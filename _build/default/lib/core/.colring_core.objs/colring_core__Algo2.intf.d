lib/core/algo2.mli: Colring_engine
