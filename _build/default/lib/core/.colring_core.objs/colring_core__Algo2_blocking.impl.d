lib/core/algo2_blocking.ml: Blocking Colring_engine Network Output Port
