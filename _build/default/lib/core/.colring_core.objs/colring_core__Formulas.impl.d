lib/core/formulas.ml:
