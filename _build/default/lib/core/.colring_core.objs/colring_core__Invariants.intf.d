lib/core/invariants.mli: Colring_engine Format
