(** Sequential composition of content-oblivious programs — the
    mechanism behind Corollary 5 (Section 1.1).

    [chain first second] runs [first] until it would terminate, then
    switches the node to [second first_output] *instead of*
    terminating, exactly as the paper describes ("replacing the act of
    termination with the act of switching to the second algorithm").

    Correct message-algorithm attribution needs [first] to terminate
    quiescently *and in order*, with the designated initiator of
    [second] switching last — Algorithm 2 provides precisely that: the
    leader terminates last, so when it sends the first pulse of the
    second algorithm every other node has already switched. *)

val chain :
  'm Colring_engine.Network.program ->
  (Colring_engine.Output.t -> 'm Colring_engine.Network.program) ->
  'm Colring_engine.Network.program
(** The second program is constructed at switch time from the output
    the first program decided on.  The first program's [terminate] is
    intercepted; the second program's [terminate] really terminates the
    node.  [inspect] concatenates both programs' counters (prefixed
    with [a.] / [b.]). *)
