lib/compose/codec.ml: List
