lib/compose/chain.ml: Colring_engine List Network Output
