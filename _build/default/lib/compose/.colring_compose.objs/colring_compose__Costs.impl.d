lib/compose/costs.ml: Array Codec Colring_core
