lib/compose/tape.ml: Array Blocking Buffer Char Codec Colring_engine List Network Port String
