lib/compose/machines.mli: Sync
