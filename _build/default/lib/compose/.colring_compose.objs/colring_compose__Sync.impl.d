lib/compose/sync.ml: Array Tape
