lib/compose/chain.mli: Colring_engine
