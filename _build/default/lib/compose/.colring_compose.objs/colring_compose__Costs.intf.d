lib/compose/costs.mli:
