lib/compose/sync.mli: Tape
