lib/compose/machines.ml: Fun List Sync
