lib/compose/corollary5.mli: Colring_engine Tape
