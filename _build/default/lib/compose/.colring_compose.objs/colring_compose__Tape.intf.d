lib/compose/tape.mli: Colring_engine
