lib/compose/codec.mli:
