lib/compose/corollary5.ml: Array Blocking Chain Char Colring_core Colring_engine List Machines Metrics Network Output String Sync Tape Topology
