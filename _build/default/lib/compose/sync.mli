(** Simulation of arbitrary synchronous-round ring algorithms over the
    fully-defective ring — Corollary 5 made executable.

    A {!machine} is an ordinary message-passing ring algorithm: per
    round it consumes the messages its two neighbours sent in the
    previous round and emits new ones.  {!run} executes it over the
    shared tape: each round performs three {!Tape.all_gather}
    collectives (clockwise messages, counterclockwise messages, halt
    flags), after which every node extracts its own inbox locally.
    Since every node sees every gathered value, the simulation is
    trivially deterministic and identical at all nodes.

    Message values must be non-negative.  Rounds proceed until every
    machine instance halts (or [rounds_cap] is hit). *)

type 'a step_result = {
  state : 'a;
  to_cw : int option;  (** Message for the clockwise neighbour. *)
  to_ccw : int option;
  halt : bool;
}

type 'a machine = {
  name : string;
  init : pos:int -> n:int -> 'a;
      (** [pos] is the node's clockwise distance from the root. *)
  step :
    'a -> round:int -> from_ccw:int option -> from_cw:int option ->
    'a step_result;
      (** Round 0 runs with an empty inbox. *)
}

val run : Tape.session -> 'a machine -> rounds_cap:int -> 'a * int
(** Final machine state at this node, and the number of rounds run.
    Raises [Failure] if [rounds_cap] rounds pass without global halt. *)
