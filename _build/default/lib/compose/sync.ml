type 'a step_result = {
  state : 'a;
  to_cw : int option;
  to_ccw : int option;
  halt : bool;
}

type 'a machine = {
  name : string;
  init : pos:int -> n:int -> 'a;
  step :
    'a -> round:int -> from_ccw:int option -> from_cw:int option ->
    'a step_result;
}

let encode_opt = function None -> 0 | Some v ->
  if v < 0 then invalid_arg "Sync: message values must be >= 0" else v + 1

let decode_opt = function 0 -> None | v -> Some (v - 1)

let run session machine ~rounds_cap =
  let n = Tape.n session in
  let me = Tape.distance session in
  let state = ref (machine.init ~pos:me ~n) in
  let from_ccw = ref None and from_cw = ref None in
  let rec go round =
    if round >= rounds_cap then
      failwith ("Sync.run: rounds_cap hit for machine " ^ machine.name);
    let r = machine.step !state ~round ~from_ccw:!from_ccw ~from_cw:!from_cw in
    state := r.state;
    let cw_msgs =
      Tape.all_gather session ~value:(encode_opt r.to_cw)
    in
    let ccw_msgs =
      Tape.all_gather session ~value:(encode_opt r.to_ccw)
    in
    let halts = Tape.all_gather session ~value:(if r.halt then 1 else 0) in
    if Array.for_all (fun h -> h = 1) halts then round + 1
    else begin
      (* My clockwise inbox entry comes from my counterclockwise
         neighbour's to_cw, and vice versa. *)
      from_ccw := decode_opt cw_msgs.((me + n - 1) mod n);
      from_cw := decode_opt ccw_msgs.((me + 1) mod n);
      go (round + 1)
    end
  in
  let rounds = go 0 in
  (!state, rounds)
