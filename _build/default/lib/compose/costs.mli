(** Closed-form pulse costs of the tape protocol.

    Everything the tape does is deterministic, so its pulse cost is a
    function of [n] and the values written.  These formulas are tested
    against measured runs (they must match {e exactly}); the E8 bench
    prints both.  All assume an established session whose write turn
    starts at the root (distance 0), which is what {!Tape.establish}
    leaves behind. *)

val establish : n:int -> int
(** The enumeration phase: [n] baton hops, [n-1] announcement circles
    of [n] pulses each, plus (for [n >= 2]) the root's gamma(n+1)
    broadcast at [n] pulses per symbol. *)

val value : n:int -> int -> int
(** Writing value [v]: [gamma_length (v+1) * n]. *)

val pass : int
(** Moving the turn one hop: 1 pulse. *)

val bcast : n:int -> turn:int -> writer:int -> int -> int * int
(** [(pulses, final_turn)] of a {!Tape.bcast}, including turn
    rotation. *)

val all_gather : n:int -> turn:int -> int array -> int * int
(** [(pulses, final_turn)] of a {!Tape.all_gather} where the array
    holds each distance's contributed value. *)

val ring_discovery_total : n:int -> id_max:int -> int
(** Election (Theorem 1) + establish — the full
    {!Corollary5.app_ring_discovery} run. *)

val gather_ids_total : ids_by_distance:int array -> id_max:int -> int
(** Election + establish + the ID all-gather
    ({!Corollary5.app_gather_ids}); [ids_by_distance.(d)] is the ID of
    the node at clockwise distance [d] from the leader. *)
