(** The shared-tape protocol: arbitrary computation over a
    fully-defective oriented ring with an elected root (our
    ring-specialized realization of the compiler of Censor-Hillel et
    al. [8], used to demonstrate Corollary 5).

    {2 Protocol}

    All communication is serialized — at most one pulse is ever in
    flight — and uses two pulse shapes:

    - a {e tape symbol}: a pulse relayed by every node and absorbed by
      its originator after a full circle.  A clockwise circle is the
      bit [0], a counterclockwise circle the bit [1]; since every node
      relays the pulse exactly once, all nodes observe the same symbol
      sequence — a global broadcast tape with a binary alphabet.
    - a {e baton}: a single-hop clockwise pulse that moves the
      exclusive write turn to the next node clockwise.  Only the
      receiver sees it; everyone else tracks the turn by executing the
      same deterministic operation sequence.

    {!establish} bootstraps knowledge: the root circulates a baton all
    the way around; each node, upon receiving it, announces itself with
    one counterclockwise tape symbol before passing the baton on, so
    the k-th node learns its clockwise distance k from the announcement
    count, and the root learns [n].  The root then writes [n] in
    Elias-gamma (whose first symbol is clockwise, while all
    announcements were counterclockwise — that is how readers detect
    the boundary).

    Values are written in Elias-gamma ({!Codec}), which is
    self-delimiting, so readers always know where a value ends.

    {2 Cost}

    A tape symbol costs [n] pulses, a baton 1.  [establish] costs
    [n] baton hops + [(n-1) * n] announcement pulses + (for [n >= 2])
    [n * gamma_length (n+1)] broadcast pulses, and each value [v] costs
    [n * (2 floor(log2 (v+1)) + 1)] — see {!Costs} for the closed
    forms, which the tests check against measured runs exactly. *)

type session

val establish :
  Colring_engine.Network.pulse Colring_engine.Network.api ->
  is_root:bool ->
  session
(** Run the enumeration phase.  Must be called from inside a
    {!Colring_engine.Blocking.make} body, by every node, with exactly
    one root.  Returns once this node knows [n] and its distance. *)

val api : session -> Colring_engine.Network.pulse Colring_engine.Network.api
val n : session -> int
(** Ring size, learned during {!establish}. *)

val distance : session -> int
(** Clockwise distance from the root (0 for the root itself). *)

val is_root : session -> bool
val turn : session -> int
(** Distance of the node currently holding the write turn. *)

val my_turn : session -> bool

(** {2 Mid-level tape operations} *)

val write_symbol : session -> bool -> unit
(** Emit one tape symbol (requires the turn); returns after the pulse
    has completed its circle. *)

val read_symbol : session -> bool
(** Consume and relay the next tape symbol (for non-writers). *)

val pass_turn : session -> unit
(** Move the turn one node clockwise (all nodes must call this at the
    same point of their operation sequence; only the holder and the
    successor exchange the baton). *)

val write_value : session -> int -> unit
(** Gamma-encode a value ([>= 0]) onto the tape (requires the turn). *)

val read_value : session -> int

(** {2 Collectives}

    Every node must call collectives in the same order with matching
    arguments — the usual SPMD contract. *)

val bcast : session -> writer:int -> value:int -> int
(** The node at distance [writer] contributes [value]; everyone returns
    the written value ([value] is ignored elsewhere).  Rotates the turn
    to [writer] with batons as needed. *)

val all_gather : session -> value:int -> int array
(** Index [d] of the result is the value contributed by the node at
    distance [d]. *)

val write_string : session -> string -> unit
(** Gamma-framed text: length, then one value per byte (requires the
    turn). *)

val read_string : session -> string

(** {2 Cost counters} *)

val symbols_on_tape : session -> int
(** Symbols this node has observed or written (identical at all nodes
    once quiescent). *)

val batons_seen : session -> int
(** Batons this node sent or absorbed. *)
