(** End-to-end Corollary 5: elect a leader with Algorithm 2, then use it
    as the root of an arbitrary content-oblivious computation.

    The composed per-node program is
    [Chain.chain (Algo2.program ~id) (tape app)]: when Algorithm 2 would
    terminate, the node instead switches to the tape phase.  Because
    Algorithm 2 terminates quiescently and leader-last, the root's first
    baton is sent only after every other node has switched — the exact
    property Section 1.1 identifies as sufficient for composition. *)

type app = Tape.session -> unit
(** The computation to run after the election, written in blocking
    style; it must end by setting an output and (for quiescent
    termination) calling [terminate] on the session's api.  Every node
    runs the same app; consult {!Tape.is_root} / {!Tape.distance}
    inside. *)

val program :
  id:int -> app:app -> Colring_engine.Network.pulse Colring_engine.Network.program
(** The composed per-node program (election then app). *)

type report = {
  n : int;
  id_max : int;
  total_pulses : int;
  election_pulses : int;  (** The Theorem 1 closed form. *)
  compose_pulses : int;  (** [total - election]. *)
  tape_symbols : int;  (** As counted at the root. *)
  batons : int;
  quiescent : bool;
  all_terminated : bool;
  post_term_deliveries : int;
  exhausted : bool;
  outputs : Colring_engine.Output.t array;
  leader : int option;
}

val run :
  ?seed:int ->
  ?max_deliveries:int ->
  app:app ->
  ids:int array ->
  Colring_engine.Scheduler.t ->
  report
(** Build an oriented ring of [Array.length ids] nodes and run the
    composed program to completion. *)

(** {2 Prebuilt apps} *)

val app_ring_discovery : app
(** Every node outputs [value = n] and [values = \[distance\]], then
    terminates — the minimal post-election computation. *)

val app_gather_ids : my_id:int -> app
(** All-gather of the original IDs: every node outputs the full ID
    vector in clockwise ring order from the leader ([values]) and the
    maximal ID ([value]). *)

val app_broadcast : payload:int list -> app
(** The root broadcasts an arbitrary list of non-negative integers;
    every node outputs it in [values]. *)

val app_broadcast_text : text:string -> app
(** The root broadcasts a text; every node outputs its bytes in
    [values] (the example programs decode it back). *)

val app_assign_ids : app
(** Section 5's closing observation made executable: with a leader,
    unique IDs are computable.  Every node adopts
    [distance from root + 1] as its new ID, then the ring all-gathers
    the fresh IDs so everyone can verify they are distinct; outputs
    [value = own new id] and [values = all new ids in ring order]. *)

val app_machine :
  machine:(Tape.session -> (Colring_engine.Output.t, string) result) -> app
(** Run an arbitrary blocking computation returning the output to
    publish (or an error message, which raises). *)

val app_sync_max : my_value:int -> app
(** Run {!Machines.max_flood} over the tape; outputs
    [value = global max]. *)

val app_sync_sum : my_value:int -> app
(** Run {!Machines.ring_sum}; outputs [value = sum of inputs]. *)

val app_sync_chang_roberts : my_id:int -> app
(** Run {!Machines.chang_roberts_sync} over the tape — a classic
    content-carrying election executed on the fully-defective ring;
    outputs [value = winning id] and the role. *)

val app_universal :
  my_input:int ->
  simulate:(inputs:int array -> Colring_engine.Output.t array) ->
  app
(** The bluntest reading of Corollary 5: gather every node's input over
    the tape, deterministically simulate {e any} algorithm on them
    (the callback typically spins up a nested reliable-network
    simulation), and distribute each node's output back.  Every node
    runs [simulate] on the identical gathered vector, so no broadcast
    of results is even needed — determinism {e is} the broadcast.
    Outputs are the simulated outputs, re-indexed to ring positions. *)
