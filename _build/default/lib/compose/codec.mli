(** Elias-gamma coding over the tape's binary symbol alphabet.

    The shared tape (see {!Tape}) carries one bit per full-circle pulse:
    a clockwise circle is a [0], a counterclockwise circle is a [1].
    Values are framed with Elias gamma, which is self-delimiting, so a
    reader always knows where a value ends without any out-of-band
    marker.  [gamma N] for [N >= 2] starts with a [0] — the property
    {!Tape.establish} exploits to mark the end of the enumeration
    announcements (which are all [1]s). *)

val gamma : int -> bool list
(** [gamma n] for [n >= 1]: [floor (log2 n)] zeros, then the binary
    digits of [n] (most significant — always [1] — first). *)

val gamma_length : int -> int
(** [List.length (gamma n)], i.e. [2 * floor (log2 n) + 1]. *)

val encode_value : int -> bool list
(** [gamma (v + 1)] — encodes any [v >= 0]. *)

val encoded_length : int -> int

val decode :
  next:(unit -> bool) -> int
(** Pull-based gamma decoder: reads symbols with [next] until one full
    codeword is consumed and returns the decoded [N >= 1]. *)

val decode_value : next:(unit -> bool) -> int
(** [decode - 1]. *)

val decode_list : bool list -> int * bool list
(** Decode one codeword from the front of a list, returning the value
    and the rest; [Failure] on truncated input. *)
