(** Example synchronous ring algorithms to run over the defective ring
    via {!Sync}.

    Machines must be idempotent after halting: {!Sync.run} keeps calling
    [step] (with [halt = true] expected back) until every node halts in
    the same round. *)

type max_state = { value : int; best : int; rounds_left : int }

val max_flood : value:int -> max_state Sync.machine
(** Every node floods the largest value seen in both directions; after
    [n] rounds [best] is the global maximum everywhere.  This is the
    classic extrema-finding task — run over pulses it shows Corollary 5
    executing a content-carrying algorithm verbatim on the
    fully-defective ring. *)

type cr_state = { id : int; leader_id : int option; announced : bool }

val chang_roberts_sync : id:int -> cr_state Sync.machine
(** A round-synchronous rendition of Chang-Roberts: candidate IDs
    travel clockwise, bigger IDs swallow smaller ones; the node whose
    ID survives the full circle announces it, and the announcement
    sweeps the ring so [leader_id] is the maximal ID everywhere. *)

type sum_state = {
  pos : int;
  n : int;
  input : int;
  total : int option;
  finished : bool;
}

val ring_sum : input:int -> sum_state Sync.machine
(** A sequential token accumulates the sum of all inputs clockwise from
    the root, then the root announces the total, so every node ends
    with [total = Some (sum of all inputs)]. *)
