open Colring_engine

(* Clockwise pulses leave via P1 and arrive on P0 (oriented rings). *)

type session = {
  api : Network.pulse Network.api;
  is_root : bool;
  mutable n : int;
  mutable dist : int;
  mutable turn : int;
  mutable symbols : int;
  mutable batons : int;
}

let api s = s.api
let n s = s.n
let distance s = s.dist
let is_root s = s.is_root
let turn s = s.turn
let my_turn s = s.turn = s.dist

let write_symbol s bit =
  if not (my_turn s) then failwith "Tape.write_symbol: not this node's turn";
  s.symbols <- s.symbols + 1;
  if bit then begin
    (* 1 = counterclockwise circle: out P0, back on P1. *)
    s.api.send Port.P0 ();
    Blocking.recv Port.P1
  end
  else begin
    s.api.send Port.P1 ();
    Blocking.recv Port.P0
  end

let read_symbol s =
  s.symbols <- s.symbols + 1;
  match Blocking.recv_any () with
  | Port.P0 ->
      (* Clockwise pulse: relay onward clockwise; symbol 0. *)
      s.api.send Port.P1 ();
      false
  | Port.P1 ->
      s.api.send Port.P0 ();
      true

let pass_turn s =
  s.batons <- s.batons + 1;
  let next = (s.turn + 1) mod s.n in
  if s.dist = s.turn then s.api.send Port.P1 () (* hand the baton CW *)
  else if s.dist = next then Blocking.recv Port.P0 (* absorb the baton *);
  s.turn <- next

let write_value s v =
  List.iter (write_symbol s) (Codec.encode_value v)

let read_value s = Codec.decode_value ~next:(fun () -> read_symbol s)

let rotate_to s writer =
  if writer < 0 || writer >= s.n then invalid_arg "Tape: bad writer";
  while s.turn <> writer do
    pass_turn s
  done

let bcast s ~writer ~value =
  rotate_to s writer;
  if s.dist = writer then begin
    write_value s value;
    value
  end
  else read_value s

let all_gather s ~value =
  Array.init s.n (fun d -> bcast s ~writer:d ~value)

let write_string s text =
  write_value s (String.length text);
  String.iter (fun ch -> write_value s (Char.code ch)) text

let read_string s =
  (* Explicit loop: reads are effectful and must happen in order. *)
  let len = read_value s in
  let buf = Buffer.create len in
  for _ = 1 to len do
    Buffer.add_char buf (Char.chr (read_value s land 255))
  done;
  Buffer.contents buf

let symbols_on_tape s = s.symbols
let batons_seen s = s.batons

(* ------------------------------------------------------------------ *)
(* Enumeration (see the .mli header for the protocol). *)

let establish_root s =
  s.api.send Port.P1 ();
  (* the baton starts its tour *)
  s.batons <- s.batons + 1;
  let ann = ref 0 in
  let rec loop () =
    match Blocking.recv_any () with
    | Port.P1 ->
        (* An announcement passing through: relay counterclockwise. *)
        incr ann;
        s.symbols <- s.symbols + 1;
        s.api.send Port.P0 ();
        loop ()
    | Port.P0 -> s.batons <- s.batons + 1 (* the baton came home *)
  in
  loop ();
  s.n <- !ann + 1;
  s.dist <- 0;
  s.turn <- 0;
  if s.n > 1 then
    (* gamma (n+1) starts with a 0 (clockwise) symbol because n+1 >= 3,
       which is how readers detect that announcements are over. *)
    write_value s s.n

let establish_other s =
  let ann = ref 0 in
  (* Pre-baton: relay announcements of the nodes before us. *)
  let rec pre () =
    match Blocking.recv_any () with
    | Port.P1 ->
        incr ann;
        s.symbols <- s.symbols + 1;
        s.api.send Port.P0 ();
        pre ()
    | Port.P0 -> s.batons <- s.batons + 1 (* the baton: absorbed *)
  in
  pre ();
  s.dist <- !ann + 1;
  (* Announce ourselves with one counterclockwise circle. *)
  s.symbols <- s.symbols + 1;
  s.api.send Port.P0 ();
  Blocking.recv Port.P1;
  (* Pass the baton clockwise. *)
  s.batons <- s.batons + 1;
  s.api.send Port.P1 ();
  (* Post-baton: later announcements, then the root's gamma(n+1), whose
     first symbol is the first clockwise pulse we see. *)
  let rec skip_announcements () =
    match Blocking.recv_any () with
    | Port.P1 ->
        s.symbols <- s.symbols + 1;
        s.api.send Port.P0 ();
        skip_announcements ()
    | Port.P0 ->
        (* First zero of gamma(n+1): relay it. *)
        s.symbols <- s.symbols + 1;
        s.api.send Port.P1 ()
  in
  skip_announcements ();
  let rec zeros z = if read_symbol s then z else zeros (z + 1) in
  let z = zeros 1 in
  let rec bits acc k =
    if k = 0 then acc
    else bits ((acc lsl 1) lor (if read_symbol s then 1 else 0)) (k - 1)
  in
  let encoded = bits 1 z in
  s.n <- encoded - 1;
  s.turn <- 0

let establish api ~is_root =
  let s = { api; is_root; n = -1; dist = -1; turn = -1; symbols = 0; batons = 0 } in
  if is_root then establish_root s else establish_other s;
  s
