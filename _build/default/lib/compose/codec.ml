let floor_log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let gamma n =
  if n < 1 then invalid_arg "Codec.gamma: n must be >= 1";
  let z = floor_log2 n in
  let prefix = List.init z (fun _ -> false) in
  let body = List.init (z + 1) (fun i -> (n lsr (z - i)) land 1 = 1) in
  prefix @ body

let gamma_length n =
  if n < 1 then invalid_arg "Codec.gamma_length: n must be >= 1";
  (2 * floor_log2 n) + 1

let encode_value v =
  if v < 0 then invalid_arg "Codec.encode_value: v must be >= 0";
  gamma (v + 1)

let encoded_length v = gamma_length (v + 1)

let decode ~next =
  let rec zeros z = if next () then z else zeros (z + 1) in
  let z = zeros 0 in
  let rec bits acc k =
    if k = 0 then acc else bits ((acc lsl 1) lor (if next () then 1 else 0)) (k - 1)
  in
  bits 1 z

let decode_value ~next = decode ~next - 1

let decode_list symbols =
  let rest = ref symbols in
  let next () =
    match !rest with
    | [] -> failwith "Codec.decode_list: truncated input"
    | b :: tl ->
        rest := tl;
        b
  in
  let v = decode ~next in
  (v, !rest)
