open Colring_engine
module Algo2 = Colring_core.Algo2
module Ids = Colring_core.Ids
module Formulas = Colring_core.Formulas

type app = Tape.session -> unit

(* The session is created inside the blocking body; stash it so the
   runner can read the cost counters afterwards. *)
let program_with_cell ~id ~app =
  let cell = ref None in
  let prog =
    Chain.chain (Algo2.program ~id) (fun (out : Output.t) ->
        Blocking.make (fun api ->
            let s =
              Tape.establish api
                ~is_root:(Output.equal_role out.role Output.Leader)
            in
            cell := Some s;
            app s))
  in
  (prog, cell)

let program ~id ~app = fst (program_with_cell ~id ~app)

type report = {
  n : int;
  id_max : int;
  total_pulses : int;
  election_pulses : int;
  compose_pulses : int;
  tape_symbols : int;
  batons : int;
  quiescent : bool;
  all_terminated : bool;
  post_term_deliveries : int;
  exhausted : bool;
  outputs : Output.t array;
  leader : int option;
}

let leader_of outputs =
  let leaders = ref [] in
  Array.iteri
    (fun v (o : Output.t) ->
      if Output.equal_role o.role Output.Leader then leaders := v :: !leaders)
    outputs;
  match !leaders with [ v ] -> Some v | [] | _ :: _ -> None

let run ?(seed = 0) ?max_deliveries ~app ~ids sched =
  let n = Array.length ids in
  let topo = Topology.oriented n in
  let cells = Array.make n (ref None) in
  let net =
    Network.create ~seed topo (fun v ->
        let prog, cell = program_with_cell ~id:ids.(v) ~app in
        cells.(v) <- cell;
        prog)
  in
  let result = Network.run ?max_deliveries net sched in
  let id_max = Ids.id_max ids in
  let election_pulses = Formulas.algo2_total ~n ~id_max in
  let leader_pos = Ids.argmax ids in
  let tape_symbols, batons =
    match !(cells.(leader_pos)) with
    | Some s -> (Tape.symbols_on_tape s, Tape.batons_seen s)
    | None -> (0, 0)
  in
  {
    n;
    id_max;
    total_pulses = result.sends;
    election_pulses;
    compose_pulses = result.sends - election_pulses;
    tape_symbols;
    batons;
    quiescent = result.quiescent;
    all_terminated = result.all_terminated;
    post_term_deliveries =
      Metrics.post_termination_deliveries (Network.metrics net);
    exhausted = result.exhausted;
    outputs = Network.outputs net;
    leader = leader_of (Network.outputs net);
  }

(* ------------------------------------------------------------------ *)
(* Prebuilt apps.  Each ends with set_output and terminate; see the
   .mli for semantics. *)

let finish s output =
  (Tape.api s).set_output output;
  (Tape.api s).terminate ()

let app_ring_discovery s =
  let out =
    Output.empty
    |> Output.with_value (Tape.n s)
    |> Output.with_values [ Tape.distance s ]
    |> Output.with_role
         (if Tape.is_root s then Output.Leader else Output.Non_leader)
  in
  finish s out

let app_gather_ids ~my_id s =
  let gathered = Tape.all_gather s ~value:my_id in
  let maximum = Array.fold_left max min_int gathered in
  let out =
    Output.empty
    |> Output.with_values (Array.to_list gathered)
    |> Output.with_value maximum
    |> Output.with_role
         (if my_id = maximum then Output.Leader else Output.Non_leader)
  in
  finish s out

let app_broadcast ~payload s =
  let len = Tape.bcast s ~writer:0 ~value:(List.length payload) in
  let received =
    List.init len (fun i ->
        Tape.bcast s ~writer:0 ~value:(List.nth payload i))
  in
  let out =
    Output.empty
    |> Output.with_values received
    |> Output.with_role
         (if Tape.is_root s then Output.Leader else Output.Non_leader)
  in
  finish s out

let app_broadcast_text ~text s =
  if Tape.is_root s then Tape.write_string s text;
  let received = if Tape.is_root s then text else Tape.read_string s in
  let out =
    Output.empty
    |> Output.with_values
         (List.init (String.length received) (fun i ->
              Char.code received.[i]))
    |> Output.with_role
         (if Tape.is_root s then Output.Leader else Output.Non_leader)
  in
  finish s out

let app_assign_ids s =
  let my_new_id = Tape.distance s + 1 in
  let gathered = Tape.all_gather s ~value:my_new_id in
  let out =
    Output.empty
    |> Output.with_value my_new_id
    |> Output.with_values (Array.to_list gathered)
    |> Output.with_role
         (if Tape.is_root s then Output.Leader else Output.Non_leader)
  in
  finish s out

let app_universal ~my_input ~simulate s =
  let inputs = Tape.all_gather s ~value:my_input in
  let outputs = simulate ~inputs in
  if Array.length outputs <> Tape.n s then
    failwith "Corollary5.app_universal: simulate returned wrong arity";
  finish s outputs.(Tape.distance s)

let app_machine ~machine s =
  match machine s with
  | Ok out -> finish s out
  | Error msg -> failwith ("Corollary5.app_machine: " ^ msg)

let app_sync_max ~my_value s =
  let st, _rounds =
    Sync.run s (Machines.max_flood ~value:my_value) ~rounds_cap:(4 * Tape.n s)
  in
  let out =
    Output.empty
    |> Output.with_value st.Machines.best
    |> Output.with_role
         (if my_value = st.Machines.best then Output.Leader
          else Output.Non_leader)
  in
  finish s out

let app_sync_sum ~my_value s =
  let st, _rounds =
    Sync.run s (Machines.ring_sum ~input:my_value) ~rounds_cap:(6 * Tape.n s)
  in
  match st.Machines.total with
  | Some total ->
      let out =
        Output.empty |> Output.with_value total
        |> Output.with_role
             (if Tape.is_root s then Output.Leader else Output.Non_leader)
      in
      finish s out
  | None -> failwith "app_sync_sum: no total computed"

let app_sync_chang_roberts ~my_id s =
  let st, _rounds =
    Sync.run s
      (Machines.chang_roberts_sync ~id:my_id)
      ~rounds_cap:(8 * Tape.n s)
  in
  match st.Machines.leader_id with
  | Some l ->
      let out =
        Output.empty |> Output.with_value l
        |> Output.with_role
             (if l = my_id then Output.Leader else Output.Non_leader)
      in
      finish s out
  | None -> failwith "app_sync_chang_roberts: no leader learned"
