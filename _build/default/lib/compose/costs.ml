module Formulas = Colring_core.Formulas

let establish ~n =
  if n < 1 then invalid_arg "Costs.establish: n must be >= 1";
  let batons = n in
  let announcements = (n - 1) * n in
  let gamma_broadcast = if n >= 2 then Codec.gamma_length (n + 1) * n else 0 in
  batons + announcements + gamma_broadcast

let value ~n v = Codec.encoded_length v * n

let pass = 1

let rotation ~n ~turn ~writer = ((writer - turn) + n) mod n

let bcast ~n ~turn ~writer v =
  let hops = rotation ~n ~turn ~writer in
  ((hops * pass) + value ~n v, writer)

let all_gather ~n ~turn values =
  if Array.length values <> n then invalid_arg "Costs.all_gather: arity";
  let total = ref 0 and turn = ref turn in
  Array.iteri
    (fun d v ->
      let pulses, turn' = bcast ~n ~turn:!turn ~writer:d v in
      total := !total + pulses;
      turn := turn')
    values;
  (!total, !turn)

let ring_discovery_total ~n ~id_max =
  Formulas.algo2_total ~n ~id_max + establish ~n

let gather_ids_total ~ids_by_distance ~id_max =
  let n = Array.length ids_by_distance in
  let gather, _ = all_gather ~n ~turn:0 ids_by_distance in
  Formulas.algo2_total ~n ~id_max + establish ~n + gather
