(* Data messages are tagged even, announcements odd, so a single int
   channel carries both phases of each protocol. *)
let data v = 2 * v
let announce v = (2 * v) + 1
let is_announce m = m land 1 = 1
let payload m = m / 2

type max_state = { value : int; best : int; rounds_left : int }

let max_flood ~value =
  {
    Sync.name = "max-flood";
    init = (fun ~pos:_ ~n -> { value; best = value; rounds_left = n });
    step =
      (fun st ~round:_ ~from_ccw ~from_cw ->
        let best =
          List.fold_left
            (fun acc m -> max acc (payload m))
            st.best
            (List.filter_map Fun.id [ from_ccw; from_cw ])
        in
        let st = { st with best; rounds_left = st.rounds_left - 1 } in
        if st.rounds_left < 0 then
          { Sync.state = st; to_cw = None; to_ccw = None; halt = true }
        else
          {
            Sync.state = st;
            to_cw = Some (data best);
            to_ccw = Some (data best);
            halt = false;
          });
  }

type cr_state = { id : int; leader_id : int option; announced : bool }

let chang_roberts_sync ~id =
  {
    Sync.name = "chang-roberts-sync";
    init = (fun ~pos:_ ~n:_ -> { id; leader_id = None; announced = false });
    step =
      (fun st ~round ~from_ccw ~from_cw:_ ->
        let quiet st halt = { Sync.state = st; to_cw = None; to_ccw = None; halt } in
        let send st m = { Sync.state = st; to_cw = Some m; to_ccw = None; halt = false } in
        match (st.leader_id, from_ccw) with
        | Some _, None -> quiet st true (* done; stay halted *)
        | Some l, Some m when is_announce m ->
            (* Our own announcement returned to the winner: absorb. *)
            if payload m = l && st.announced && st.id = l then quiet st true
            else quiet st true
        | Some _, Some _ -> quiet st true (* stray data after learning *)
        | None, Some m when is_announce m ->
            (* Learn the winner and forward the announcement. *)
            send { st with leader_id = Some (payload m) } m
        | None, Some m ->
            let c = payload m in
            if c = st.id then
              (* Own candidate survived the circle: announce. *)
              send { st with leader_id = Some st.id; announced = true }
                (announce st.id)
            else if c > st.id then send st m (* relay the bigger candidate *)
            else quiet st false (* swallow *)
        | None, None ->
            if round = 0 then send st (data st.id) (* launch own candidate *)
            else quiet st false);
  }

type sum_state = {
  pos : int;
  n : int;
  input : int;
  total : int option;
  finished : bool;
}

let ring_sum ~input =
  {
    Sync.name = "ring-sum";
    init = (fun ~pos ~n -> { pos; n; input; total = None; finished = false });
    step =
      (fun st ~round ~from_ccw ~from_cw:_ ->
        let quiet st halt = { Sync.state = st; to_cw = None; to_ccw = None; halt } in
        let send st m = { Sync.state = st; to_cw = Some m; to_ccw = None; halt = false } in
        if st.finished then quiet st true
        else
          match from_ccw with
          | Some m when is_announce m ->
              (* The total sweeping the ring. *)
              let st = { st with total = Some (payload m); finished = true } in
              if st.pos = 0 then quiet st true (* announcement returned *)
              else send st m
          | Some m ->
              let acc = payload m in
              if st.pos = 0 then
                (* The token is back at the root: announce the total. *)
                let st = { st with total = Some acc } in
                send st (announce acc)
              else send st (data (acc + st.input))
          | None ->
              if round = 0 && st.pos = 0 then send st (data st.input)
              else quiet st false);
  }
