lib/harness/workload.mli: Colring_engine Colring_stats
