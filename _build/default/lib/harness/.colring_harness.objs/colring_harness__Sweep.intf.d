lib/harness/sweep.mli: Colring_core Colring_engine Format Workload
