lib/harness/sweep.ml: Buffer Colring_core Colring_engine Colring_stats Election Format Hashtbl Ids List Option Printf Scheduler Workload
