lib/harness/workload.ml: Array Colring_core Colring_engine Colring_stats Ids Printf Sampling Topology
