(** Parameter sweeps: run algorithm × workload × ring-size × seed ×
    scheduler grids, collect one measurement per run, and export or
    summarize them.

    The sweep silently skips incompatible cells (an oriented-only
    algorithm on a scrambled workload) and instances whose pulse budget
    would be excessive (anonymous workloads can sample enormous IDs;
    the cost is Θ(n·ID_max)). *)

type measurement = {
  algorithm : string;
  workload : string;
  n : int;
  id_max : int;
  seed : int;
  scheduler : string;
  sends : int;
  expected : int;  (** The paper's closed form for the instance. *)
  deliveries : int;
  ok : bool;  (** {!Colring_core.Election.ok}. *)
}

val election :
  ?id_max_cap:int ->
  algorithms:Colring_core.Election.algorithm list ->
  workloads:Workload.t list ->
  ns:int list ->
  seeds:int list ->
  schedulers:(int -> Colring_engine.Scheduler.t) list ->
  unit ->
  measurement list
(** Run the full grid ([schedulers] are built per seed so stateful ones
    are fresh); [id_max_cap] (default 100_000) skips over-sized
    instances. *)

val to_csv : measurement list -> string
(** Header plus one line per measurement. *)

type summary_row = {
  group : string;  (** "algorithm/workload". *)
  group_n : int;
  runs : int;
  ok_runs : int;
  mean_sends : float;
  max_rel_err_vs_expected : float;
}

val summarize : measurement list -> summary_row list
(** Group by (algorithm, workload, n), sorted. *)

val pp_summary : Format.formatter -> summary_row list -> unit
