(** Named instance generators for parameter sweeps.

    A workload turns (rng, n) into a concrete ring instance — an ID
    assignment plus a topology.  The named generators cover the regimes
    the paper's statements distinguish: dense IDs ([ID_max = n], the
    best case for the content-oblivious algorithms), sparse IDs
    ([ID_max >> n], where the Theorem 4 lower bound says the cost must
    grow), adversarial ID placements, duplicated IDs (Lemma 16/17) and
    anonymous sampling (Algorithm 4). *)

type t = {
  name : string;
  oriented : bool;
      (** Whether the generated topology is guaranteed oriented
          (Algorithms 1/2 require it). *)
  generate :
    Colring_stats.Rng.t -> n:int -> int array * Colring_engine.Topology.t;
}

val dense : t
(** Permutation of [1..n] on an oriented ring. *)

val sparse : factor:int -> t
(** Distinct IDs up to [factor * n], oriented. *)

val decreasing : t
(** IDs [n, n-1, ..., 1] clockwise, oriented — Chang-Roberts' worst
    placement. *)

val max_far : t
(** Dense IDs with the maximum placed opposite position 0, oriented. *)

val dense_scrambled : t
(** Permutation of [1..n] on a ring with random port flips. *)

val sparse_scrambled : factor:int -> t

val duplicated_max : copies:int -> t
(** [copies] nodes share [ID_max = 2n]; the rest draw uniformly below
    it (repeats allowed), oriented — the Lemma 16/17 regime. *)

val anonymous : c:float -> t
(** Algorithm 4 samples on a scrambled ring.  [ID_max] is unbounded in
    principle; {!Sweep} skips instances whose cost would be excessive. *)

val all_for_election : t list
(** The workloads every deterministic election algorithm should face. *)
