open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng

type t = {
  name : string;
  oriented : bool;
  generate : Rng.t -> n:int -> int array * Topology.t;
}

let dense =
  {
    name = "dense";
    oriented = true;
    generate = (fun rng ~n -> (Ids.dense rng ~n, Topology.oriented n));
  }

let sparse ~factor =
  if factor < 1 then invalid_arg "Workload.sparse: factor must be >= 1";
  {
    name = Printf.sprintf "sparse-x%d" factor;
    oriented = true;
    generate =
      (fun rng ~n ->
        (Ids.distinct rng ~n ~id_max:(factor * n), Topology.oriented n));
  }

let decreasing =
  {
    name = "decreasing";
    oriented = true;
    generate =
      (fun _rng ~n -> (Array.init n (fun v -> n - v), Topology.oriented n));
  }

let max_far =
  {
    name = "max-far";
    oriented = true;
    generate =
      (fun rng ~n ->
        let ids = Ids.dense rng ~n in
        (Ids.with_max_at ids ~pos:(n / 2), Topology.oriented n));
  }

let dense_scrambled =
  {
    name = "dense-scrambled";
    oriented = false;
    generate =
      (fun rng ~n -> (Ids.dense rng ~n, Topology.random_non_oriented rng n));
  }

let sparse_scrambled ~factor =
  {
    name = Printf.sprintf "sparse-scrambled-x%d" factor;
    oriented = false;
    generate =
      (fun rng ~n ->
        ( Ids.distinct rng ~n ~id_max:(factor * n),
          Topology.random_non_oriented rng n ));
  }

let duplicated_max ~copies =
  {
    name = Printf.sprintf "dup-max-%d" copies;
    oriented = true;
    generate =
      (fun rng ~n ->
        let copies = min copies n in
        ( Ids.duplicated rng ~n ~id_max:(2 * n) ~dup_max:copies,
          Topology.oriented n ));
  }

let anonymous ~c =
  {
    name = Printf.sprintf "anonymous-c%.1f" c;
    oriented = false;
    generate =
      (fun rng ~n ->
        (Sampling.sample_ring rng ~c ~n, Topology.random_non_oriented rng n));
  }

let all_for_election =
  [ dense; sparse ~factor:8; decreasing; max_far ]
