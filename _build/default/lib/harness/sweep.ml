open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng
module Summary = Colring_stats.Summary
module Fit = Colring_stats.Fit

type measurement = {
  algorithm : string;
  workload : string;
  n : int;
  id_max : int;
  seed : int;
  scheduler : string;
  sends : int;
  expected : int;
  deliveries : int;
  ok : bool;
}

let compatible algorithm (workload : Workload.t) =
  match algorithm with
  | Election.Algo1 | Election.Algo2 -> workload.oriented
  | Election.Algo3 _ | Election.Algo3_resample -> true

let election ?(id_max_cap = 100_000) ~algorithms ~workloads ~ns ~seeds
    ~schedulers () =
  let out = ref [] in
  List.iter
    (fun algorithm ->
      List.iter
        (fun (workload : Workload.t) ->
          if compatible algorithm workload then
            List.iter
              (fun n ->
                List.iter
                  (fun seed ->
                    let rng = Rng.create ~seed:(seed + (n * 65_537)) in
                    let ids, topo = workload.generate rng ~n in
                    if Ids.id_max ids <= id_max_cap then
                      List.iter
                        (fun mk_sched ->
                          let sched = mk_sched seed in
                          let r =
                            Election.run_report algorithm ~topo ~ids ~sched
                          in
                          out :=
                            {
                              algorithm = Election.algorithm_name algorithm;
                              workload = workload.name;
                              n;
                              id_max = r.id_max;
                              seed;
                              scheduler = sched.Scheduler.name;
                              sends = r.sends;
                              expected = r.expected_sends;
                              deliveries = r.deliveries;
                              ok = Election.ok r;
                            }
                            :: !out)
                        schedulers)
                  seeds)
              ns)
        workloads)
    algorithms;
  List.rev !out

let to_csv ms =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "algorithm,workload,n,id_max,seed,scheduler,sends,expected,deliveries,ok\n";
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%d,%s,%d,%d,%d,%b\n" m.algorithm
           m.workload m.n m.id_max m.seed m.scheduler m.sends m.expected
           m.deliveries m.ok))
    ms;
  Buffer.contents buf

type summary_row = {
  group : string;
  group_n : int;
  runs : int;
  ok_runs : int;
  mean_sends : float;
  max_rel_err_vs_expected : float;
}

let summarize ms =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun m ->
      let key = (m.algorithm ^ "/" ^ m.workload, m.n) in
      let group = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (m :: group))
    ms;
  Hashtbl.fold
    (fun (group, group_n) group_ms acc ->
      let sends = Summary.create () in
      List.iter (fun m -> Summary.add_int sends m.sends) group_ms;
      {
        group;
        group_n;
        runs = List.length group_ms;
        ok_runs = List.length (List.filter (fun m -> m.ok) group_ms);
        mean_sends = Summary.mean sends;
        max_rel_err_vs_expected =
          Fit.max_rel_err
            (List.map
               (fun m -> (float_of_int m.expected, float_of_int m.sends))
               group_ms);
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare (a.group, a.group_n) (b.group, b.group_n))

let pp_summary ppf rows =
  Format.fprintf ppf "@[<v>%-32s %6s %6s %6s %12s %10s@,"
    "algorithm/workload" "n" "runs" "ok" "mean sends" "maxrelerr";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-32s %6d %6d %6d %12.1f %10.6f@," r.group r.group_n
        r.runs r.ok_runs r.mean_sends r.max_rel_err_vs_expected)
    rows;
  Format.fprintf ppf "@]"
