(** Integer histograms, used for pulse-count and ID-magnitude
    distributions in the anonymous-ring experiments. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Count one occurrence of the given value. *)

val count : t -> int -> int
(** Occurrences of a value. *)

val total : t -> int
(** Number of recorded observations. *)

val distinct : t -> int
(** Number of distinct values observed. *)

val mode : t -> (int * int) option
(** Most frequent value with its count, smallest value on ties. *)

val bins : t -> (int * int) list
(** All (value, count) pairs in increasing value order. *)

val log2_bins : t -> (int * int) list
(** Bucket observations by floor(log2 (max 1 value)); pairs of
    (log2 bucket, count) in increasing order.  Renders the geometric
    ID-size distribution of Algorithm 4 compactly. *)

val pp : Format.formatter -> t -> unit
