(** Least-squares fitting used to check complexity *shapes*.

    The benches do not try to match the paper's absolute constants; they
    check that measured message counts scale the way the theorems say
    (e.g. linearly in [n * ID_max] with slope close to 2).  These helpers
    compute the fits and the agreement metrics the tables report. *)

type line = { slope : float; intercept : float; r2 : float }

val linear : (float * float) list -> line
(** Ordinary least squares [y = slope * x + intercept] with the
    coefficient of determination.  Requires at least two points with
    non-constant [x]. *)

val proportional : (float * float) list -> float
(** Best [a] for [y = a * x] (through the origin). *)

val loglog_slope : (float * float) list -> float
(** Slope of [log y] against [log x]; estimates a polynomial degree.
    Points with non-positive coordinates are dropped. *)

val max_rel_err : (float * float) list -> float
(** [max_rel_err pairs] where each pair is [(expected, actual)]:
    the largest [|actual - expected| / max 1 |expected|]. *)

val pp_line : Format.formatter -> line -> unit
