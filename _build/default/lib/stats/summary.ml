type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sample : float list; (* all observations, for quantiles *)
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; sample = [] }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.sample <- x :: t.sample

let add_int t x = add t (float_of_int x)

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let quantile t q =
  if t.n = 0 then nan
  else begin
    let a = Array.of_list t.sample in
    Array.sort compare a;
    let pos = q *. float_of_int (Array.length a - 1) in
    let lo = int_of_float (Float.floor pos) and hi = int_of_float (Float.ceil pos) in
    let frac = pos -. Float.floor pos in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let median t = quantile t 0.5

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let of_ints xs =
  let t = create () in
  List.iter (add_int t) xs;
  t

let pp ppf t =
  Format.fprintf ppf "mean=%.3f sd=%.3f min=%.3f max=%.3f n=%d" (mean t)
    (stddev t) t.min t.max t.n
