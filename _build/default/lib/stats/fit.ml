type line = { slope : float; intercept : float; r2 : float }

let sum f xs = List.fold_left (fun acc x -> acc +. f x) 0. xs

let linear pts =
  let n = float_of_int (List.length pts) in
  if List.length pts < 2 then invalid_arg "Fit.linear: need >= 2 points";
  let sx = sum fst pts and sy = sum snd pts in
  let sxx = sum (fun (x, _) -> x *. x) pts in
  let sxy = sum (fun (x, y) -> x *. y) pts in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Fit.linear: constant x";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  let mean_y = sy /. n in
  let ss_tot = sum (fun (_, y) -> (y -. mean_y) ** 2.) pts in
  let ss_res =
    sum (fun (x, y) -> (y -. ((slope *. x) +. intercept)) ** 2.) pts
  in
  let r2 = if ss_tot < 1e-12 then 1. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let proportional pts =
  let sxy = sum (fun (x, y) -> x *. y) pts in
  let sxx = sum (fun (x, _) -> x *. x) pts in
  if sxx < 1e-12 then invalid_arg "Fit.proportional: x all zero";
  sxy /. sxx

let loglog_slope pts =
  let pts =
    List.filter_map
      (fun (x, y) -> if x > 0. && y > 0. then Some (log x, log y) else None)
      pts
  in
  (linear pts).slope

let max_rel_err pairs =
  List.fold_left
    (fun acc (expected, actual) ->
      let scale = Float.max 1. (Float.abs expected) in
      Float.max acc (Float.abs (actual -. expected) /. scale))
    0. pairs

let pp_line ppf { slope; intercept; r2 } =
  Format.fprintf ppf "y = %.4f x %+.2f (r2=%.5f)" slope intercept r2
