type t = (int, int) Hashtbl.t

let create () : t = Hashtbl.create 64

let add t v = Hashtbl.replace t v (1 + Option.value ~default:0 (Hashtbl.find_opt t v))

let count t v = Option.value ~default:0 (Hashtbl.find_opt t v)

let total t = Hashtbl.fold (fun _ c acc -> acc + c) t 0

let distinct t = Hashtbl.length t

let bins t =
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mode t =
  List.fold_left
    (fun best (v, c) ->
      match best with
      | Some (_, bc) when bc >= c -> best
      | _ -> Some (v, c))
    None (bins t)

let floor_log2 v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 (max 1 v)

let log2_bins t =
  let buckets = Hashtbl.create 16 in
  Hashtbl.iter
    (fun v c ->
      let b = floor_log2 v in
      Hashtbl.replace buckets b (c + Option.value ~default:0 (Hashtbl.find_opt buckets b)))
    t;
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  List.iter (fun (v, c) -> Format.fprintf ppf "%d:%d " v c) (bins t);
  Format.fprintf ppf "@]"
