(** Descriptive statistics over a sample of floats.

    Accumulation uses Welford's online algorithm, so a summary can be fed
    incrementally by a sweep without keeping every observation; quantiles
    are computed from the retained observations. *)

type t
(** A mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val add_int : t -> int -> unit

val count : t -> int
val mean : t -> float
(** Mean of the sample; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1], by linear interpolation on the sorted
    retained sample; [nan] when empty. *)

val median : t -> float

val of_list : float list -> t
val of_ints : int list -> t

val pp : Format.formatter -> t -> unit
(** Renders ["mean=… sd=… min=… max=… n=…"]. *)
