(** Deterministic, splittable random sources.

    Every randomized component in the repository draws from an explicit
    {!t}; no global state is used, so any run is reproducible from its
    integer seed.  Splitting derives independent streams, which lets a
    sweep give each trial (and each node inside a trial) its own stream
    without correlation between trials. *)

type t
(** A mutable random stream. *)

val create : seed:int -> t
(** [create ~seed] builds a stream determined entirely by [seed]. *)

val split : t -> t
(** [split t] derives a new stream from [t]; the two streams produce
    independent-looking sequences.  Advances [t]. *)

val split_at : t -> int -> t
(** [split_at t i] derives the [i]-th child stream of [t] without
    advancing [t]; children for distinct [i] are independent.  Used to
    give node [i] of a network its own stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform in [lo, hi]; requires [lo <= hi]. *)

val bool : t -> bool
(** A fair coin flip. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val geometric : t -> p:float -> int
(** [geometric t ~p] samples the number of failures before the first
    success in Bernoulli(p) trials, i.e. the geometric distribution on
    [{0,1,2,...}] with success parameter [p], [0 < p <= 1].  This is the
    distribution Algorithm 4 uses for its ID bit count. *)

val bits : t -> int -> int
(** [bits t k] is a uniform [k]-bit non-negative integer ([0 <= k <= 62]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
