type t = Random.State.t

(* A fixed 64-bit mix (splitmix64 finalizer) decorrelates seeds that
   differ in few bits, so that seed, seed+1, ... give unrelated streams. *)
let mix64 z =
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31))

let create ~seed = Random.State.make [| mix64 seed; mix64 (seed + 0x9e3779b9) |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| mix64 a; mix64 b |]

let split_at t i =
  (* Copy so the parent stream is not advanced; fold the child index in. *)
  let c = Random.State.copy t in
  let a = Random.State.bits c in
  Random.State.make [| mix64 (a lxor mix64 i); mix64 (i + 0x85ebca6b) |]

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Random.State.int rejects bounds >= 2^30; fall back to int64. *)
  if bound < 1 lsl 30 then Random.State.int t bound
  else Int64.to_int (Random.State.int64 t (Int64.of_int bound))

let int_incl t lo hi =
  if lo > hi then invalid_arg "Rng.int_incl: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Random.State.bool t
let float t bound = Random.State.float t bound

let geometric t ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p out of (0,1]";
  if p >= 1. then 0
  else begin
    (* Inverse transform: floor(log(U)/log(1-p)) has the right law. *)
    let u = 1. -. Random.State.float t 1. (* in (0,1] *) in
    int_of_float (Float.floor (Float.log u /. Float.log (1. -. p)))
  end

let bits t k =
  if k < 0 || k > 62 then invalid_arg "Rng.bits: k out of [0,62]";
  (* Random.State.bits yields 30 uniform bits per call. *)
  let rec go acc remaining =
    if remaining <= 0 then acc
    else
      let take = min remaining 30 in
      let chunk = Random.State.bits t land ((1 lsl take) - 1) in
      go ((acc lsl take) lor chunk) (remaining - take)
  in
  go 0 k

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
