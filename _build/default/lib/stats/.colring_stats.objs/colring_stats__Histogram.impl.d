lib/stats/histogram.ml: Format Hashtbl List Option
