lib/stats/table.mli:
