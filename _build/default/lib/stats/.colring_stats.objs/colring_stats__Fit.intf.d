lib/stats/fit.mli: Format
