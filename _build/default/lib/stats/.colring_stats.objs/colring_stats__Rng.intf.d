lib/stats/rng.mli:
