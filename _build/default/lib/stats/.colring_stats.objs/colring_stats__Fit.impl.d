lib/stats/fit.ml: Float Format List
