lib/classic/franklin.ml: Colring_engine Network Output Port Queue
