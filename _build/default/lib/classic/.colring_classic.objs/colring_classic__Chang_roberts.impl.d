lib/classic/chang_roberts.ml: Colring_engine Network Output Port
