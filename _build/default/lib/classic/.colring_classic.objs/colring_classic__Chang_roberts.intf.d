lib/classic/chang_roberts.mli: Colring_engine
