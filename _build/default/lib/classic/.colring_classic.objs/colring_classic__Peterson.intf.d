lib/classic/peterson.mli: Colring_engine
