lib/classic/lelann.mli: Colring_engine
