lib/classic/hirschberg_sinclair.mli: Colring_engine
