lib/classic/driver.ml: Array Colring_engine Metrics Network Output Topology
