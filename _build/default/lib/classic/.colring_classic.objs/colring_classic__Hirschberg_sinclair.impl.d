lib/classic/hirschberg_sinclair.ml: Colring_engine Network Output Port
