lib/classic/peterson.ml: Colring_engine Network Output Port
