lib/classic/driver.mli: Colring_engine
