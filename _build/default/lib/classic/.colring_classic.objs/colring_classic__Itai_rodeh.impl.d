lib/classic/itai_rodeh.ml: Colring_engine Colring_stats Network Output Port
