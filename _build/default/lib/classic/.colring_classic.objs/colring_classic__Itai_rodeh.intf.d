lib/classic/itai_rodeh.mli: Colring_engine
