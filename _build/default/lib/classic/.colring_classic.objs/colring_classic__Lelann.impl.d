lib/classic/lelann.ml: Colring_engine Network Output Port
