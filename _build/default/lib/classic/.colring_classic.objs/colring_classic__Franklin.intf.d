lib/classic/franklin.mli: Colring_engine
