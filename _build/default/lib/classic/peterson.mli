(** Peterson's unidirectional algorithm [29] — O(n log n) messages on
    every input.

    Active nodes hold temporary values (initially their IDs).  In each
    phase an active node sends its value, relays the first value it
    receives, and survives iff that first value beats both its own and
    the second received value; the maximal ID always survives, carried
    by some node.  When a sole active node receives its own value back
    it announces that value; the node whose *original* ID equals the
    announced value outputs Leader, so the algorithm elects the max-ID
    node like the other baselines.

    Termination is via the announcement sweep and is not quiescent in
    general (stray phase messages may be dropped at terminated
    nodes). *)

type msg = Value of int | Announce of int

val program : id:int -> msg Colring_engine.Network.program
(** Run on an oriented ring with unique positive IDs. *)
