(** Hirschberg-Sinclair [25] — bidirectional, content-carrying,
    O(n log n) messages.

    A candidate in phase [k] probes [2^k] hops in both directions;
    nodes forward probes carrying IDs larger than their own, bounce a
    reply when the hop budget is spent, and swallow smaller probes.  A
    candidate that collects both replies starts the next phase; a probe
    that returns to its originator means the originator's ID beat the
    whole ring, so it announces itself.

    Unlike the paper's Algorithm 2, termination is not quiescent:
    replies belonging to already-defeated candidates can still be in
    flight when the announcement sweeps the ring, so a few messages may
    arrive at terminated nodes (the engine drops and counts them) —
    exactly the composability failure Section 1.1 discusses. *)

type msg =
  | Probe of { id : int; phase : int; hops : int }
  | Reply of { id : int; phase : int }
  | Announce of int

val program : id:int -> msg Colring_engine.Network.program
(** Run on an oriented ring with unique positive IDs. *)

val message_bound : n:int -> int
(** The classic [8 n (ceil (log2 n) + 1) + 2n] upper bound. *)
