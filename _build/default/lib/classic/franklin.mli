(** Franklin's bidirectional election — O(n log n) messages.

    Every active node sends its ID in both directions each round and
    compares it with the first ID arriving from each side (relays
    in-between forward everything).  A node beaten by either neighbour
    value turns relay; at most half the actives survive a round, and
    the sole survivor recognises its own ID returning from both sides.
    A clockwise announcement then finishes the run.

    Round messages pipeline through FIFO channels, so per-direction
    arrival order suffices to pair values with rounds; a node that
    turns relay first drains the values it had buffered for future
    rounds, forwarding them onward. *)

type msg = Value of int | Announce of int

val program : id:int -> msg Colring_engine.Network.program
(** Run on an oriented ring with unique positive IDs. *)
