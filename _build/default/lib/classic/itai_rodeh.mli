(** Itai-Rodeh randomized leader election on anonymous rings [26] —
    unidirectional, requires that nodes know [n], succeeds with
    probability 1 and terminates with expected O(n log n) messages.

    Active nodes draw random values each round and circulate them with
    a hop counter (possible only because [n] is known — the counter
    reaching [n] identifies a message's originator) and a uniqueness
    bit that is cleared when an equal value is met.  Smaller values are
    purged, larger ones turn the receiver passive; a message returning
    with the bit set elects its originator.

    This baseline contrasts with the paper's Theorem 3: there the ring
    is anonymous *and* [n] is unknown, which provably rules out
    terminating election — the content-oblivious algorithm only reaches
    quiescence, while Itai-Rodeh buys termination with knowledge
    of [n]. *)

type msg =
  | Token of { round : int; value : int; hops : int; unique : bool }
  | Announce of { hops : int }

val program :
  n:int -> range:int -> msg Colring_engine.Network.program
(** [program ~n ~range] — every node runs the same code (no IDs);
    random values are drawn from [\[1, range\]] using the node's private
    engine RNG stream.  [range >= 2]. *)
