(** The Chang-Roberts extrema-finding algorithm [10] — unidirectional,
    content-carrying, O(n²) messages worst case and O(n log n) on
    average over ID placements.

    Every node launches its ID clockwise; a node forwards IDs larger
    than its own, swallows smaller ones, and recognises itself as the
    leader when its own ID returns.  The leader then circulates an
    announcement so every node decides and terminates; with FIFO
    channels nothing is in flight behind the announcement, so the
    composed run is quiescent. *)

type msg = Candidate of int | Announce of int

val program : id:int -> msg Colring_engine.Network.program
(** Run on an oriented ring with unique positive IDs. *)

val worst_case_messages : n:int -> int
(** [n(n+1)/2 + n] candidate hops for the adversarial (decreasing
    clockwise) placement, plus [n] announcement hops. *)
