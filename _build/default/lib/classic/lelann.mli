(** Le Lann's leader election [28] — unidirectional, content-carrying,
    exactly [n²] messages.

    Every node circulates its ID around the whole ring and forwards
    everyone else's; when its own ID returns it has (by FIFO order)
    already seen all [n] IDs, so it decides by comparing the maximum
    with its own and terminates — quiescently, with no announcement
    round needed. *)

type msg = Id of int

val program : id:int -> msg Colring_engine.Network.program
(** Run on an oriented ring with unique positive IDs. *)

val messages : n:int -> int
(** Always exactly [n * n]. *)
