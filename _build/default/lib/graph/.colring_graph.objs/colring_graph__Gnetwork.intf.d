lib/graph/gnetwork.mli: Colring_engine Colring_stats Gtopology
