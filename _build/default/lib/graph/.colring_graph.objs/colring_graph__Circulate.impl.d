lib/graph/circulate.ml: Array Colring_core Colring_engine Gnetwork Output Port
