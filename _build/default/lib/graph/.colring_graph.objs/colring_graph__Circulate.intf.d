lib/graph/circulate.mli: Colring_core Colring_engine Gnetwork
