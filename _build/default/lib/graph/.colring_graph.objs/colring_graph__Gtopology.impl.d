lib/graph/gtopology.ml: Array Colring_stats Format Fun Hashtbl List
