lib/graph/gnetwork.ml: Array Colring_engine Colring_stats Fun Gtopology List Output Queue Scheduler
