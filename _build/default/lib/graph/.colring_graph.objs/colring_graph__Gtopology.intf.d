lib/graph/gtopology.mli: Colring_stats Format
