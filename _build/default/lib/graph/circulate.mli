(** Pulse-circulation programs for the graph simulator.

    {!algo3_deg2} is the paper's Algorithm 3, verbatim, expressed as a
    graph program for 2-regular topologies — running it on
    {!Gtopology.ring} cross-validates {!Gnetwork} against the dedicated
    ring engine (identical totals, leader and orientation).

    {!rotor} is an *exploratory* generalization for the paper's closing
    open question (leader election on general 2-edge-connected
    networks): pulses received on port [p] are re-emitted on port
    [(p+1) mod degree] — on degree-2 nodes this degenerates to exactly
    the ring relay rule — and a node absorbs a pulse whenever its
    received count reaches a multiple of its ID, so the [n·degree]
    start-up pulses can all eventually be deleted.  No correctness
    claim is made (the paper conjectures nothing here either); bench
    E14 records what it does. *)

val algo3_deg2 :
  scheme:Colring_core.Algo3.id_scheme ->
  id:int ->
  Colring_engine.Network.pulse Gnetwork.program
(** Raises at start-up if the node's degree is not 2.  Counter names
    match {!Colring_core.Algo3}. *)

val rotor : id:int -> Colring_engine.Network.pulse Gnetwork.program
(** Counters: ["id"], ["rho"], ["sigma"], ["absorbed"]. *)
