(** Exact fast simulation of the paper's algorithms at scales the event
    engine cannot reach (ID_max up to ~10^14), built on {!Driver}.

    These are still *simulations of the dynamics* — pulse absorption
    order, per-node counters and hop totals come out of the driven
    runs, not out of the closed-form formulas — so the benches can
    check measured-vs-formula at extreme scales.  The event engine
    remains the reference; the differential tests pin the two against
    each other on overlapping scales. *)

type algo1_report = {
  total : int;  (** Measured pulses; Theorem: n·ID_max. *)
  receives : int array;  (** All entries must equal ID_max (Cor. 13). *)
  leaders : int list;  (** Nodes left in the Leader state (max-ID ones). *)
  last_absorber_is_max : bool;  (** Lemma 7/17 under the fast schedule. *)
}

val algo1 : ids:int array -> algo1_report

type algo2_report = {
  total : int;
  cw : int;
  ccw : int;  (** Including the termination pulse. *)
  leader : int;
  termination_order : int list;
}

val algo2 : ids:int array -> algo2_report
(** Requires unique positive IDs. *)

type algo3_report = {
  total : int;
  cw_instance : int;  (** Pulses of the direction out of max's Port1. *)
  ccw_instance : int;
  leader : int;
  leader_unique : bool;
  orientation_consistent : bool;
  cw_ports : Colring_engine.Port.t array;
      (** Each node's claimed clockwise port at quiescence. *)
}

val algo3 :
  scheme:Colring_core.Algo3.id_scheme ->
  ids:int array ->
  flips:bool array ->
  algo3_report
(** Requires unique positive IDs; [flips] defines the non-oriented
    ring exactly as {!Colring_engine.Topology.non_oriented}. *)
