type result = {
  receives : int array;
  deliveries : int;
  absorb_order : int list;
}

(* Drive the pulse currently sitting in the channel towards [start]
   until some node absorbs it.  [rho] holds received counts; a node
   absorbs on the receive that makes rho = its id (only nodes with
   rho < id can still absorb).  Returns the hop count. *)
let drive ~ids ~rho ~start =
  let n = Array.length ids in
  (* Absorption time of node v (0-indexed hops from now): its first
     visit is d(v) hops away, later visits every n hops; it absorbs on
     its (id - rho)-th future visit. *)
  let t_min = ref max_int and absorber = ref (-1) in
  for v = 0 to n - 1 do
    let delta = ids.(v) - rho.(v) in
    if delta >= 1 then begin
      let d = (v - start + n) mod n in
      let t = d + ((delta - 1) * n) in
      if t < !t_min then begin
        t_min := t;
        absorber := v
      end
    end
  done;
  if !absorber < 0 then failwith "Driver.drive: no absorbing node left";
  let t = !t_min in
  (* Credit every node its visits during these t+1 deliveries. *)
  for v = 0 to n - 1 do
    let d = (v - start + n) mod n in
    if d <= t then rho.(v) <- rho.(v) + 1 + ((t - d) / n)
  done;
  (!absorber, t + 1)

let run ~ids =
  let n = Array.length ids in
  if n = 0 then invalid_arg "Driver.run: empty ring";
  Array.iter
    (fun id -> if id < 1 then invalid_arg "Driver.run: ids must be positive")
    ids;
  let rho = Array.make n 0 in
  let deliveries = ref 0 in
  let order = ref [] in
  (* Initially node v's start-up pulse sits in the channel towards
     v+1; resolve the pulses one at a time (a legal schedule). *)
  for j = 0 to n - 1 do
    let absorber, hops = drive ~ids ~rho ~start:((j + 1) mod n) in
    deliveries := !deliveries + hops;
    order := absorber :: !order
  done;
  { receives = rho; deliveries = !deliveries; absorb_order = List.rev !order }
