lib/fastsim/fast.ml: Array Colring_core Colring_engine Driver List Option Output Port Topology
