lib/fastsim/driver.mli:
