lib/fastsim/fast.mli: Colring_core Colring_engine
