lib/fastsim/driver.ml: Array List
