(** Prefix analysis of solitude patterns — the combinatorial half of the
    Theorem 20 lower bound (Lemma 23 / Corollary 24). *)

val all_unique : Solitude.pattern list -> bool
(** Lemma 22's necessary condition: no two patterns coincide. *)

val first_collision : (int * Solitude.pattern) list -> (int * int) option
(** The first pair of IDs with identical patterns, if any. *)

val common_prefix_length : Solitude.pattern -> Solitude.pattern -> int

val max_group_sharing : Solitude.pattern list -> prefix_len:int -> int
(** The largest number of patterns (of length at least [prefix_len])
    that agree on their first [prefix_len] symbols. *)

val best_shared_prefix : Solitude.pattern list -> group:int -> int
(** The largest [s] such that at least [group] patterns share a prefix
    of length [s] (0 when [group] exceeds the number of patterns); runs
    in O(k L) via sorted adjacent LCPs and a sliding-window minimum.
    Corollary 24 promises [s >= floor (log2 (k / group))] for any [k]
    distinct binary strings. *)

val best_group : (int * Solitude.pattern) list -> group:int -> int list * int
(** The IDs of a [group]-sized set of patterns achieving
    {!best_shared_prefix}, together with that prefix length — the IDs
    the Theorem 20 adversary assigns to the ring. *)

val implied_message_bound : Solitude.pattern list -> n:int -> int
(** [n * best_shared_prefix ~group:n] — the number of messages the
    Theorem 20 adversary forces on an [n]-node ring whose IDs can be
    drawn from the given pattern set: it picks [n] IDs whose patterns
    share a long prefix and replays each node's solitude schedule. *)
