lib/lowerbound/adversary.ml: Analysis Array Bytes Colring_core Colring_engine Hashtbl List Network Option Port Scheduler Solitude Topology Trace
