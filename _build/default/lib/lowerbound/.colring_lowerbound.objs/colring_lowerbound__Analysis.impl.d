lib/lowerbound/analysis.ml: Array Hashtbl List Option String
