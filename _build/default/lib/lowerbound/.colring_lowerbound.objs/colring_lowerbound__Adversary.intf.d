lib/lowerbound/adversary.mli: Colring_engine
