lib/lowerbound/solitude.ml: Bytes Colring_engine List Network Port Printf Scheduler String Topology Trace
