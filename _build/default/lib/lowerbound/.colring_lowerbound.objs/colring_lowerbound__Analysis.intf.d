lib/lowerbound/analysis.mli: Solitude
