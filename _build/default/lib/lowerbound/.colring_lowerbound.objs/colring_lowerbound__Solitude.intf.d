lib/lowerbound/solitude.mli: Colring_engine
