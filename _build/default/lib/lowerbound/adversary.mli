(** The constructive Theorem 20 adversary, replayed on the simulator.

    The proof of Theorem 20 argues: among [k] assignable IDs pick [n]
    whose solitude patterns share a prefix of length
    [s >= floor(log2(k/n))] (Corollary 24), assign them to the ring,
    and schedule deliveries in global send order.  Then every node
    sends and receives exactly as in its solitude run for the first [s]
    steps — identical receive prefixes plus determinism force identical
    behaviour — so at least [n * s] pulses are sent in total.

    {!replay} performs this construction literally against a concrete
    algorithm and reports whether the predicted solitude-mimicry
    actually happened (it must, for any uniform content-oblivious
    algorithm on the global-FIFO schedule). *)

type report = {
  k : int;  (** IDs considered: [1..k]. *)
  n : int;
  ids : int array;  (** The adversarially chosen assignment. *)
  shared_prefix : int;
      (** Longest solitude-pattern prefix shared by all chosen IDs. *)
  formula_prefix : int;  (** [floor (log2 (k/n))] — the promised floor. *)
  sends : int;  (** Pulses the run actually sent. *)
  bound : int;  (** [n * shared_prefix]. *)
  per_node_agreement : int array;
      (** For each ring position, the length of the common prefix of
          the node's observed pulse sequence with its solitude
          pattern. *)
  mimicry : bool;
      (** Every node followed its solitude pattern for at least
          [shared_prefix] observations — the crux of the proof. *)
}

val replay :
  ?max_deliveries:int ->
  k:int ->
  n:int ->
  (id:int -> Colring_engine.Network.pulse Colring_engine.Network.program) ->
  report
(** Requires [k >= n >= 1].  The factory must terminate or stabilize on
    every instance (Algorithm 2 does). *)
