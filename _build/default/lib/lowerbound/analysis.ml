let all_unique patterns =
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun p ->
      if Hashtbl.mem seen p then false
      else begin
        Hashtbl.add seen p ();
        true
      end)
    patterns

let first_collision tagged =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | [] -> None
    | (id, p) :: rest -> (
        match Hashtbl.find_opt seen p with
        | Some id' -> Some (id', id)
        | None ->
            Hashtbl.add seen p id;
            go rest)
  in
  go tagged

let common_prefix_length a b =
  let lim = min (String.length a) (String.length b) in
  let rec go i = if i < lim && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let max_group_sharing patterns ~prefix_len =
  if prefix_len = 0 then List.length patterns
  else begin
    let buckets = Hashtbl.create 64 in
    List.iter
      (fun p ->
        if String.length p >= prefix_len then begin
          let key = String.sub p 0 prefix_len in
          Hashtbl.replace buckets key
            (1 + Option.value ~default:0 (Hashtbl.find_opt buckets key))
        end)
      patterns;
    Hashtbl.fold (fun _ c acc -> max c acc) buckets 0
  end

(* The largest s with >= group patterns sharing a length-s prefix, in
   O(k L + k group): sort the patterns; a group of [group] patterns
   sharing a prefix can be taken contiguous in sorted order, and the
   longest prefix of a contiguous window is the minimum of the adjacent
   longest-common-prefixes inside it. *)
let best_shared_prefix patterns ~group =
  if group <= 0 then invalid_arg "Analysis.best_shared_prefix: group <= 0";
  let arr = Array.of_list patterns in
  let k = Array.length arr in
  if group > k then 0
  else if group = 1 then
    Array.fold_left (fun acc p -> max acc (String.length p)) 0 arr
  else begin
    Array.sort compare arr;
    let lcp = Array.init (k - 1) (fun i -> common_prefix_length arr.(i) arr.(i + 1)) in
    (* Sliding-window minimum over windows of (group - 1) adjacent lcps
       using a monotonic deque. *)
    let w = group - 1 in
    let best = ref 0 in
    let dq = Array.make (k - 1) 0 in
    let head = ref 0 and tail = ref 0 in
    for i = 0 to k - 2 do
      while !tail > !head && lcp.(dq.(!tail - 1)) >= lcp.(i) do
        decr tail
      done;
      dq.(!tail) <- i;
      incr tail;
      if dq.(!head) <= i - w then incr head;
      if i >= w - 1 then best := max !best lcp.(dq.(!head))
    done;
    !best
  end

let best_group tagged ~group =
  if group <= 0 then invalid_arg "Analysis.best_group: group <= 0";
  let arr = Array.of_list tagged in
  let k = Array.length arr in
  if group > k then invalid_arg "Analysis.best_group: group > #patterns";
  Array.sort (fun (_, a) (_, b) -> compare a b) arr;
  if group = 1 then begin
    let best = ref 0 in
    Array.iteri
      (fun i (_, p) ->
        if String.length p > String.length (snd arr.(!best)) then best := i
        else ignore i)
      arr;
    ([ fst arr.(!best) ], String.length (snd arr.(!best)))
  end
  else begin
    let w = group - 1 in
    let lcp =
      Array.init (k - 1) (fun i ->
          common_prefix_length (snd arr.(i)) (snd arr.(i + 1)))
    in
    (* Windows are narrow (group <= ring size), so the quadratic scan is
       fine here; [best_shared_prefix] has the O(k) version. *)
    let best_start = ref 0 and best_len = ref (-1) in
    for j = 0 to k - 1 - w do
      let m = ref max_int in
      for i = j to j + w - 1 do
        if lcp.(i) < !m then m := lcp.(i)
      done;
      if !m > !best_len then begin
        best_len := !m;
        best_start := j
      end
    done;
    let ids = List.init group (fun i -> fst arr.(!best_start + i)) in
    (ids, !best_len)
  end

let implied_message_bound patterns ~n =
  n * best_shared_prefix patterns ~group:n
