(** Solitude patterns (Definition 21).

    A solitude pattern is the sequence of incoming pulses a node
    observes when it runs alone on a one-node ring under the canonical
    scheduler — pulses delivered in send order, clockwise first on
    ties — encoded as a binary string ('0' = clockwise pulse,
    '1' = counterclockwise pulse).

    Lemma 22 shows every ID must have a distinct solitude pattern for
    any uniform content-oblivious leader-election algorithm; Theorem 20
    turns that, via the pigeonhole principle on shared prefixes, into
    the [n * floor(log2 (k / n))] message lower bound.  This module
    computes the patterns experimentally so the lower-bound reasoning
    can be checked against the actual Algorithm 2. *)

type pattern = string
(** Chronological; ['0'] is a clockwise pulse, ['1'] counterclockwise. *)

val extract :
  ?max_deliveries:int ->
  (id:int -> Colring_engine.Network.pulse Colring_engine.Network.program) ->
  id:int ->
  pattern
(** Run the given per-ID program on the one-node ring under the
    Definition 21 scheduler until quiescence (or [max_deliveries],
    default 1_000_000) and return the node's observation sequence. *)

val extract_range :
  ?max_deliveries:int ->
  (id:int -> Colring_engine.Network.pulse Colring_engine.Network.program) ->
  lo:int ->
  hi:int ->
  (int * pattern) list
(** Patterns for every ID in [lo..hi]. *)

val length : pattern -> int
(** Number of pulses observed — on the one-node ring this equals the
    algorithm's message complexity for that ID. *)

val algo2_expected : id:int -> pattern
(** The closed-form solitude pattern of Algorithm 2 for a given ID:
    [id] clockwise pulses, then [id + 1] counterclockwise ones (the
    last being the returning termination pulse). *)
