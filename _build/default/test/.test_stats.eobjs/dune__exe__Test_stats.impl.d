test/test_stats.ml: Alcotest Colring_stats Fit Gen Histogram List QCheck QCheck_alcotest Rng String Summary Table
