test/test_core.ml: Alcotest Algo2 Algo3 Array Colring_core Colring_engine Colring_stats Election Fun Ids List Network Output Port Printf QCheck QCheck_alcotest Sampling Scheduler Topology
