test/test_classic.mli:
