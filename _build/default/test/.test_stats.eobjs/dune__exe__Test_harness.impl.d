test/test_harness.ml: Alcotest Algo3 Array Colring_core Colring_engine Colring_harness Colring_stats Election Ids List Scheduler String Sweep Topology Workload
