test/test_fastsim.mli:
