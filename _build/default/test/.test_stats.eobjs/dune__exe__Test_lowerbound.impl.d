test/test_lowerbound.ml: Alcotest Algo2 Analysis Colring_core Colring_lowerbound Formulas List Printf QCheck QCheck_alcotest Solitude
