test/test_engine.ml: Alcotest Array Blocking Colring_core Colring_engine Colring_stats Diagram Explore List Metrics Network Output Port QCheck QCheck_alcotest Scheduler Topology Trace
