test/test_compose.mli:
