(* Wall-clock micro-benchmarks of the simulator and algorithms, one
   Bechamel test per experiment family.  These measure the harness, not
   the paper (the paper's metric is message count, reported by
   Experiments); they are here so performance regressions in the engine
   are visible. *)

open Bechamel
open Toolkit
open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng
module Classic = Colring_classic
module Compose = Colring_compose

let run_algo2 n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  let r =
    Election.run_report Election.Algo2 ~topo:(Topology.oriented n) ~ids
      ~sched:(Scheduler.random (Rng.create ~seed:n))
  in
  assert (not r.exhausted)

let run_algo1 n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  let r =
    Election.run_report Election.Algo1 ~topo:(Topology.oriented n) ~ids
      ~sched:Scheduler.fifo
  in
  assert (not r.exhausted)

let run_algo3 n () =
  let rng = Rng.create ~seed:n in
  let ids = Ids.dense rng ~n in
  let r =
    Election.run_report (Election.Algo3 Algo3.Improved)
      ~topo:(Topology.random_non_oriented rng n)
      ~ids
      ~sched:(Scheduler.random (Rng.split rng))
  in
  assert (not r.exhausted)

let run_lelann n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  ignore
    (Classic.Driver.run ~name:"lelann" ~expect_max:ids
       (fun v -> Classic.Lelann.program ~id:ids.(v))
       ~topo:(Topology.oriented n) ~sched:Scheduler.fifo)

let run_hs n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  ignore
    (Classic.Driver.run ~name:"hs" ~expect_max:ids
       (fun v -> Classic.Hirschberg_sinclair.program ~id:ids.(v))
       ~topo:(Topology.oriented n) ~sched:Scheduler.fifo)

let run_compose n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  ignore
    (Compose.Corollary5.run ~app:Compose.Corollary5.app_ring_discovery ~ids
       Scheduler.fifo)

let tests =
  [
    Test.make ~name:"algo1 n=64 (4k pulses)" (Staged.stage (run_algo1 64));
    Test.make ~name:"algo2 n=32 (2k pulses)" (Staged.stage (run_algo2 32));
    Test.make ~name:"algo2 n=128 (33k pulses)" (Staged.stage (run_algo2 128));
    Test.make ~name:"algo3 n=64 (8k pulses)" (Staged.stage (run_algo3 64));
    Test.make ~name:"lelann n=64 (4k msgs)" (Staged.stage (run_lelann 64));
    Test.make ~name:"hirschberg-sinclair n=64" (Staged.stage (run_hs 64));
    Test.make ~name:"corollary5 discovery n=16" (Staged.stage (run_compose 16));
  ]

let run () =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "Timing (bechamel): wall-clock per full run, ns\n";
  Printf.printf
    "================================================================\n\n";
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second 0.5)
      ~kde:None ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        analysed)
    tests;
  print_newline ()
