bench/main.mli:
