bench/main.ml: Array Experiments List Printf Sys Timing
