(* Theorem 3: leader election on an anonymous ring — no IDs, no
   knowledge of n, channels destroy all content — using private
   randomness only.

   Run with:  dune exec examples/anonymous_ring.exe

   Algorithm 4 samples an ID locally (geometric bit-length, then
   uniform bits); with high probability the maximal sample is unique,
   and then Algorithm 3 elects its holder and orients the ring.  The
   election can silently fail when the maximum ties — the paper shows
   terminating algorithms cannot exist here, and our run only reaches
   quiescence. *)

open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng

let try_once ~seed ~n ~c =
  let rng = Rng.create ~seed in
  let ids = Sampling.sample_ring rng ~c ~n in
  let unique = Sampling.max_is_unique ids in
  Printf.printf "seed %2d: sampled ids [%s]  unique max: %b\n" seed
    (String.concat "; " (Array.to_list (Array.map string_of_int ids)))
    unique;
  if Ids.id_max ids > 100_000 then begin
    Printf.printf "          (skipping run: ID_max too large to simulate \
                   cheaply — cost is Theta(n * ID_max))\n";
    None
  end
  else begin
    let topo = Topology.random_non_oriented rng n in
    let report, _net =
      Election.run (Election.Algo3 Algo3.Improved) ~topo ~ids
        ~sched:(Scheduler.random (Rng.split rng))
    in
    Printf.printf "          pulses %5d, unique leader: %b, oriented: %b\n"
      report.sends (report.leader <> None)
      (report.orientation_ok = Some true);
    Some (unique && Election.ok report)
  end

let () =
  let n = 8 and c = 1.0 in
  Printf.printf "anonymous ring, n = %d (unknown to the nodes), c = %.1f\n\n" n c;
  let ran = ref 0 and succeeded = ref 0 in
  for seed = 1 to 12 do
    match try_once ~seed ~n ~c with
    | Some true ->
        incr ran;
        incr succeeded
    | Some false -> incr ran
    | None -> ()
  done;
  Printf.printf
    "\n%d runs, %d elected the unique maximum (failures are exactly the \
     max-tie draws,\nwhich happen with probability O(n^-c))\n"
    !ran !succeeded
