(* Exhaustive verification of Algorithm 2 on a small ring: EVERY legal
   asynchronous schedule is explored, not a sample.

   Run with:  dune exec examples/model_checking.exe *)

open Colring_engine
open Colring_core

let () =
  let ids = [| 2; 4; 1; 3 |] in
  let n = Array.length ids in
  Printf.printf
    "Exploring every delivery schedule of Algorithm 2 on ids [%s]...\n\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int ids)));
  let failures_detail = ref [] in
  let stats =
    Explore.exhaustive
      ~make:(fun () ->
        Network.create (Topology.oriented n) (fun v ->
            Algo2.program ~id:ids.(v)))
      ~check:(fun net ->
        let ok =
          Network.is_quiescent net && Network.all_terminated net
          && Metrics.sends (Network.metrics net)
             = Formulas.algo2_total ~n ~id_max:(Ids.id_max ids)
        in
        if not ok then failures_detail := "bad terminal" :: !failures_detail;
        ok)
      ()
  in
  Printf.printf "distinct global states reached : %d\n"
    stats.Explore.distinct_states;
  Printf.printf "terminal (quiescent) states    : %d\n"
    stats.Explore.terminal_states;
  Printf.printf "longest schedule               : %d deliveries\n"
    stats.Explore.max_depth;
  Printf.printf "property failures              : %d\n" stats.Explore.failures;
  Printf.printf "search complete (not truncated): %b\n\n"
    (not stats.Explore.truncated);
  Printf.printf
    "One terminal state means that although the adversary controls every\n\
     delivery, all roads lead to the same final configuration: the max-ID\n\
     node as Leader and exactly n(2*ID_max+1) = %d pulses spent.\n"
    (Formulas.algo2_total ~n ~id_max:(Ids.id_max ids));
  assert (stats.Explore.failures = 0 && not stats.Explore.truncated);

  (* Contrast: the same exploration applied to the broken no-lag
     variant finds a bad schedule. *)
  let bad =
    Explore.exhaustive
      ~make:(fun () ->
        Network.create (Topology.oriented 3) (fun v ->
            Ablation.algo2_no_lag ~id:[| 3; 1; 2 |].(v)))
      ~check:(fun net ->
        Network.is_quiescent net
        && Metrics.post_termination_deliveries (Network.metrics net) = 0)
      ()
  in
  Printf.printf
    "\nThe no-lag ablation on ids [3;1;2], same exhaustive search:\n\
     %d terminal states, %d of them bad — the explorer finds the schedule\n\
     that the paper's lag mechanism exists to rule out.\n"
    bad.Explore.terminal_states bad.Explore.failures;
  assert (bad.Explore.failures > 0)
