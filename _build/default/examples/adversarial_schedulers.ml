(* The asynchronous adversary cannot change anything that matters:
   Algorithm 2's total pulse count, the elected leader, and even the
   termination order are identical under every delivery schedule.

   Run with:  dune exec examples/adversarial_schedulers.exe *)

open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng

let () =
  let ids = [| 6; 2; 11; 5; 8; 3; 9; 4 |] in
  let n = Array.length ids in
  let topo = Topology.oriented n in
  let schedulers =
    Scheduler.all_deterministic ()
    @ [
        Scheduler.random (Rng.create ~seed:1);
        Scheduler.random (Rng.create ~seed:2);
        Scheduler.random (Rng.create ~seed:3);
      ]
  in
  Printf.printf "Algorithm 2 on ids [%s] under %d adversaries:\n\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int ids)))
    (List.length schedulers);
  Printf.printf "%-20s %8s %8s %8s  %s\n" "scheduler" "pulses" "cw" "ccw"
    "termination order";
  let counts = ref [] in
  List.iter
    (fun sched ->
      let r, net = Election.run Election.Algo2 ~topo ~ids ~sched in
      Printf.printf "%-20s %8d %8d %8d  [%s]\n" sched.Scheduler.name r.sends
        r.sends_cw r.sends_ccw
        (String.concat ";"
           (List.map string_of_int (Network.termination_order net)));
      counts := r.sends :: !counts;
      assert (Election.ok r))
    schedulers;
  let all_equal = List.for_all (fun c -> c = List.hd !counts) !counts in
  Printf.printf
    "\nall adversaries produce the same count (%d = n(2*ID_max+1)): %b\n"
    (List.hd !counts) all_equal;
  Printf.printf
    "deliveries differ wildly between schedules — only the *order* of\n\
     arrivals per channel is information, and the algorithm extracts the\n\
     same facts from every legal order.\n"
