(* Quickstart: elect a leader on an oriented fully-defective ring.

   Run with:  dune exec examples/quickstart.exe

   Five nodes, IDs 3/9/2/7/5, no message ever carries content — every
   message is reduced to a bare pulse by the channel noise.  Algorithm 2
   (Theorem 1) still elects the max-ID node, terminates quiescently, and
   sends exactly n(2*ID_max + 1) pulses. *)

open Colring_engine
open Colring_core

let () =
  let ids = [| 3; 9; 2; 7; 5 |] in
  let n = Array.length ids in
  let topo = Topology.oriented n in

  (* The adversary: any delivery order is allowed; seed it for
     reproducibility. *)
  let sched = Scheduler.random (Colring_stats.Rng.create ~seed:42) in

  let report, net = Election.run Election.Algo2 ~topo ~ids ~sched in

  Printf.printf "ring: %d nodes, ids [%s]\n" n
    (String.concat "; " (Array.to_list (Array.map string_of_int ids)));
  Printf.printf "pulses sent: %d   (paper's closed form: n(2*ID_max+1) = %d)\n"
    report.sends report.expected_sends;
  Array.iteri
    (fun v (o : Output.t) ->
      Printf.printf "  node %d (id %d): %s\n" v ids.(v)
        (Output.role_to_string o.role))
    (Network.outputs net);
  Printf.printf "termination order (counterclockwise from the leader): [%s]\n"
    (String.concat "; "
       (List.map string_of_int (Network.termination_order net)));
  Printf.printf "quiescent termination: %b  (no pulse ever reached a \
                 terminated node: %b)\n"
    report.quiescent
    (report.post_term_deliveries = 0);
  assert (Election.ok report)
