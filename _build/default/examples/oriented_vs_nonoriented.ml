(* Figure 1 of the paper: an oriented ring next to a non-oriented one,
   and Theorem 2 in action — Algorithm 3 both elects a leader and
   repairs the orientation without any message content.

   Run with:  dune exec examples/oriented_vs_nonoriented.exe *)

open Colring_engine
open Colring_core

let show_ring title topo =
  Printf.printf "%s\n" title;
  let n = Topology.n topo in
  for v = 0 to n - 1 do
    Printf.printf
      "  node %d: Port0 -> node %d, Port1 -> node %d%s\n" v
      (fst (Topology.peer topo v Port.P0))
      (fst (Topology.peer topo v Port.P1))
      (if Topology.flipped topo v then "   (ports swapped)" else "")
  done

let () =
  let n = 6 in
  let oriented = Topology.oriented n in
  let flips = [| false; true; false; true; true; false |] in
  let non_oriented = Topology.non_oriented ~flips in

  show_ring "Oriented ring (Fig. 1 left): every Port1 points clockwise"
    oriented;
  print_newline ();
  show_ring
    "Non-oriented ring (Fig. 1 right): some nodes have their ports swapped"
    non_oriented;
  print_newline ();

  (* Run Algorithm 3 (improved IDs, Theorem 2) on the non-oriented
     ring.  It reaches quiescence — it cannot terminate, which the paper
     conjectures is inherent — with a unique leader and a globally
     consistent clockwise labelling. *)
  let ids = [| 11; 4; 8; 2; 14; 6 |] in
  let sched = Scheduler.random (Colring_stats.Rng.create ~seed:7) in
  let report, net =
    Election.run (Election.Algo3 Algo3.Improved) ~topo:non_oriented ~ids ~sched
  in
  Printf.printf "Algorithm 3 (improved IDs) on the non-oriented ring:\n";
  Printf.printf "  pulses: %d (paper: n(2*ID_max+1) = %d)\n" report.sends
    report.expected_sends;
  Array.iteri
    (fun v (o : Output.t) ->
      Printf.printf "  node %d (id %2d): %-10s claims clockwise = %s\n" v
        ids.(v)
        (Output.role_to_string o.role)
        (match o.cw_port with Some p -> Port.to_string p | None -> "?"))
    (Network.outputs net);
  Printf.printf "  orientation globally consistent: %b\n"
    (report.orientation_ok = Some true);
  Printf.printf "  (stabilized, not terminated: nodes would keep reacting \
                 if more pulses arrived)\n";
  assert (Election.ok report)
