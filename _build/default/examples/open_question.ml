(* The paper's closing open question, §7: does content-oblivious leader
   election extend from rings to general 2-edge-connected networks?

   Run with:  dune exec examples/open_question.exe

   This example does NOT answer it (nobody has).  It (1) checks the
   2-edge-connectivity precondition on a few graphs, (2) cross-validates
   the ring algorithms on the independent multi-port simulator, and
   (3) shows that the naive generalization of the ring relay rule
   quiesces but fails to elect — evidence that new ideas are needed. *)

open Colring_engine
open Colring_core
open Colring_graph
module Rng = Colring_stats.Rng

let () =
  Printf.printf
    "1. [8]'s precondition: non-trivial content-oblivious computation\n\
    \   needs 2-edge connectivity (no bridges):\n";
  List.iter
    (fun (name, g) ->
      Printf.printf "   %-22s bridges: %-12s 2-edge-connected: %b\n" name
        (match Gtopology.bridges g with
        | [] -> "none"
        | bs ->
            String.concat ","
              (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) bs))
        (Gtopology.is_two_edge_connected g))
    [
      ("ring(6)", Gtopology.ring 6);
      ("theta(1,2,3)", Gtopology.theta 1 2 3);
      ( "barbell",
        Gtopology.of_edges ~n:6
          [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ] );
    ];

  Printf.printf
    "\n2. Sanity: Algorithm 3 run on the ring-as-graph (independent\n\
    \   simulator) reproduces Theorem 2 exactly:\n";
  let ids = [| 6; 2; 11; 5; 8 |] in
  let g = Gtopology.ring 5 in
  let net =
    Gnetwork.create g (fun v ->
        Circulate.algo3_deg2 ~scheme:Algo3.Improved ~id:ids.(v))
  in
  let r = Gnetwork.run net (Scheduler.random (Rng.create ~seed:2)) in
  Printf.printf "   pulses %d = n(2*ID_max+1) = %d; leader node %d (id 11)\n"
    r.Gnetwork.sends
    (Formulas.algo3_improved_total ~n:5 ~id_max:11)
    (let l = ref (-1) in
     Array.iteri
       (fun v (o : Output.t) ->
         if Output.equal_role o.role Output.Leader then l := v)
       (Gnetwork.outputs net);
     !l);
  assert (r.Gnetwork.sends = Formulas.algo3_improved_total ~n:5 ~id_max:11);

  Printf.printf
    "\n3. A naive generalization (forward on the next port, absorb every\n\
    \   ID-th pulse) on theta(1,2,3), ids drawn at random:\n";
  let g = Gtopology.theta 1 2 3 in
  let n = Gtopology.n g in
  for seed = 1 to 5 do
    let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max:(3 * n) in
    let net = Gnetwork.create g (fun v -> Circulate.rotor ~id:ids.(v)) in
    let r =
      Gnetwork.run ~max_deliveries:200_000 net
        (Scheduler.random (Rng.create ~seed:(seed + 50)))
    in
    let leaders =
      Array.fold_left
        (fun acc (o : Output.t) ->
          if Output.equal_role o.role Output.Leader then acc + 1 else acc)
        0 (Gnetwork.outputs net)
    in
    Printf.printf
      "   seed %d: quiescent=%-5b pulses=%-6d leaders=%d  max-ID elected=%b\n"
      seed r.Gnetwork.quiescent r.Gnetwork.sends leaders
      (Output.equal_role
         (Gnetwork.output net (Ids.argmax ids)).Output.role
         Output.Leader)
  done;
  Printf.printf
    "\n   Quiescence survives the generalization; the election property\n\
    \   does not — consistent with the paper leaving this open.\n"
