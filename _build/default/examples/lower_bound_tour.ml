(* A walk through the Theorem 20 lower bound, executed for real.

   Run with:  dune exec examples/lower_bound_tour.exe

   1. Solitude patterns (Definition 21): what a node observes when it
      runs alone, as a binary string.
   2. Lemma 22: distinct IDs have distinct patterns.
   3. Corollary 24: among k patterns, n share a long prefix.
   4. The adversary: assign those n IDs to a ring, schedule in global
      send order — every node mimics its solitude run for the shared
      prefix, forcing n*s pulses. *)

open Colring_core
module LB = Colring_lowerbound

let algo2 ~id = Algo2.program ~id

let () =
  Printf.printf "1. Solitude patterns of Algorithm 2 (0 = clockwise pulse):\n";
  List.iter
    (fun id ->
      Printf.printf "   id %2d: %s\n" id (LB.Solitude.extract algo2 ~id))
    [ 1; 2; 3; 4; 5 ];
  Printf.printf
    "   (id i gives 0^i 1^(i+1): 2i+1 pulses, the Theorem 1 count at n=1)\n\n";

  let k = 64 in
  let tagged = LB.Solitude.extract_range algo2 ~lo:1 ~hi:k in
  Printf.printf "2. Lemma 22 on ids 1..%d: all patterns distinct: %b\n\n" k
    (LB.Analysis.first_collision tagged = None);

  let n = 4 in
  let ids, s = LB.Analysis.best_group tagged ~group:n in
  Printf.printf
    "3. Corollary 24: among %d patterns, %d share a prefix of length %d\n"
    k n s;
  Printf.printf "   (the floor the corollary promises: %d);  ids: [%s]\n\n"
    (Formulas.lower_bound ~n ~k / n)
    (String.concat "; " (List.map string_of_int ids));

  let r = LB.Adversary.replay ~k ~n algo2 in
  Printf.printf "4. The adversary assigns [%s] to a %d-ring and delivers in\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int r.ids)))
    n;
  Printf.printf "   global send order.  Per-node agreement with the solitude\n";
  Printf.printf "   pattern: [%s]  (each >= s = %d: %b)\n"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int r.per_node_agreement)))
    r.shared_prefix r.mimicry;
  Printf.printf
    "   So at least n*s = %d pulses were unavoidable; the run sent %d.\n"
    r.bound r.sends;
  Printf.printf
    "\nSince IDs can be arbitrarily large, so is the forced cost — the\n\
     ID_max term in Theorem 1 is inherent, not an artifact.\n";
  assert r.mimicry
