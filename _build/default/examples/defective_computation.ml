(* Corollary 5: with the elected leader as root, ANY asynchronous ring
   computation runs over the fully-defective ring.

   Run with:  dune exec examples/defective_computation.exe

   The composed execution is: Algorithm 2 (leader election, quiescently
   terminating, leader last) -> switch to the shared-tape protocol ->
   enumeration (everyone learns n and its distance from the leader) ->
   the application.  Three applications below: broadcasting a string,
   summing inputs, and — pleasingly circular — running the classic
   Chang-Roberts election over channels that destroy all content. *)

open Colring_engine
open Colring_core
module Compose = Colring_compose
module Rng = Colring_stats.Rng

let ids = [| 5; 12; 3; 9; 7 |]
let n = Array.length ids

let run_app ~label ~mk_app ~show =
  let net =
    Network.create (Topology.oriented n) (fun v ->
        Compose.Corollary5.program ~id:ids.(v) ~app:(mk_app v))
  in
  let result = Network.run net (Scheduler.random (Rng.create ~seed:3)) in
  let election = Formulas.algo2_total ~n ~id_max:(Ids.id_max ids) in
  Printf.printf "%s\n" label;
  Printf.printf "  pulses: %d election + %d composition = %d total\n" election
    (result.sends - election) result.sends;
  Printf.printf "  quiescent termination: %b\n"
    (result.quiescent && result.all_terminated);
  show (Network.outputs net);
  print_newline ();
  assert (result.quiescent && result.all_terminated)

let () =
  Printf.printf "ring of %d nodes, ids [%s], all channels fully defective\n\n"
    n
    (String.concat "; " (Array.to_list (Array.map string_of_int ids)));

  run_app ~label:"1. leader broadcasts \"HELLO\" (as character codes)"
    ~mk_app:(fun _ ->
      Compose.Corollary5.app_broadcast ~payload:[ 72; 69; 76; 76; 79 ])
    ~show:(fun outputs ->
      let (o : Output.t) = outputs.(0) in
      Printf.printf "  every node received: %s\n"
        (String.concat ""
           (List.map (fun c -> String.make 1 (Char.chr c)) o.values)));

  run_app ~label:"2. sum of all inputs (inputs = the ids themselves)"
    ~mk_app:(fun v -> Compose.Corollary5.app_sync_sum ~my_value:ids.(v))
    ~show:(fun outputs ->
      Array.iteri
        (fun v (o : Output.t) ->
          if v = 0 then
            Printf.printf "  every node computed: %d (expected %d)\n"
              (Option.get o.value)
              (Array.fold_left ( + ) 0 ids))
        outputs);

  run_app
    ~label:
      "3. Chang-Roberts (a content-carrying algorithm!) simulated over pulses"
    ~mk_app:(fun v -> Compose.Corollary5.app_sync_chang_roberts ~my_id:ids.(v))
    ~show:(fun outputs ->
      Array.iteri
        (fun v (o : Output.t) ->
          Printf.printf "  node %d (id %2d): %-10s learned winner id %d\n" v
            ids.(v)
            (Output.role_to_string o.role)
            (Option.get o.value))
        outputs)
