examples/quickstart.ml: Array Colring_core Colring_engine Colring_stats Election List Network Output Printf Scheduler String Topology
