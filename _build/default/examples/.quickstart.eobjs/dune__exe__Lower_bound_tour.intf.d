examples/lower_bound_tour.mli:
