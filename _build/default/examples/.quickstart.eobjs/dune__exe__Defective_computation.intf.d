examples/defective_computation.mli:
