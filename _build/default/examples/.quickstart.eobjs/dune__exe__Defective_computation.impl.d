examples/defective_computation.ml: Array Char Colring_compose Colring_core Colring_engine Colring_stats Formulas Ids List Network Option Output Printf Scheduler String Topology
