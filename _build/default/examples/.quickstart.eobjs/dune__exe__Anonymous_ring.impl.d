examples/anonymous_ring.ml: Algo3 Array Colring_core Colring_engine Colring_stats Election Ids Printf Sampling Scheduler String Topology
