examples/anonymous_ring.mli:
