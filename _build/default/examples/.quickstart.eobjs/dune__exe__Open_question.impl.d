examples/open_question.ml: Algo3 Array Circulate Colring_core Colring_engine Colring_graph Colring_stats Formulas Gnetwork Gtopology Ids List Output Printf Scheduler String
