examples/oriented_vs_nonoriented.ml: Algo3 Array Colring_core Colring_engine Colring_stats Election Network Output Port Printf Scheduler Topology
