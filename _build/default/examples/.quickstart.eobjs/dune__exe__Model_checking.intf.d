examples/model_checking.mli:
