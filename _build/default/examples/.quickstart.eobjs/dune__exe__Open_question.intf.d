examples/open_question.mli:
