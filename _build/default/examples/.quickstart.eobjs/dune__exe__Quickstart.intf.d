examples/quickstart.mli:
