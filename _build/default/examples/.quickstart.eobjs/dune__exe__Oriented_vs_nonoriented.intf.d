examples/oriented_vs_nonoriented.mli:
