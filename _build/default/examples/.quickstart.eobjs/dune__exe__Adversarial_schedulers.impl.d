examples/adversarial_schedulers.ml: Array Colring_core Colring_engine Colring_stats Election List Network Printf Scheduler String Topology
