examples/model_checking.ml: Ablation Algo2 Array Colring_core Colring_engine Explore Formulas Ids Metrics Network Printf String Topology
