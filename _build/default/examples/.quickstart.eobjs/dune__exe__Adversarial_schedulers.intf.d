examples/adversarial_schedulers.mli:
