examples/lower_bound_tour.ml: Algo2 Array Colring_core Colring_lowerbound Formulas List Printf String
