open Colring_engine
open Colring_core
module Classic = Colring_classic
module Rng = Colring_stats.Rng

type ablation = No_lag | Same_virtual_ids | No_absorption
type packed = Packed : 'm Mc.spec -> packed

(* ------------------------------------------------------------------ *)
(* Verdict pieces (the terminal predicates are conjunctions of these) *)

let all_of checks net =
  let rec go = function
    | [] -> None
    | c :: rest -> ( match c net with Some _ as v -> v | None -> go rest)
  in
  go checks

let check_quiescent net =
  if Network.is_quiescent net then None
  else Some "messages delivered but never consumed at quiescence"

let check_all_terminated net =
  if Network.all_terminated net then None
  else Some "quiescent without every node terminated"

let check_sends_exact ~expected net =
  let sends = Metrics.sends (Network.metrics net) in
  if sends = expected then None
  else
    Some
      (Printf.sprintf "sends %d at quiescence, the paper's formula says %d"
         sends expected)

(* Exactly one Leader, at the max-ID node, and nobody Undecided. *)
let check_roles ~leader_node net =
  let outs = Network.outputs net in
  let bad = ref None in
  Array.iteri
    (fun v (o : Output.t) ->
      if !bad = None then
        match o.role with
        | Output.Leader when v <> leader_node ->
            bad :=
              Some
                (Printf.sprintf
                   "node %d elected Leader but the maximal ID is at node %d" v
                   leader_node)
        | Output.Undecided ->
            bad := Some (Printf.sprintf "node %d undecided at quiescence" v)
        | Output.Leader | Output.Non_leader -> ())
    outs;
  match !bad with
  | Some _ as b -> b
  | None ->
      if Election.unique_leader outs = Some leader_node then None
      else Some "no leader elected"

let check_orientation net =
  if Election.orientation_consistent (Network.topology net) (Network.outputs net)
  then None
  else Some "claimed clockwise ports do not form one consistent direction"

(* ------------------------------------------------------------------ *)
(* Safety monitors *)

(* The one per-step check that is sound for the stabilizing algorithms
   (1 and 3): the schedule-independent send total is an upper bound at
   every intermediate state, not just at quiescence.  Roles are NOT
   checked per step — two transient Leaders are legitimate while the
   counters still climb (that is what stabilizing means). *)
let sends_bound_monitor ~bound () net =
  let sends = Metrics.sends (Network.metrics net) in
  if sends > bound then
    Some (Printf.sprintf "sends %d exceed the paper bound %d" sends bound)
  else None

(* Algorithm 2 runs Algorithm 1 over its clockwise channel, so its
   {e outputs} revise like any stabilizing algorithm's; what Theorem 1
   pins down per step is everything about {e termination}: no pulse
   reaches a terminated node, nodes terminate along the promised
   counterclockwise order ([order], leader last) — the terminated set
   must always be a prefix of it — and a terminated node's role is
   frozen at its final value (Leader only for the max-ID node,
   [order]'s last entry).  Plus the send bound.  All checks are
   functions of the observed state, as [dedup] requires. *)
let terminating_monitor ~bound ~order () =
  let k = Array.length order in
  let leader_node = order.(k - 1) in
  fun net ->
    let m = Network.metrics net in
    let sends = Metrics.sends m in
    if sends > bound then
      Some (Printf.sprintf "sends %d exceed the paper bound %d" sends bound)
    else if Metrics.post_termination_deliveries m > 0 then
      Some "pulse delivered to a terminated node"
    else begin
      let violation = ref None in
      let frontier = ref 0 in
      while !frontier < k && Network.terminated net order.(!frontier) do
        incr frontier
      done;
      let j = ref !frontier in
      while !j < k do
        (if !violation = None && Network.terminated net order.(!j) then
           violation :=
             Some
               (Printf.sprintf
                  "node %d terminated before node %d, out of the Theorem 1 \
                   order"
                  order.(!j)
                  order.(!frontier)));
        incr j
      done;
      let i = ref 0 in
      while !i < !frontier do
        let v = order.(!i) in
        let role = (Network.output net v).Output.role in
        let expected =
          if v = leader_node then Output.Leader else Output.Non_leader
        in
        (if !violation = None && not (Output.equal_role role expected) then
           violation :=
             Some
               (Printf.sprintf "node %d terminated with role %s, expected %s" v
                  (Output.role_to_string role)
                  (Output.role_to_string expected)));
        incr i
      done;
      !violation
    end

(* ------------------------------------------------------------------ *)
(* Reduction masks

   Source-set reduction needs the mask of links that can ever carry a
   pulse.  Unidirectional (clockwise-only) protocols use the clockwise
   half of the links; bidirectional ones use all of them.  The checker
   verifies the declaration dynamically, so a wrong mask fails loudly
   rather than pruning unsoundly. *)

let mask_links topo keep =
  let m = ref 0 in
  for l = 0 to Topology.num_links topo - 1 do
    if keep l then m := !m lor (1 lsl l)
  done;
  !m

let cw_only topo = Mc.Source { live = mask_links topo (Topology.link_travels_cw topo) }
let all_links topo = Mc.Source { live = mask_links topo (fun _ -> true) }

(* ------------------------------------------------------------------ *)
(* Spec builders *)

let guard_ids ids =
  if Array.length ids < 2 then invalid_arg "Spec: need at least 2 nodes";
  Array.iter
    (fun id -> if id < 1 then invalid_arg "Spec: ids must be positive")
    ids

let algo2_shape ~name ~program ~ids =
  let n = Array.length ids in
  let id_max = Ids.id_max ids in
  let leader_node = Ids.argmax ids in
  let topo = Topology.oriented n in
  let bound = Formulas.algo2_total ~n ~id_max in
  let order =
    Array.of_list (Election.expected_termination_order topo ~leader:leader_node)
  in
  {
    Mc.name;
    make = (fun () -> Network.create topo (fun v -> program ~id:ids.(v)));
    monitor = terminating_monitor ~bound ~order;
    terminal =
      all_of
        [
          check_quiescent;
          check_all_terminated;
          check_sends_exact ~expected:bound;
          check_roles ~leader_node;
        ];
    max_depth = bound + 1;
    dedup = true;
    (* The termination-order monitor observes the interleaving (which
       node terminated first), which source-set reordering does not
       preserve: sleep sets only. *)
    reduction = Mc.Sleep;
    symmetry = None;
    expect_violation = false;
  }

let stabilizing_shape ~name ~program ~topo ~ids ~bound ~orientation ~reduction =
  let leader_node = Ids.argmax ids in
  let terminal_checks =
    [ check_quiescent; check_sends_exact ~expected:bound ]
    @ (if orientation then [ check_orientation ] else [])
    @ [ check_roles ~leader_node ]
  in
  {
    Mc.name;
    make = (fun () -> Network.create topo (fun v -> program ~id:ids.(v)));
    monitor = sends_bound_monitor ~bound;
    terminal = all_of terminal_checks;
    max_depth = bound + 1;
    dedup = true;
    (* The per-step property is a monotone counter bound and the rest
       is asserted at quiescence; both are invariant under reordering
       of commuting deliveries, so source sets are sound. *)
    reduction;
    symmetry = None;
    expect_violation = false;
  }

let election algorithm ~ids ~topo_seed =
  guard_ids ids;
  let n = Array.length ids in
  let id_max = Ids.id_max ids in
  match algorithm with
  | Election.Algo2 -> algo2_shape ~name:"algo2" ~program:Algo2.program ~ids
  | Election.Algo1 ->
      let topo = Topology.oriented n in
      stabilizing_shape ~name:"algo1" ~program:Algo1.program ~topo ~ids
        ~bound:(Formulas.algo1_total ~n ~id_max)
        ~orientation:false ~reduction:(cw_only topo)
  | Election.Algo3 scheme ->
      let name, bound =
        match scheme with
        | Algo3.Doubled ->
            ("algo3-doubled", Formulas.algo3_doubled_total ~n ~id_max)
        | Algo3.Improved ->
            ("algo3-improved", Formulas.algo3_improved_total ~n ~id_max)
      in
      let topo = Topology.random_non_oriented (Rng.create ~seed:topo_seed) n in
      stabilizing_shape ~name ~program:(Algo3.program ~scheme) ~topo ~ids ~bound
        ~orientation:true ~reduction:(all_links topo)
  | Election.Algo3_resample ->
      invalid_arg
        "Spec.election: Algo3_resample is randomized; model checking needs a \
         deterministic system"

let ablation which ~ids ~topo_seed =
  guard_ids ids;
  let n = Array.length ids in
  let id_max = Ids.id_max ids in
  let spec =
    match which with
    | No_lag ->
        algo2_shape ~name:"ablation:no-lag" ~program:Ablation.algo2_no_lag ~ids
    | Same_virtual_ids ->
        (* The leader predicate can never hold, so the violation shows
           up at quiescence; the doubled-scheme total is a generous
           in-flight bound. *)
        let topo = Topology.random_non_oriented (Rng.create ~seed:topo_seed) n in
        stabilizing_shape ~name:"ablation:same-virtual-ids"
          ~program:Ablation.algo3_same_virtual_ids ~topo ~ids
          ~bound:(Formulas.algo3_doubled_total ~n ~id_max)
          ~orientation:true ~reduction:(all_links topo)
    | No_absorption ->
        (* Pure relays circulate the initial pulses forever; the
           Corollary 13 send bound breaks within a few deliveries. *)
        let topo = Topology.oriented n in
        stabilizing_shape ~name:"ablation:no-absorption"
          ~program:Ablation.algo1_no_absorption ~topo ~ids
          ~bound:(Formulas.algo1_total ~n ~id_max)
          ~orientation:false ~reduction:(cw_only topo)
  in
  { spec with Mc.expect_violation = true }

let classic name ~ids =
  guard_ids ids;
  let n = Array.length ids in
  let topo = Topology.oriented n in
  let leader_node = Ids.argmax ids in
  (* No closed-form delivery count to lean on: the depth budget is the
     safety net against non-termination.  Content-carrying messages
     are invisible to the fingerprint, so state caching stays off. *)
  let pack : 'm. Mc.reduction -> (id:int -> 'm Network.program) -> packed =
   fun reduction program ->
    Packed
      {
        Mc.name;
        make = (fun () -> Network.create topo (fun v -> program ~id:ids.(v)));
        monitor = (fun () _ -> None);
        terminal =
          all_of [ check_all_terminated; check_roles ~leader_node ];
        max_depth = 64 * n * n;
        dedup = false;
        (* Per-step monitoring is off and all properties live at
           quiescent states, which source sets preserve exactly. *)
        reduction;
        symmetry = None;
        expect_violation = false;
      }
  in
  match name with
  | "chang-roberts" -> pack (cw_only topo) Classic.Chang_roberts.program
  | "lelann" -> pack (cw_only topo) Classic.Lelann.program
  | "hirschberg-sinclair" ->
      pack (all_links topo) Classic.Hirschberg_sinclair.program
  | "peterson" -> pack (cw_only topo) Classic.Peterson.program
  | "franklin" -> pack (all_links topo) Classic.Franklin.program
  | "itai-rodeh" ->
      invalid_arg
        "Spec.classic: itai-rodeh is randomized; model checking needs a \
         deterministic system"
  | other -> invalid_arg (Printf.sprintf "Spec.classic: unknown target %S" other)

(* ------------------------------------------------------------------ *)
(* The anonymous relay: the symmetry-reduction exercise target *)

(* Canonicalize a relay state modulo ring rotation: render the full
   observable state (progress counters, per-node inspect counters,
   channel and mailbox occupancies) once per rotation and keep the
   lexicographically smallest string; the link permutation sending the
   winning rotation to position zero rides along so the checker can
   rotate sleep masks into canonical space.  Sound for the relay
   because its program is identical at every node and every checked
   property is rotation-invariant. *)
let relay_symmetry topo =
  let n = Topology.n topo in
  let num_links = Topology.num_links topo in
  fun net ->
    let m = Network.metrics net in
    let header =
      Printf.sprintf "%d/%d/%d#" (Metrics.sends m) (Metrics.deliveries m)
        (Metrics.post_termination_deliveries m)
    in
    let render r =
      let buf = Buffer.create (16 * n) in
      Buffer.add_string buf header;
      for i = 0 to n - 1 do
        let v = (i + r) mod n in
        List.iter
          (fun (_, x) ->
            Buffer.add_string buf (string_of_int x);
            Buffer.add_char buf ',')
          (Network.inspect net v);
        Buffer.add_string buf
          (Printf.sprintf "|%d,%d,%d,%d;"
             (Network.channel_length net ~link:(Topology.link_id topo v Port.P0))
             (Network.channel_length net ~link:(Topology.link_id topo v Port.P1))
             (Network.mailbox_length net ~node:v ~port:Port.P0)
             (Network.mailbox_length net ~node:v ~port:Port.P1))
      done;
      Buffer.contents buf
    in
    let best_r = ref 0 in
    let best = ref (render 0) in
    for r = 1 to n - 1 do
      let s = render r in
      if String.compare s !best < 0 then begin
        best := s;
        best_r := r
      end
    done;
    let perm = Array.make num_links 0 in
    for l = 0 to num_links - 1 do
      let v, p = Topology.link_src topo l in
      perm.(l) <- Topology.link_id topo ((v - !best_r + n) mod n) p
    done;
    { Mc.key = !best; perm }

let anon_relay ~n =
  if n < 2 then invalid_arg "Spec.anon_relay: need at least 2 nodes";
  let topo = Topology.oriented n in
  let bound = Relay.total_pulses ~n in
  let check_rho net =
    let bad = ref None in
    for v = 0 to n - 1 do
      let rho = Network.inspect_counter net v "rho" in
      if Option.is_none !bad && rho <> Relay.final_rho then
        bad :=
          Some
            (Printf.sprintf "node %d quiesced with rho %d, expected %d" v rho
               Relay.final_rho)
    done;
    !bad
  in
  {
    Mc.name = "anon:relay";
    make = (fun () -> Network.create topo (fun _ -> Relay.program ()));
    monitor = sends_bound_monitor ~bound;
    terminal =
      all_of [ check_quiescent; check_sends_exact ~expected:bound; check_rho ];
    max_depth = bound + 1;
    dedup = true;
    reduction = Mc.Sleep;
    symmetry = Some (relay_symmetry topo);
    expect_violation = false;
  }

let targets =
  [
    "algo1";
    "algo2";
    "algo3-doubled";
    "algo3-improved";
    "ablation:no-lag";
    "ablation:same-virtual-ids";
    "ablation:no-absorption";
    "anon:relay";
    "chang-roberts";
    "lelann";
    "hirschberg-sinclair";
    "peterson";
    "franklin";
  ]

let of_target target ~ids ~topo_seed =
  match target with
  | "algo1" -> Packed (election Election.Algo1 ~ids ~topo_seed)
  | "algo2" -> Packed (election Election.Algo2 ~ids ~topo_seed)
  | "algo3-doubled" ->
      Packed (election (Election.Algo3 Algo3.Doubled) ~ids ~topo_seed)
  | "algo3-improved" ->
      Packed (election (Election.Algo3 Algo3.Improved) ~ids ~topo_seed)
  | "ablation:no-lag" -> Packed (ablation No_lag ~ids ~topo_seed)
  | "ablation:same-virtual-ids" ->
      Packed (ablation Same_virtual_ids ~ids ~topo_seed)
  | "ablation:no-absorption" -> Packed (ablation No_absorption ~ids ~topo_seed)
  | "anon:relay" -> Packed (anon_relay ~n:(Array.length ids))
  | "algo3-resample" ->
      invalid_arg
        "Spec.of_target: algo3-resample is randomized; model checking needs a \
         deterministic system"
  | other -> classic other ~ids
