open Colring_engine
module Pool = Colring_runtime.Pool

type stats = {
  states : int;
  schedules : int;
  replayed_deliveries : int;
  sleep_pruned : int;
  dedup_pruned : int;
  max_depth_seen : int;
  truncated : bool;
}

type counterexample = { schedule : int array; violation : string }
type result = { stats : stats; counterexample : counterexample option }

let depth_violation = "depth budget exceeded (possible non-termination)"

let zero_stats =
  {
    states = 0;
    schedules = 0;
    replayed_deliveries = 0;
    sleep_pruned = 0;
    dedup_pruned = 0;
    max_depth_seen = 0;
    truncated = false;
  }

(* ------------------------------------------------------------------ *)
(* Sleep-set bit masks over link ids (hot leaves; see hot.sexp). *)

let bit l = 1 lsl l
let subset m z = m land z = m

(* Prune a revisited state only when it was previously expanded under
   a sleep set included in the current one: everything the current
   expansion would explore was already explored then. *)
let seen_covers seen key z =
  match Hashtbl.find_opt seen key with
  | None -> false
  | Some masks -> List.exists (fun m -> subset m z) masks

let seen_add seen key z =
  let masks =
    match Hashtbl.find_opt seen key with None -> [] | Some ms -> ms
  in
  (* Recorded masks that include [z] are now redundant: [z] covers
     every future sleep set they cover. *)
  Hashtbl.replace seen key (z :: List.filter (fun m -> not (subset z m)) masks)

(* ------------------------------------------------------------------ *)
(* Per-branch DFS accumulator (shared across engine instantiations) *)

type acc = {
  mutable states : int;
  mutable schedules : int;
  mutable replayed : int;
  mutable sleep_pruned : int;
  mutable dedup_pruned : int;
  mutable max_depth_seen : int;
  mutable truncated : bool;
  mutable stopped : bool;
  mutable ce : counterexample option;
}

let merge_stats accs =
  Array.fold_left
    (fun (s : stats) (a : acc) ->
      {
        states = s.states + a.states;
        schedules = s.schedules + a.schedules;
        replayed_deliveries = s.replayed_deliveries + a.replayed;
        sleep_pruned = s.sleep_pruned + a.sleep_pruned;
        dedup_pruned = s.dedup_pruned + a.dedup_pruned;
        max_depth_seen = max s.max_depth_seen a.max_depth_seen;
        truncated = s.truncated || a.truncated;
      })
    zero_stats accs

(* ------------------------------------------------------------------ *)
(* The checker, generic over the unified engine surface *)

module type S = sig
  type 'm net

  type 'm spec = {
    name : string;
    make : unit -> 'm net;
    monitor : unit -> 'm net -> string option;
    terminal : 'm net -> string option;
    max_depth : int;
    dedup : bool;
    expect_violation : bool;
  }

  val check :
    ?jobs:int -> ?max_states:int -> ?minimized:bool -> 'm spec -> result

  val replay : 'm spec -> int array -> 'm net * string option
  val minimize : 'm spec -> counterexample -> counterexample
end

module Make (N : Engine_intf.NETWORK) = struct
  type 'm net = 'm N.t

  type 'm spec = {
    name : string;
    make : unit -> 'm net;
    monitor : unit -> 'm net -> string option;
    terminal : 'm net -> string option;
    max_depth : int;
    dedup : bool;
    expect_violation : bool;
  }

  (* Rebuild a state by re-forcing a recorded choice prefix on a fresh
     network, feeding the (fresh) monitor after every delivery so its
     internal state matches the walk that first checked this prefix.
     Violations cannot occur here: the prefix was monitored when it
     was first extended. *)
  let replay_prefix net mon path len =
    for i = 0 to len - 1 do
      N.force_step net ~link:path.(i);
      ignore (mon net)
    done

  (* The dedup key extends the engine fingerprint with the monotone
     send/delivery/drop counters: two states merge only when their
     whole observable configuration AND their progress counters agree,
     which keeps every safety monitor used here a function of the
     state (see DESIGN.md section 9 for the soundness argument). *)
  let state_key net =
    let m = N.metrics net in
    Printf.sprintf "%d/%d/%d#%s" (Metrics.sends m) (Metrics.deliveries m)
      (Metrics.post_termination_deliveries m)
      (N.fingerprint net)

  let enabled_links net =
    let k = N.enabled_count net in
    let links = Array.make (max k 1) 0 in
    let l = ref (N.enabled_link net ~after:(-1)) in
    let i = ref 0 in
    while !l >= 0 do
      links.(!i) <- !l;
      incr i;
      l := N.enabled_link net ~after:!l
    done;
    Array.sub links 0 !i

  (* One subtree of the root fan-out, explored depth-first with one
     live network: descending is a [force_step]; trying the next
     sibling rebuilds the parent by replaying the recorded prefix (the
     engine is deterministic, so the choice sequence IS the
     snapshot). *)
  let run_branch spec ~indep ~max_states ~root_link ~init_sleep =
    let st =
      {
        states = 0;
        schedules = 0;
        replayed = 0;
        sleep_pruned = 0;
        dedup_pruned = 0;
        max_depth_seen = 0;
        truncated = false;
        stopped = false;
        ce = None;
      }
    in
    let seen = Hashtbl.create 1024 in
    let path = Array.make (spec.max_depth + 1) 0 in
    let net = ref (spec.make ()) in
    let mon = ref (spec.monitor ()) in
    let fail depth violation =
      st.ce <- Some { schedule = Array.sub path 0 depth; violation }
    in
    let rec expand depth sleep =
      if st.ce = None && not st.stopped then begin
        if depth > st.max_depth_seen then st.max_depth_seen <- depth;
        let prune =
          spec.dedup
          &&
          let key = state_key !net in
          if seen_covers seen key sleep then begin
            st.dedup_pruned <- st.dedup_pruned + 1;
            true
          end
          else begin
            seen_add seen key sleep;
            false
          end
        in
        if not prune then begin
          st.states <- st.states + 1;
          if st.states > max_states then begin
            st.truncated <- true;
            st.stopped <- true
          end
          else if N.enabled_count !net = 0 then begin
            st.schedules <- st.schedules + 1;
            match spec.terminal !net with
            | Some v -> fail depth v
            | None -> ()
          end
          else if depth >= spec.max_depth then fail depth depth_violation
          else begin
            let links = enabled_links !net in
            let sleep_now = ref sleep in
            let live = ref true in
            (* [live]: the mutable network still sits at this node's
               state; consumed by the first child we descend into. *)
            Array.iter
              (fun l ->
                if st.ce = None && not st.stopped then
                  if !sleep_now land bit l <> 0 then
                    st.sleep_pruned <- st.sleep_pruned + 1
                  else begin
                    if not !live then begin
                      net := spec.make ();
                      mon := spec.monitor ();
                      replay_prefix !net !mon path depth;
                      st.replayed <- st.replayed + depth
                    end;
                    live := false;
                    path.(depth) <- l;
                    N.force_step !net ~link:l;
                    (match !mon !net with
                    | Some v -> fail (depth + 1) v
                    | None -> expand (depth + 1) (!sleep_now land indep.(l)));
                    sleep_now := !sleep_now lor bit l
                  end)
              links
          end
        end
      end
    in
    path.(0) <- root_link;
    N.force_step !net ~link:root_link;
    (match !mon !net with
    | Some v -> fail 1 v
    | None -> expand 1 init_sleep);
    st

  (* ---------------------------------------------------------------- *)
  (* Replay and minimization *)

  exception Infeasible

  (* Longest prefix of [sched] up to and including the first
     violation: [Some (len, v)] when one occurs (including a
     terminal-state violation after the last step), [None] when the
     schedule is violation-free or does not fit the run. *)
  let first_violation spec sched =
    let net = spec.make () in
    let mon = spec.monitor () in
    let len = Array.length sched in
    let rec go i =
      if i >= len then
        if N.enabled_count net = 0 then
          match spec.terminal net with Some v -> Some (len, v) | None -> None
        else None
      else begin
        (try N.force_step net ~link:sched.(i)
         with Invalid_argument _ -> raise Infeasible);
        match mon net with Some v -> Some (i + 1, v) | None -> go (i + 1)
      end
    in
    match go 0 with x -> x | exception Infeasible -> None

  let replay spec schedule =
    let net = spec.make () in
    let mon = spec.monitor () in
    let violation = ref None in
    Array.iter
      (fun link ->
        N.force_step net ~link;
        if !violation = None then violation := mon net)
      schedule;
    (if !violation = None && N.enabled_count net = 0 then
       violation := spec.terminal net);
    if !violation = None && Array.length schedule >= spec.max_depth then
      violation := Some depth_violation;
    (net, !violation)

  let minimize spec ce =
    if String.equal ce.violation depth_violation then
      (* Every proper subsequence is shorter than the depth budget and
         so cannot exhibit this violation; the schedule is already
         minimal for its class. *)
      ce
    else begin
      let cur = ref ce.schedule in
      let viol = ref ce.violation in
      (* Truncate at the first violating step, then greedily drop
         single deliveries (re-truncating after each success) to a
         fixpoint. *)
      (match first_violation spec !cur with
      | Some (len, v) ->
          cur := Array.sub !cur 0 len;
          viol := v
      | None -> ());
      let changed = ref true in
      while !changed do
        changed := false;
        let i = ref 0 in
        while !i < Array.length !cur do
          let n = Array.length !cur in
          let cand =
            Array.init (n - 1) (fun j ->
                if j < !i then !cur.(j) else !cur.(j + 1))
          in
          match first_violation spec cand with
          | Some (len, v) ->
              cur := Array.sub cand 0 len;
              viol := v;
              changed := true
          | None -> incr i
        done
      done;
      { schedule = !cur; violation = !viol }
    end

  (* ---------------------------------------------------------------- *)
  (* The checker *)

  let check ?(jobs = 1) ?(max_states = 1_000_000) ?(minimized = true) spec =
    if spec.max_depth < 1 then invalid_arg "Mc.check: max_depth < 1";
    let probe = spec.make () in
    let topo = N.topology probe in
    let num_links = N.num_links topo in
    if num_links > 60 then
      invalid_arg "Mc.check: more than 60 links (sleep sets are int masks)";
    (* [indep.(l)]: links whose deliveries commute with a delivery on
       [l] — exactly those with a different destination node.  A
       delivery mutates only its destination's state, pops its own
       channel's head and pushes to the destination's outgoing
       channels; for distinct destinations these operations commute
       (pushes and pops on a shared channel touch opposite ends). *)
    let indep = Array.make num_links 0 in
    for l = 0 to num_links - 1 do
      for l' = 0 to num_links - 1 do
        if N.link_dst_node topo l' <> N.link_dst_node topo l then
          indep.(l) <- indep.(l) lor bit l'
      done
    done;
    let finish stats counterexample =
      let counterexample =
        if minimized then Option.map (minimize spec) counterexample
        else counterexample
      in
      { stats; counterexample }
    in
    match (spec.monitor ()) probe with
    | Some v -> finish zero_stats (Some { schedule = [||]; violation = v })
    | None -> (
        let roots = enabled_links probe in
        match Array.length roots with
        | 0 ->
            let stats = { zero_stats with states = 1; schedules = 1 } in
            finish stats
              (Option.map
                 (fun v -> { schedule = [||]; violation = v })
                 (spec.terminal probe))
        | k ->
            (* Root branches fan out on the domain pool.  Each branch
               is a pure function of its index (own network, monitor
               and seen-table), so results are bit-identical for every
               [jobs]; branch [i] starts with its earlier siblings in
               the sleep set, filtered by dependence on its own root
               delivery — the same rule the sequential DFS applies. *)
            let accs =
              Pool.map ~jobs k (fun i ->
                  let root_link = roots.(i) in
                  let init_sleep = ref 0 in
                  for j = 0 to i - 1 do
                    init_sleep := !init_sleep lor bit roots.(j)
                  done;
                  run_branch spec ~indep ~max_states ~root_link
                    ~init_sleep:(!init_sleep land indep.(root_link)))
            in
            let stats = merge_stats accs in
            let ce =
              Array.fold_left
                (fun acc (a : acc) ->
                  match acc with Some _ -> acc | None -> a.ce)
                None accs
            in
            finish stats ce)
end

(* The historical ring-engine API: [Mc.check] and friends are the ring
   instantiation of the functor, included at top level so existing
   specs and callers compile unchanged. *)
include Make (Unify.Ring_network)
