open Colring_engine
module Pool = Colring_runtime.Pool

type stats = {
  states : int;
  schedules : int;
  replayed_deliveries : int;
  undone_deliveries : int;
  sleep_pruned : int;
  dedup_pruned : int;
  max_depth_seen : int;
  truncated : bool;
}

type counterexample = { schedule : int array; violation : string }
type result = { stats : stats; counterexample : counterexample option }

type reduction = Sleep | Source of { live : int }
type sym = { key : string; perm : int array }

let depth_violation = "depth budget exceeded (possible non-termination)"

let zero_stats =
  {
    states = 0;
    schedules = 0;
    replayed_deliveries = 0;
    undone_deliveries = 0;
    sleep_pruned = 0;
    dedup_pruned = 0;
    max_depth_seen = 0;
    truncated = false;
  }

(* ------------------------------------------------------------------ *)
(* Sleep-set bit masks over link ids (hot leaves; see hot.sexp). *)

let bit l = 1 lsl l
let subset m z = m land z = m

(* Prune a revisited state only when it was previously expanded under
   a sleep set included in the current one: everything the current
   expansion would explore was already explored then. *)
let seen_covers seen key z =
  match Hashtbl.find_opt seen key with
  | None -> false
  | Some masks -> List.exists (fun m -> subset m z) masks

let seen_add seen key z =
  let masks =
    match Hashtbl.find_opt seen key with None -> [] | Some ms -> ms
  in
  (* Recorded masks that include [z] are now redundant: [z] covers
     every future sleep set they cover. *)
  Hashtbl.replace seen key (z :: List.filter (fun m -> not (subset z m)) masks)

(* ------------------------------------------------------------------ *)
(* Per-unit DFS accumulator (shared across engine instantiations) *)

type acc = {
  mutable states : int;
  mutable schedules : int;
  mutable replayed : int;
  mutable undone : int;
  mutable sleep_pruned : int;
  mutable dedup_pruned : int;
  mutable max_depth_seen : int;
  mutable truncated : bool;
  mutable stopped : bool;
  mutable aborted : bool;
      (* Stopped by the cross-task ticket throttle, whose firing point
         depends on scheduling: the whole unit is nondeterministic and
         must be recomputed by the canonical repair pass. *)
  mutable ce : counterexample option;
}

let fresh_acc () =
  {
    states = 0;
    schedules = 0;
    replayed = 0;
    undone = 0;
    sleep_pruned = 0;
    dedup_pruned = 0;
    max_depth_seen = 0;
    truncated = false;
    stopped = false;
    aborted = false;
    ce = None;
  }

let add_stats (s : stats) (a : acc) =
  {
    states = s.states + a.states;
    schedules = s.schedules + a.schedules;
    replayed_deliveries = s.replayed_deliveries + a.replayed;
    undone_deliveries = s.undone_deliveries + a.undone;
    sleep_pruned = s.sleep_pruned + a.sleep_pruned;
    dedup_pruned = s.dedup_pruned + a.dedup_pruned;
    max_depth_seen = max s.max_depth_seen a.max_depth_seen;
    truncated = s.truncated || a.truncated;
  }

(* ------------------------------------------------------------------ *)
(* The checker, generic over the unified engine surface *)

module type S = sig
  type 'm net

  type 'm spec = {
    name : string;
    make : unit -> 'm net;
    monitor : unit -> 'm net -> string option;
    terminal : 'm net -> string option;
    max_depth : int;
    dedup : bool;
    reduction : reduction;
    symmetry : ('m net -> sym) option;
    expect_violation : bool;
  }

  val check :
    ?jobs:int ->
    ?max_states:int ->
    ?minimized:bool ->
    ?split:int ->
    ?undo_depth:int ->
    'm spec ->
    result

  val replay : 'm spec -> int array -> 'm net * string option
  val minimize : 'm spec -> counterexample -> counterexample
  val confirm : 'm spec -> counterexample -> bool
end

module Make (N : Engine_intf.NETWORK) = struct
  type 'm net = 'm N.t

  type 'm spec = {
    name : string;
    make : unit -> 'm net;
    monitor : unit -> 'm net -> string option;
    terminal : 'm net -> string option;
    max_depth : int;
    dedup : bool;
    reduction : reduction;
    symmetry : ('m net -> sym) option;
    expect_violation : bool;
  }

  (* Rebuild a state by re-forcing a recorded choice prefix on a fresh
     network, feeding the (fresh) monitor after every delivery so its
     internal state matches the walk that first checked this prefix.
     Returns the first monitor violation with its step count — a
     frontier prefix's final edge has not been monitored yet when a
     task first replays it. *)
  let replay_prefix net mon path len =
    let rec go i =
      if i >= len then None
      else begin
        N.force_step net ~link:path.(i);
        match mon net with Some v -> Some (i + 1, v) | None -> go (i + 1)
      end
    in
    go 0

  (* The dedup key extends the engine fingerprint with the monotone
     send/delivery/drop counters: two states merge only when their
     whole observable configuration AND their progress counters agree,
     which keeps every safety monitor used here a function of the
     state (see DESIGN.md section 9 for the soundness argument). *)
  let state_key net =
    let m = N.metrics net in
    Printf.sprintf "%d/%d/%d#%s" (Metrics.sends m) (Metrics.deliveries m)
      (Metrics.post_termination_deliveries m)
      (N.fingerprint net)

  let enabled_links net =
    let k = N.enabled_count net in
    let links = Array.make (max k 1) 0 in
    let l = ref (N.enabled_link net ~after:(-1)) in
    let i = ref 0 in
    while !l >= 0 do
      links.(!i) <- !l;
      incr i;
      l := N.enabled_link net ~after:!l
    done;
    Array.sub links 0 !i

  (* ---------------------------------------------------------------- *)
  (* Exploration context: everything per-[check] and read-only during
     the walk, so seed pass, parallel tasks and repair pass share it. *)

  type 'm ctx = {
    spec : 'm spec;
    indep : int array;  (* indep.(l): links commuting with l *)
    live_in : int array;  (* per node: its in-links ∩ the live set *)
    n_nodes : int;
  }

  let permute_mask perm m =
    let r = ref 0 in
    Array.iteri (fun l l' -> if m land bit l <> 0 then r := !r lor bit l') perm;
    !r

  (* Dedup in canonical space: under a symmetry, the key is the
     canonical representative's and the sleep mask is carried along by
     the canonicalizing link permutation, so covering works modulo the
     symmetry group.  Sound because the checked properties are
     required to be invariant under the declared symmetry. *)
  let dedup_prune ctx seen net sleep (st : acc) =
    ctx.spec.dedup
    &&
    let key, mask =
      match ctx.spec.symmetry with
      | None -> (state_key net, sleep)
      | Some f ->
          let s = f net in
          (s.key, permute_mask s.perm sleep)
    in
    if seen_covers seen key mask then begin
      st.dedup_pruned <- st.dedup_pruned + 1;
      true
    end
    else begin
      seen_add seen key mask;
      false
    end

  (* Source-set reduction: a delivery mutates only its destination
     node, so deliveries into distinct nodes commute, and the set of
     enabled deliveries into ONE node [d] is a persistent (source) set
     — provided no in-link of [d] can later become non-empty and add a
     conflicting delivery.  The [live] mask (links that can ever carry
     a pulse, declared by the spec) closes that gap: [d] is eligible
     only when EVERY live in-link of [d] already holds a message, so
     the deferred deliveries into other nodes can never enable a new
     conflicting delivery into [d].  The smallest eligible node is
     chosen canonically; with none eligible the full enabled set is
     explored (sound fallback).  See DESIGN.md section 9. *)
  let branch_links ctx links =
    match ctx.spec.reduction with
    | Sleep -> links
    | Source { live } ->
        let mask = Array.fold_left (fun m l -> m lor bit l) 0 links in
        if mask land lnot live <> 0 then
          invalid_arg
            (Printf.sprintf
               "Mc.check(%s): message in flight on a link outside the \
                declared live set — the Source reduction would be unsound"
               ctx.spec.name);
        let rec find d =
          if d >= ctx.n_nodes then links
          else
            let lm = ctx.live_in.(d) in
            if lm <> 0 && subset lm mask then
              (* All live in-links of [d] are non-empty: branch on them
                 alone. *)
              Array.of_list
                (List.filter
                   (fun l -> lm land bit l <> 0)
                   (Array.to_list links))
            else find (d + 1)
        in
        find 0

  (* ---------------------------------------------------------------- *)
  (* One unit of exploration: replay a frontier prefix, then DFS the
     whole subtree.  Backtracking uses per-delivery incremental undo
     ([N.force_step_undo]/[N.undo_step]) when the network supports it
     and the node sits above [undo_depth]; deeper nodes (and networks
     without snapshot codecs) fall back to replay-from-prefix, taking
     care to restore the entry state on exit so enclosing undo records
     stay applicable. *)

  let run_unit ctx ~budget ~tickets ~ticket_cap ~undo_depth ~prefix
      ~init_sleep =
    let spec = ctx.spec in
    let st = fresh_acc () in
    let seen = Hashtbl.create 1024 in
    let path = Array.make (spec.max_depth + 1) 0 in
    let plen = Array.length prefix in
    Array.blit prefix 0 path 0 plen;
    let net = ref (spec.make ()) in
    let mon = ref (spec.monitor ()) in
    let fail depth violation =
      st.ce <- Some { schedule = Array.sub path 0 depth; violation }
    in
    let rebuild depth =
      net := spec.make ();
      mon := spec.monitor ();
      (match replay_prefix !net !mon path depth with
      | Some _ ->
          (* The prefix was monitored when first walked. *)
          assert false
      | None -> ());
      st.replayed <- st.replayed + depth
    in
    let undo_ok = N.undo_capable !net in
    let running () = Option.is_none st.ce && not st.stopped in
    let rec expand depth sleep =
      if running () then begin
        if depth > st.max_depth_seen then st.max_depth_seen <- depth;
        if not (dedup_prune ctx seen !net sleep st) then begin
          (match tickets with
          | Some a ->
              if Atomic.fetch_and_add a 1 >= ticket_cap then begin
                st.aborted <- true;
                st.stopped <- true
              end
          | None -> ());
          (* Strict budget: a state the budget cannot pay for is never
             expanded (nor counted), so the repaired global total is
             capped at exactly [max_states]. *)
          if (not st.stopped) && st.states >= budget then begin
            st.truncated <- true;
            st.stopped <- true
          end;
          if st.stopped then ()
          else begin
            st.states <- st.states + 1;
            if N.enabled_count !net = 0 then begin
              st.schedules <- st.schedules + 1;
              match spec.terminal !net with
              | Some v -> fail depth v
              | None -> ()
            end
            else if depth >= spec.max_depth then fail depth depth_violation
            else begin
            let links = branch_links ctx (enabled_links !net) in
            if undo_ok && depth < undo_depth then begin
              let sleep_now = ref sleep in
              Array.iter
                (fun l ->
                  if running () then
                    if !sleep_now land bit l <> 0 then
                      st.sleep_pruned <- st.sleep_pruned + 1
                    else begin
                      path.(depth) <- l;
                      let u = N.force_step_undo !net ~link:l in
                      (match !mon !net with
                      | Some v -> fail (depth + 1) v
                      | None -> expand (depth + 1) (!sleep_now land ctx.indep.(l)));
                      (* Once the unit stops (counterexample or budget)
                         the network is abandoned wholesale; undoing a
                         record against a state some replay-mode
                         descendant left behind would be wrong. *)
                      if running () then begin
                        N.undo_step !net u;
                        st.undone <- st.undone + 1
                      end;
                      sleep_now := !sleep_now lor bit l
                    end)
                links
            end
            else begin
              (* Replay-mode node: descending consumes the live
                 network; each later sibling rebuilds the parent by
                 replaying the recorded prefix (the engine is
                 deterministic, so the choice sequence IS the
                 snapshot). *)
              let sleep_now = ref sleep in
              let live = ref true in
              Array.iter
                (fun l ->
                  if running () then
                    if !sleep_now land bit l <> 0 then
                      st.sleep_pruned <- st.sleep_pruned + 1
                    else begin
                      if not !live then rebuild depth;
                      live := false;
                      path.(depth) <- l;
                      N.force_step !net ~link:l;
                      (match !mon !net with
                      | Some v -> fail (depth + 1) v
                      | None -> expand (depth + 1) (!sleep_now land ctx.indep.(l)));
                      sleep_now := !sleep_now lor bit l
                    end)
                links;
              (* Undo records held by shallower frames apply to any
                 state-identical network, but only at THIS state: the
                 boundary node (the topmost replay-mode frame, sitting
                 directly under undo-mode frames) restores it before
                 returning into undo territory.  Deeper replay frames
                 skip the restore — their parent rebuilds on demand. *)
              if undo_ok && depth = undo_depth && running () && not !live then
                rebuild depth
            end
          end
          end
        end
      end
    in
    (match replay_prefix !net !mon path plen with
    | Some (len, v) -> fail len v
    | None -> expand plen init_sleep);
    st.replayed <- st.replayed + plen;
    st

  (* ---------------------------------------------------------------- *)
  (* Replay and minimization *)

  exception Infeasible

  (* Longest prefix of [sched] up to and including the first
     violation: [Some (len, v)] when one occurs (including a
     terminal-state violation after the last step), [None] when the
     schedule is violation-free or does not fit the run. *)
  let first_violation spec sched =
    let net = spec.make () in
    let mon = spec.monitor () in
    let len = Array.length sched in
    let rec go i =
      if i >= len then
        if N.enabled_count net = 0 then
          match spec.terminal net with Some v -> Some (len, v) | None -> None
        else None
      else begin
        (try N.force_step net ~link:sched.(i)
         with Invalid_argument _ -> raise Infeasible);
        match mon net with Some v -> Some (i + 1, v) | None -> go (i + 1)
      end
    in
    match go 0 with x -> x | exception Infeasible -> None

  let replay spec schedule =
    let net = spec.make () in
    let mon = spec.monitor () in
    let violation = ref None in
    Array.iter
      (fun link ->
        N.force_step net ~link;
        if Option.is_none !violation then violation := mon net)
      schedule;
    (if Option.is_none !violation && N.enabled_count net = 0 then
       violation := spec.terminal net);
    if Option.is_none !violation && Array.length schedule >= spec.max_depth
    then violation := Some depth_violation;
    (net, !violation)

  (* Independent confirmation of a counterexample: drive the schedule
     through the engine's ORDINARY run loop via
     [Scheduler.of_schedule] — not the checker's [force_step] path —
     and demand that a violation reproduces.  This catches minimizer
     bugs (a shrunk schedule that is infeasible, or feasible but
     clean) before a counterexample is ever reported. *)
  let confirm spec ce =
    let net = spec.make () in
    let mon = spec.monitor () in
    let hit = ref None in
    let probe ~step:_ = if Option.is_none !hit then hit := mon net in
    let len = Array.length ce.schedule in
    match
      N.run ~max_deliveries:len ~probe net (Scheduler.of_schedule ce.schedule)
    with
    | exception Invalid_argument _ -> false (* schedule does not fit *)
    | _ ->
        (if Option.is_none !hit && N.enabled_count net = 0 then
           hit := spec.terminal net);
        (if Option.is_none !hit && len >= spec.max_depth then
           hit := Some depth_violation);
        Option.is_some !hit

  let minimize spec ce =
    if String.equal ce.violation depth_violation then
      (* Every proper subsequence is shorter than the depth budget and
         so cannot exhibit this violation; the schedule is already
         minimal for its class. *)
      ce
    else begin
      let cur = ref ce.schedule in
      let viol = ref ce.violation in
      (* Truncate at the first violating step, then greedily drop
         single deliveries (re-truncating after each success) to a
         fixpoint. *)
      (match first_violation spec !cur with
      | Some (len, v) ->
          cur := Array.sub !cur 0 len;
          viol := v
      | None -> ());
      let changed = ref true in
      while !changed do
        changed := false;
        let i = ref 0 in
        while !i < Array.length !cur do
          let n = Array.length !cur in
          let cand =
            Array.init (n - 1) (fun j ->
                if j < !i then !cur.(j) else !cur.(j + 1))
          in
          match first_violation spec cand with
          | Some (len, v) ->
              cur := Array.sub cand 0 len;
              viol := v;
              changed := true
          | None -> incr i
        done
      done;
      let m = { schedule = !cur; violation = !viol } in
      (* A minimized schedule must reproduce through the ordinary run
         loop; fall back to the original counterexample otherwise. *)
      if confirm spec m then m else ce
    end

  (* ---------------------------------------------------------------- *)
  (* The checker *)

  (* Task-frontier construction: a bounded sequential BFS from the
     root.  Expanded states are accounted exactly like DFS states
     (same dedup, same reductions, same budget); unexpanded frontier
     entries become the parallel tasks.  The frontier — and hence
     every downstream number — is a pure function of the spec and
     [split], never of [jobs]. *)

  type seed_outcome = {
    seed_acc : acc;
    frontier : (int array * int) array;  (* (prefix, sleep) in order *)
  }

  let seed_explore ctx ~split ~max_states =
    let spec = ctx.spec in
    let st = fresh_acc () in
    let seen = Hashtbl.create 1024 in
    let q = Queue.create () in
    Queue.add ([||], 0) q;
    let fail prefix len v =
      st.ce <- Some { schedule = Array.sub prefix 0 len; violation = v }
    in
    while
      Option.is_none st.ce && (not st.stopped)
      && Queue.length q > 0
      && Queue.length q < split
    do
      let prefix, sleep = Queue.pop q in
      let plen = Array.length prefix in
      let net = spec.make () in
      let mon = spec.monitor () in
      (match replay_prefix net mon prefix plen with
      | Some (len, v) -> fail prefix len v
      | None ->
          st.replayed <- st.replayed + plen;
          if plen > st.max_depth_seen then st.max_depth_seen <- plen;
          if not (dedup_prune ctx seen net sleep st) then begin
            (* Strict budget, as in [run_unit]: an unpayable state is
               neither counted nor expanded. *)
            if st.states >= max_states then begin
              st.truncated <- true;
              st.stopped <- true
            end
            else begin
            st.states <- st.states + 1;
            if N.enabled_count net = 0 then begin
              st.schedules <- st.schedules + 1;
              match spec.terminal net with
              | Some v -> fail prefix plen v
              | None -> ()
            end
            else if plen >= spec.max_depth then
              fail prefix plen depth_violation
            else begin
              let links = branch_links ctx (enabled_links net) in
              let sleep_now = ref sleep in
              Array.iter
                (fun l ->
                  if !sleep_now land bit l <> 0 then
                    st.sleep_pruned <- st.sleep_pruned + 1
                  else begin
                    let child = Array.make (plen + 1) 0 in
                    Array.blit prefix 0 child 0 plen;
                    child.(plen) <- l;
                    Queue.add (child, !sleep_now land ctx.indep.(l)) q;
                    sleep_now := !sleep_now lor bit l
                  end)
                links
            end
            end
          end);
      ()
    done;
    let frontier =
      if Option.is_some st.ce || st.stopped then [||]
      else Array.of_seq (Queue.to_seq q)
    in
    { seed_acc = st; frontier }

  let check ?(jobs = 1) ?(max_states = 1_000_000) ?(minimized = true)
      ?(split = 16) ?(undo_depth = max_int) spec =
    if spec.max_depth < 1 then invalid_arg "Mc.check: max_depth < 1";
    if split < 1 then invalid_arg "Mc.check: split < 1";
    let probe = spec.make () in
    let topo = N.topology probe in
    let num_links = N.num_links topo in
    if num_links > 60 then
      invalid_arg "Mc.check: more than 60 links (sleep sets are int masks)";
    (* [indep.(l)]: links whose deliveries commute with a delivery on
       [l] — exactly those with a different destination node.  A
       delivery mutates only its destination's state, pops its own
       channel's head and pushes to the destination's outgoing
       channels; for distinct destinations these operations commute
       (pushes and pops on a shared channel touch opposite ends). *)
    let indep = Array.make num_links 0 in
    for l = 0 to num_links - 1 do
      for l' = 0 to num_links - 1 do
        if N.link_dst_node topo l' <> N.link_dst_node topo l then
          indep.(l) <- indep.(l) lor bit l'
      done
    done;
    let n_nodes = N.size probe in
    let live_in = Array.make n_nodes 0 in
    (match spec.reduction with
    | Sleep -> ()
    | Source { live } ->
        for l = 0 to num_links - 1 do
          if live land bit l <> 0 then
            let d = N.link_dst_node topo l in
            live_in.(d) <- live_in.(d) lor bit l
        done);
    let ctx = { spec; indep; live_in; n_nodes } in
    let finish stats counterexample =
      let counterexample =
        if minimized then Option.map (minimize spec) counterexample
        else counterexample
      in
      { stats; counterexample }
    in
    match (spec.monitor ()) probe with
    | Some v ->
        finish zero_stats (Some { schedule = [||]; violation = v })
    | None -> (
        let seed = seed_explore ctx ~split ~max_states in
        let stats0 = add_stats zero_stats seed.seed_acc in
        match Array.length seed.frontier with
        | 0 -> finish stats0 seed.seed_acc.ce
        | k ->
            (* Parallel phase: every frontier subtree is an independent
               pure unit, so results are jobs-independent; the shared
               ticket counter is ONLY a throttle that stops the fleet
               doing much more than [max_states] of work in total.
               Units the throttle touched are nondeterministic and get
               recomputed below. *)
            let tickets = Atomic.make seed.seed_acc.states in
            let units =
              Pool.map ~mode:Pool.Steal ~jobs k (fun i ->
                  let prefix, sleep = seed.frontier.(i) in
                  run_unit ctx ~budget:max_states ~tickets:(Some tickets)
                    ~ticket_cap:max_states ~undo_depth ~prefix
                    ~init_sleep:sleep)
            in
            (* Canonical repair pass: fold the units in frontier order
               against the ONE global budget, exactly as a sequential
               run with a shared counter would.  A unit is reused
               verbatim only if the throttle never touched it and it
               fits the remaining budget; otherwise it is recomputed
               sequentially under the exact remainder.  The first
               counterexample in frontier order wins and later units
               are dropped wholesale — which is also what makes the
               early throttle aborts invisible. *)
            let stats = ref stats0 in
            let ce = ref None in
            let i = ref 0 in
            while Option.is_none !ce && !i < k do
              let remaining = max_states - (!stats).states in
              if remaining <= 0 then begin
                stats := { !stats with truncated = true };
                i := k
              end
              else begin
                let u = units.(!i) in
                let u =
                  if (not u.aborted) && u.states <= remaining then u
                  else begin
                    let prefix, sleep = seed.frontier.(!i) in
                    run_unit ctx ~budget:remaining ~tickets:None
                      ~ticket_cap:max_states ~undo_depth ~prefix
                      ~init_sleep:sleep
                  end
                in
                stats := add_stats !stats u;
                ce := u.ce;
                incr i
              end
            done;
            finish !stats !ce)
end

(* The historical ring-engine API: [Mc.check] and friends are the ring
   instantiation of the functor, included at top level so existing
   specs and callers compile unchanged. *)
include Make (Unify.Ring_network)
