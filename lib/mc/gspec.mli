(** Walk-election specs for the graph-engine checker.

    {!Gmc} is {!Mc.Make} on the unified graph engine
    ({!Colring_graph.Unified.Graph_network}); the builders here are
    the graph analogue of {!Spec}: exhaustive verdicts for the walk
    election of {!Colring_graph.Gelection} on graphs small enough to
    explore completely, plus the bridge ablation the checker must
    refute. *)

open Colring_graph

module Gmc : Mc.S with type 'm net = 'm Gnetwork.t

val walk_election :
  ?name:string -> Gtopology.t -> ids:int array -> unit Gmc.spec
(** The full walk-election verdict on a 2-edge-connected [topo]:
    per-step send bound [walk_length * covered_id_max], and at
    quiescence exact sends with every node decided and the unique
    Leader at the maximum id. *)

val barbell : unit -> Gtopology.t
(** Two triangles joined by a bridge (n = 6): the canonical
    not-2-edge-connected instance. *)

val bridge_ablation : ids:int array -> unit Gmc.spec
(** The walk election on {!barbell} (decomposed with
    [require_2ec:false]) against the {e whole-graph} election verdict:
    nodes beyond the bridge stay Undecided at every quiescent state,
    and the checker exhibits the minimized roles violation
    ([expect_violation = true]). *)

val targets : string list
(** Graph check targets accepted by the CLI:
    [walk:theta3], [walk:k4], [walk:bowtie], [ablation:bridge]. *)

val of_target : string -> unit Gmc.spec
(** Fixed small instance for a named target; raises [Invalid_argument]
    on unknown names. *)
