(** Stateless model checking over the deterministic engines.

    The engines' only nondeterminism is which non-empty link delivers
    next, and a run is a deterministic function of its choice
    sequence, so a recorded sequence of link ids {e is} a state
    snapshot: any state is rebuilt by replaying its prefix on a fresh
    network.  {!check} walks the choice tree depth-first with exactly
    one live network — descending is a [force_step], backtracking
    replays the prefix — and evaluates a per-step safety monitor after
    {e every} delivery plus a terminal predicate at every quiescent
    state.

    Two reductions keep the tree tractable (DESIGN.md section 9 has
    the soundness argument):

    - {b Sleep sets} (partial-order reduction): deliveries to distinct
      nodes commute, so of two adjacent independent deliveries only
      one order needs exploring.  Dependence is keyed on the receiver
      node; sleep sets are [int] bit masks over link ids (hence at
      most 60 links, i.e. rings up to n = 30 — far beyond what
      exhaustive exploration can visit anyway).
    - {b State caching}: states that merge across interleavings (the
      engine fingerprint extended with the monotone
      send/delivery/drop counters) are pruned when revisited under a
      sleep set that includes one they were already expanded under.
      Disable it ({!type-spec} [dedup = false]) for content-carrying
      protocols, whose payloads the fingerprint cannot see.

    Counterexamples are choice sequences; {!minimize} shrinks them
    greedily and {!Colring_engine.Scheduler.of_schedule} replays them
    through the ordinary run loop.

    The checker is a functor over the unified
    {!Colring_engine.Engine_intf.NETWORK} surface — {!Make} on any
    conforming engine yields the same algorithm; the toplevel
    [Mc.check] and friends are its ring instantiation
    ({!Colring_engine.Unify.Ring_network}), so historical callers
    compile unchanged, and [Gspec] instantiates it on the graph
    engine. *)

type stats = {
  states : int;  (** States expanded (post-pruning). *)
  schedules : int;  (** Quiescent (terminal) states visited. *)
  replayed_deliveries : int;  (** Backtracking work, in deliveries. *)
  sleep_pruned : int;  (** Branches skipped by sleep sets. *)
  dedup_pruned : int;  (** Revisits cut by state caching. *)
  max_depth_seen : int;
  truncated : bool;  (** Some branch hit the [max_states] budget. *)
}

type counterexample = {
  schedule : int array;  (** Link choice sequence from the start. *)
  violation : string;
}

type result = { stats : stats; counterexample : counterexample option }

val depth_violation : string
(** The violation reported when a schedule exceeds [max_depth]. *)

(** The checker's interface, shared by every engine instantiation. *)
module type S = sig
  type 'm net
  (** The network type of the underlying engine. *)

  type 'm spec = {
    name : string;  (** For reports and journals. *)
    make : unit -> 'm net;
        (** A fresh instance.  Must be deterministic: every call builds
            the identical initial state (fixed topology, ids, seed). *)
    monitor : unit -> 'm net -> string option;
        (** [monitor ()] creates one safety monitor per path walk; the
            returned closure is applied after every delivery (and once
            to the initial state) and returns a violation description,
            or [None].  It may keep state across the calls of one walk
            (e.g. previously seen outputs); with [dedup] it must remain
            a function of the observed state on violation-free paths. *)
    terminal : 'm net -> string option;
        (** Checked at every state with nothing in flight. *)
    max_depth : int;
        (** Delivery budget per schedule; exceeding it is itself a
            violation ({!depth_violation}) — the checker's termination
            invariant. *)
    dedup : bool;  (** Enable state caching (see above). *)
    expect_violation : bool;
        (** Whether a counterexample is the {e desired} outcome — true
            for the ablation variants, which a checker worth its salt
            must catch. *)
  }

  val check :
    ?jobs:int -> ?max_states:int -> ?minimized:bool -> 'm spec -> result
  (** Explore the schedule space of [spec].  The root branches fan out
      over the {!Colring_runtime.Pool} domain pool ([jobs], default 1);
      results are bit-identical for every [jobs] value.  [max_states]
      (default 1_000_000) bounds the states expanded {e per root
      branch}; exceeding it sets {!stats.truncated} (the budgeted
      frontier used for n = 5).  The first counterexample in
      deterministic DFS-and-branch order is returned, minimized via
      {!minimize} unless [minimized:false]. *)

  val replay : 'm spec -> int array -> 'm net * string option
  (** Replay a schedule on a fresh instance: the resulting network and
      the first violation observed (monitor during the walk, terminal
      at the end if quiescent, {!depth_violation} if the schedule
      reaches [max_depth] without violating otherwise).  Raises
      [Invalid_argument] if the schedule does not fit the run. *)

  val minimize : 'm spec -> counterexample -> counterexample
  (** Greedy shrinking: truncate at the first violating step, then
      repeatedly try dropping single deliveries (skipping infeasible
      candidates) until no removal preserves a violation.  The result
      is 1-minimal — every single-element removal is violation-free —
      though not necessarily globally minimal. *)
end

module Make (N : Colring_engine.Engine_intf.NETWORK) :
  S with type 'm net = 'm N.t
(** Instantiate the checker on any unified engine. *)

include S with type 'm net = 'm Colring_engine.Network.t
(** The historical ring-engine API ([Mc.spec], [Mc.check], …):
    {!Make} applied to {!Colring_engine.Unify.Ring_network}. *)
