(** Stateless model checking over the deterministic engines.

    The engines' only nondeterminism is which non-empty link delivers
    next, and a run is a deterministic function of its choice
    sequence, so a recorded sequence of link ids {e is} a state
    snapshot: any state is rebuilt by replaying its prefix on a fresh
    network.  {!check} explores the choice tree and evaluates a
    per-step safety monitor after {e every} delivery plus a terminal
    predicate at every quiescent state.

    Backtracking is {b incremental} wherever the engine allows it:
    when every program carries a snapshot codec
    ({!Colring_engine.Engine_intf.NETWORK.undo_capable}), descending
    is a [force_step_undo] and backtracking an [undo_step] — O(1) per
    edge instead of replaying the whole prefix.  Nodes deeper than
    [undo_depth] (and engines without codecs) fall back to
    replay-from-prefix; the hybrid is transparent in the results and
    only shifts work between {!stats.replayed_deliveries} and
    {!stats.undone_deliveries}.

    Exploration is {b work-stealing parallel}: a bounded sequential
    BFS carves the tree into a frontier of independent subtree tasks,
    which a stealing domain pool ({!Colring_runtime.Pool.Steal})
    drains.  Each task owns its network, monitor and seen-table, so
    verdicts, minimized counterexamples {e and the full stats block}
    are bit-identical for every [jobs] value.  [max_states] is one
    {e global} budget: a shared ticket counter throttles the fleet,
    and a canonical repair pass re-folds the tasks in frontier order
    against the exact remaining budget, reproducing sequential budget
    semantics independent of scheduling.

    Three reductions keep the tree tractable (DESIGN.md section 9 has
    the soundness arguments):

    - {b Sleep sets} (partial-order reduction): deliveries to distinct
      nodes commute, so of two adjacent independent deliveries only
      one order needs exploring.  Dependence is keyed on the receiver
      node; sleep sets are [int] bit masks over link ids (hence at
      most 60 links, i.e. rings up to n = 30 — far beyond what
      exhaustive exploration can visit anyway).
    - {b Source sets} ({!reduction} [Source]): when every {e live}
      in-link of some node already holds a message, the enabled
      deliveries into that node form a persistent set — branching on
      them alone is sound for trace-invariant properties (monotone
      counter bounds, quiescent-state predicates, the depth budget).
      Specs whose monitors observe interleaving order (e.g.
      termination order) must keep [Sleep].
    - {b State caching}: states that merge across interleavings (the
      engine fingerprint extended with the monotone
      send/delivery/drop counters) are pruned when revisited under a
      sleep set that includes one they were already expanded under.
      With a {!sym} hook the key is the canonical representative's
      and the sleep mask travels through the canonicalizing link
      permutation, so anonymous-ring states merge modulo rotation.
      Disable it ({!type-spec} [dedup = false]) for content-carrying
      protocols, whose payloads the fingerprint cannot see.

    Counterexamples are choice sequences; {!minimize} shrinks them
    greedily and re-confirms the shrunk schedule through the ordinary
    run loop ({!Colring_engine.Scheduler.of_schedule}) before
    reporting it — a shrink that fails to reproduce falls back to the
    unminimized schedule.

    The checker is a functor over the unified
    {!Colring_engine.Engine_intf.NETWORK} surface — {!Make} on any
    conforming engine yields the same algorithm; the toplevel
    [Mc.check] and friends are its ring instantiation
    ({!Colring_engine.Unify.Ring_network}), so historical callers
    compile unchanged, and [Gspec] instantiates it on the graph
    engine. *)

type stats = {
  states : int;  (** States expanded (post-pruning). *)
  schedules : int;  (** Quiescent (terminal) states visited. *)
  replayed_deliveries : int;  (** Replay-mode backtracking work. *)
  undone_deliveries : int;  (** Incremental-undo backtracking work. *)
  sleep_pruned : int;  (** Branches skipped by sleep sets. *)
  dedup_pruned : int;  (** Revisits cut by state caching. *)
  max_depth_seen : int;
  truncated : bool;  (** The global [max_states] budget was hit. *)
}

type counterexample = {
  schedule : int array;  (** Link choice sequence from the start. *)
  violation : string;
}

type result = { stats : stats; counterexample : counterexample option }

type reduction =
  | Sleep  (** Sleep sets only — always sound. *)
  | Source of { live : int }
      (** Sleep sets plus source-set branching.  [live] is the bit
          mask of links that can ever carry a message; the checker
          verifies it dynamically ([Invalid_argument] if a message
          appears outside it) and gates eligibility on every live
          in-link of the candidate node being non-empty.  Only sound
          when monitor/terminal verdicts are invariant under
          reordering of commuting deliveries. *)

type sym = {
  key : string;
      (** Canonical fingerprint of the state's symmetry orbit; must
          embed the progress counters (it {e replaces} the default
          dedup key). *)
  perm : int array;
      (** Link permutation mapping this state's link ids to the
          canonical representative's: [perm.(l)] is where link [l]
          lands.  Sleep masks are pushed through it before seen-table
          operations. *)
}

val depth_violation : string
(** The violation reported when a schedule exceeds [max_depth]. *)

(** The checker's interface, shared by every engine instantiation. *)
module type S = sig
  type 'm net
  (** The network type of the underlying engine. *)

  type 'm spec = {
    name : string;  (** For reports and journals. *)
    make : unit -> 'm net;
        (** A fresh instance.  Must be deterministic: every call builds
            the identical initial state (fixed topology, ids, seed). *)
    monitor : unit -> 'm net -> string option;
        (** [monitor ()] creates one safety monitor per path walk; the
            returned closure is applied after every delivery (and once
            to the initial state) and returns a violation description,
            or [None].  It may keep state across the calls of one walk
            (e.g. previously seen outputs); with [dedup] it must remain
            a function of the observed state on violation-free paths. *)
    terminal : 'm net -> string option;
        (** Checked at every state with nothing in flight. *)
    max_depth : int;
        (** Delivery budget per schedule; exceeding it is itself a
            violation ({!depth_violation}) — the checker's termination
            invariant. *)
    dedup : bool;  (** Enable state caching (see above). *)
    reduction : reduction;
        (** Partial-order reduction level; see {!reduction}. *)
    symmetry : ('m net -> sym) option;
        (** Canonicalization hook for symmetric (anonymous) systems;
            requires [dedup].  The checked properties must be
            invariant under the declared symmetry group. *)
    expect_violation : bool;
        (** Whether a counterexample is the {e desired} outcome — true
            for the ablation variants, which a checker worth its salt
            must catch. *)
  }

  val check :
    ?jobs:int ->
    ?max_states:int ->
    ?minimized:bool ->
    ?split:int ->
    ?undo_depth:int ->
    'm spec ->
    result
  (** Explore the schedule space of [spec].  A sequential BFS expands
      the root until at least [split] (default 16) frontier subtrees
      exist (or the space is exhausted), then the subtrees drain over
      the {!Colring_runtime.Pool} stealing pool ([jobs], default 1).
      Results — verdict, minimized counterexample, every stats field —
      are bit-identical for every [jobs] value.  [max_states] (default
      1_000_000) bounds the states expanded {e globally}; exceeding it
      sets {!stats.truncated}.  [undo_depth] caps how deep incremental
      undo is used before falling back to replay (default: unlimited).
      The first counterexample in canonical (BFS-frontier, then DFS)
      order is returned, minimized and replay-confirmed via
      {!minimize} unless [minimized:false]. *)

  val replay : 'm spec -> int array -> 'm net * string option
  (** Replay a schedule on a fresh instance: the resulting network and
      the first violation observed (monitor during the walk, terminal
      at the end if quiescent, {!depth_violation} if the schedule
      reaches [max_depth] without violating otherwise).  Raises
      [Invalid_argument] if the schedule does not fit the run. *)

  val minimize : 'm spec -> counterexample -> counterexample
  (** Greedy shrinking: truncate at the first violating step, then
      repeatedly try dropping single deliveries (skipping infeasible
      candidates) until no removal preserves a violation.  The result
      is 1-minimal — every single-element removal is violation-free —
      though not necessarily globally minimal.  The shrunk schedule is
      re-confirmed with {!confirm}; if confirmation fails the original
      counterexample is returned unchanged. *)

  val confirm : 'm spec -> counterexample -> bool
  (** Drive the counterexample's schedule through the engine's
      {e ordinary} run loop ({!Colring_engine.Scheduler.of_schedule} —
      not the checker's forcing path) on a fresh instance and report
      whether a violation reproduces.  Guards {!minimize} against
      shrinker bugs. *)
end

module Make (N : Colring_engine.Engine_intf.NETWORK) :
  S with type 'm net = 'm N.t
(** Instantiate the checker on any unified engine. *)

include S with type 'm net = 'm Colring_engine.Network.t
(** The historical ring-engine API ([Mc.spec], [Mc.check], …):
    {!Make} applied to {!Colring_engine.Unify.Ring_network}. *)
