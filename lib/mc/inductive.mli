(** Inductive-invariant checking over sampled reachable states.

    Exhaustive exploration ({!Mc.check}) certifies small rings; this
    module complements it on sizes the state space outgrows.  A seeded
    random walk samples reachable configurations, an invariant is
    evaluated at each, and — where the invariant is a pure state
    predicate — the {e inductive step} is checked directly: every
    one-step successor of a satisfying state is visited with the
    engine's incremental undo ([force_step_undo]/[undo_step]) and must
    satisfy the invariant too.  A closure failure pinpoints the
    delivery that breaks the invariant, which is far more informative
    than a distant assertion failure.

    Everything is deterministic in [seed]; the qcheck properties in the
    test-suite drive these entry points over randomized ids, walk
    counts and depths. *)

type verdict = {
  samples : int;  (** States at which the invariant was evaluated. *)
  transitions : int;
      (** One-step successors visited for the closure check. *)
  violations : string list;  (** Chronological; empty iff all held. *)
}

val ok : verdict -> bool

val algo1 :
  ids:int array -> seed:int -> walks:int -> max_steps:int -> verdict
(** Algorithm 1 under {!Colring_core.Invariants} (Lemmas 6–9 of the
    paper) along [walks] random walks of up to [max_steps] deliveries.
    The lemma probes track history (Lemma 7's ordering), so no closure
    transitions are counted. *)

val algo2 :
  ids:int array -> seed:int -> walks:int -> max_steps:int -> verdict
(** Algorithm 2 under the same lemma probes. *)

val chang_roberts :
  ids:int array -> seed:int -> walks:int -> max_steps:int -> verdict
(** Chang–Roberts under the classical [btw] invariant: a [Candidate c]
    about to be received by node [w] implies every node strictly
    clockwise-between [c]'s owner and [w] has id < [c], and any
    [Announce e] carries the maximum id.  A pure state predicate, so
    the inductive step is checked: every enabled delivery from every
    sampled state is taken (and undone) and the invariant re-evaluated
    on the successor. *)
