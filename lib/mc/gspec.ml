open Colring_engine
open Colring_graph

(* The graph-engine instantiation of the checker plus the walk-election
   spec family verified exhaustively in CI: small 2-edge-connected
   graphs where the whole schedule space fits, and the bridge ablation
   whose failure the checker must exhibit. *)

module Gmc = Mc.Make (Unified.Graph_network)

let check_quiescent net =
  if Gnetwork.is_quiescent net then None
  else Some "messages delivered but never consumed at quiescence"

let check_sends_exact ~expected net =
  let sends = Metrics.sends (Gnetwork.metrics net) in
  if sends = expected then None
  else
    Some
      (Printf.sprintf "sends %d at quiescence, the walk formula says %d" sends
         expected)

(* Exactly one Leader, at the covered max-id node, covered nodes all
   decided, uncovered nodes all Undecided.  On a 2-edge-connected
   graph every node is covered and this is the full election verdict;
   under the bridge ablation the undecided nodes beyond the bridge
   trip the second clause — the desired counterexample. *)
let check_roles decomp ~leader_node net =
  let outs = Gnetwork.outputs net in
  let bad = ref None in
  let leaders = ref 0 in
  Array.iteri
    (fun v (o : Output.t) ->
      if !bad = None then
        if Ears.covered decomp v then
          match o.Output.role with
          | Output.Leader when v <> leader_node ->
              bad :=
                Some
                  (Printf.sprintf
                     "node %d elected Leader but the covered maximum id is at \
                      node %d"
                     v leader_node)
          | Output.Leader -> incr leaders
          | Output.Undecided ->
              bad := Some (Printf.sprintf "node %d undecided at quiescence" v)
          | Output.Non_leader -> ()
        else if not (Output.equal_role o.Output.role Output.Undecided) then
          bad :=
            Some
              (Printf.sprintf "uncovered node %d decided (role %s)" v
                 (Output.role_to_string o.Output.role)))
    outs;
  match !bad with
  | Some _ as b -> b
  | None -> if !leaders = 1 then None else Some "no leader elected"

let all_of checks net =
  let rec go = function
    | [] -> None
    | c :: rest -> ( match c net with Some _ as v -> v | None -> go rest)
  in
  go checks

(* Sound per step for the stabilizing walk election: the
   schedule-independent total is an upper bound at every intermediate
   state (roles are not checked per step — transient Leaders are
   legitimate while counts climb). *)
let sends_bound_monitor ~bound () net =
  let sends = Metrics.sends (Gnetwork.metrics net) in
  if sends > bound then
    Some (Printf.sprintf "sends %d exceed the walk bound %d" sends bound)
  else None

let covered_argmax decomp ~ids =
  let best = ref (-1) in
  Array.iteri
    (fun v id ->
      if Ears.covered decomp v && (!best < 0 || id > ids.(!best)) then
        best := v)
    ids;
  !best

(* Pulses travel only along the closed spanning walk, so the live mask
   for source-set reduction is exactly the walk's links; the monitor
   is a monotone counter bound and everything else is asserted at
   quiescence, both preserved by the reduction. *)
let walk_reduction plan =
  let live =
    Array.fold_left
      (fun m l -> m lor (1 lsl l))
      0
      (Ears.walk (Gelection.decomposition plan))
  in
  Mc.Source { live }

let walk_election ?(name = "walk-election") topo ~ids =
  let plan = Gelection.plan topo in
  let decomp = Gelection.decomposition plan in
  let bound = Gelection.expected_sends plan ~ids in
  let leader_node = covered_argmax decomp ~ids in
  {
    Gmc.name;
    make = (fun () -> Gelection.make plan ~ids);
    monitor = sends_bound_monitor ~bound;
    terminal =
      all_of
        [
          check_quiescent;
          check_sends_exact ~expected:bound;
          check_roles decomp ~leader_node;
        ];
    max_depth = bound + 1;
    dedup = true;
    reduction = walk_reduction plan;
    symmetry = None;
    expect_violation = false;
  }

(* The triangle-bridge-triangle barbell: the walk covers only the
   root's triangle, nodes 3-5 stay Undecided forever, and the checker
   must exhibit that as a (minimized) roles violation. *)
let barbell () =
  Gtopology.of_edges ~n:6
    [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3) ]

(* What a whole-graph election owes: every node decided, the unique
   Leader at the global maximum id.  The walk election only meets this
   on 2-edge-connected graphs; under the bridge ablation the verdict
   fails at every quiescent state, which is the point. *)
let check_global_roles ~leader_node net =
  let outs = Gnetwork.outputs net in
  let bad = ref None in
  let leaders = ref 0 in
  Array.iteri
    (fun v (o : Output.t) ->
      if !bad = None then
        match o.Output.role with
        | Output.Leader when v <> leader_node ->
            bad :=
              Some
                (Printf.sprintf
                   "node %d elected Leader but the maximum id is at node %d" v
                   leader_node)
        | Output.Leader -> incr leaders
        | Output.Undecided ->
            bad := Some (Printf.sprintf "node %d undecided at quiescence" v)
        | Output.Non_leader -> ())
    outs;
  match !bad with
  | Some _ as b -> b
  | None -> if !leaders = 1 then None else Some "no leader elected"

let argmax ids =
  let best = ref 0 in
  Array.iteri (fun v id -> if id > ids.(!best) then best := v) ids;
  !best

let bridge_ablation ~ids =
  let plan = Gelection.plan ~require_2ec:false (barbell ()) in
  let bound = Gelection.expected_sends plan ~ids in
  {
    Gmc.name = "ablation:bridge";
    make = (fun () -> Gelection.make plan ~ids);
    monitor = sends_bound_monitor ~bound;
    terminal =
      all_of [ check_quiescent; check_global_roles ~leader_node:(argmax ids) ];
    max_depth = bound + 1;
    dedup = true;
    reduction = walk_reduction plan;
    symmetry = None;
    expect_violation = true;
  }

let targets =
  [ "walk:theta3"; "walk:k4"; "walk:bowtie"; "ablation:bridge" ]

(* Fixed tiny instances: exhaustiveness matters more than id variety
   here (the qcheck and sweep layers cover id variety). *)
let of_target = function
  | "walk:theta3" ->
      walk_election ~name:"walk:theta3" (Gtopology.theta 0 1 1)
        ~ids:[| 2; 4; 1; 3 |]
  | "walk:k4" ->
      walk_election ~name:"walk:k4" (Gtopology.complete 4)
        ~ids:[| 3; 1; 4; 2 |]
  | "walk:bowtie" ->
      walk_election ~name:"walk:bowtie" (Gtopology.bowtie ())
        ~ids:[| 2; 5; 1; 4; 3 |]
  | "ablation:bridge" -> bridge_ablation ~ids:[| 1; 2; 3; 4; 5; 6 |]
  | other ->
      invalid_arg (Printf.sprintf "Gspec.of_target: unknown target %S" other)
