(** Checkable system specifications for the paper's algorithms, their
    deliberately broken {!Colring_core.Ablation} variants, and the
    classic content-carrying baselines.

    Each builder fixes one concrete instance (topology, IDs) and pairs
    it with the strongest sound property split for its algorithm:

    - {b Algorithm 2} (and its no-lag ablation) terminates quiescently,
      so Theorem 1's termination claims are per-step invariants: no
      pulse reaches a terminated node, nodes terminate along the
      promised counterclockwise order (the terminated set is always a
      prefix of it), a terminated node's role is frozen at its final
      value, and sends stay within the closed form.  Outputs of {e
      running} nodes still revise (Algorithm 2 runs Algorithm 1 over
      its clockwise channel), so roles are only pinned down at the
      terminal state, which must be exact: everyone terminated, total
      sends equal to the formula, the max-ID node the unique Leader.
    - {b Algorithms 1 and 3} (and the remaining ablations) merely
      stabilize, so transient states may disagree (e.g. two Leaders for
      a moment is legitimate); only the schedule-independent send bound
      is monitored per step, everything else (roles, orientation, exact
      totals) is asserted at quiescence.
    - {b Classic baselines} have no closed form to monitor; the depth
      budget guards non-termination and the terminal state must elect
      the max-ID node.

    Randomized targets (Itai–Rodeh, ID resampling) are rejected with
    [Invalid_argument]: the checker explores a deterministic system's
    schedule nondeterminism only. *)

type ablation = No_lag | Same_virtual_ids | No_absorption

type packed = Packed : 'm Mc.spec -> packed
    (** Existential wrapper so a CLI can treat pulse protocols and
        content-carrying classics uniformly. *)

val election :
  Colring_core.Election.algorithm ->
  ids:int array ->
  topo_seed:int ->
  Colring_engine.Network.pulse Mc.spec
(** Spec for one of the paper's algorithms on its natural topology:
    oriented for 1 and 2, a seed-derived non-oriented ring for 3.
    IDs must be positive, [Array.length ids] is the ring size.
    [Invalid_argument] for {!Colring_core.Election.Algo3_resample}. *)

val ablation :
  ablation ->
  ids:int array ->
  topo_seed:int ->
  Colring_engine.Network.pulse Mc.spec
(** Same shapes with the broken program substituted and
    [expect_violation] set: checking one of these {e must} produce a
    counterexample. *)

val anon_relay : n:int -> Colring_engine.Network.pulse Mc.spec
(** The anonymous {!Colring_core.Relay} protocol on an oriented ring
    of [n] nodes — every node identical, so the spec carries a
    rotation {!Mc.sym} hook and exercises the checker's symmetry
    reduction.  Checks the schedule-independent send total ([2n],
    monitored as a bound per step and exactly at quiescence) and that
    every node quiesces having received exactly two pulses. *)

val classic : string -> ids:int array -> packed
(** Baseline spec by name ([chang-roberts], [lelann],
    [hirschberg-sinclair], [peterson], [franklin]); oriented ring,
    unique positive IDs required.  [Invalid_argument] for unknown
    names and for the randomized [itai-rodeh]. *)

val of_target : string -> ids:int array -> topo_seed:int -> packed
(** Parse any {!targets} string into its spec. *)

val targets : string list
(** Every name {!of_target} accepts, in display order. *)
