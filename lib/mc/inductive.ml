open Colring_engine
module Rng = Colring_stats.Rng
module Invariants = Colring_core.Invariants

type verdict = {
  samples : int;
  transitions : int;
  violations : string list;
}

let ok v = match v.violations with [] -> true | _ :: _ -> false

(* Uniform enabled link, enumerated through [enabled_link ~after] so
   the draw allocates nothing. *)
let random_enabled rng net =
  let count = Network.enabled_count net in
  if count = 0 then None
  else begin
    let idx = Rng.int rng count in
    let link = ref (Network.enabled_link net ~after:(-1)) in
    for _ = 1 to idx do
      link := Network.enabled_link net ~after:!link
    done;
    Some !link
  end

(* Random-walk sampler with one-step closure: at every state along the
   walk, [state_inv net] is evaluated on the state itself AND — when
   [closure] and the engine supports undo — on every one-step
   successor, which is visited with [force_step_undo] and rolled back
   with [undo_step].  A violation in a successor of an
   invariant-satisfying state is exactly a failure of the inductive
   step, reported as such. *)
let walk_sample ~mk ~state_inv ~closure ~seed ~walks ~max_steps =
  let samples = ref 0 in
  let transitions = ref 0 in
  let violations = ref [] in
  let record msg = violations := msg :: !violations in
  for w = 0 to walks - 1 do
    let rng = Rng.create ~seed:(seed + (7919 * w)) in
    let net = mk () in
    let steps = ref 0 in
    let walking = ref true in
    while !walking && !steps < max_steps do
      incr samples;
      let here_ok =
        match state_inv net with
        | None -> true
        | Some msg ->
            record (Printf.sprintf "walk %d step %d: %s" w !steps msg);
            false
      in
      if closure && here_ok then begin
        (* Inductive step: every successor of a good state is good. *)
        let link = ref (Network.enabled_link net ~after:(-1)) in
        while !link >= 0 do
          let u = Network.force_step_undo net ~link:!link in
          incr transitions;
          (match state_inv net with
          | None -> ()
          | Some msg ->
              record
                (Printf.sprintf
                   "walk %d step %d: successor via link %d breaks: %s" w !steps
                   !link msg));
          Network.undo_step net u;
          link := Network.enabled_link net ~after:!link
        done
      end;
      match random_enabled rng net with
      | None -> walking := false
      | Some link ->
          Network.force_step net ~link;
          incr steps
    done
  done;
  {
    samples = !samples;
    transitions = !transitions;
    violations = List.rev !violations;
  }

(* --- Algorithms 1/2: the paper's lemma probes over random walks ---- *)

let lemma_walk ~program ~ids ~seed ~walks ~max_steps =
  let n = Array.length ids in
  let samples = ref 0 in
  let violations = ref [] in
  for w = 0 to walks - 1 do
    let rng = Rng.create ~seed:(seed + (7919 * w)) in
    let topo = Topology.oriented n in
    let net = Network.create topo (fun v -> program ~id:ids.(v)) in
    let checker = Invariants.attach net ~ids in
    let steps = ref 0 in
    let walking = ref true in
    while !walking && !steps < max_steps do
      incr samples;
      Invariants.probe checker ~step:!steps;
      match random_enabled rng net with
      | None -> walking := false
      | Some link ->
          Network.force_step net ~link;
          incr steps
    done;
    List.iter
      (fun v ->
        violations :=
          Format.asprintf "walk %d: %a" w Invariants.pp_violation v
          :: !violations)
      (Invariants.violations checker)
  done;
  { samples = !samples; transitions = 0; violations = List.rev !violations }

let algo1 ~ids ~seed ~walks ~max_steps =
  lemma_walk ~program:Colring_core.Algo1.program ~ids ~seed ~walks ~max_steps

let algo2 ~ids ~seed ~walks ~max_steps =
  lemma_walk ~program:Colring_core.Algo2.program ~ids ~seed ~walks ~max_steps

(* --- Chang–Roberts: the [btw] relation as a one-step-closed
   invariant --------------------------------------------------------- *)

(* A candidate token carrying id [c], about to be received by node [w],
   witnesses that it survived every node it crossed: writing [o] for
   the owner of [c], every node strictly clockwise-between [o] and [w]
   has a smaller id — the classical [btw] relation.  An announcement
   must carry the maximum id.  Both are pure state predicates over the
   channels and mailboxes, so they are closed under delivery iff the
   algorithm is correct; [chang_roberts] checks exactly that closure on
   sampled reachable states. *)
let btw_violation ~ids ~topo net =
  let n = Array.length ids in
  let id_max = Array.fold_left max ids.(0) ids in
  let owner = Hashtbl.create n in
  Array.iteri (fun v id -> Hashtbl.replace owner id v) ids;
  let cw_next v = Topology.cw_neighbor topo v in
  let check_msg ~w msg =
    match msg with
    | Colring_classic.Chang_roberts.Announce e ->
        if e = id_max then None
        else Some (Printf.sprintf "Announce %d in transit but max id is %d" e id_max)
    | Colring_classic.Chang_roberts.Candidate c -> (
        match Hashtbl.find_opt owner c with
        | None -> Some (Printf.sprintf "Candidate %d owned by no node" c)
        | Some o ->
            let bad = ref None in
            let u = ref (cw_next o) in
            while !u <> w && Option.is_none !bad do
              if ids.(!u) >= c then
                bad :=
                  Some
                    (Printf.sprintf
                       "Candidate %d heading to node %d passed node %d with id \
                        %d >= %d"
                       c w !u ids.(!u) c);
              u := cw_next !u
            done;
            !bad)
  in
  let result = ref None in
  (* In-flight messages: their next receiver is the link's endpoint. *)
  for link = 0 to Topology.num_links topo - 1 do
    if Option.is_none !result then
      let w, _ = Topology.link_dst topo link in
      Array.iter
        (fun msg ->
          if Option.is_none !result then result := check_msg ~w msg)
        (Network.channel_payloads net ~link)
  done;
  (* Delivered-but-unconsumed messages sit in the receiver's mailbox. *)
  for w = 0 to n - 1 do
    if Option.is_none !result then
      List.iter
        (fun port ->
          Array.iter
            (fun msg ->
              if Option.is_none !result then result := check_msg ~w msg)
            (Network.mailbox_payloads net ~node:w ~port))
        [ Port.P0; Port.P1 ]
  done;
  !result

let chang_roberts ~ids ~seed ~walks ~max_steps =
  let n = Array.length ids in
  let topo = Topology.oriented n in
  let mk () =
    Network.create topo (fun v ->
        Colring_classic.Chang_roberts.program ~id:ids.(v))
  in
  walk_sample ~mk
    ~state_inv:(btw_violation ~ids ~topo)
    ~closure:true ~seed ~walks ~max_steps
