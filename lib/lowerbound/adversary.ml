open Colring_engine

type report = {
  k : int;
  n : int;
  ids : int array;
  shared_prefix : int;
  formula_prefix : int;
  sends : int;
  bound : int;
  per_node_agreement : int array;
  mimicry : bool;
}

let observed_sequence trace ~node =
  let ports = Trace.consumed_ports trace ~node in
  let buf = Bytes.create (List.length ports) in
  List.iteri
    (fun i p -> Bytes.set buf i (if Port.equal p Port.P1 then '1' else '0'))
    ports;
  Bytes.to_string buf

let replay ?max_deliveries ~k ~n factory =
  if n < 1 || k < n then invalid_arg "Adversary.replay: need k >= n >= 1";
  let tagged = Solitude.extract_range ?max_deliveries factory ~lo:1 ~hi:k in
  let chosen, shared_prefix = Analysis.best_group tagged ~group:n in
  let ids = Array.of_list chosen in
  let topo = Topology.oriented n in
  let sink = Sink.memory () in
  let net = Network.create ~sink topo (fun v -> factory ~id:ids.(v)) in
  let result = Network.run ?max_deliveries net Scheduler.global_fifo in
  let trace = Option.get (Sink.trace sink) in
  let pattern_of = Hashtbl.create 16 in
  List.iter (fun (id, p) -> Hashtbl.replace pattern_of id p) tagged;
  let per_node_agreement =
    Array.init n (fun v ->
        let solitude = Hashtbl.find pattern_of ids.(v) in
        Analysis.common_prefix_length solitude
          (observed_sequence trace ~node:v))
  in
  {
    k;
    n;
    ids;
    shared_prefix;
    formula_prefix = (if n <= k then Colring_core.Formulas.lower_bound ~n ~k / n else 0);
    sends = result.sends;
    bound = n * shared_prefix;
    per_node_agreement;
    mimicry = Array.for_all (fun a -> a >= shared_prefix) per_node_agreement;
  }
