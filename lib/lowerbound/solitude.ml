open Colring_engine

type pattern = string

let extract ?(max_deliveries = 1_000_000) factory ~id =
  let topo = Topology.oriented 1 in
  let sink = Sink.memory () in
  let net = Network.create ~sink topo (fun _ -> factory ~id) in
  let result = Network.run ~max_deliveries net Scheduler.fifo in
  if result.exhausted then
    failwith
      (Printf.sprintf "Solitude.extract: id %d did not quiesce within %d"
         id max_deliveries);
  match Sink.trace sink with
  | None -> assert false
  | Some tr ->
      (* On the oriented one-node ring, clockwise pulses arrive on the
         node's P0, counterclockwise ones on P1. *)
      let ports = Trace.consumed_ports tr ~node:0 in
      let buf = Bytes.create (List.length ports) in
      List.iteri
        (fun i p ->
          Bytes.set buf i (if Port.equal p Port.P1 then '1' else '0'))
        ports;
      Bytes.to_string buf

let extract_range ?max_deliveries factory ~lo ~hi =
  List.init (hi - lo + 1) (fun i ->
      let id = lo + i in
      (id, extract ?max_deliveries factory ~id))

let length = String.length

let algo2_expected ~id = String.make id '0' ^ String.make (id + 1) '1'
