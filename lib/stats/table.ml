type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string option;
  header : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title; header = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let header t = t.header

let data_rows t =
  List.filter_map
    (function Cells cells -> Some cells | Rule -> None)
    (List.rev t.rows)

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row ->
        match row with
        | Rule -> ws
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) ws cells)
      (List.map String.length t.header)
      rows
  in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 256 in
  let line ch =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let cells_row aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let w = List.nth widths i and a = List.nth aligns i in
        Buffer.add_string buf (" " ^ pad a w c ^ " ");
        Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title -> Buffer.add_string buf (title ^ "\n")
  | None -> ());
  line '-';
  cells_row (List.map (fun _ -> Left) t.header) t.header;
  line '=';
  List.iter
    (function
      | Rule -> line '-'
      | Cells cells -> cells_row t.aligns cells)
    rows;
  line '-';
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_bool b = if b then "yes" else "no"
let cell_ratio f = Printf.sprintf "%.4f" f
