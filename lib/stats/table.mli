(** Plain-text tables for the experiment harness.

    Every bench prints one of these per paper claim, with a "paper"
    column (the closed form) next to the measured columns, aligned for
    terminals and greppable in the committed bench output. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** Append one row; must have as many cells as there are columns. *)

val add_rule : t -> unit
(** Append a horizontal separator row. *)

val header : t -> string list
(** The column header cells, in display order. *)

val data_rows : t -> string list list
(** The data rows appended so far, in display order, separator rules
    skipped.  The telemetry layer walks a finished table with this to
    journal one record per row. *)

val render : t -> string
(** Render with unicode-free ASCII borders. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
(** ["yes"] / ["no"]. *)

val cell_ratio : float -> string
(** Fixed 4-decimal ratio, e.g. ["1.0000"]. *)
