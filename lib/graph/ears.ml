type ear = {
  anchor : int;
  close : int;
  inner : int list;
  links : int list;
}

type t = {
  topo : Gtopology.t;
  base_cycle : int list;
  ears : ear list;
  covered : bool array;
  walk : int array;
}

(* A chain of Schmidt's decomposition, still in node/edge form: the
   start vertex, the end vertex (first already-covered vertex the
   parent walk hits), the newly covered inner vertices in path order,
   and the edge instances along the path (back edge first). *)
type chain = { c_start : int; c_end : int; c_inner : int list; c_edges : int list }

let decompose ?(require_2ec = true) topo =
  if require_2ec && not (Gtopology.is_two_edge_connected topo) then
    invalid_arg "Ears.decompose: graph is not 2-edge-connected";
  let n = Gtopology.n topo in
  if n < 2 then invalid_arg "Ears.decompose: need at least 2 nodes";
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let disc = Array.make n (-1) in
  let order_rev = ref [] in
  (* Back edges keyed by their ANCESTOR endpoint (Schmidt processes
     each chain from there); recorded while scanning the descendant. *)
  let back = Array.make n [] in
  let time = ref 0 in
  let rec dfs v =
    disc.(v) <- !time;
    incr time;
    order_rev := v :: !order_rev;
    for p = 0 to Gtopology.degree topo v - 1 do
      let link = Gtopology.link_id topo ~node:v ~port:p in
      let e = Gtopology.edge_of_link topo link in
      let w = fst (Gtopology.link_dst topo link) in
      if disc.(w) < 0 then begin
        parent.(w) <- v;
        parent_edge.(w) <- e;
        dfs w
      end
      else if e <> parent_edge.(v) && disc.(w) < disc.(v) then
        back.(w) <- (v, e) :: back.(w)
    done
  in
  dfs 0;
  let covered = Array.make n false in
  (* Build one chain: down the back edge [s -> t], then up the DFS tree
     from [t] until the first already-covered vertex, covering as we
     go.  [s] is covered before the climb, so a chain that returns to
     its own start closes there (a closed ear — or the base cycle). *)
  let build_chain s (t, e) =
    let rec climb u nodes_rev edges_rev =
      if covered.(u) then (u, List.rev nodes_rev, List.rev edges_rev)
      else begin
        covered.(u) <- true;
        climb parent.(u) (u :: nodes_rev) (parent_edge.(u) :: edges_rev)
      end
    in
    let c_end, c_inner, up_edges = climb t [] [] in
    { c_start = s; c_end; c_inner; c_edges = e :: up_edges }
  in
  let chains_rev = ref [] in
  List.iter
    (fun s ->
      List.iter
        (fun be ->
          let fresh_root = not covered.(s) in
          if fresh_root then covered.(s) <- true;
          chains_rev := (fresh_root, build_chain s be) :: !chains_rev)
        (List.rev back.(s)))
    (List.rev !order_rev);
  let chains = List.rev !chains_rev in
  (* Only chains anchored (transitively) on the DFS root's structure
     join the walk: chains opening a fresh root other than node 0 live
     beyond a bridge, and Schmidt's climb never crosses a bridge, so
     with [require_2ec:false] those components simply stay uncovered —
     the ablation the model checker refutes. *)
  let in_root = Array.make n false in
  let base_cycle, ears_rev =
    List.fold_left
      (fun (base, ears) (fresh_root, c) ->
        match base with
        | None ->
            if not (fresh_root && c.c_start = 0) then
              invalid_arg "Ears.decompose: no cycle through the DFS root";
            in_root.(0) <- true;
            List.iter (fun v -> in_root.(v) <- true) c.c_inner;
            (* The base cycle is traversed in full: back edge from the
               root, then the tree path back up to it. *)
            let srcs = c.c_start :: c.c_inner in
            let links =
              List.map2
                (fun e src -> Gtopology.link_of_edge topo ~edge:e ~src)
                c.c_edges srcs
            in
            (Some links, ears)
        | Some _ when fresh_root || not in_root.(c.c_start) ->
            (base, ears) (* beyond a bridge: dropped *)
        | Some _ ->
            List.iter (fun v -> in_root.(v) <- true) c.c_inner;
            let k = List.length c.c_inner in
            let links =
              if k = 0 then
                (* A chord between covered vertices adds no vertex, so
                   the walk skips it entirely. *)
                []
              else if c.c_start = c.c_end then begin
                (* Closed ear: one full loop from the anchor. *)
                let srcs = c.c_start :: c.c_inner in
                List.map2
                  (fun e src -> Gtopology.link_of_edge topo ~edge:e ~src)
                  c.c_edges srcs
              end
              else begin
                (* Open ear: out to the last inner vertex and back over
                   the reverse links; the far anchor edge is never
                   walked (the far anchor is already covered). *)
                let fwd_edges = List.filteri (fun i _ -> i < k) c.c_edges in
                let srcs =
                  c.c_start :: List.filteri (fun i _ -> i < k - 1) c.c_inner
                in
                let fwd =
                  List.map2
                    (fun e src -> Gtopology.link_of_edge topo ~edge:e ~src)
                    fwd_edges srcs
                in
                fwd @ List.rev_map (Gtopology.reverse_link topo) fwd
              end
            in
            ( base,
              { anchor = c.c_start; close = c.c_end; inner = c.c_inner; links }
              :: ears ))
      (None, []) chains
  in
  let base_cycle =
    match base_cycle with
    | Some l -> l
    | None -> invalid_arg "Ears.decompose: no cycle through the DFS root"
  in
  let ears = List.rev ears_rev in
  (* Splice each ear's detour into the walk at the first position whose
     source is the ear's anchor; ears are processed in chain order, so
     an ear anchored on an earlier ear's inner vertex finds it. *)
  let src l = fst (Gtopology.link_src topo l) in
  let walk =
    List.fold_left
      (fun w ear ->
        match ear.links with
        | [] -> w
        | detour ->
            let rec ins = function
              | [] -> invalid_arg "Ears: anchor not on walk"
              | l :: rest when src l = ear.anchor -> detour @ (l :: rest)
              | l :: rest -> l :: ins rest
            in
            ins w)
      base_cycle ears
  in
  { topo; base_cycle; ears; covered = in_root; walk = Array.of_list walk }

let topo t = t.topo
let base_cycle t = t.base_cycle
let ears t = t.ears
let covered t v = t.covered.(v)
let num_covered t = Array.fold_left (fun a c -> if c then a + 1 else a) 0 t.covered
let all_covered t = Array.for_all Fun.id t.covered
let walk t = Array.copy t.walk
let walk_length t = Array.length t.walk

let pp ppf t =
  let g = t.topo in
  Format.fprintf ppf "@[<v>base cycle:";
  List.iter
    (fun l -> Format.fprintf ppf " %d" (fst (Gtopology.link_src g l)))
    t.base_cycle;
  Format.fprintf ppf "@,";
  List.iter
    (fun e ->
      Format.fprintf ppf "%s ear at %d:"
        (if e.anchor = e.close then "closed" else "open")
        e.anchor;
      List.iter (fun v -> Format.fprintf ppf " %d" v) e.inner;
      Format.fprintf ppf "@,")
    t.ears;
  Format.fprintf ppf "walk (%d):" (Array.length t.walk);
  Array.iter
    (fun l -> Format.fprintf ppf " %d" (fst (Gtopology.link_src g l)))
    t.walk;
  Format.fprintf ppf "@]"
