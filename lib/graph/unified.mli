(** The graph engine, sealed to the unified
    {!Colring_engine.Engine_intf.NETWORK} contract.

    [Graph_network] is {!Gnetwork} viewed through the
    topology-parameterized signature; together with
    [Colring_engine.Unify.Ring_network] it witnesses that rings really
    are just the degree-2 instantiation of one engine surface.  The
    type equations keep it interchangeable with plain {!Gnetwork}
    values.  Graph-specific extras ([sends],
    [post_termination_deliveries], per-port [channel_length] /
    [mailbox_length]) stay reachable through {!Gnetwork} directly. *)

module Graph_network :
  Colring_engine.Engine_intf.NETWORK
    with type topology = Gtopology.t
     and type 'm t = 'm Gnetwork.t
     and type 'm api = 'm Gnetwork.api
     and type 'm program = 'm Gnetwork.program
