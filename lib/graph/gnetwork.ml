open Colring_engine
module Rng = Colring_stats.Rng

type 'm api = {
  node : int;
  degree : int;
  recv : int -> 'm option;
  pending : int -> int;
  send : int -> 'm -> unit;
  set_output : Output.t -> unit;
  terminate : unit -> unit;
  rng : Rng.t;
}

type 'm program = {
  start : 'm api -> unit;
  wake : 'm api -> unit;
  inspect : unit -> (string * int) list;
}

type 'm envelope = { payload : 'm; seq : int; batch : int }

type 'm t = {
  topo : Gtopology.t;
  programs : 'm program array;
  mutable apis : 'm api array;
  channels : 'm envelope Queue.t array; (* by link id *)
  mailboxes : 'm Queue.t array; (* by link id of the RECEIVING endpoint *)
  outputs : Output.t array;
  term : bool array;
  mutable term_order_rev : int list;
  metrics : Metrics.t;
  (* Same sink discipline as the ring engine: the engine's own
     [Sink.counters] teed with the caller's sink, so counting and user
     telemetry are one emission path and E14/E18 graph runs journal
     through the same [colring journal] validator as ring runs. *)
  sink : Sink.t;
  observed : bool;
  mutable next_seq : int;
  mutable next_batch : int;
  mutable in_flight : int;
  mutable backlog : int;
  (* Non-empty-link set maintained incrementally (the ring engine's
     scheme): the first [nonempty_count] entries of [nonempty] are the
     links with messages in flight, [link_pos] the inverse permutation
     (-1 when absent).  [nonempty] doubles as the view's buffer. *)
  nonempty : int array;
  link_pos : int array;
  mutable nonempty_count : int;
  mutable view : Scheduler.view;
}

let mark_nonempty t link =
  if t.link_pos.(link) < 0 then begin
    t.nonempty.(t.nonempty_count) <- link;
    t.link_pos.(link) <- t.nonempty_count;
    t.nonempty_count <- t.nonempty_count + 1
  end

let unmark_if_empty t link =
  if Queue.is_empty t.channels.(link) then begin
    let pos = t.link_pos.(link) in
    let last = t.nonempty_count - 1 in
    let moved = t.nonempty.(last) in
    t.nonempty.(pos) <- moved;
    t.link_pos.(moved) <- pos;
    t.link_pos.(link) <- -1;
    t.nonempty_count <- last
  end

let make_api t v rng =
  let mailbox p = t.mailboxes.(Gtopology.link_id t.topo ~node:v ~port:p) in
  let recv p =
    match Queue.take_opt (mailbox p) with
    | Some m ->
        t.backlog <- t.backlog - 1;
        t.sink.Sink.on_consume ~node:v ~port:p;
        Some m
    | None -> None
  in
  let pending p = Queue.length (mailbox p) in
  let send p m =
    if t.term.(v) then failwith "Gnetwork: send after terminate";
    let link = Gtopology.link_id t.topo ~node:v ~port:p in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Queue.add { payload = m; seq; batch = t.next_batch } t.channels.(link);
    mark_nonempty t link;
    t.in_flight <- t.in_flight + 1;
    (* No global direction exists on a general graph, so every send is
       reported [cw:false]; [Metrics.sends_cw] stays 0. *)
    t.sink.Sink.on_send ~node:v ~port:p ~seq ~link ~cw:false
  in
  let set_output o =
    if not (Output.equal t.outputs.(v) o) then begin
      t.outputs.(v) <- o;
      t.sink.Sink.on_decide ~node:v ~output:o
    end
  in
  let terminate () =
    if not t.term.(v) then begin
      t.term.(v) <- true;
      t.term_order_rev <- v :: t.term_order_rev;
      t.sink.Sink.on_terminate ~node:v
    end
  in
  {
    node = v;
    degree = Gtopology.degree t.topo v;
    recv;
    pending;
    send;
    set_output;
    terminate;
    rng;
  }

let max_degree topo =
  let d = ref 1 in
  for v = 0 to Gtopology.n topo - 1 do
    if Gtopology.degree topo v > !d then d := Gtopology.degree topo v
  done;
  !d

let create ?(sink = Sink.null) ?(seed = 0) topo make_program =
  let n = Gtopology.n topo in
  let links = Gtopology.num_links topo in
  let metrics =
    Metrics.create ~ports_per_node:(max_degree topo) ~n_nodes:n ~n_links:links
      ()
  in
  let user_sink = sink in
  let t =
    {
      topo;
      programs = Array.init n make_program;
      apis = [||];
      channels = Array.init links (fun _ -> Queue.create ());
      mailboxes = Array.init links (fun _ -> Queue.create ());
      outputs = Array.make n Output.empty;
      term = Array.make n false;
      term_order_rev = [];
      metrics;
      sink = Sink.tee (Sink.counters metrics) user_sink;
      observed = user_sink.Sink.enabled;
      next_seq = 0;
      next_batch = 0;
      in_flight = 0;
      backlog = 0;
      nonempty = Array.make links 0;
      link_pos = Array.make links (-1);
      nonempty_count = 0;
      view =
        {
          Scheduler.nonempty = [||];
          count = 0;
          head_seq = (fun _ -> 0);
          head_batch = (fun _ -> 0);
          travels_cw = (fun _ -> None);
          dst_node = (fun _ -> 0);
          step = 0;
        };
    }
  in
  t.view <-
    {
      Scheduler.nonempty = t.nonempty;
      count = 0;
      head_seq = (fun link -> (Queue.peek t.channels.(link)).seq);
      head_batch = (fun link -> (Queue.peek t.channels.(link)).batch);
      (* General graphs have no global direction; direction-biased
         schedulers degrade gracefully on [None]. *)
      travels_cw = (fun _ -> None);
      dst_node = (fun link -> fst (Gtopology.link_dst t.topo link));
      step = 0;
    };
  let root_rng = Rng.create ~seed in
  t.apis <- Array.init n (fun v -> make_api t v (Rng.split_at root_rng v));
  for v = 0 to n - 1 do
    t.next_batch <- t.next_batch + 1;
    t.sink.Sink.on_wake ~node:v;
    t.programs.(v).start t.apis.(v)
  done;
  t

let view t =
  let v = t.view in
  v.Scheduler.count <- t.nonempty_count;
  v.Scheduler.step <- Metrics.deliveries t.metrics;
  v

let deliver_from t link =
  let env = Queue.take t.channels.(link) in
  unmark_if_empty t link;
  t.in_flight <- t.in_flight - 1;
  let dst, dst_port = Gtopology.link_dst t.topo link in
  if t.term.(dst) then
    t.sink.Sink.on_drop ~node:dst ~port:dst_port ~seq:env.seq
  else begin
    t.sink.Sink.on_deliver ~node:dst ~port:dst_port ~seq:env.seq;
    Queue.add env.payload
      t.mailboxes.(Gtopology.link_id t.topo ~node:dst ~port:dst_port);
    t.backlog <- t.backlog + 1;
    t.next_batch <- t.next_batch + 1;
    t.sink.Sink.on_wake ~node:dst;
    t.programs.(dst).wake t.apis.(dst)
  end

let step t (sched : Scheduler.t) =
  if t.in_flight = 0 then false
  else begin
    deliver_from t (sched.pick (view t));
    true
  end

let force_step t ~link =
  if Queue.is_empty t.channels.(link) then
    invalid_arg "Gnetwork.force_step: empty link";
  deliver_from t link

let enabled_count t = t.nonempty_count

let rec enabled_scan t link i best =
  if i >= t.nonempty_count then best
  else
    let l = t.nonempty.(i) in
    if l > link && (best < 0 || l < best) then enabled_scan t link (i + 1) l
    else enabled_scan t link (i + 1) best

let enabled_link t ~after = enabled_scan t after 0 (-1)
let channel_length t ~link = Queue.length t.channels.(link)

let mailbox_length t ~node ~port =
  Queue.length t.mailboxes.(Gtopology.link_id t.topo ~node ~port)

type run_result = Engine_intf.run_result = {
  sends : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  termination_order : int list;
}

let all_terminated t = Array.for_all Fun.id t.term
let in_flight t = t.in_flight
let mailbox_backlog t = t.backlog
let is_quiescent t = t.in_flight = 0 && t.backlog = 0

let run ?(max_deliveries = 50_000_000) ?(snapshot_every = 0) ?probe t sched =
  let exhausted = ref false in
  let continue = ref true in
  while !continue do
    if Metrics.deliveries t.metrics >= max_deliveries then begin
      exhausted := true;
      continue := false
    end
    else if not (step t sched) then continue := false
    else begin
      (if snapshot_every > 0 && t.observed then
         let d = Metrics.deliveries t.metrics in
         if d mod snapshot_every = 0 then
           t.sink.Sink.on_snapshot ~step:d (Metrics.to_assoc t.metrics));
      match probe with
      | None -> ()
      | Some f -> f ~step:(Metrics.deliveries t.metrics)
    end
  done;
  {
    sends = Metrics.sends t.metrics;
    deliveries = Metrics.deliveries t.metrics;
    quiescent = is_quiescent t;
    all_terminated = all_terminated t;
    exhausted = !exhausted;
    termination_order = List.rev t.term_order_rev;
  }

let topology t = t.topo
let size t = Gtopology.n t.topo
let output t v = t.outputs.(v)
let outputs t = Array.copy t.outputs
let terminated t v = t.term.(v)
let termination_order t = List.rev t.term_order_rev
let inspect t v = t.programs.(v).inspect ()

let inspect_counter t v name =
  match List.assoc_opt name (inspect t v) with
  | Some x -> x
  | None -> raise Not_found

let metrics t = t.metrics
let sends (t : _ t) = Metrics.sends t.metrics

let post_termination_deliveries (t : _ t) =
  Metrics.post_termination_deliveries t.metrics

let num_links topo = Gtopology.num_links topo
let link_dst_node topo link = fst (Gtopology.link_dst topo link)

(* Same canonical shape as [Network.fingerprint], generalised to
   arbitrary degree: channel depths, per-port mailbox depths,
   termination flag, output, inspect counters. *)
let fingerprint t =
  let buf = Buffer.create 128 in
  let n = size t in
  for link = 0 to Gtopology.num_links t.topo - 1 do
    Buffer.add_string buf (string_of_int (channel_length t ~link));
    Buffer.add_char buf ','
  done;
  Buffer.add_char buf '|';
  for v = 0 to n - 1 do
    for p = 0 to Gtopology.degree t.topo v - 1 do
      if p > 0 then Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (mailbox_length t ~node:v ~port:p))
    done;
    Buffer.add_char buf ';';
    Buffer.add_string buf (if terminated t v then "T" else "t");
    Buffer.add_string buf (Format.asprintf "%a" Output.pp (output t v));
    List.iter
      (fun (k, x) ->
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf (string_of_int x);
        Buffer.add_char buf ' ')
      (inspect t v);
    Buffer.add_char buf '|'
  done;
  Buffer.contents buf
