open Colring_engine
module Rng = Colring_stats.Rng

type 'm api = {
  node : int;
  degree : int;
  recv : int -> 'm option;
  pending : int -> int;
  send : int -> 'm -> unit;
  set_output : Output.t -> unit;
  terminate : unit -> unit;
  rng : Rng.t;
}

type 'm program = {
  start : 'm api -> unit;
  wake : 'm api -> unit;
  inspect : unit -> (string * int) list;
}

type 'm envelope = { payload : 'm; seq : int; batch : int }

type 'm t = {
  topo : Gtopology.t;
  programs : 'm program array;
  mutable apis : 'm api array;
  channels : 'm envelope Queue.t array; (* by link id *)
  mailboxes : 'm Queue.t array; (* by link id of the RECEIVING endpoint *)
  outputs : Output.t array;
  term : bool array;
  mutable sends : int;
  mutable deliveries : int;
  mutable post_term : int;
  mutable next_seq : int;
  mutable next_batch : int;
  mutable in_flight : int;
  mutable backlog : int;
  nonempty_buf : int array;
  mutable view : Scheduler.view;
}

let make_api t v rng =
  let mailbox p = t.mailboxes.(Gtopology.link_id t.topo ~node:v ~port:p) in
  let recv p =
    match Queue.take_opt (mailbox p) with
    | Some m ->
        t.backlog <- t.backlog - 1;
        Some m
    | None -> None
  in
  let pending p = Queue.length (mailbox p) in
  let send p m =
    if t.term.(v) then failwith "Gnetwork: send after terminate";
    let link = Gtopology.link_id t.topo ~node:v ~port:p in
    Queue.add
      { payload = m; seq = t.next_seq; batch = t.next_batch }
      t.channels.(link);
    t.next_seq <- t.next_seq + 1;
    t.in_flight <- t.in_flight + 1;
    t.sends <- t.sends + 1
  in
  let set_output o = t.outputs.(v) <- o in
  let terminate () = t.term.(v) <- true in
  {
    node = v;
    degree = Gtopology.degree t.topo v;
    recv;
    pending;
    send;
    set_output;
    terminate;
    rng;
  }

let create ?(seed = 0) topo make_program =
  let n = Gtopology.n topo in
  let links = Gtopology.num_links topo in
  let t =
    {
      topo;
      programs = Array.init n make_program;
      apis = [||];
      channels = Array.init links (fun _ -> Queue.create ());
      mailboxes = Array.init links (fun _ -> Queue.create ());
      outputs = Array.make n Output.empty;
      term = Array.make n false;
      sends = 0;
      deliveries = 0;
      post_term = 0;
      next_seq = 0;
      next_batch = 0;
      in_flight = 0;
      backlog = 0;
      nonempty_buf = Array.make links 0;
      view =
        {
          Scheduler.nonempty = [||];
          count = 0;
          head_seq = (fun _ -> 0);
          head_batch = (fun _ -> 0);
          travels_cw = (fun _ -> false);
          dst_node = (fun _ -> 0);
          step = 0;
        };
    }
  in
  t.view <-
    {
      Scheduler.nonempty = t.nonempty_buf;
      count = 0;
      head_seq = (fun link -> (Queue.peek t.channels.(link)).seq);
      head_batch = (fun link -> (Queue.peek t.channels.(link)).batch);
      travels_cw = (fun _ -> false);
      dst_node = (fun link -> fst (Gtopology.link_dst t.topo link));
      step = 0;
    };
  let root_rng = Rng.create ~seed in
  t.apis <- Array.init n (fun v -> make_api t v (Rng.split_at root_rng v));
  for v = 0 to n - 1 do
    t.next_batch <- t.next_batch + 1;
    t.programs.(v).start t.apis.(v)
  done;
  t

(* The graph simulator is not a hot path: it refreshes the reusable
   view by rescanning channels rather than maintaining the non-empty
   set incrementally. *)
let view t =
  let k = ref 0 in
  Array.iteri
    (fun link q ->
      if not (Queue.is_empty q) then begin
        t.nonempty_buf.(!k) <- link;
        incr k
      end)
    t.channels;
  let v = t.view in
  v.Scheduler.count <- !k;
  v.Scheduler.step <- t.deliveries;
  v

let step t (sched : Scheduler.t) =
  if t.in_flight = 0 then false
  else begin
    let link = sched.pick (view t) in
    let env = Queue.take t.channels.(link) in
    t.in_flight <- t.in_flight - 1;
    let dst, dst_port = Gtopology.link_dst t.topo link in
    if t.term.(dst) then t.post_term <- t.post_term + 1
    else begin
      t.deliveries <- t.deliveries + 1;
      Queue.add env.payload
        t.mailboxes.(Gtopology.link_id t.topo ~node:dst ~port:dst_port);
      t.backlog <- t.backlog + 1;
      t.next_batch <- t.next_batch + 1;
      t.programs.(dst).wake t.apis.(dst)
    end;
    true
  end

type run_result = {
  sends : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
}

let is_quiescent t = t.in_flight = 0 && t.backlog = 0

let run ?(max_deliveries = 50_000_000) (t : _ t) sched =
  let exhausted = ref false in
  let continue = ref true in
  while !continue do
    if t.deliveries >= max_deliveries then begin
      exhausted := true;
      continue := false
    end
    else if not (step t sched) then continue := false
  done;
  {
    sends = t.sends;
    deliveries = t.deliveries;
    quiescent = is_quiescent t;
    all_terminated = Array.for_all Fun.id t.term;
    exhausted = !exhausted;
  }

let topology t = t.topo
let output t v = t.outputs.(v)
let outputs t = Array.copy t.outputs
let inspect t v = t.programs.(v).inspect ()

let inspect_counter t v name =
  match List.assoc_opt name (inspect t v) with
  | Some x -> x
  | None -> raise Not_found

let sends (t : _ t) = t.sends
let post_termination_deliveries (t : _ t) = t.post_term
