open Colring_engine
module Rng = Colring_stats.Rng

type 'm api = {
  node : int;
  degree : int;
  recv : int -> 'm option;
  pending : int -> int;
  send : int -> 'm -> unit;
  set_output : Output.t -> unit;
  terminate : unit -> unit;
  rng : Rng.t;
}

type 'm program = {
  start : 'm api -> unit;
  wake : 'm api -> unit;
  inspect : unit -> (string * int) list;
  snap : Engine_intf.snapshot option;
}

(* Per-step journal scratch for [force_step_undo] — the ring engine's
   scheme: the wake's consumed pulses (port + payload) and sent links,
   in order, reused across steps. *)
type 'm ulog = {
  mutable cports : int array;
  mutable cpayloads : 'm array;
  mutable clen : int;
  mutable slinks : int array;
  mutable slen : int;
}

let ulog_create () =
  { cports = [||]; cpayloads = [||]; clen = 0; slinks = [||]; slen = 0 }

let grow_ints a len =
  if Int.equal len (Array.length a) then
    Array.append a (Array.make (max 8 len) 0)
  else a

let ulog_send g link =
  g.slinks <- grow_ints g.slinks g.slen;
  g.slinks.(g.slen) <- link;
  g.slen <- g.slen + 1

let ulog_consume g port m =
  g.cports <- grow_ints g.cports g.clen;
  if Int.equal g.clen (Array.length g.cpayloads) then
    g.cpayloads <- Array.append g.cpayloads (Array.make (max 8 g.clen) m);
  g.cports.(g.clen) <- port;
  g.cpayloads.(g.clen) <- m;
  g.clen <- g.clen + 1

type 'm t = {
  topo : Gtopology.t;
  programs : 'm program array;
  mutable apis : 'm api array;
  (* Struct-of-arrays queues shared with the ring engine: [Envq] keeps
     the seq/batch stamps of in-flight messages in flat int arrays
     (the depth stamp, a ring-only causal clock, is stored as 0), and
     [Ring] mailboxes support the head/tail surgery the incremental
     undo needs ([push_front]/[pop_back]). *)
  channels : 'm Envq.t array; (* by link id *)
  mailboxes : 'm Ring.t array; (* by link id of the RECEIVING endpoint *)
  outputs : Output.t array;
  term : bool array;
  mutable term_order_rev : int list;
  metrics : Metrics.t;
  (* Same sink discipline as the ring engine: the engine's own
     [Sink.counters] teed with the caller's sink, so counting and user
     telemetry are one emission path and E14/E18 graph runs journal
     through the same [colring journal] validator as ring runs. *)
  sink : Sink.t;
  observed : bool;
  mutable next_seq : int;
  mutable next_batch : int;
  mutable in_flight : int;
  mutable backlog : int;
  (* Non-empty-link set maintained incrementally (the ring engine's
     scheme): the first [nonempty_count] entries of [nonempty] are the
     links with messages in flight, [link_pos] the inverse permutation
     (-1 when absent).  [nonempty] doubles as the view's buffer. *)
  nonempty : int array;
  link_pos : int array;
  mutable nonempty_count : int;
  mutable view : Scheduler.view;
  (* Incremental-undo support (see the ring engine): [ulog] collects
     the current step's wake effects while [logging] is set; [undo_ok]
     is fixed at creation. *)
  ulog : 'm ulog;
  mutable logging : bool;
  undo_ok : bool;
}

let mark_nonempty t link =
  if t.link_pos.(link) < 0 then begin
    t.nonempty.(t.nonempty_count) <- link;
    t.link_pos.(link) <- t.nonempty_count;
    t.nonempty_count <- t.nonempty_count + 1
  end

let unmark_if_empty t link =
  if Envq.is_empty t.channels.(link) then begin
    let pos = t.link_pos.(link) in
    let last = t.nonempty_count - 1 in
    let moved = t.nonempty.(last) in
    t.nonempty.(pos) <- moved;
    t.link_pos.(moved) <- pos;
    t.link_pos.(link) <- -1;
    t.nonempty_count <- last
  end

let make_api t v rng =
  let mailbox p = t.mailboxes.(Gtopology.link_id t.topo ~node:v ~port:p) in
  let recv p =
    let mb = mailbox p in
    if Ring.is_empty mb then None
    else begin
      let m = Ring.pop mb in
      t.backlog <- t.backlog - 1;
      if t.logging then ulog_consume t.ulog p m;
      t.sink.Sink.on_consume ~node:v ~port:p;
      Some m
    end
  in
  let pending p = Ring.length (mailbox p) in
  let send p m =
    if t.term.(v) then failwith "Gnetwork: send after terminate";
    let link = Gtopology.link_id t.topo ~node:v ~port:p in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Envq.push t.channels.(link) m ~seq ~batch:t.next_batch ~depth:0;
    mark_nonempty t link;
    t.in_flight <- t.in_flight + 1;
    if t.logging then ulog_send t.ulog link;
    (* No global direction exists on a general graph, so every send is
       reported [cw:false]; [Metrics.sends_cw] stays 0. *)
    t.sink.Sink.on_send ~node:v ~port:p ~seq ~link ~cw:false
  in
  let set_output o =
    if not (Output.equal t.outputs.(v) o) then begin
      t.outputs.(v) <- o;
      t.sink.Sink.on_decide ~node:v ~output:o
    end
  in
  let terminate () =
    if not t.term.(v) then begin
      t.term.(v) <- true;
      t.term_order_rev <- v :: t.term_order_rev;
      t.sink.Sink.on_terminate ~node:v
    end
  in
  {
    node = v;
    degree = Gtopology.degree t.topo v;
    recv;
    pending;
    send;
    set_output;
    terminate;
    rng;
  }

let max_degree topo =
  let d = ref 1 in
  for v = 0 to Gtopology.n topo - 1 do
    if Gtopology.degree topo v > !d then d := Gtopology.degree topo v
  done;
  !d

let create ?(sink = Sink.null) ?(seed = 0) topo make_program =
  let n = Gtopology.n topo in
  let links = Gtopology.num_links topo in
  let metrics =
    Metrics.create ~ports_per_node:(max_degree topo) ~n_nodes:n ~n_links:links
      ()
  in
  let user_sink = sink in
  let programs = Array.init n make_program in
  let undo_ok =
    (not user_sink.Sink.enabled)
    && Array.for_all (fun p -> Option.is_some p.snap) programs
  in
  let t =
    {
      topo;
      programs;
      apis = [||];
      channels = Array.init links (fun _ -> Envq.create ());
      mailboxes = Array.init links (fun _ -> Ring.create ());
      outputs = Array.make n Output.empty;
      term = Array.make n false;
      term_order_rev = [];
      metrics;
      sink = Sink.tee (Sink.counters metrics) user_sink;
      observed = user_sink.Sink.enabled;
      next_seq = 0;
      next_batch = 0;
      in_flight = 0;
      backlog = 0;
      nonempty = Array.make links 0;
      link_pos = Array.make links (-1);
      nonempty_count = 0;
      ulog = ulog_create ();
      logging = false;
      undo_ok;
      view =
        {
          Scheduler.nonempty = [||];
          count = 0;
          head_seq = (fun _ -> 0);
          head_batch = (fun _ -> 0);
          travels_cw = (fun _ -> None);
          dst_node = (fun _ -> 0);
          step = 0;
        };
    }
  in
  t.view <-
    {
      Scheduler.nonempty = t.nonempty;
      count = 0;
      head_seq = (fun link -> Envq.head_seq t.channels.(link));
      head_batch = (fun link -> Envq.head_batch t.channels.(link));
      (* General graphs have no global direction; direction-biased
         schedulers degrade gracefully on [None]. *)
      travels_cw = (fun _ -> None);
      dst_node = (fun link -> fst (Gtopology.link_dst t.topo link));
      step = 0;
    };
  let root_rng = Rng.create ~seed in
  t.apis <- Array.init n (fun v -> make_api t v (Rng.split_at root_rng v));
  for v = 0 to n - 1 do
    t.next_batch <- t.next_batch + 1;
    t.sink.Sink.on_wake ~node:v;
    t.programs.(v).start t.apis.(v)
  done;
  t

let view t =
  let v = t.view in
  v.Scheduler.count <- t.nonempty_count;
  v.Scheduler.step <- Metrics.deliveries t.metrics;
  v

let deliver_from t link =
  let q = t.channels.(link) in
  let seq = Envq.head_seq q in
  let payload = Envq.pop q in
  unmark_if_empty t link;
  t.in_flight <- t.in_flight - 1;
  let dst, dst_port = Gtopology.link_dst t.topo link in
  if t.term.(dst) then t.sink.Sink.on_drop ~node:dst ~port:dst_port ~seq
  else begin
    t.sink.Sink.on_deliver ~node:dst ~port:dst_port ~seq;
    Ring.push t.mailboxes.(Gtopology.link_id t.topo ~node:dst ~port:dst_port)
      payload;
    t.backlog <- t.backlog + 1;
    t.next_batch <- t.next_batch + 1;
    t.sink.Sink.on_wake ~node:dst;
    t.programs.(dst).wake t.apis.(dst)
  end

let step t (sched : Scheduler.t) =
  if t.in_flight = 0 then false
  else begin
    deliver_from t (sched.pick (view t));
    true
  end

let force_step t ~link =
  if Envq.is_empty t.channels.(link) then
    invalid_arg "Gnetwork.force_step: empty link";
  deliver_from t link

(* ------------------------------------------------------------------ *)
(* Incremental undo — the ring engine's scheme without ring-only
   clocks; see Network.force_step_undo for the full commentary. *)

type 'm undo = {
  u_link : int;
  u_payload : 'm;
  u_seq : int;
  u_batch : int;
  u_dst : int;
  u_dst_port : int;
  u_dropped : bool;
  u_prev_output : Output.t;
  u_became_term : bool;
  u_prev_next_seq : int;
  u_prev_next_batch : int;
  u_snap : int array;
  u_consumed_ports : int array;
  u_consumed_payloads : 'm array;
  u_sent_links : int array;
}

let undo_capable t = t.undo_ok

let force_step_undo t ~link =
  if Envq.is_empty t.channels.(link) then
    invalid_arg "Gnetwork.force_step_undo: empty link";
  if not t.undo_ok then
    invalid_arg "Gnetwork.force_step_undo: network is not undo-capable";
  let q = t.channels.(link) in
  let u_seq = Envq.head_seq q in
  let u_batch = Envq.head_batch q in
  let u_payload = Envq.peek q in
  let dst, dst_port = Gtopology.link_dst t.topo link in
  let dropped = t.term.(dst) in
  let u_snap =
    if dropped then [||]
    else
      match t.programs.(dst).snap with
      | Some s -> s.Engine_intf.save ()
      | None -> assert false (* undo_ok *)
  in
  let u_prev_output = t.outputs.(dst) in
  let u_prev_next_seq = t.next_seq in
  let u_prev_next_batch = t.next_batch in
  let g = t.ulog in
  g.clen <- 0;
  g.slen <- 0;
  t.logging <- true;
  deliver_from t link;
  t.logging <- false;
  {
    u_link = link;
    u_payload;
    u_seq;
    u_batch;
    u_dst = dst;
    u_dst_port = dst_port;
    u_dropped = dropped;
    u_prev_output;
    u_became_term = (not dropped) && t.term.(dst);
    u_prev_next_seq;
    u_prev_next_batch;
    u_snap;
    u_consumed_ports = Array.sub g.cports 0 g.clen;
    u_consumed_payloads = Array.sub g.cpayloads 0 g.clen;
    u_sent_links = Array.sub g.slinks 0 g.slen;
  }

let undo_step t u =
  let dst = u.u_dst in
  if u.u_dropped then Metrics.undo_post_termination_delivery t.metrics
  else begin
    for i = Array.length u.u_sent_links - 1 downto 0 do
      let l = u.u_sent_links.(i) in
      ignore (Envq.pop_back t.channels.(l));
      unmark_if_empty t l;
      t.in_flight <- t.in_flight - 1;
      Metrics.undo_send t.metrics ~link:l ~node:dst ~cw:false
    done;
    for i = Array.length u.u_consumed_ports - 1 downto 0 do
      let p = u.u_consumed_ports.(i) in
      Ring.push_front
        t.mailboxes.(Gtopology.link_id t.topo ~node:dst ~port:p)
        u.u_consumed_payloads.(i);
      t.backlog <- t.backlog + 1;
      Metrics.undo_consume t.metrics ~node:dst ~port_index:p
    done;
    ignore
      (Ring.pop_back
         t.mailboxes.(Gtopology.link_id t.topo ~node:dst ~port:u.u_dst_port));
    t.backlog <- t.backlog - 1;
    Metrics.undo_deliver t.metrics ~node:dst ~port_index:u.u_dst_port;
    Metrics.undo_wake t.metrics;
    (match t.programs.(dst).snap with
    | Some s -> s.Engine_intf.load u.u_snap
    | None -> assert false);
    t.outputs.(dst) <- u.u_prev_output;
    if u.u_became_term then begin
      t.term.(dst) <- false;
      t.term_order_rev <-
        (match t.term_order_rev with _ :: rest -> rest | [] -> assert false)
    end;
    t.next_seq <- u.u_prev_next_seq;
    t.next_batch <- u.u_prev_next_batch
  end;
  Envq.push_front t.channels.(u.u_link) u.u_payload ~seq:u.u_seq
    ~batch:u.u_batch ~depth:0;
  mark_nonempty t u.u_link;
  t.in_flight <- t.in_flight + 1

let enabled_count t = t.nonempty_count

let rec enabled_scan t link i best =
  if i >= t.nonempty_count then best
  else
    let l = t.nonempty.(i) in
    if l > link && (best < 0 || l < best) then enabled_scan t link (i + 1) l
    else enabled_scan t link (i + 1) best

let enabled_link t ~after = enabled_scan t after 0 (-1)
let channel_length t ~link = Envq.length t.channels.(link)

let mailbox_length t ~node ~port =
  Ring.length t.mailboxes.(Gtopology.link_id t.topo ~node ~port)

let channel_payloads t ~link = Envq.to_payload_array t.channels.(link)

let mailbox_payloads t ~node ~port =
  Ring.to_array t.mailboxes.(Gtopology.link_id t.topo ~node ~port)

type run_result = Engine_intf.run_result = {
  sends : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  termination_order : int list;
}

let all_terminated t = Array.for_all Fun.id t.term
let in_flight t = t.in_flight
let mailbox_backlog t = t.backlog
let is_quiescent t = t.in_flight = 0 && t.backlog = 0

let run ?(max_deliveries = 50_000_000) ?(snapshot_every = 0) ?probe t sched =
  let exhausted = ref false in
  let continue = ref true in
  while !continue do
    if Metrics.deliveries t.metrics >= max_deliveries then begin
      exhausted := true;
      continue := false
    end
    else if not (step t sched) then continue := false
    else begin
      (if snapshot_every > 0 && t.observed then
         let d = Metrics.deliveries t.metrics in
         if d mod snapshot_every = 0 then
           t.sink.Sink.on_snapshot ~step:d (Metrics.to_assoc t.metrics));
      match probe with
      | None -> ()
      | Some f -> f ~step:(Metrics.deliveries t.metrics)
    end
  done;
  {
    sends = Metrics.sends t.metrics;
    deliveries = Metrics.deliveries t.metrics;
    quiescent = is_quiescent t;
    all_terminated = all_terminated t;
    exhausted = !exhausted;
    termination_order = List.rev t.term_order_rev;
  }

let topology t = t.topo
let size t = Gtopology.n t.topo
let output t v = t.outputs.(v)
let outputs t = Array.copy t.outputs
let terminated t v = t.term.(v)
let termination_order t = List.rev t.term_order_rev
let inspect t v = t.programs.(v).inspect ()

let inspect_counter t v name =
  match List.assoc_opt name (inspect t v) with
  | Some x -> x
  | None -> raise Not_found

let metrics t = t.metrics
let sends (t : _ t) = Metrics.sends t.metrics

let post_termination_deliveries (t : _ t) =
  Metrics.post_termination_deliveries t.metrics

let num_links topo = Gtopology.num_links topo
let link_dst_node topo link = fst (Gtopology.link_dst topo link)

(* Same canonical shape as [Network.fingerprint], generalised to
   arbitrary degree: channel depths, per-port mailbox depths,
   termination flag, output, inspect counters. *)
let fingerprint t =
  let buf = Buffer.create 128 in
  let n = size t in
  for link = 0 to Gtopology.num_links t.topo - 1 do
    Output.add_int buf (channel_length t ~link);
    Buffer.add_char buf ','
  done;
  Buffer.add_char buf '|';
  for v = 0 to n - 1 do
    for p = 0 to Gtopology.degree t.topo v - 1 do
      if p > 0 then Buffer.add_char buf ':';
      Output.add_int buf (mailbox_length t ~node:v ~port:p)
    done;
    Buffer.add_char buf ';';
    Buffer.add_string buf (if terminated t v then "T" else "t");
    Output.add_compact buf (output t v);
    (* Program state via [inspect], as in [Network.fingerprint]:
       comparable across implementation variants that share counter
       names but differ in internal (snapshot) layout. *)
    List.iter
      (fun (k, x) ->
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Output.add_int buf x;
        Buffer.add_char buf ' ')
      (inspect t v);
    Buffer.add_char buf '|'
  done;
  Buffer.contents buf
