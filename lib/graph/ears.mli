(** Ear decomposition and the closed spanning walk the general-graph
    election runs on.

    Schmidt's chain decomposition (DFS + back edges) splits a
    2-edge-connected multigraph into a base cycle through the DFS root
    plus a sequence of ears — open (two distinct anchors) or closed
    (both anchors the same cut vertex).  Bridges belong to no chain,
    which is exactly the characterisation of 2-edge-connectivity the
    paper's context ([8], arXiv:2507.08348) builds on.

    From the decomposition this module derives a {b closed spanning
    walk}: the base cycle traversed once, with each ear spliced in as
    a detour at its anchor — a closed ear walked around in full, an
    open ear walked out to its last inner vertex and back over the
    reverse links (the far anchor is already covered, so its edge is
    skipped; chords between covered vertices contribute nothing).
    Every directed link appears at most once in the walk, so the walk
    is a virtual unidirectional ring over the graph: content-oblivious
    ring algorithms run on it unchanged, which is how {!Gelection}
    lifts the paper's election beyond rings. *)

type ear = {
  anchor : int;  (** Start vertex — always already covered. *)
  close : int;  (** End vertex; equals [anchor] for a closed ear. *)
  inner : int list;  (** Newly covered vertices, in path order. *)
  links : int list;
      (** The walk detour: directed links from [anchor] back to
          [anchor].  Empty for a chord (no inner vertex). *)
}

type t

val decompose : ?require_2ec:bool -> Gtopology.t -> t
(** Decompose rooted at node 0.  With [require_2ec] (the default) a
    graph that is not 2-edge-connected raises [Invalid_argument].
    With [~require_2ec:false] the decomposition proceeds anyway and
    covers exactly the root's 2-edge-connected component: chains never
    cross a bridge, so everything beyond one stays uncovered — the
    ablation whose election failure the model checker exhibits.
    Raises [Invalid_argument] when no cycle passes through node 0. *)

val topo : t -> Gtopology.t

val base_cycle : t -> int list
(** Directed links of the root cycle, in traversal order. *)

val ears : t -> ear list
(** In chain order (the order their detours were spliced). *)

val covered : t -> int -> bool
(** Whether a node is on the walk.  All nodes iff the graph is
    2-edge-connected. *)

val num_covered : t -> int
val all_covered : t -> bool

val walk : t -> int array
(** The closed spanning walk as directed link ids: consecutive links
    share a vertex, the last link returns to the first's source, every
    covered vertex is the source of at least one link, and no directed
    link repeats. *)

val walk_length : t -> int
val pp : Format.formatter -> t -> unit
