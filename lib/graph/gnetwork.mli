(** Discrete-event simulator for general multi-port topologies — the
    {!Colring_engine.Network} model lifted from rings to arbitrary
    graphs.  Shares the scheduler abstraction (direction bias
    degenerates: on a general graph there is no global direction, so
    [travels_cw] reports [None] for every link and direction-biased
    schedulers fall back to their tie-breakers).

    Since the unified-API refactor this engine has full telemetry
    parity with the ring engine: a [?sink] observes every event and
    lifecycle record through the same {!Colring_engine.Sink.t} surface
    (so general-graph journals pass the same [colring journal]
    validator), {!metrics} aggregates the same counter schema, and the
    module satisfies {!Colring_engine.Engine_intf.NETWORK} (sealed by
    {!Unified.Graph_network}), which is what lets the model checker
    functor explore graph elections.  Still deliberately leaner than
    the ring engine where capabilities are ring-specific: no traces,
    diagrams, blocking layer, injection or causal clocks. *)

type 'm t

type 'm api = {
  node : int;
  degree : int;
  recv : int -> 'm option;  (** Consume from a port's mailbox. *)
  pending : int -> int;
  send : int -> 'm -> unit;
  set_output : Colring_engine.Output.t -> unit;
  terminate : unit -> unit;
  rng : Colring_stats.Rng.t;
}

type 'm program = {
  start : 'm api -> unit;
  wake : 'm api -> unit;
  inspect : unit -> (string * int) list;
  snap : Colring_engine.Engine_intf.snapshot option;
      (** Program-state codec for the model checker's incremental undo
          (see {!Colring_engine.Network.program}).  [None] opts out. *)
}

val create :
  ?sink:Colring_engine.Sink.t ->
  ?seed:int ->
  Gtopology.t ->
  (int -> 'm program) ->
  'm t
(** [sink] observes every event of the run (default
    {!Colring_engine.Sink.null}); the engine tees its own counters over
    it exactly as the ring engine does, so {!metrics} is a by-product
    of the same emission path.  Ports reach the sink as this engine's
    native integer port numbers; [cw] is always [false] (no global
    direction exists).  {!Colring_engine.Sink.memory} is ring-only —
    it raises on port indices above 1 — so use jsonl or custom sinks
    here. *)

type run_result = Colring_engine.Engine_intf.run_result = {
  sends : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  termination_order : int list;
}
(** Re-export of the shared outcome record, so graph and ring results
    interchange. *)

val run :
  ?max_deliveries:int ->
  ?snapshot_every:int ->
  ?probe:(step:int -> unit) ->
  'm t ->
  Colring_engine.Scheduler.t ->
  run_result
(** Deliver until no message is in flight or [max_deliveries] is hit;
    the budget semantics are those of {!Colring_engine.Network.run}
    (same default of [50_000_000]): an exceeded budget is reported as
    [exhausted = true], never raised and never silently dropped.  The
    one intentional exception in the codebase is
    [Colring_fastsim.Driver.run], whose closed-form resolution cannot
    stop mid-pulse and therefore treats a too-small budget as a
    contract violation ([Invalid_argument]).  [snapshot_every] and
    [probe] behave as in the ring engine: periodic counter snapshots
    to a live sink, and a per-delivery invariant hook. *)

val step : 'm t -> Colring_engine.Scheduler.t -> bool
(** Deliver exactly one message; [false] when nothing was in flight. *)

val force_step : 'm t -> link:int -> unit
(** Deliver the oldest message of one specific link (bypassing any
    scheduler); raises [Invalid_argument] if the link is empty.  The
    model checker's replay primitive. *)

val enabled_count : 'm t -> int
(** Number of links with messages in flight.  O(1). *)

val enabled_link : 'm t -> after:int -> int
(** Smallest non-empty link strictly greater than [after], or [-1] —
    the allocation-free enabled-set enumerator, as in the ring
    engine. *)

val channel_length : 'm t -> link:int -> int
val mailbox_length : 'm t -> node:int -> port:int -> int

val channel_payloads : 'm t -> link:int -> 'm array
(** In-flight payloads of one directed link, oldest first.  Allocates;
    for invariant probes, not the hot path. *)

val mailbox_payloads : 'm t -> node:int -> port:int -> 'm array
(** Delivered-but-unconsumed payloads of one mailbox, oldest first. *)

(** {2 Incremental undo}

    Same contract as {!Colring_engine.Network}: [force_step_undo] is
    {!force_step} plus an undo record; [undo_step] restores the
    pre-delivery state exactly (LIFO order required).  Only legal on an
    {!undo_capable} network — every program carries a [snap] codec and
    no user sink observes the run. *)

type 'm undo

val undo_capable : 'm t -> bool

val force_step_undo : 'm t -> link:int -> 'm undo
(** Raises [Invalid_argument] when the link is empty or the network is
    not undo-capable. *)

val undo_step : 'm t -> 'm undo -> unit

val fingerprint : 'm t -> string
(** Canonical observable-state string, same shape as
    {!Colring_engine.Network.fingerprint} generalised to arbitrary
    degree — the model checker's dedup key. *)

val topology : 'm t -> Gtopology.t
val size : 'm t -> int
val num_links : Gtopology.t -> int
val link_dst_node : Gtopology.t -> int -> int
val output : 'm t -> int -> Colring_engine.Output.t
val outputs : 'm t -> Colring_engine.Output.t array
val terminated : 'm t -> int -> bool
val all_terminated : 'm t -> bool
val termination_order : 'm t -> int list
val inspect : 'm t -> int -> (string * int) list
val inspect_counter : 'm t -> int -> string -> int
val metrics : 'm t -> Colring_engine.Metrics.t
val sends : 'm t -> int
val in_flight : 'm t -> int
val mailbox_backlog : 'm t -> int
val is_quiescent : 'm t -> bool
val post_termination_deliveries : 'm t -> int
