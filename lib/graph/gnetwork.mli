(** Discrete-event simulator for general multi-port topologies — the
    {!Colring_engine.Network} model lifted from rings to arbitrary
    graphs.  Shares the scheduler abstraction (direction bias
    degenerates: on a general graph there is no global direction, so
    [travels_cw] is reported as [false] for every link).

    Deliberately leaner than the ring engine (no traces, diagrams or
    blocking layer): it exists to cross-validate the ring algorithms
    on an independent implementation and to host the exploratory
    general-graph experiments of bench E14. *)

type 'm t

type 'm api = {
  node : int;
  degree : int;
  recv : int -> 'm option;  (** Consume from a port's mailbox. *)
  pending : int -> int;
  send : int -> 'm -> unit;
  set_output : Colring_engine.Output.t -> unit;
  terminate : unit -> unit;
  rng : Colring_stats.Rng.t;
}

type 'm program = {
  start : 'm api -> unit;
  wake : 'm api -> unit;
  inspect : unit -> (string * int) list;
}

val create : ?seed:int -> Gtopology.t -> (int -> 'm program) -> 'm t

type run_result = {
  sends : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
}

val run :
  ?max_deliveries:int -> 'm t -> Colring_engine.Scheduler.t -> run_result
(** Deliver until no message is in flight or [max_deliveries] is hit;
    the budget semantics are those of {!Colring_engine.Network.run}
    (same default of [50_000_000]): an exceeded budget is reported as
    [exhausted = true], never raised and never silently dropped.  The
    one intentional exception in the codebase is
    [Colring_fastsim.Driver.run], whose closed-form resolution cannot
    stop mid-pulse and therefore treats a too-small budget as a
    contract violation ([Invalid_argument]). *)

val topology : 'm t -> Gtopology.t
val output : 'm t -> int -> Colring_engine.Output.t
val outputs : 'm t -> Colring_engine.Output.t array
val inspect : 'm t -> int -> (string * int) list
val inspect_counter : 'm t -> int -> string -> int
val sends : 'm t -> int
val is_quiescent : 'm t -> bool
val post_termination_deliveries : 'm t -> int
