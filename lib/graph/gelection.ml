open Colring_engine

(* The walk election: run the unidirectional counting election
   (Algorithm 1's automaton) over the closed spanning walk of
   {!Ears}.  The walk is a virtual unidirectional ring whose stations
   are walk positions ("occurrences"); each node designates its first
   occurrence as its active station — that one runs the counting
   automaton with the node's real id — and relays pulses verbatim at
   every other occurrence.  Every occurrence ends up receiving exactly
   [id_max] pulses and sending [id_max] (counting the active station's
   initial pulse), so the total is [walk_len * id_max] and the unique
   maximum-id node stabilizes as leader. *)

type plan = {
  decomp : Ears.t;
  out_port : int array array; (* node -> in-port -> out-port, -1 off-walk *)
  active_port : int array; (* in-port of the designated occurrence; -1 *)
  start_port : int array; (* out-port of the designated occurrence; -1 *)
}

let plan ?require_2ec topo =
  let decomp = Ears.decompose ?require_2ec topo in
  let g = topo in
  let w = Ears.walk decomp in
  let l = Array.length w in
  let n = Gtopology.n g in
  let out_port =
    Array.init n (fun v -> Array.make (Gtopology.degree g v) (-1))
  in
  let active_port = Array.make n (-1) in
  let start_port = Array.make n (-1) in
  let first = Array.make n (-1) in
  Array.iteri
    (fun j link ->
      let v, p = Gtopology.link_src g link in
      if first.(v) < 0 then begin
        first.(v) <- j;
        start_port.(v) <- p
      end)
    w;
  Array.iteri
    (fun j link ->
      (* A delivery over walk position j feeds occurrence j+1. *)
      let dst, dport = Gtopology.link_dst g link in
      let onext = (j + 1) mod l in
      let _, oport = Gtopology.link_src g w.(onext) in
      out_port.(dst).(dport) <- oport;
      if onext = first.(dst) then active_port.(dst) <- dport)
    w;
  { decomp; out_port; active_port; start_port }

let decomposition plan = plan.decomp
let walk_length plan = Ears.walk_length plan.decomp

let covered_id_max plan ~ids =
  let m = ref 0 in
  Array.iteri (fun v id -> if Ears.covered plan.decomp v && id > !m then m := id) ids;
  !m

let expected_sends plan ~ids = walk_length plan * covered_id_max plan ~ids

let covered_argmax plan ~ids =
  let best = ref (-1) in
  Array.iteri
    (fun v id ->
      if Ears.covered plan.decomp v && (!best < 0 || id > ids.(!best)) then
        best := v)
    ids;
  !best

let validate plan ~ids =
  let n = Gtopology.n (Ears.topo plan.decomp) in
  if Array.length ids <> n then invalid_arg "Gelection: |ids| <> n";
  Array.iter
    (fun id -> if id < 1 then invalid_arg "Gelection: ids must be positive")
    ids;
  let m = covered_id_max plan ~ids in
  let at_max = ref 0 in
  Array.iteri
    (fun v id -> if Ears.covered plan.decomp v && id = m then incr at_max)
    ids;
  if !at_max <> 1 then
    invalid_arg "Gelection: covered nodes need a unique maximum id";
  m

(* One full drain of walk port [p]: the per-delivery hot path
   (registered in hot.sexp), so it recurses instead of looping over a
   heap-allocated [continue] ref — the body must not allocate. *)
let rec walk_step plan ~v ~id rho (api : unit Gnetwork.api) p =
  match api.Gnetwork.recv p with
  | None -> ()
  | Some () ->
      let out = plan.out_port.(v).(p) in
      (if out < 0 then () (* off-walk pulse: impossible by design *)
       else if p = plan.active_port.(v) then begin
         incr rho;
         if !rho = id then
           (* Absorb: the pulse that completes this node's count is
              not relayed; the node (transiently) claims leadership
              and keeps it iff no later pulse comes. *)
           api.Gnetwork.set_output Output.leader
         else begin
           api.Gnetwork.set_output Output.non_leader;
           api.Gnetwork.send out ()
         end
       end
       else api.Gnetwork.send out ());
      walk_step plan ~v ~id rho api p

let program_of plan ~ids v =
  let rho = ref 0 in
  let id = ids.(v) in
  let start (api : _ Gnetwork.api) =
    if plan.start_port.(v) >= 0 then api.Gnetwork.send plan.start_port.(v) ()
  in
  let wake (api : _ Gnetwork.api) =
    for p = 0 to api.Gnetwork.degree - 1 do
      walk_step plan ~v ~id rho api p
    done
  in
  let inspect () = [ ("id", id); ("rho", !rho) ] in
  let snap =
    Some
      {
        Engine_intf.save = (fun () -> [| !rho |]);
        load = (fun a -> rho := a.(0));
      }
  in
  { Gnetwork.start; wake; inspect; snap }

let make ?sink ?seed plan ~ids =
  ignore (validate plan ~ids);
  Gnetwork.create ?sink ?seed (Ears.topo plan.decomp) (program_of plan ~ids)

(* ------------------------------------------------------------------ *)
(* Reports *)

type report = {
  algorithm : string;
  n : int;
  covered : int;
  walk_len : int;
  num_ears : int;
  id_max : int;
  sends : int;
  expected_sends : int;
  deliveries : int;
  quiescent : bool;
  exhausted : bool;
  post_term_deliveries : int;
  leader : int option;
  leader_is_max : bool;
  roles_ok : bool;
}

let roles_ok plan outputs =
  let d = plan.decomp in
  let leaders = ref 0 in
  let ok = ref true in
  Array.iteri
    (fun v (o : Output.t) ->
      if Ears.covered d v then begin
        match o.Output.role with
        | Output.Leader -> incr leaders
        | Output.Non_leader -> ()
        | Output.Undecided -> ok := false
      end
      else if not (Output.equal_role o.Output.role Output.Undecided) then
        ok := false)
    outputs;
  !ok && !leaders = 1

let ok r =
  r.covered = r.n && r.sends = r.expected_sends && r.quiescent
  && (not r.exhausted) && r.post_term_deliveries = 0 && r.leader_is_max
  && r.roles_ok

let report_fields r =
  let open Sink in
  [
    ("algorithm", String r.algorithm);
    ("n", Int r.n);
    ("covered", Int r.covered);
    ("walk_len", Int r.walk_len);
    ("num_ears", Int r.num_ears);
    ("id_max", Int r.id_max);
    ("sends", Int r.sends);
    ("expected_sends", Int r.expected_sends);
    ("deliveries", Int r.deliveries);
    ("quiescent", Bool r.quiescent);
    ("exhausted", Bool r.exhausted);
    ("post_term_deliveries", Int r.post_term_deliveries);
    ("leader", match r.leader with Some v -> Int v | None -> String "none");
    ("leader_is_max", Bool r.leader_is_max);
    ("roles_ok", Bool r.roles_ok);
    ("ok", Bool (ok r));
  ]

let unique_leader outputs =
  let leaders = ref [] in
  Array.iteri
    (fun v (o : Output.t) ->
      if Output.equal_role o.Output.role Output.Leader then
        leaders := v :: !leaders)
    outputs;
  match !leaders with [ v ] -> Some v | [] | _ :: _ -> None

let run ?(seed = 0) ?max_deliveries ?(sink = Sink.null) ?(workload = "-")
    ?(snapshot_every = 10_000) plan ~ids ~sched =
  let id_max = validate plan ~ids in
  let g = Ears.topo plan.decomp in
  let n = Gtopology.n g in
  if sink.Sink.enabled then
    sink.Sink.on_run_start
      [
        ("algorithm", Sink.String "walk-election");
        ("n", Sink.Int n);
        ("id_max", Sink.Int id_max);
        ("seed", Sink.Int seed);
        ("workload", Sink.String workload);
        ("scheduler", Sink.String sched.Scheduler.name);
      ];
  let net = Gnetwork.create ~sink ~seed g (program_of plan ~ids) in
  let result = Gnetwork.run ?max_deliveries ~snapshot_every net sched in
  let outputs = Gnetwork.outputs net in
  let leader = unique_leader outputs in
  let report =
    {
      algorithm = "walk-election";
      n;
      covered = Ears.num_covered plan.decomp;
      walk_len = walk_length plan;
      num_ears = List.length (Ears.ears plan.decomp);
      id_max;
      sends = result.Gnetwork.sends;
      expected_sends = expected_sends plan ~ids;
      deliveries = result.Gnetwork.deliveries;
      quiescent = result.Gnetwork.quiescent;
      exhausted = result.Gnetwork.exhausted;
      post_term_deliveries = Gnetwork.post_termination_deliveries net;
      leader;
      leader_is_max =
        (match leader with
        | Some v -> v = covered_argmax plan ~ids
        | None -> false);
      roles_ok = roles_ok plan outputs;
    }
  in
  if sink.Sink.enabled then begin
    sink.Sink.on_snapshot ~step:report.deliveries
      (Metrics.to_assoc (Gnetwork.metrics net));
    sink.Sink.on_run_end (report_fields report);
    sink.Sink.flush ()
  end;
  (report, net)

let run_report ?seed ?max_deliveries ?sink ?workload ?snapshot_every plan ~ids
    ~sched =
  fst (run ?seed ?max_deliveries ?sink ?workload ?snapshot_every plan ~ids ~sched)
