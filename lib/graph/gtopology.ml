module Rng = Colring_stats.Rng

type t = {
  size : int;
  degrees : int array;
  offsets : int array; (* offsets.(v) + p = global directed-link id *)
  dst : (int * int) array; (* by link id: receiving (node, port) *)
  edge_list : (int * int) list;
  edge_of_link : int array; (* link id -> edge index *)
}

let n t = t.size
let degree t v = t.degrees.(v)
let num_links t = Array.length t.dst

let link_id t ~node ~port =
  if port < 0 || port >= t.degrees.(node) then
    invalid_arg "Gtopology.link_id: bad port";
  t.offsets.(node) + port

let link_src t id =
  (* Binary search over offsets. *)
  let rec go lo hi =
    if lo = hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if t.offsets.(mid) <= id then go mid hi else go lo (mid - 1)
  in
  let v = go 0 (t.size - 1) in
  (v, id - t.offsets.(v))

let link_dst t id = t.dst.(id)
let peer t ~node ~port = t.dst.(link_id t ~node ~port)
let edges t = t.edge_list
let edge_of_link t id = t.edge_of_link.(id)

let reverse_link t id =
  let w, q = t.dst.(id) in
  t.offsets.(w) + q

let link_of_edge t ~edge ~src =
  let rec scan p =
    if p >= t.degrees.(src) then
      invalid_arg "Gtopology.link_of_edge: edge not incident to src"
    else if t.edge_of_link.(t.offsets.(src) + p) = edge then t.offsets.(src) + p
    else scan (p + 1)
  in
  scan 0

let of_edges ~n:size edge_list =
  if size < 1 then invalid_arg "Gtopology.of_edges: empty graph";
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg "Gtopology.of_edges: self-loop";
      if a < 0 || b < 0 || a >= size || b >= size then
        invalid_arg "Gtopology.of_edges: endpoint out of range")
    edge_list;
  let degrees = Array.make size 0 in
  List.iter
    (fun (a, b) ->
      degrees.(a) <- degrees.(a) + 1;
      degrees.(b) <- degrees.(b) + 1)
    edge_list;
  let offsets = Array.make size 0 in
  for v = 1 to size - 1 do
    offsets.(v) <- offsets.(v - 1) + degrees.(v - 1)
  done;
  let total = offsets.(size - 1) + degrees.(size - 1) in
  let dst = Array.make total (-1, -1) in
  let edge_of_link = Array.make total (-1) in
  let next_port = Array.make size 0 in
  List.iteri
    (fun e (a, b) ->
      let pa = next_port.(a) in
      next_port.(a) <- pa + 1;
      let pb = next_port.(b) in
      next_port.(b) <- pb + 1;
      dst.(offsets.(a) + pa) <- (b, pb);
      dst.(offsets.(b) + pb) <- (a, pa);
      edge_of_link.(offsets.(a) + pa) <- e;
      edge_of_link.(offsets.(b) + pb) <- e)
    edge_list;
  { size; degrees; offsets; dst; edge_list; edge_of_link }

let ring size =
  if size < 2 then invalid_arg "Gtopology.ring: n must be >= 2";
  of_edges ~n:size (List.init size (fun v -> (v, (v + 1) mod size)))

let theta a b c =
  if a < 0 || b < 0 || c < 0 then invalid_arg "Gtopology.theta: negative path";
  if List.length (List.filter (fun x -> x = 0) [ a; b; c ]) > 1 then
    invalid_arg "Gtopology.theta: at most one empty path (no multi-edge pair)";
  (* Nodes: 0 and 1 are the hubs; inner nodes numbered consecutively. *)
  let next = ref 2 in
  let path len =
    let inner = List.init len (fun i -> !next + i) in
    next := !next + len;
    match inner with
    | [] -> [ (0, 1) ]
    | _ ->
        let chain = 0 :: (inner @ [ 1 ]) in
        let rec pairs = function
          | x :: (y :: _ as rest) -> (x, y) :: pairs rest
          | [ _ ] | [] -> []
        in
        pairs chain
  in
  let e1 = path a in
  let e2 = path b in
  let e3 = path c in
  of_edges ~n:!next (e1 @ e2 @ e3)

let bowtie () =
  (* Two triangles sharing node 0 — the smallest graph whose ear
     decomposition has a closed ear (the second triangle, anchored at
     the cut vertex 0).  2-edge-connected but not 2-vertex-connected. *)
  of_edges ~n:5 [ (0, 1); (1, 2); (2, 0); (0, 3); (3, 4); (4, 0) ]

let complete size =
  if size < 3 then invalid_arg "Gtopology.complete: n must be >= 3";
  let edges = ref [] in
  for a = 0 to size - 1 do
    for b = a + 1 to size - 1 do
      edges := (a, b) :: !edges
    done
  done;
  of_edges ~n:size (List.rev !edges)

let cycle_with_chords rng ~n:size ~chords =
  if size < 4 then invalid_arg "Gtopology.cycle_with_chords: n must be >= 4";
  let cycle = List.init size (fun v -> (v, (v + 1) mod size)) in
  (* Only n(n-3)/2 distinct non-adjacent chords exist; cap the request
     so the rejection sampling always terminates. *)
  let chords = min chords (size * (size - 3) / 2) in
  let seen = Hashtbl.create 16 in
  let adjacent a b = (a + 1) mod size = b || (b + 1) mod size = a in
  let rec pick k acc =
    if k = 0 then acc
    else begin
      let a = Rng.int rng size and b = Rng.int rng size in
      let key = (min a b, max a b) in
      if a <> b && (not (adjacent a b)) && not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        pick (k - 1) (key :: acc)
      end
      else pick k acc
    end
  in
  of_edges ~n:size (cycle @ pick chords [])

let is_connected t =
  let visited = Array.make t.size false in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      for p = 0 to t.degrees.(v) - 1 do
        dfs (fst (peer t ~node:v ~port:p))
      done
    end
  in
  dfs 0;
  Array.for_all Fun.id visited

(* Tarjan bridge finding on the multigraph: an edge is a bridge iff
   low(child) > disc(parent), never re-using the edge instance we
   entered a child through (parallel edges are distinct instances). *)
let bridges t =
  let disc = Array.make t.size (-1) in
  let low = Array.make t.size max_int in
  let out = ref [] in
  let time = ref 0 in
  let rec dfs v via_edge =
    disc.(v) <- !time;
    low.(v) <- !time;
    incr time;
    for p = 0 to t.degrees.(v) - 1 do
      let link = t.offsets.(v) + p in
      let e = t.edge_of_link.(link) in
      if e <> via_edge then begin
        let w = fst (peer t ~node:v ~port:p) in
        if disc.(w) < 0 then begin
          dfs w e;
          if low.(w) < low.(v) then low.(v) <- low.(w);
          if low.(w) > disc.(v) then out := List.nth t.edge_list e :: !out
        end
        else if disc.(w) < low.(v) then low.(v) <- disc.(w)
      end
    done
  in
  for v = 0 to t.size - 1 do
    if disc.(v) < 0 then dfs v (-1)
  done;
  List.rev !out

let is_two_edge_connected t = is_connected t && bridges t = []

let pp ppf t =
  Format.fprintf ppf "@[<v>graph n=%d m=%d%s@," t.size
    (List.length t.edge_list)
    (if is_two_edge_connected t then " (2-edge-connected)" else "");
  List.iter (fun (a, b) -> Format.fprintf ppf "  %d -- %d@," a b) t.edge_list;
  Format.fprintf ppf "@]"
