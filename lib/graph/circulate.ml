open Colring_engine
module Algo3 = Colring_core.Algo3

let algo3_deg2 ~scheme ~id =
  if id < 1 then invalid_arg "Circulate.algo3_deg2: id must be positive";
  let rho = [| 0; 0 |] in
  let sigma = [| 0; 0 |] in
  let virtual_id i =
    match scheme with
    | Algo3.Doubled -> (2 * id) - 1 + i
    | Algo3.Improved -> id + i
  in
  let start (api : _ Gnetwork.api) =
    if api.degree <> 2 then
      invalid_arg "Circulate.algo3_deg2: needs a 2-regular topology";
    for i = 0 to 1 do
      api.send i ();
      sigma.(i) <- sigma.(i) + 1
    done
  in
  let decide (api : _ Gnetwork.api) =
    if max rho.(0) rho.(1) >= virtual_id 1 then begin
      let role =
        if rho.(0) = virtual_id 1 && rho.(1) < virtual_id 1 then Output.Leader
        else Output.Non_leader
      in
      let cw_port = if rho.(0) > rho.(1) then Port.P1 else Port.P0 in
      api.set_output
        (Output.with_cw_port cw_port (Output.with_role role Output.empty))
    end
  in
  let wake (api : _ Gnetwork.api) =
    let progress = ref true in
    while !progress do
      progress := false;
      for i = 0 to 1 do
        match api.recv (1 - i) with
        | Some () ->
            progress := true;
            rho.(1 - i) <- rho.(1 - i) + 1;
            if rho.(1 - i) <> virtual_id i then begin
              api.send i ();
              sigma.(i) <- sigma.(i) + 1
            end
        | None -> ()
      done;
      decide api
    done
  in
  let inspect () =
    [
      ("id", id);
      ("rho0", rho.(0));
      ("rho1", rho.(1));
      ("sigma0", sigma.(0));
      ("sigma1", sigma.(1));
    ]
  in
  let snap =
    Some
      {
        Engine_intf.save =
          (fun () -> [| rho.(0); rho.(1); sigma.(0); sigma.(1) |]);
        load =
          (fun a ->
            rho.(0) <- a.(0);
            rho.(1) <- a.(1);
            sigma.(0) <- a.(2);
            sigma.(1) <- a.(3));
      }
  in
  { Gnetwork.start; wake; inspect; snap }

let rotor ~id =
  if id < 1 then invalid_arg "Circulate.rotor: id must be positive";
  let rho = ref 0 and sigma = ref 0 and absorbed = ref 0 in
  let start (api : _ Gnetwork.api) =
    for p = 0 to api.degree - 1 do
      api.send p ();
      incr sigma
    done
  in
  let wake (api : _ Gnetwork.api) =
    let progress = ref true in
    while !progress do
      progress := false;
      for p = 0 to api.degree - 1 do
        match api.recv p with
        | Some () ->
            progress := true;
            incr rho;
            if !rho mod id = 0 then begin
              incr absorbed;
              api.set_output Output.leader
            end
            else begin
              api.set_output Output.non_leader;
              api.send ((p + 1) mod api.degree) ();
              incr sigma
            end
        | None -> ()
      done
    done
  in
  let inspect () =
    [ ("id", id); ("rho", !rho); ("sigma", !sigma); ("absorbed", !absorbed) ]
  in
  let snap =
    Some
      {
        Engine_intf.save = (fun () -> [| !rho; !sigma; !absorbed |]);
        load =
          (fun a ->
            rho := a.(0);
            sigma := a.(1);
            absorbed := a.(2));
      }
  in
  { Gnetwork.start; wake; inspect; snap }
