(* The graph half of the conformance pair: sealing [Gnetwork] to
   [Engine_intf.NETWORK] in unified.mli proves at compile time that the
   general-graph engine presents the same surface generic drivers (the
   model-checker functor, conformance tests) are written against.
   [Colring_engine.Unify.Ring_network] is the ring half. *)

module Graph_network = struct
  type topology = Gtopology.t

  include Gnetwork
end
