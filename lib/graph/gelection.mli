(** Content-oblivious leader election on 2-edge-connected multigraphs.

    The construction runs Algorithm 1's unidirectional counting
    automaton over the closed spanning walk of {!Ears}: the walk is a
    virtual unidirectional ring whose stations are walk positions
    ("occurrences" of nodes).  Each node designates its first
    occurrence as {e active} — that station counts arriving pulses
    with the node's real id, emits one initial pulse, absorbs the
    pulse that completes its count, and stabilizes to [Leader] iff no
    pulse ever arrives past its id — while every other occurrence
    relays verbatim.  Flow conservation gives every occurrence exactly
    [id_max] receives, so the run quiesces with total sends
    [walk_length * id_max] and the unique maximum-id covered node as
    the unique leader.  Like Algorithm 1 on rings the election is
    stabilizing, not terminating: nodes never call [terminate], and
    quiescence is the stop condition.

    With a plan built under [~require_2ec:false] on a bridged graph,
    the walk covers only the root's 2-edge-connected component;
    everything beyond a bridge stays [Undecided] forever — the
    ablation whose failure the model checker exhibits, matching the
    impossibility direction of the paper's context ([8]). *)

open Colring_engine

type plan
(** A decomposition plus the per-node routing tables the programs
    follow: for every in-port on the walk, the out-port to relay to,
    and which in-port feeds the node's active station. *)

val plan : ?require_2ec:bool -> Gtopology.t -> plan
(** Decompose and route.  [require_2ec] as in {!Ears.decompose}. *)

val decomposition : plan -> Ears.t
val walk_length : plan -> int

val covered_id_max : plan -> ids:int array -> int
(** Maximum id over covered nodes. *)

val expected_sends : plan -> ids:int array -> int
(** [walk_length * covered_id_max] — the closed form every conforming
    run matches exactly. *)

val program_of : plan -> ids:int array -> int -> unit Gnetwork.program
(** The per-node program; [ids] must satisfy {!val-make}'s
    validation.  Exposed separately so the model checker can rebuild
    fresh networks per explored branch. *)

val make :
  ?sink:Sink.t -> ?seed:int -> plan -> ids:int array -> unit Gnetwork.t
(** Validated network construction: ids are positive, [|ids| = n], and
    the covered nodes carry a unique maximum id (raises
    [Invalid_argument] otherwise). *)

type report = {
  algorithm : string;  (** ["walk-election"]. *)
  n : int;
  covered : int;  (** Nodes on the walk ([= n] iff 2-edge-connected). *)
  walk_len : int;
  num_ears : int;
  id_max : int;  (** Over covered nodes. *)
  sends : int;
  expected_sends : int;
  deliveries : int;
  quiescent : bool;
  exhausted : bool;
  post_term_deliveries : int;
  leader : int option;
  leader_is_max : bool;
  roles_ok : bool;
      (** Every covered node decided with exactly one leader, every
          uncovered node still [Undecided]. *)
}

val ok : report -> bool
(** The conjunction every healthy run satisfies: full coverage
    ([covered = n] — an ablation run on a bridged graph fails here
    even though the walk behaved as designed), exact send count,
    quiescent, within budget, no post-termination deliveries, unique
    max-id leader, roles consistent. *)

val report_fields : report -> (string * Sink.value) list
(** Flat journal fields in declaration order plus a final ["ok"], the
    graph analogue of [Election.report_fields]. *)

val run :
  ?seed:int ->
  ?max_deliveries:int ->
  ?sink:Sink.t ->
  ?workload:string ->
  ?snapshot_every:int ->
  plan ->
  ids:int array ->
  sched:Scheduler.t ->
  report * unit Gnetwork.t
(** Full run with the same sink lifecycle as [Election.run]: a
    run_start record before the network exists, periodic counter
    snapshots, a closing snapshot, the run_end report, then flush. *)

val run_report :
  ?seed:int ->
  ?max_deliveries:int ->
  ?sink:Sink.t ->
  ?workload:string ->
  ?snapshot_every:int ->
  plan ->
  ids:int array ->
  sched:Scheduler.t ->
  report
