(** General network topologies with per-node numbered ports.

    The paper works on rings, but its context ([8]) is 2-edge-connected
    graphs, and its closing question asks about general networks; this
    module provides the graph substrate for the exploratory experiments
    (bench E14) and for cross-validating the ring algorithms against an
    independent simulator.

    A node of degree d has ports [0..d-1]; each undirected edge
    occupies one port at each endpoint.  Multi-edges are allowed
    (2-edge-connected multigraphs matter: two parallel edges make a
    2-node "ring"); self-loops are not. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** Build from an undirected edge list; ports are assigned to each
    node in the order its edges appear.  Raises [Invalid_argument] on
    self-loops or out-of-range endpoints. *)

val ring : int -> t
(** The n-cycle [(0,1), (1,2), ..., (n-1,0)]; for [n = 2] a double
    edge, for [n = 1] invalid (a self-loop — use the 2-port ring engine
    for solitude experiments). *)

val theta : int -> int -> int -> t
(** Two hub nodes joined by three disjoint paths with the given numbers
    of inner nodes ([>= 0] each; at most one path may have 0 inner
    nodes).  The simplest 2-edge-connected non-ring. *)

val bowtie : unit -> t
(** Two triangles sharing node 0 (a "two-ear" graph): 2-edge-connected
    but not 2-vertex-connected, so its ear decomposition contains a
    closed ear anchored at the cut vertex.  The smallest graph that
    exercises the closed-ear branch of {!Ears.decompose}. *)

val complete : int -> t
(** K_n, [n >= 3]. *)

val cycle_with_chords : Colring_stats.Rng.t -> n:int -> chords:int -> t
(** An n-cycle plus [chords] random distinct non-adjacent chords. *)

val n : t -> int
val degree : t -> int -> int
val num_links : t -> int
(** Directed links = 2 × #edges. *)

val link_id : t -> node:int -> port:int -> int
val link_src : t -> int -> int * int
val link_dst : t -> int -> int * int
val peer : t -> node:int -> port:int -> int * int

val reverse_link : t -> int -> int
(** The directed link running the opposite way along the same edge
    instance: if link [l] goes from [(v,p)] to [(w,q)], then
    [reverse_link t l] goes from [(w,q)] to [(v,p)]. *)

val edge_of_link : t -> int -> int
(** The undirected edge index (position in {!edges}) a directed link
    belongs to. *)

val link_of_edge : t -> edge:int -> src:int -> int
(** The directed link leaving [src] along edge instance [edge]; raises
    [Invalid_argument] if [src] is not an endpoint of that edge.  Well
    defined on multigraphs because every edge instance occupies exactly
    one port at each endpoint. *)

val edges : t -> (int * int) list
(** One entry per undirected edge, endpoints in insertion order. *)

val bridges : t -> (int * int) list
(** Edges whose removal disconnects the graph (Tarjan lowlink on the
    multigraph — a parallel edge is never a bridge). *)

val is_two_edge_connected : t -> bool
(** Connected and bridge-free — the necessary and sufficient condition
    of [8] for non-trivial content-oblivious computation. *)

val is_connected : t -> bool
val pp : Format.formatter -> t -> unit
