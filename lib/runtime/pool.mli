(** A minimal domain pool for embarrassingly-parallel index ranges.

    Jobs are identified by their index in [0, n); workers claim
    indices from a shared structure, so the *assignment* of jobs to
    domains is nondeterministic but nothing else is: callers that make
    job [i] depend only on [i] (and write only to slot [i] of a result
    array) get bit-identical results for every [jobs] value and either
    {!mode}, including [jobs = 1], which runs the plain sequential
    loop in the calling domain without spawning anything.

    The pool is created and joined inside each call — there is no
    long-lived worker state, so nested or repeated use is safe.  If a
    job raises, the remaining workers stop claiming new chunks, all
    domains are joined, and the first exception (by claim order) is
    re-raised in the caller; the pool is never left wedged.  The same
    holds when [Domain.spawn] itself fails mid-way (OS domain limit):
    every domain that did spawn is joined before the spawn exception
    propagates, so a failed call never leaks domains and the next
    {!run}/{!map} starts from a clean slate. *)

val default_jobs : unit -> int
(** The [COLRING_JOBS] environment variable if set (must parse as a
    positive integer — [Invalid_argument] otherwise), else
    {!Domain.recommended_domain_count}. *)

(** How workers claim indices.  [Static] (the default): one shared
    atomic cursor hands out [chunk]-sized ranges in order — lowest
    contention, but a worker stuck on a long job strands nothing for
    others to take only if chunks are small.  [Steal]: the index space
    is pre-partitioned into one contiguous per-worker range; owners
    pop [chunk] indices off their own front, and an idle worker steals
    the upper half of a victim's remaining range (Chase–Lev-style
    splitting on a single packed atomic per worker), which keeps tails
    balanced when job durations are skewed.  [Steal] is limited to
    [n < 2{^31}] jobs. *)
type mode = Static | Steal

val run :
  ?mode:mode ->
  ?chunk:int ->
  ?on_failure:(unit -> unit) ->
  jobs:int ->
  int ->
  (int -> unit) ->
  unit
(** [run ~jobs n f] evaluates [f i] exactly once for every
    [0 <= i < n], using at most [jobs] domains (the calling domain
    included).  [chunk] is the number of consecutive indices claimed
    per pop; when omitted it auto-tunes to [max 1 (n / (jobs * 8))] —
    about eight claims per worker on a balanced run — so huge-[n]
    sweeps do not hammer the cursor one index at a time.  Pass
    [~chunk:1] explicitly for maximal balancing of few, long jobs.
    [on_failure] (default a no-op) runs exactly once, in the domain
    that recorded the first failure, the moment a job or a
    [Domain.spawn] raises — jobs whose bodies block on shared state
    (e.g. a transport backend's per-node loops) use it to flip their
    own abort flag so every body unblocks and the joins can complete.
    [Invalid_argument] if [jobs < 1], [chunk < 1], [n < 0], or
    [n >= 2{^31}] in [Steal] mode. *)

val map :
  ?mode:mode ->
  ?chunk:int ->
  ?on_failure:(unit -> unit) ->
  jobs:int ->
  int ->
  (int -> 'a) ->
  'a array
(** [map ~jobs n f] is [[| f 0; ...; f (n-1) |]] computed as {!run}
    does; slot [i] holds [f i] regardless of which domain ran it.
    [f 0] is evaluated first, in the caller (its value seeds the
    result buffer — no per-element boxing); the remaining indices are
    distributed as in {!run}. *)
