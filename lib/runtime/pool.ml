let default_jobs () =
  match Sys.getenv_opt "COLRING_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          invalid_arg
            (Printf.sprintf "COLRING_JOBS must be a positive integer, got %S" s))

type mode = Static | Steal

(* A failed job parks its exception in [failure] (first writer wins,
   which also fires the caller's [on_failure] hook exactly once) and
   makes every worker stop claiming, so all domains reach their join
   quickly. *)
let park ~failure ~on_failure e =
  if Atomic.compare_and_set failure None (Some e) then on_failure ()

(* ---------------------------------------------------------------- *)
(* Static mode: one shared cursor hands out [chunk]-sized index
   ranges.  One worker body shared by every domain (the caller
   included). *)

let rec static_loop ~n ~chunk ~cursor ~failure ~on_failure f =
  if Atomic.get failure = None then begin
    let start = Atomic.fetch_and_add cursor chunk in
    if start < n then begin
      (try
         for i = start to min n (start + chunk) - 1 do
           f i
         done
       with e -> park ~failure ~on_failure e);
      static_loop ~n ~chunk ~cursor ~failure ~on_failure f
    end
  end

(* ---------------------------------------------------------------- *)
(* Steal mode: the index space is pre-partitioned into one contiguous
   range per worker, each held in a single atomic as the packed pair
   [(lo lsl 31) lor hi] for the half-open [lo, hi) (so [n] must fit in
   31 bits).  Owners claim [chunk] indices off the front with a CAS;
   an idle worker steals the upper half of a victim's range with a
   CAS and installs the loot in its own (empty) slot.  The packed
   representation is ABA-free: a slot can never hold the same pair
   twice, because a pair recurs only if its front index [lo] comes
   back unexecuted to the same slot, and every transition away from
   the pair either executes [lo] or keeps it in the slot with a
   strictly smaller [hi] — ranges split and shrink, they never
   merge. *)

let range_mask = 0x7FFF_FFFF
let pack ~lo ~hi = (lo lsl 31) lor hi

(* Claim up to [chunk] indices off the front of [deque]; the packed
   claimed range, or -1 when the deque is empty. *)
let rec pop_own deque ~chunk =
  let r = Atomic.get deque in
  let lo = r lsr 31 and hi = r land range_mask in
  if lo >= hi then -1
  else
    let c = if hi - lo < chunk then hi - lo else chunk in
    if Atomic.compare_and_set deque r (pack ~lo:(lo + c) ~hi) then
      pack ~lo ~hi:(lo + c)
    else begin
      (* A failed CAS means a thief owns the cache line right now;
         yield it before re-spinning. *)
      Domain.cpu_relax ();
      pop_own deque ~chunk
    end

(* Steal the upper half (rounded up) of [deque]; the packed stolen
   range, or -1 when the deque is empty or the CAS lost a race (the
   scan just moves to the next victim rather than hammering one
   slot). *)
let try_steal deque =
  let r = Atomic.get deque in
  let lo = r lsr 31 and hi = r land range_mask in
  if lo >= hi then -1
  else
    let mid = lo + ((hi - lo) / 2) in
    if Atomic.compare_and_set deque r (pack ~lo ~hi:mid) then pack ~lo:mid ~hi
    else -1

(* Execute an already-claimed range; every completed index is debited
   from [remaining] (the termination signal: deques may all look empty
   while their contents are still being executed). *)
let rec run_range ~remaining ~failure ~on_failure f lo hi =
  if lo < hi && Atomic.get failure = None then begin
    (try f lo with e -> park ~failure ~on_failure e);
    Atomic.decr remaining;
    run_range ~remaining ~failure ~on_failure f (lo + 1) hi
  end

(* One round-robin pass over the victims, starting after [me]; on a
   hit, park the loot in my own slot (empty while I scan — thieves
   only ever remove) minus a first chunk executed right away. *)
let rec steal_scan ~deques ~remaining ~failure ~on_failure ~chunk ~me f i =
  let jobs = Array.length deques in
  if i < jobs then begin
    let r = try_steal deques.((me + i) mod jobs) in
    if r < 0 then
      steal_scan ~deques ~remaining ~failure ~on_failure ~chunk ~me f (i + 1)
    else begin
      let lo = r lsr 31 and hi = r land range_mask in
      let c = if hi - lo < chunk then hi - lo else chunk in
      Atomic.set deques.(me) (pack ~lo:(lo + c) ~hi);
      run_range ~remaining ~failure ~on_failure f lo (lo + c)
    end
  end

let rec steal_loop ~deques ~remaining ~failure ~on_failure ~chunk ~me f =
  if Atomic.get failure = None && Atomic.get remaining > 0 then begin
    let r = pop_own deques.(me) ~chunk in
    if r >= 0 then
      run_range ~remaining ~failure ~on_failure f (r lsr 31)
        (r land range_mask)
    else begin
      steal_scan ~deques ~remaining ~failure ~on_failure ~chunk ~me f 1;
      if Atomic.get remaining > 0 && Atomic.get failure = None then
        Domain.cpu_relax ()
    end;
    steal_loop ~deques ~remaining ~failure ~on_failure ~chunk ~me f
  end

(* ---------------------------------------------------------------- *)

let spawn_all ~jobs ~failure ~on_failure body =
  (* Spawn into a pre-sized option array: if [Domain.spawn] itself
     raises mid-loop (OS domain limit), the failure is parked exactly
     like a job's — workers already running stop claiming, every
     domain that did spawn is joined below, and the spawn exception
     is re-raised in the caller.  [Array.init] would leak the
     already-spawned domains on the same failure. *)
  let spawned = Array.make (jobs - 1) None in
  (try
     for d = 0 to jobs - 2 do
       spawned.(d) <- Some (Domain.spawn (fun () -> body (d + 1)))
     done
   with e -> park ~failure ~on_failure e);
  body 0;
  Array.iter (function Some d -> Domain.join d | None -> ()) spawned;
  match Atomic.get failure with None -> () | Some e -> raise e

let run ?(mode = Static) ?chunk ?(on_failure = ignore) ~jobs n f =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be >= 1";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.run: chunk must be >= 1"
  | _ -> ());
  if n < 0 then invalid_arg "Pool.run: negative job count";
  let jobs = min jobs (max n 1) in
  (* Unless the caller pins a chunk, size it so each worker claims ~8
     times over a balanced run — enough slack for imbalance without
     hammering the shared cursor once per index on huge [n]. *)
  let chunk =
    match chunk with Some c -> c | None -> max 1 (n / (jobs * 8))
  in
  if jobs = 1 then (
    try
      for i = 0 to n - 1 do
        f i
      done
    with e ->
      on_failure ();
      raise e)
  else
    let failure = Atomic.make None in
    match mode with
    | Static ->
        let cursor = Atomic.make 0 in
        spawn_all ~jobs ~failure ~on_failure (fun _me ->
            static_loop ~n ~chunk ~cursor ~failure ~on_failure f)
    | Steal ->
        if n > range_mask then
          invalid_arg "Pool.run: Steal supports at most 2^31 - 1 jobs";
        let deques =
          Array.init jobs (fun w ->
              Atomic.make (pack ~lo:(w * n / jobs) ~hi:((w + 1) * n / jobs)))
        in
        let remaining = Atomic.make n in
        spawn_all ~jobs ~failure ~on_failure (fun me ->
            steal_loop ~deques ~remaining ~failure ~on_failure ~chunk ~me f)

let map ?mode ?chunk ?on_failure ~jobs n f =
  if n < 0 then invalid_arg "Pool.map: negative job count";
  if n = 0 then [||]
  else begin
    (* Slot 0 runs eagerly in the caller: its value seeds the result
       buffer, so no per-element [Some] boxing is needed.  Writes land
       in disjoint slots (and disjoint [filled] bytes — one byte per
       index, so no cross-domain read-modify-write), and the joins
       inside [run] publish every slot before the check below reads
       it. *)
    let r0 =
      try f 0
      with e ->
        (match on_failure with Some g -> g () | None -> ());
        raise e
    in
    let out = Array.make n r0 in
    let filled = Bytes.make n '\000' in
    Bytes.set filled 0 '\001';
    run ?mode ?chunk ?on_failure ~jobs (n - 1) (fun i ->
        out.(i + 1) <- f (i + 1);
        Bytes.set filled (i + 1) '\001');
    for i = 0 to n - 1 do
      assert (Bytes.get filled i = '\001')
    done;
    out
  end
