let default_jobs () =
  match Sys.getenv_opt "COLRING_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          invalid_arg
            (Printf.sprintf "COLRING_JOBS must be a positive integer, got %S" s))

(* One worker body shared by every domain (the caller included).  The
   cursor hands out [chunk]-sized index ranges; a failed job parks its
   exception in [failure] (first writer wins) and makes every worker
   stop claiming, so all domains reach their join quickly. *)
let worker_loop ~n ~chunk ~cursor ~failure f =
  let rec go () =
    if Atomic.get failure = None then begin
      let start = Atomic.fetch_and_add cursor chunk in
      if start < n then begin
        (try
           for i = start to min n (start + chunk) - 1 do
             f i
           done
         with e -> ignore (Atomic.compare_and_set failure None (Some e)));
        go ()
      end
    end
  in
  go ()

let run ?(chunk = 1) ~jobs n f =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Pool.run: chunk must be >= 1";
  if n < 0 then invalid_arg "Pool.run: negative job count";
  let jobs = min jobs (max n 1) in
  if jobs = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let cursor = Atomic.make 0 and failure = Atomic.make None in
    let spawned =
      Array.init (jobs - 1) (fun _ ->
          Domain.spawn (fun () -> worker_loop ~n ~chunk ~cursor ~failure f))
    in
    worker_loop ~n ~chunk ~cursor ~failure f;
    Array.iter Domain.join spawned;
    match Atomic.get failure with None -> () | Some e -> raise e
  end

let map ?chunk ~jobs n f =
  if n < 0 then invalid_arg "Pool.map: negative job count";
  (* An option array keeps the write per slot word-sized (no float
     unboxing surprises) and disjoint across domains; the joins in
     [run] publish every slot before the unwrap below reads it. *)
  let out = Array.make n None in
  run ?chunk ~jobs n (fun i -> out.(i) <- Some (f i));
  Array.map
    (function Some v -> v | None -> assert false (* run covered [0,n) *))
    out
