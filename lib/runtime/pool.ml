let default_jobs () =
  match Sys.getenv_opt "COLRING_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          invalid_arg
            (Printf.sprintf "COLRING_JOBS must be a positive integer, got %S" s))

(* One worker body shared by every domain (the caller included).  The
   cursor hands out [chunk]-sized index ranges; a failed job parks its
   exception in [failure] (first writer wins, which also fires the
   caller's [on_failure] hook exactly once) and makes every worker
   stop claiming, so all domains reach their join quickly. *)
let park ~failure ~on_failure e =
  if Atomic.compare_and_set failure None (Some e) then on_failure ()

let worker_loop ~n ~chunk ~cursor ~failure ~on_failure f =
  let rec go () =
    if Atomic.get failure = None then begin
      let start = Atomic.fetch_and_add cursor chunk in
      if start < n then begin
        (try
           for i = start to min n (start + chunk) - 1 do
             f i
           done
         with e -> park ~failure ~on_failure e);
        go ()
      end
    end
  in
  go ()

let run ?(chunk = 1) ?(on_failure = ignore) ~jobs n f =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Pool.run: chunk must be >= 1";
  if n < 0 then invalid_arg "Pool.run: negative job count";
  let jobs = min jobs (max n 1) in
  if jobs = 1 then (
    try
      for i = 0 to n - 1 do
        f i
      done
    with e ->
      on_failure ();
      raise e)
  else begin
    let cursor = Atomic.make 0 and failure = Atomic.make None in
    (* Spawn into a pre-sized option array: if [Domain.spawn] itself
       raises mid-loop (OS domain limit), the failure is parked exactly
       like a job's — workers already running stop claiming, every
       domain that did spawn is joined below, and the spawn exception
       is re-raised in the caller.  [Array.init] would leak the
       already-spawned domains on the same failure. *)
    let spawned = Array.make (jobs - 1) None in
    (try
       for d = 0 to jobs - 2 do
         spawned.(d) <-
           Some
             (Domain.spawn (fun () ->
                  worker_loop ~n ~chunk ~cursor ~failure ~on_failure f))
       done
     with e -> park ~failure ~on_failure e);
    worker_loop ~n ~chunk ~cursor ~failure ~on_failure f;
    Array.iter (function Some d -> Domain.join d | None -> ()) spawned;
    match Atomic.get failure with None -> () | Some e -> raise e
  end

let map ?chunk ?on_failure ~jobs n f =
  if n < 0 then invalid_arg "Pool.map: negative job count";
  (* An option array keeps the write per slot word-sized (no float
     unboxing surprises) and disjoint across domains; the joins in
     [run] publish every slot before the unwrap below reads it. *)
  let out = Array.make n None in
  run ?chunk ?on_failure ~jobs n (fun i -> out.(i) <- Some (f i));
  Array.map
    (function Some v -> v | None -> assert false (* run covered [0,n) *))
    out
