open Colring_engine
module Algo3_def = Colring_core.Algo3
module Ids = Colring_core.Ids
module Election = Colring_core.Election

type algo1_report = {
  total : int;
  receives : int array;
  leaders : int list;
  last_absorber_is_max : bool;
}

let algo1 ~ids =
  let r = Driver.run ~ids () in
  let id_max = Ids.id_max ids in
  let leaders = ref [] in
  for v = Array.length ids - 1 downto 0 do
    if ids.(v) = id_max then leaders := v :: !leaders
  done;
  let leaders = !leaders in
  let last_absorber_is_max =
    match List.rev r.Driver.absorb_order with
    | last :: _ -> ids.(last) = id_max
    | [] -> false
  in
  {
    total = r.Driver.deliveries;
    receives = r.Driver.receives;
    leaders;
    last_absorber_is_max;
  }

(* Relabel node indices so the counterclockwise direction becomes the
   driver's "+1" direction: u(v) = -v mod n. *)
let reversed_ids ids =
  let n = Array.length ids in
  Array.init n (fun u -> ids.((n - u) mod n))

type algo2_report = {
  total : int;
  cw : int;
  ccw : int;
  leader : int;
  termination_order : int list;
}

let algo2 ~ids =
  let n = Array.length ids in
  let sorted = Array.copy ids in
  Array.sort compare sorted;
  for i = 0 to n - 2 do
    if sorted.(i) = sorted.(i + 1) then
      invalid_arg "Fast.algo2: ids must be unique"
  done;
  let cw = (Driver.run ~ids ()).Driver.deliveries in
  let ccw_instance = (Driver.run ~ids:(reversed_ids ids) ()).Driver.deliveries in
  let leader = Ids.argmax ids in
  let termination_order =
    List.init n (fun i -> (leader - 1 - i + (2 * n)) mod n)
  in
  {
    total = cw + ccw_instance + n;
    cw;
    ccw = ccw_instance + n;
    leader;
    termination_order;
  }

type algo3_report = {
  total : int;
  cw_instance : int;
  ccw_instance : int;
  leader : int;
  leader_unique : bool;
  orientation_consistent : bool;
  cw_ports : Port.t array;
}

let virtual_id scheme id i =
  match scheme with
  | Algo3_def.Doubled -> (2 * id) - 1 + i
  | Algo3_def.Improved -> id + i

let algo3 ~scheme ~ids ~flips =
  let n = Array.length ids in
  if Array.length flips <> n then invalid_arg "Fast.algo3: |flips| <> n";
  (* The port index a node sends clockwise from (ground truth). *)
  let i_cw v = if flips.(v) then 0 else 1 in
  let cw_ids = Array.init n (fun v -> virtual_id scheme ids.(v) (i_cw v)) in
  let ccw_ids_by_node =
    Array.init n (fun v -> virtual_id scheme ids.(v) (1 - i_cw v))
  in
  let cw_run = Driver.run ~ids:cw_ids () in
  let ccw_run = Driver.run ~ids:(reversed_ids ccw_ids_by_node) () in
  let max_cw = Ids.id_max cw_ids and max_ccw = Ids.id_max ccw_ids_by_node in
  (* At quiescence node v received max_cw pulses on the port where the
     clockwise direction comes in (opposite its cw-out port) and
     max_ccw on the other; express as (rho0, rho1). *)
  let rho v =
    let port_of_cw_arrivals = 1 - i_cw v in
    if port_of_cw_arrivals = 0 then (max_cw, max_ccw) else (max_ccw, max_cw)
  in
  let outputs =
    Array.init n (fun v ->
        let rho0, rho1 = rho v in
        let vid1 = virtual_id scheme ids.(v) 1 in
        let role =
          if rho0 = vid1 && rho1 < vid1 then Output.Leader
          else Output.Non_leader
        in
        let cw_port = if rho0 > rho1 then Port.P1 else Port.P0 in
        Output.with_cw_port cw_port (Output.with_role role Output.empty))
  in
  let leaders = ref [] in
  for v = n - 1 downto 0 do
    if Output.equal_role outputs.(v).Output.role Output.Leader then
      leaders := v :: !leaders
  done;
  let leaders = !leaders in
  let topo = Topology.non_oriented ~flips in
  {
    total = cw_run.Driver.deliveries + ccw_run.Driver.deliveries;
    cw_instance = cw_run.Driver.deliveries;
    ccw_instance = ccw_run.Driver.deliveries;
    leader = (match leaders with [ v ] -> v | _ -> -1);
    leader_unique = List.length leaders = 1;
    orientation_consistent = Election.orientation_consistent topo outputs;
    cw_ports =
      Array.map
        (fun (o : Output.t) -> Option.get o.cw_port)
        outputs;
  }
