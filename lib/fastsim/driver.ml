module Rng = Colring_stats.Rng
module Sink = Colring_engine.Sink

type result = {
  receives : int array;
  deliveries : int;
  absorb_order : int list;
}

(* Drive the pulse currently sitting in the channel towards [start]
   until some node absorbs it.  [rho] holds received counts; a node
   absorbs on the receive that makes rho = its id (only nodes with
   rho < id can still absorb).  Returns the hop count. *)
let drive ~ids ~rho ~start =
  let n = Array.length ids in
  (* Absorption time of node v (0-indexed hops from now): its first
     visit is d(v) hops away, later visits every n hops; it absorbs on
     its (id - rho)-th future visit. *)
  let t_min = ref max_int and absorber = ref (-1) in
  for v = 0 to n - 1 do
    let delta = ids.(v) - rho.(v) in
    if delta >= 1 then begin
      let d = (v - start + n) mod n in
      let t = d + ((delta - 1) * n) in
      if t < !t_min then begin
        t_min := t;
        absorber := v
      end
    end
  done;
  if !absorber < 0 then failwith "Driver.drive: no absorbing node left";
  let t = !t_min in
  (* Credit every node its visits during these t+1 deliveries. *)
  for v = 0 to n - 1 do
    let d = (v - start + n) mod n in
    if d <= t then rho.(v) <- rho.(v) + 1 + ((t - d) / n)
  done;
  (!absorber, t + 1)

let run ?seed ?max_deliveries ?(sink = Sink.null) ~ids () =
  let n = Array.length ids in
  if n = 0 then invalid_arg "Driver.run: empty ring";
  Array.iter
    (fun id -> if id < 1 then invalid_arg "Driver.run: ids must be positive")
    ids;
  let seed_val = Option.value ~default:0 seed in
  let id_max = Array.fold_left max 1 ids in
  if sink.Sink.enabled then
    sink.Sink.on_run_start
      [
        ("algorithm", Sink.String "fastsim-instance");
        ("n", Sink.Int n);
        ("id_max", Sink.Int id_max);
        ("seed", Sink.Int seed_val);
        ("workload", Sink.String "-");
        ("scheduler", Sink.String "analytic");
      ];
  let rho = Array.make n 0 in
  let deliveries = ref 0 in
  let order = ref [] in
  (* Initially node v's start-up pulse sits in the channel towards
     v+1.  Resolving the n initial pulses one at a time, in any order,
     is a legal schedule; [seed] permutes that order (the default is
     the canonical 0..n-1 enumeration).  Totals are
     schedule-independent (Corollary 13), so only [absorb_order] can
     vary with the seed. *)
  let starts = Array.init n (fun j -> (j + 1) mod n) in
  (match seed with
  | None -> ()
  | Some s -> Rng.shuffle (Rng.create ~seed:s) starts);
  Array.iter
    (fun start ->
      let absorber, hops = drive ~ids ~rho ~start in
      deliveries := !deliveries + hops;
      (match max_deliveries with
      | Some cap when !deliveries > cap ->
          (* The analytical schedule cannot stop early: each pulse is
             resolved to absorption in one closed-form step, so a
             budget below the exact total is a contract violation, not
             an exhausted run. *)
          invalid_arg
            (Printf.sprintf
               "Driver.run: exact pulse total exceeds max_deliveries \
                (reached %d > %d); the analytical simulator cannot stop \
                early — raise the budget or use the event engine"
               !deliveries cap)
      | _ -> ());
      order := absorber :: !order)
    starts;
  let result =
    { receives = rho; deliveries = !deliveries; absorb_order = List.rev !order }
  in
  if sink.Sink.enabled then begin
    sink.Sink.on_run_end
      [
        ("algorithm", Sink.String "fastsim-instance");
        ("n", Sink.Int n);
        ("deliveries", Sink.Int !deliveries);
        ("receives_uniform",
         Sink.Bool (Array.for_all (fun r -> r = id_max) rho));
        ("last_absorber",
         match !order with
         | last :: _ -> Sink.Int last
         | [] -> Sink.String "none");
      ];
    sink.Sink.flush ()
  end;
  result
