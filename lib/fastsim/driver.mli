(** The analytical core of the fast simulator: one directional
    Algorithm 1 instance, simulated exactly in O(n²) arithmetic
    operations instead of Θ(n·ID_max) event deliveries.

    Why this is sound: the exhaustive explorer (E11) and the theory
    both show Algorithm 1's final state and totals are independent of
    the delivery schedule, so we may pick a convenient one.  We pick
    "drive one pulse at a time until it is absorbed".  While a single
    pulse circulates, every node it passes gains one received pulse per
    lap, so the node that absorbs it and the number of hops it travels
    have closed forms — each pulse is resolved with O(n) arithmetic,
    without materializing its Θ(ID_max) hops.

    IDs (absorption thresholds) need not be unique (Lemma 16); they
    must be positive.  Counters can reach n·ID_max, so magnitudes up to
    ~10^15 are exact on 63-bit ints. *)

type result = {
  receives : int array;
      (** Final per-node received count; Corollary 13 says every entry
          equals [ID_max] (and [sends = receives] per node). *)
  deliveries : int;
      (** Total deliveries = total sends (the instance's message
          complexity). *)
  absorb_order : int list;
      (** Nodes in the order they absorbed a pulse under the chosen
          schedule; the last entry is a max-ID node (Lemma 7/17). *)
}

val run :
  ?seed:int ->
  ?max_deliveries:int ->
  ?sink:Colring_engine.Sink.t ->
  ids:int array ->
  unit ->
  result
(** Simulate one clockwise instance on nodes [0..n-1] (node [v] sends
    to [v+1 mod n]).  For a counterclockwise instance, pass the ID
    array reversed and map node indices accordingly (the wrappers do
    this).

    The knobs match {!Colring_core.Election.run}, with the analytical
    caveats spelled out:

    - [seed] permutes the (legal) order in which the n initial pulses
      are resolved.  Omitting it keeps the canonical deterministic
      order; no global state is consulted either way.  Totals
      ({!result.receives}, {!result.deliveries}) are
      schedule-independent, so the seed can only permute
      {!result.absorb_order} — whose last entry is a max-ID node under
      every seed (Lemma 7/17).
    - [max_deliveries] raises [Invalid_argument] if the instance's
      exact pulse total exceeds it: the closed-form resolution cannot
      stop mid-pulse, so a too-small budget is a contract violation
      here, never a truncated ("exhausted") run as in the event
      engine.
    - [sink] receives run_start and run_end records only.  Per-pulse
      events are never emitted — not simulating the Θ(n·ID_max)
      deliveries is the point of this module — so an event-level
      journal requires the event engine. *)
