open Colring_engine

type msg = Id of int

let cw_out = Port.P1
let cw_in = Port.P0

let program ~id =
  if id < 1 then invalid_arg "Lelann.program: id must be positive";
  let max_seen = ref id in
  let start (api : msg Network.api) = api.send cw_out (Id id) in
  let wake (api : msg Network.api) =
    let continue = ref true in
    while !continue do
      match api.recv cw_in with
      | None -> continue := false
      | Some (Id j) ->
          if j = id then begin
            (* All n IDs have passed through by now (FIFO order). *)
            continue := false;
            api.set_output
              (if !max_seen = id then Output.leader else Output.non_leader);
            api.terminate ()
          end
          else begin
            if j > !max_seen then max_seen := j;
            api.send cw_out (Id j)
          end
    done
  in
  let snap =
    Some
      {
        Engine_intf.save = (fun () -> [| !max_seen |]);
        load = (fun a -> max_seen := a.(0));
      }
  in
  { Network.start; wake; inspect = (fun () -> [ ("max_seen", !max_seen) ]); snap }

let messages ~n = n * n
