open Colring_engine
module Rng = Colring_stats.Rng

type msg =
  | Token of { round : int; value : int; hops : int; unique : bool }
  | Announce of { hops : int }

let cw_out = Port.P1
let cw_in = Port.P0

type mode = Active | Passive | Announcer | Done

let program ~n ~range =
  if n < 1 then invalid_arg "Itai_rodeh.program: n must be >= 1";
  if range < 2 then invalid_arg "Itai_rodeh.program: range must be >= 2";
  let mode = ref Active in
  let round = ref 1 in
  let value = ref 0 in
  let new_round (api : msg Network.api) r =
    round := r;
    value := Rng.int_incl api.rng 1 range;
    api.send cw_out (Token { round = r; value = !value; hops = 1; unique = true })
  in
  let start api = new_round api 1 in
  let handle (api : msg Network.api) m =
    match (m, !mode) with
    | Token t, Active ->
        if t.hops = n then begin
          (* Own token: nobody purged it, so nobody beat it this round. *)
          if t.unique then begin
            mode := Announcer;
            api.set_output Output.leader;
            api.send cw_out (Announce { hops = 1 })
          end
          else new_round api (!round + 1)
        end
        else if
          t.round > !round || (t.round = !round && t.value > !value)
        then begin
          mode := Passive;
          api.send cw_out (Token { t with hops = t.hops + 1 })
        end
        else if t.round = !round && t.value = !value then
          api.send cw_out (Token { t with hops = t.hops + 1; unique = false })
        (* t is older or smaller: purged. *)
    | Token t, Passive ->
        if t.hops < n then
          api.send cw_out (Token { t with hops = t.hops + 1 })
        (* A token reaching hops = n at a passive node belongs to an
           originator that turned passive meanwhile: purge it. *)
    | Token _, (Announcer | Done) -> ()
    | Announce a, (Active | Passive) ->
        api.set_output Output.non_leader;
        if a.hops < n then api.send cw_out (Announce { hops = a.hops + 1 });
        mode := Done;
        api.terminate ()
    | Announce _, Announcer ->
        mode := Done;
        api.terminate ()
    | Announce _, Done -> ()
  in
  let wake (api : msg Network.api) =
    let continue = ref true in
    while !continue && !mode <> Done do
      match api.recv cw_in with
      | Some m -> handle api m
      | None -> continue := false
    done
  in
  let inspect () = [ ("round", !round); ("value", !value) ] in
  (* No codec: the program draws fresh randomness on every new round,
     and [rng] streams are not rolled back by the undo machinery. *)
  { Network.start; wake; inspect; snap = None }
