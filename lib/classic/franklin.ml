open Colring_engine

type msg = Value of int | Announce of int

type mode = Active | Relay | Announcer | Done

let program ~id =
  if id < 1 then invalid_arg "Franklin.program: id must be positive";
  let mode = ref Active in
  let rounds = ref 0 in
  (* Buffered round values per incoming direction (FIFO order = round
     order); only used while active. *)
  let from_p0 = Queue.create () and from_p1 = Queue.create () in
  let send_both (api : msg Network.api) =
    api.send Port.P0 (Value id);
    api.send Port.P1 (Value id)
  in
  let drain_buffers (api : msg Network.api) =
    (* On turning relay, everything buffered was in transit to a
       further active node: forward it in its direction of travel. *)
    Queue.iter (fun v -> api.send Port.P1 (Value v)) from_p0;
    Queue.iter (fun v -> api.send Port.P0 (Value v)) from_p1;
    Queue.clear from_p0;
    Queue.clear from_p1
  in
  let process_round (api : msg Network.api) =
    if
      !mode = Active
      && (not (Queue.is_empty from_p0))
      && not (Queue.is_empty from_p1)
    then begin
      let a = Queue.take from_p0 and b = Queue.take from_p1 in
      if a = id || b = id then begin
        (* Own ID came back around: sole survivor. *)
        mode := Announcer;
        api.set_output Output.leader;
        api.send Port.P1 (Announce id);
        drain_buffers api
      end
      else if max a b < id then begin
        incr rounds;
        send_both api
      end
      else begin
        mode := Relay;
        drain_buffers api
      end
    end
  in
  let start api =
    send_both api
  in
  let handle (api : msg Network.api) from m =
    match (m, !mode) with
    | Value v, Active ->
        (match from with
        | Port.P0 -> Queue.add v from_p0
        | Port.P1 -> Queue.add v from_p1);
        process_round api
    | Value v, Relay -> api.send (Port.opposite from) (Value v)
    | Value _, (Announcer | Done) -> () (* stragglers of decided rounds *)
    | Announce e, (Active | Relay) ->
        api.set_output (if e = id then Output.leader else Output.non_leader);
        mode := Done;
        api.send Port.P1 (Announce e);
        api.terminate ()
    | Announce _, Announcer ->
        mode := Done;
        api.terminate ()
    | Announce _, Done -> ()
  in
  let wake (api : msg Network.api) =
    let continue = ref true in
    while !continue && !mode <> Done do
      match api.recv Port.P0 with
      | Some m -> handle api Port.P0 m
      | None -> (
          match api.recv Port.P1 with
          | Some m -> handle api Port.P1 m
          | None -> continue := false)
    done
  in
  let inspect () = [ ("rounds", !rounds) ] in
  (* The two round buffers are length-prefixed in the flat encoding. *)
  let snap =
    Some
      {
        Engine_intf.save =
          (fun () ->
            let mode_code =
              match !mode with
              | Active -> 0
              | Relay -> 1
              | Announcer -> 2
              | Done -> 3
            in
            let a =
              Array.make (4 + Queue.length from_p0 + Queue.length from_p1) 0
            in
            a.(0) <- mode_code;
            a.(1) <- !rounds;
            a.(2) <- Queue.length from_p0;
            a.(3) <- Queue.length from_p1;
            let i = ref 4 in
            Queue.iter
              (fun v ->
                a.(!i) <- v;
                incr i)
              from_p0;
            Queue.iter
              (fun v ->
                a.(!i) <- v;
                incr i)
              from_p1;
            a);
        load =
          (fun a ->
            (mode :=
               match a.(0) with
               | 0 -> Active
               | 1 -> Relay
               | 2 -> Announcer
               | _ -> Done);
            rounds := a.(1);
            Queue.clear from_p0;
            Queue.clear from_p1;
            for i = 0 to a.(2) - 1 do
              Queue.add a.(4 + i) from_p0
            done;
            for i = 0 to a.(3) - 1 do
              Queue.add a.(4 + a.(2) + i) from_p1
            done);
      }
  in
  { Network.start; wake; inspect; snap }
