open Colring_engine

type msg = Value of int | Announce of int

let cw_out = Port.P1
let cw_in = Port.P0

type mode =
  | Wait_first  (** Active, phase started, awaiting the first value. *)
  | Wait_second of int  (** Active, holding the first received value. *)
  | Relay
  | Announcer
  | Done

let program ~id =
  if id < 1 then invalid_arg "Peterson.program: id must be positive";
  let tid = ref id in
  let mode = ref Wait_first in
  let phases = ref 0 in
  let start (api : msg Network.api) = api.send cw_out (Value !tid) in
  let handle (api : msg Network.api) m =
    match (m, !mode) with
    | Value v, Wait_first ->
        if v = !tid then begin
          (* Sole survivor: own value completed the circle. *)
          mode := Announcer;
          api.send cw_out (Announce !tid)
        end
        else begin
          api.send cw_out (Value v);
          mode := Wait_second v
        end
    | Value v2, Wait_second v1 ->
        if v1 > !tid && v1 > v2 then begin
          tid := v1;
          incr phases;
          mode := Wait_first;
          api.send cw_out (Value !tid)
        end
        else mode := Relay
    | Value v, Relay -> api.send cw_out (Value v)
    | Value _, (Announcer | Done) -> () (* stray of a finished phase *)
    | Announce e, Announcer ->
        (* Announcement returned; the announcer itself is the leader
           only if the surviving value is its own original ID. *)
        api.set_output (if e = id then Output.leader else Output.non_leader);
        mode := Done;
        api.terminate ()
    | Announce e, (Wait_first | Wait_second _ | Relay) ->
        (* The node whose original ID equals the surviving value is the
           elected leader. *)
        api.set_output (if e = id then Output.leader else Output.non_leader);
        mode := Done;
        api.send cw_out (Announce e);
        api.terminate ()
    | Announce _, Done -> ()
  in
  let wake (api : msg Network.api) =
    let continue = ref true in
    while !continue && !mode <> Done do
      match api.recv cw_in with
      | Some m -> handle api m
      | None -> continue := false
    done
  in
  let inspect () =
    [ ("tid", !tid); ("phases", !phases) ]
  in
  (* Wait_second's payload rides in the fourth slot. *)
  let snap =
    Some
      {
        Engine_intf.save =
          (fun () ->
            let code, payload =
              match !mode with
              | Wait_first -> (0, 0)
              | Relay -> (1, 0)
              | Announcer -> (2, 0)
              | Done -> (3, 0)
              | Wait_second v -> (4, v)
            in
            [| !tid; !phases; code; payload |]);
        load =
          (fun a ->
            tid := a.(0);
            phases := a.(1);
            mode :=
              (match a.(2) with
              | 0 -> Wait_first
              | 1 -> Relay
              | 2 -> Announcer
              | 3 -> Done
              | _ -> Wait_second a.(3)));
      }
  in
  { Network.start; wake; inspect; snap }
