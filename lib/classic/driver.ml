open Colring_engine

type report = {
  algorithm : string;
  n : int;
  messages : int;
  deliveries : int;
  leader : int option;
  leader_is_max : bool;
  roles_ok : bool;
  all_terminated : bool;
  quiescent : bool;
  post_term_drops : int;
  exhausted : bool;
  causal_span : int;
}

let unique_leader outputs =
  let leaders = ref [] in
  Array.iteri
    (fun v (o : Output.t) ->
      if Output.equal_role o.role Output.Leader then leaders := v :: !leaders)
    outputs;
  match !leaders with [ v ] -> Some v | [] | _ :: _ -> None

let ok r =
  r.leader <> None && r.leader_is_max && r.roles_ok && r.all_terminated
  && r.quiescent && not r.exhausted

let report_fields r =
  let open Sink in
  [
    ("algorithm", String r.algorithm);
    ("n", Int r.n);
    ("messages", Int r.messages);
    ("deliveries", Int r.deliveries);
    ("leader", match r.leader with Some v -> Int v | None -> String "none");
    ("leader_is_max", Bool r.leader_is_max);
    ("roles_ok", Bool r.roles_ok);
    ("all_terminated", Bool r.all_terminated);
    ("quiescent", Bool r.quiescent);
    ("post_term_drops", Int r.post_term_drops);
    ("exhausted", Bool r.exhausted);
    ("causal_span", Int r.causal_span);
    ("ok", Bool (ok r));
  ]

let run ?(seed = 0) ?max_deliveries ?(sink = Sink.null)
    ?(snapshot_every = 10_000) ~name ?expect_max make_program ~topo ~sched =
  if sink.Sink.enabled then
    sink.Sink.on_run_start
      [
        ("algorithm", Sink.String name);
        ("n", Sink.Int (Topology.n topo));
        ("seed", Sink.Int seed);
        ("workload", Sink.String "-");
        ("scheduler", Sink.String sched.Scheduler.name);
      ];
  let net = Network.create ~sink ~seed topo make_program in
  let result = Network.run ?max_deliveries ~snapshot_every net sched in
  let outputs = Network.outputs net in
  let leader = unique_leader outputs in
  let leader_is_max =
    match (leader, expect_max) with
    | Some v, Some ids ->
        Array.for_all (fun id -> id <= ids.(v)) ids
    | Some _, None -> true
    | None, _ -> false
  in
  let roles_ok =
    leader <> None
    && Array.for_all
         (fun (o : Output.t) ->
           Output.equal_role o.role Output.Leader
           || Output.equal_role o.role Output.Non_leader)
         outputs
  in
  let report =
    {
      algorithm = name;
      n = Topology.n topo;
      messages = result.sends;
      deliveries = result.deliveries;
      leader;
      leader_is_max;
      roles_ok;
      all_terminated = result.all_terminated;
      quiescent = result.quiescent;
      post_term_drops =
        Metrics.post_termination_deliveries (Network.metrics net);
      exhausted = result.exhausted;
      causal_span = Network.causal_span net;
    }
  in
  if sink.Sink.enabled then begin
    sink.Sink.on_snapshot ~step:result.deliveries
      (Metrics.to_assoc (Network.metrics net));
    sink.Sink.on_run_end (report_fields report);
    sink.Sink.flush ()
  end;
  report
