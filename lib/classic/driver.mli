(** Shared runner for the classic (content-carrying) baselines.

    The baselines run in the same simulator as the content-oblivious
    algorithms but with real message payloads; the point of the E7
    bench is the message-count landscape the paper's related-work
    section describes (O(n log n) / O(n²) versus Θ(n·ID_max)).

    Unlike Algorithm 2, the classic algorithms are not quiescently
    terminating in general: stray messages may still be in flight when
    a node terminates (Section 1.1's composability discussion).  The
    engine drops such messages and the report exposes the count, which
    is itself an interesting measured quantity. *)

type report = {
  algorithm : string;
  n : int;
  messages : int;
  deliveries : int;
  leader : int option;
  leader_is_max : bool;
      (** Leader is the max-ID node; vacuously true for the anonymous
          Itai-Rodeh baseline when a unique leader exists. *)
  roles_ok : bool;  (** Exactly one Leader, everyone else Non-Leader. *)
  all_terminated : bool;
  quiescent : bool;
  post_term_drops : int;
  exhausted : bool;
  causal_span : int;  (** Asynchronous time (longest delivery chain). *)
}

val ok : report -> bool
(** Unique correct leader, everyone decided and terminated, nothing
    left in flight, not exhausted.  (Post-termination drops are
    allowed; they are a reported property, not a failure.) *)

val report_fields : report -> (string * Colring_engine.Sink.value) list
(** The report as flat journal fields — what {!run} emits as its
    run_end record. *)

val run :
  ?seed:int ->
  ?max_deliveries:int ->
  ?sink:Colring_engine.Sink.t ->
  ?snapshot_every:int ->
  name:string ->
  ?expect_max:int array ->
  (int -> 'm Colring_engine.Network.program) ->
  topo:Colring_engine.Topology.t ->
  sched:Colring_engine.Scheduler.t ->
  report
(** [run ~name ?expect_max make_program ~topo ~sched] creates and runs
    the network.  [expect_max] gives the input IDs so the report can
    check the winner is the max-ID node; omit it for anonymous
    algorithms.

    [?seed], [?max_deliveries] and [?sink] mean exactly what they mean
    on {!Colring_core.Election.run}: the sink observes a run_start
    record (workload is always ["-"] here — baselines take explicit
    programs, not workloads), every engine event, counter snapshots
    every [snapshot_every] deliveries plus a final one, and a run_end
    record with {!report_fields}. *)
