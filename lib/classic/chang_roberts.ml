open Colring_engine

type msg = Candidate of int | Announce of int

let cw_out = Port.P1
let cw_in = Port.P0

let program ~id =
  if id < 1 then invalid_arg "Chang_roberts.program: id must be positive";
  let done_ = ref false in
  let start (api : msg Network.api) = api.send cw_out (Candidate id) in
  let wake (api : msg Network.api) =
    let continue = ref true in
    while !continue && not !done_ do
      match api.recv cw_in with
      | None -> continue := false
      | Some (Candidate c) ->
          if c > id then api.send cw_out (Candidate c)
          else if c = id then begin
            (* Own ID survived the full circle: elected. *)
            api.set_output Output.leader;
            api.send cw_out (Announce id)
          end
          (* c < id: swallowed. *)
      | Some (Announce e) ->
          done_ := true;
          if e = id then api.terminate () (* announcement returned *)
          else begin
            api.set_output Output.non_leader;
            api.send cw_out (Announce e);
            api.terminate ()
          end
    done
  in
  let snap =
    Some
      {
        Engine_intf.save = (fun () -> [| (if !done_ then 1 else 0) |]);
        load = (fun a -> done_ := a.(0) = 1);
      }
  in
  { Network.start; wake; inspect = (fun () -> []); snap }

let worst_case_messages ~n = (n * (n + 1) / 2) + n
