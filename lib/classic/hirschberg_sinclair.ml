open Colring_engine

type msg =
  | Probe of { id : int; phase : int; hops : int }
  | Reply of { id : int; phase : int }
  | Announce of int

let program ~id =
  if id < 1 then invalid_arg "Hirschberg_sinclair.program: id must be positive";
  (* [replies] counts replies received for the current phase; a node
     stops being a candidate implicitly by never completing a phase. *)
  let phase = ref 0 in
  let replies = ref 0 in
  let elected = ref false in
  let done_ = ref false in
  let send_probes (api : msg Network.api) =
    let m = Probe { id; phase = !phase; hops = 1 } in
    api.send Port.P0 m;
    api.send Port.P1 m
  in
  let start api = send_probes api in
  let handle (api : msg Network.api) from m =
    let back = from and onward = Port.opposite from in
    match m with
    | Probe p ->
        if p.id > id then begin
          if p.hops < 1 lsl p.phase then
            api.send onward (Probe { p with hops = p.hops + 1 })
          else api.send back (Reply { id = p.id; phase = p.phase })
        end
        else if p.id = id && not !elected then begin
          (* Own probe went all the way around: elected. *)
          elected := true;
          api.set_output Output.leader;
          api.send Port.P1 (Announce id)
        end
        (* p.id < id, or duplicate round-trip of our own probe: swallow. *)
    | Reply r ->
        if r.id <> id then api.send onward (Reply r)
        else if r.phase = !phase then begin
          incr replies;
          if !replies = 2 then begin
            incr phase;
            replies := 0;
            send_probes api
          end
        end
    | Announce e ->
        done_ := true;
        if e = id then api.terminate ()
        else begin
          api.set_output Output.non_leader;
          api.send Port.P1 (Announce e);
          api.terminate ()
        end
  in
  let wake (api : msg Network.api) =
    let continue = ref true in
    while !continue && not !done_ do
      match api.recv Port.P0 with
      | Some m -> handle api Port.P0 m
      | None -> (
          match api.recv Port.P1 with
          | Some m -> handle api Port.P1 m
          | None -> continue := false)
    done
  in
  let snap =
    Some
      {
        Engine_intf.save =
          (fun () ->
            [|
              !phase;
              !replies;
              (if !elected then 1 else 0);
              (if !done_ then 1 else 0);
            |]);
        load =
          (fun a ->
            phase := a.(0);
            replies := a.(1);
            elected := a.(2) = 1;
            done_ := a.(3) = 1);
      }
  in
  {
    Network.start;
    wake;
    inspect = (fun () -> [ ("phase", !phase); ("replies", !replies) ]);
    snap;
  }

let message_bound ~n =
  let rec ceil_log2 acc v = if 1 lsl acc >= v then acc else ceil_log2 (acc + 1) v in
  (8 * n * (ceil_log2 0 n + 1)) + (2 * n)
