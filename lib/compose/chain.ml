open Colring_engine

type 'm phase = First | Second of 'm Network.program

let chain first second =
  let phase = ref First in
  let first_output = ref Output.empty in
  (* The wrapped api shows [first] a terminate that only flips the
     phase, and records outputs so [second] can be built from them. *)
  let wrap (api : 'm Network.api) =
    {
      api with
      set_output =
        (fun o ->
          first_output := o;
          api.set_output o);
      terminate = (fun () -> phase := Second (second !first_output));
    }
  in
  let second_started = ref false in
  let switch_if_needed api =
    match !phase with
    | Second prog when not !second_started ->
        second_started := true;
        prog.Network.start api
    | Second _ | First -> ()
  in
  let start (api : 'm Network.api) =
    first.Network.start (wrap api);
    switch_if_needed api
  in
  let wake (api : 'm Network.api) =
    match !phase with
    | First ->
        first.Network.wake (wrap api);
        switch_if_needed api
    | Second prog -> prog.Network.wake api
  in
  let inspect () =
    let tag prefix kvs = List.map (fun (k, v) -> (prefix ^ k, v)) kvs in
    let second_counters =
      match !phase with
      | First -> []
      | Second prog -> tag "b." (prog.Network.inspect ())
    in
    tag "a." (first.Network.inspect ()) @ second_counters
  in
  (* No codec: the second-phase program is constructed dynamically from
     the first phase's output, so the chain's state is not a fixed set
     of ints. *)
  { Network.start; wake; inspect; snap = None }
