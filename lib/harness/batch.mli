(** Batched election jobs: N independent elections fanned out over
    per-domain {!Colring_engine.Flock}s, with per-instance journals.

    A batch is an array of {!spec}s (one election each).  Jobs are
    grouped by topology — oriented jobs of equal ring size share a
    flock, and so do non-oriented jobs of equal ring size, whose
    scramble is drawn from the ring size alone (a batch is "many
    elections on the same ring"; [colring elect] instead draws a
    scramble per run from its seed) — then split into waves of at most
    [slots] instances.  Waves are distributed over domains by
    {!Colring_runtime.Pool}; each domain keeps one warm flock per
    group, so a long batch's steady state reloads slots instead of
    allocating.

    Everything a job produces — its report, its journal bytes, its
    slot in the result arrays — is keyed by the job's index in the
    spec array, never by the domain or wave that ran it, so reports
    and journals are byte-identical for every [jobs] value and either
    pool mode. *)

type spec = {
  algorithm : Colring_core.Election.algorithm;
  n : int;
  seed : int;  (** Drives IDs, the RNG streams, and the scheduler. *)
  id_max : int;
}

val algorithm_of_name :
  string -> (Colring_core.Election.algorithm, string) result
(** The [colring] algorithm names: algo1, algo2, algo3-doubled,
    algo3-improved, resample. *)

val parse_line : string -> (spec option, string) result
(** One spec-file line: [algo n seed \[id_max\]], fields separated by
    spaces, [#] starting a comment.  [Ok None] for blank/comment
    lines.  [id_max] defaults to [2 * n]; [n >= 2] and [id_max >= n]
    are enforced here so a bad line fails before any job runs. *)

val parse_spec : string -> (spec array, string) result
(** A whole spec file; errors carry the 1-based line number. *)

val ids_of_spec : spec -> int array
(** The job's input IDs, exactly as [colring elect] draws them:
    [Ids.distinct (Rng.create ~seed) ~n ~id_max]. *)

type outcome = {
  reports : Colring_core.Election.report array;  (** In spec order. *)
  latencies : float array;
      (** Seconds from batch start to each job's completion (spec
          order); [[||]] when [now] was not provided. *)
  elapsed : float;  (** Wall-clock for the whole batch; [0.] without [now]. *)
}

val run :
  ?jobs:int ->
  ?mode:Colring_runtime.Pool.mode ->
  ?slots:int ->
  ?events:bool ->
  ?journal:(int -> string -> unit) ->
  ?now:(unit -> float) ->
  sched:(int -> Colring_engine.Scheduler.t) ->
  spec array ->
  outcome
(** [run ~sched specs] executes every job and returns reports in spec
    order.  [sched] receives the job's seed (stateful schedulers are
    built fresh per job, as [colring elect] does).  [jobs] (default 1)
    and [mode] (default [Static]) configure the pool; waves are
    claimed [~chunk:1] since each is minutes of work relative to a
    cursor pop.  [slots] (default 256) bounds instances per flock
    wave.

    [journal] receives each job's JSONL chunk (run_start, snapshots,
    run_end, plus per-event records when [events] — default [false] —
    is set), called in job order after the pool drains; jobs buffer
    privately, so chunks are byte-identical for every [jobs]/[mode].
    When [journal] is absent jobs run against the null sink and pay no
    telemetry cost.

    [now] (e.g. [Unix.gettimeofday]) timestamps completions for the
    latency percentiles; the harness takes it as a parameter so the
    library stays clock-free (the determinism lint patrols wall-clock
    reads). *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [0, 1]; [sorted] ascending.
    Same convention as the bench's transport table ([0.] when
    empty). *)
