(** The shared [--topology] flag: one syntax for every subcommand that
    can run on a graph, with rings as the degree-2 special case.

    A topology names a family instance, not a concrete graph: parsing
    is pure, and {!materialize} builds the
    {!Colring_graph.Gtopology.t} on demand.  Ring topologies are
    special — the driver dispatches them to the legacy ring engine
    path ({!Colring_core.Election}) so their journals and reports stay
    byte-identical to the pre-graph CLI; {!is_ring} is that test. *)

type t =
  | Ring of int option
      (** [None]: take the size from the subcommand's [-n] flag. *)
  | Theta of int  (** Total node count (>= 4), inner nodes split 3 ways. *)
  | K4
  | Bowtie  (** Two triangles sharing a cut vertex (n = 5). *)
  | Random2ec of { n : int; seed : int }
      (** An n-cycle plus [1 + n/4] random chords — 2-edge-connected by
          construction. *)

val parse : string -> (t, string) result
(** Accepts [ring], [ring:N], [theta:N], [k4], [bowtie] (alias
    [two-ear]), [random2ec:N:SEED]; errors name the flag and the
    offending field. *)

val to_string : t -> string
(** Round-trips with {!parse}. *)

val is_ring : t -> bool

val node_count : default_n:int -> t -> int
(** The number of nodes {!materialize} will produce; [default_n]
    resolves [Ring None]. *)

val materialize : default_n:int -> t -> Colring_graph.Gtopology.t
(** Build the graph.  Deterministic: the same [t] (and [default_n] for
    bare rings) always yields the identical topology. *)
