(** Parameter sweeps: run algorithm × workload × ring-size × seed ×
    scheduler grids, collect one measurement per run, and export or
    summarize them.

    The sweep silently skips incompatible cells (an oriented-only
    algorithm on a scrambled workload) and instances whose pulse budget
    would be excessive (anonymous workloads can sample enormous IDs;
    the cost is Θ(n·ID_max)). *)

type measurement = {
  algorithm : string;
  workload : string;
  n : int;
  id_max : int;
  seed : int;
  scheduler : string;
  sends : int;
  expected : int;  (** The paper's closed form for the instance. *)
  deliveries : int;
  ok : bool;  (** {!Colring_core.Election.ok}. *)
}

val election :
  ?id_max_cap:int ->
  ?jobs:int ->
  ?shared_adversary:bool ->
  ?journal:(string -> unit) ->
  algorithms:Colring_core.Election.algorithm list ->
  workloads:Workload.t list ->
  ns:int list ->
  seeds:int list ->
  schedulers:(int -> Colring_engine.Scheduler.t) list ->
  unit ->
  measurement list
(** Run the full grid.  Each cell of
    algorithm × workload × n × seed × scheduler is an independent job:
    it regenerates its instance from the (seed, n) stream and derives
    its scheduler seed from a per-cell {!Colring_stats.Rng.split_at}
    stream, so the measurement list (order included) is bit-identical
    for every [jobs] value — [jobs] (default 1; see
    {!Colring_runtime.Pool.default_jobs} for the [COLRING_JOBS]
    convention) only chooses how many domains sweep the grid.

    [schedulers] receive the per-cell scheduler seed (stateful ones are
    built fresh per cell).  [shared_adversary] (default [false])
    instead passes every cell its raw trial seed, making a seeded
    random scheduler replay the identical delivery sequence across
    cells that share a trial seed — the "same instance, many
    adversaries" comparison of bench E2.  [id_max_cap] (default
    100_000) skips over-sized instances.

    [journal] receives the sweep's JSONL journal: one
    run_start/snapshots/run_end block per executed cell (lifecycle
    records only — per-event lines would dwarf the sweep itself),
    written as per-cell chunks.  Every cell buffers into a private
    {!Colring_engine.Sink.t}, and chunks are handed to [journal] in
    cell-index order after the pool drains, so the journal — like the
    measurement list — is byte-identical for every [jobs] value. *)

val to_csv : measurement list -> string
(** Header plus one line per measurement. *)

type gmeasurement = {
  g_topology : string;  (** {!Topo.to_string} of the family instance. *)
  g_n : int;
  g_covered : int;
  g_walk_len : int;
  g_id_max : int;
  g_seed : int;
  g_scheduler : string;
  g_sends : int;
  g_expected : int;  (** [walk_len * id_max], the walk closed form. *)
  g_deliveries : int;
  g_ok : bool;  (** {!Colring_graph.Gelection.ok}. *)
}

val gelection :
  ?jobs:int ->
  ?journal:(string -> unit) ->
  topologies:Topo.t list ->
  seeds:int list ->
  schedulers:(int -> Colring_engine.Scheduler.t) list ->
  unit ->
  gmeasurement list
(** The graph analogue of {!election}: run the walk election over a
    topology × seed × scheduler grid.  Each cell materializes its
    topology, draws distinct ids with [id_max = 2n] from the
    (topology, seed) stream, and derives its scheduler seed via
    {!Colring_stats.Rng.split_at} — so the measurement list and the
    optional JSONL [journal] (per-cell lifecycle chunks, concatenated
    in cell order) are bit-identical for every [jobs] value. *)

val gelection_to_csv : gmeasurement list -> string

type summary_row = {
  group : string;  (** "algorithm/workload". *)
  group_n : int;
  runs : int;
  ok_runs : int;
  mean_sends : float;
  max_rel_err_vs_expected : float;
}

val summarize : measurement list -> summary_row list
(** Group by (algorithm, workload, n), sorted. *)

val pp_summary : Format.formatter -> summary_row list -> unit
