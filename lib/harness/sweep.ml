open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng
module Summary = Colring_stats.Summary
module Pool = Colring_runtime.Pool

type measurement = {
  algorithm : string;
  workload : string;
  n : int;
  id_max : int;
  seed : int;
  scheduler : string;
  sends : int;
  expected : int;
  deliveries : int;
  ok : bool;
}

let compatible algorithm (workload : Workload.t) =
  match algorithm with
  | Election.Algo1 | Election.Algo2 -> workload.oriented
  | Election.Algo3 _ | Election.Algo3_resample -> true

(* One grid cell, fully described by its coordinates: a cell
   regenerates its own instance from the (seed, n) stream, so cells are
   self-contained jobs that can run on any domain in any order. *)
type cell = {
  c_algorithm : Election.algorithm;
  c_workload : Workload.t;
  c_n : int;
  c_seed : int;
  c_algo_ix : int;
  c_sched_ix : int;
}

(* A cell returns its measurement plus its journal chunk (empty when
   no journal was requested or the cell was skipped).  Each cell owns
   a private buffered sink, so domains never share a writer; the
   caller concatenates chunks in cell-index order, which makes the
   merged journal byte-identical for every [jobs] value. *)
let run_cell ~id_max_cap ~shared_adversary ~schedulers ~journal cell =
  let { c_algorithm; c_workload; c_n = n; c_seed = seed; c_algo_ix; c_sched_ix }
      =
    cell
  in
  let rng = Rng.create ~seed:(seed + (n * 65_537)) in
  let ids, topo = c_workload.generate rng ~n in
  if Ids.id_max ids > id_max_cap then (None, "")
  else begin
    let sched_seed =
      if shared_adversary then seed
      else
        (* After [generate] the stream state encodes (workload, n,
           seed); folding the (algorithm, scheduler) coordinates in via
           [split_at] gives every cell its own adversary stream — a
           random scheduler no longer replays one delivery sequence
           across the whole grid (the trial seed alone used to decide
           it). *)
        Rng.bits
          (Rng.split_at rng ((c_algo_ix * Array.length schedulers) + c_sched_ix))
          62
    in
    let sched = schedulers.(c_sched_ix) sched_seed in
    let buf = if journal then Some (Buffer.create 512) else None in
    let sink =
      match buf with
      | None -> Sink.null
      | Some b ->
          (* Lifecycle records only: a sweep journal is one
             run_start/snapshots/run_end block per cell, not the
             Θ(n·ID_max) event stream of every cell. *)
          Sink.jsonl_buffer ~events:false b
    in
    let r =
      Election.run_report c_algorithm ~topo ~ids ~sched ~sink ~seed
        ~workload:c_workload.name
    in
    ( Some
        {
          algorithm = Election.algorithm_name c_algorithm;
          workload = c_workload.name;
          n;
          id_max = r.id_max;
          seed;
          scheduler = sched.Scheduler.name;
          sends = r.sends;
          expected = r.expected_sends;
          deliveries = r.deliveries;
          ok = Election.ok r;
        },
      match buf with None -> "" | Some b -> Buffer.contents b )
  end

let election ?(id_max_cap = 100_000) ?(jobs = 1) ?(shared_adversary = false)
    ?journal ~algorithms ~workloads ~ns ~seeds ~schedulers () =
  let schedulers = Array.of_list schedulers in
  let n_sched = Array.length schedulers in
  (* Materialize the grid in the canonical nested order; the result
     array is indexed by this enumeration, so the output order (and
     content — every cell owns its RNG streams) is independent of the
     domain count. *)
  let cells = ref [] in
  List.iteri
    (fun c_algo_ix c_algorithm ->
      List.iter
        (fun (c_workload : Workload.t) ->
          if compatible c_algorithm c_workload then
            List.iter
              (fun c_n ->
                List.iter
                  (fun c_seed ->
                    for c_sched_ix = 0 to n_sched - 1 do
                      cells :=
                        {
                          c_algorithm;
                          c_workload;
                          c_n;
                          c_seed;
                          c_algo_ix;
                          c_sched_ix;
                        }
                        :: !cells
                    done)
                  seeds)
              ns)
        workloads)
    algorithms;
  let cells = Array.of_list (List.rev !cells) in
  let out =
    Pool.map ~jobs (Array.length cells) (fun i ->
        run_cell ~id_max_cap ~shared_adversary ~schedulers
          ~journal:(journal <> None) cells.(i))
  in
  (match journal with
  | None -> ()
  | Some write ->
      Array.iter (fun (_, chunk) -> if chunk <> "" then write chunk) out);
  List.filter_map (fun (m, _) -> m) (Array.to_list out)

(* ------------------------------------------------------------------ *)
(* The graph sweep: walk election over topology families *)

type gmeasurement = {
  g_topology : string;
  g_n : int;
  g_covered : int;
  g_walk_len : int;
  g_id_max : int;
  g_seed : int;
  g_scheduler : string;
  g_sends : int;
  g_expected : int;
  g_deliveries : int;
  g_ok : bool;
}

(* One walk-election cell, self-contained like its ring counterpart:
   ids regenerate from the (topology, seed) stream and the scheduler
   seed folds in the scheduler index via [split_at], so the grid is
   bit-identical for every [jobs] value. *)
let run_gcell ~schedulers ~journal (topo_spec, seed, sched_ix) =
  let g = Topo.materialize ~default_n:8 topo_spec in
  let module G = Colring_graph.Gtopology in
  let n = G.n g in
  let rng = Rng.create ~seed:(seed + (n * 65_537)) in
  let ids = Ids.distinct rng ~n ~id_max:(2 * n) in
  let sched_seed = Rng.bits (Rng.split_at rng sched_ix) 62 in
  let sched = (schedulers : _ array).(sched_ix) sched_seed in
  let buf = if journal then Some (Buffer.create 512) else None in
  let sink =
    match buf with
    | None -> Sink.null
    | Some b -> Sink.jsonl_buffer ~events:false b
  in
  let plan = Colring_graph.Gelection.plan g in
  let r =
    Colring_graph.Gelection.run_report plan ~ids ~sched ~sink ~seed
      ~workload:(Topo.to_string topo_spec)
  in
  ( {
      g_topology = Topo.to_string topo_spec;
      g_n = n;
      g_covered = r.Colring_graph.Gelection.covered;
      g_walk_len = r.walk_len;
      g_id_max = r.id_max;
      g_seed = seed;
      g_scheduler = sched.Scheduler.name;
      g_sends = r.sends;
      g_expected = r.expected_sends;
      g_deliveries = r.deliveries;
      g_ok = Colring_graph.Gelection.ok r;
    },
    match buf with None -> "" | Some b -> Buffer.contents b )

let gelection ?(jobs = 1) ?journal ~topologies ~seeds ~schedulers () =
  let schedulers = Array.of_list schedulers in
  let cells = ref [] in
  List.iter
    (fun topo_spec ->
      List.iter
        (fun seed ->
          for sched_ix = 0 to Array.length schedulers - 1 do
            cells := (topo_spec, seed, sched_ix) :: !cells
          done)
        seeds)
    topologies;
  let cells = Array.of_list (List.rev !cells) in
  let out =
    Pool.map ~jobs (Array.length cells) (fun i ->
        run_gcell ~schedulers ~journal:(journal <> None) cells.(i))
  in
  (match journal with
  | None -> ()
  | Some write ->
      Array.iter (fun (_, chunk) -> if chunk <> "" then write chunk) out);
  List.map fst (Array.to_list out)

let gelection_to_csv ms =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "topology,n,covered,walk_len,id_max,seed,scheduler,sends,expected,deliveries,ok\n";
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%d,%d,%s,%d,%d,%d,%b\n" m.g_topology m.g_n
           m.g_covered m.g_walk_len m.g_id_max m.g_seed m.g_scheduler m.g_sends
           m.g_expected m.g_deliveries m.g_ok))
    ms;
  Buffer.contents buf

let to_csv ms =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "algorithm,workload,n,id_max,seed,scheduler,sends,expected,deliveries,ok\n";
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%d,%s,%d,%d,%d,%b\n" m.algorithm
           m.workload m.n m.id_max m.seed m.scheduler m.sends m.expected
           m.deliveries m.ok))
    ms;
  Buffer.contents buf

type summary_row = {
  group : string;
  group_n : int;
  runs : int;
  ok_runs : int;
  mean_sends : float;
  max_rel_err_vs_expected : float;
}

(* Per-group accumulator for the single-pass scan below. *)
type group_acc = {
  mutable g_runs : int;
  mutable g_ok : int;
  g_sends : Summary.t;
  mutable g_max_rel_err : float;
}

let summarize ms =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun m ->
      let key = (m.algorithm ^ "/" ^ m.workload, m.n) in
      let acc =
        match Hashtbl.find_opt tbl key with
        | Some acc -> acc
        | None ->
            let acc =
              {
                g_runs = 0;
                g_ok = 0;
                g_sends = Summary.create ();
                g_max_rel_err = 0.;
              }
            in
            Hashtbl.add tbl key acc;
            acc
      in
      acc.g_runs <- acc.g_runs + 1;
      if m.ok then acc.g_ok <- acc.g_ok + 1;
      Summary.add_int acc.g_sends m.sends;
      let expected = float_of_int m.expected in
      let rel =
        Float.abs (float_of_int m.sends -. expected)
        /. Float.max 1. (Float.abs expected)
      in
      if rel > acc.g_max_rel_err then acc.g_max_rel_err <- rel)
    ms;
  Hashtbl.fold
    (fun (group, group_n) acc rows ->
      {
        group;
        group_n;
        runs = acc.g_runs;
        ok_runs = acc.g_ok;
        mean_sends = Summary.mean acc.g_sends;
        max_rel_err_vs_expected = acc.g_max_rel_err;
      }
      :: rows)
    tbl []
  |> List.sort (fun a b -> compare (a.group, a.group_n) (b.group, b.group_n))

let pp_summary ppf rows =
  Format.fprintf ppf "@[<v>%-32s %6s %6s %6s %12s %10s@,"
    "algorithm/workload" "n" "runs" "ok" "mean sends" "maxrelerr";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-32s %6d %6d %6d %12.1f %10.6f@," r.group r.group_n
        r.runs r.ok_runs r.mean_sends r.max_rel_err_vs_expected)
    rows;
  Format.fprintf ppf "@]"
