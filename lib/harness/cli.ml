(* Shared command-line validation.  Every colring entry point (the
   cmdliner driver, the bench runner) funnels its numeric flags through
   these checks so `-j 0`, `-n -3` and `--max-deliveries 0` fail the
   same way everywhere: a one-line message naming the flag, not a
   backtrace from deep inside a pool or topology constructor. *)

let err flag v what = Error (Printf.sprintf "%s %d: %s" flag v what)

let positive ~flag v =
  if v >= 1 then Ok v else err flag v "must be at least 1"

let non_negative ~flag v =
  if v >= 0 then Ok v else err flag v "must not be negative"

let ring_size ~flag v =
  if v >= 2 then Ok v else err flag v "ring size must be at least 2"

let jobs ~flag = function
  | None -> Ok (Colring_runtime.Pool.default_jobs ())
  | Some v -> positive ~flag v

let exit_or ~cmd = function
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "%s: %s\n" cmd msg;
      exit 2
