open Colring_engine
module Election = Colring_core.Election
module Ids = Colring_core.Ids
module Pool = Colring_runtime.Pool
module Rng = Colring_stats.Rng

type spec = {
  algorithm : Election.algorithm;
  n : int;
  seed : int;
  id_max : int;
}

let algorithm_of_name = function
  | "algo1" -> Ok Election.Algo1
  | "algo2" -> Ok Election.Algo2
  | "algo3-doubled" -> Ok (Election.Algo3 Colring_core.Algo3.Doubled)
  | "algo3-improved" -> Ok (Election.Algo3 Colring_core.Algo3.Improved)
  | "resample" -> Ok Election.Algo3_resample
  | other -> Error (Printf.sprintf "unknown algorithm %S" other)

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  with
  | [] -> Ok None
  | algo :: n :: seed :: rest -> (
      match algorithm_of_name algo with
      | Error msg -> Error msg
      | Ok algorithm -> (
          let int_of name s =
            match int_of_string_opt s with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "%s must be an integer, got %S" name s)
          in
          let ( let* ) = Result.bind in
          let* n = int_of "n" n in
          let* seed = int_of "seed" seed in
          let* id_max =
            match rest with
            | [] -> Ok (2 * n)
            | [ m ] -> int_of "id_max" m
            | _ -> Error "too many fields (want: algo n seed [id_max])"
          in
          if n < 2 then Error "n must be >= 2"
          else if id_max < n then Error "id_max must be >= n"
          else Ok (Some { algorithm; n; seed; id_max })))
  | _ -> Error "too few fields (want: algo n seed [id_max])"

let parse_spec text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> (
        match parse_line line with
        | Ok None -> go acc (lineno + 1) rest
        | Ok (Some s) -> go (s :: acc) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go [] 1 lines

let ids_of_spec s =
  Ids.distinct (Rng.create ~seed:s.seed) ~n:s.n ~id_max:s.id_max

let oriented_algorithm = function
  | Election.Algo1 | Election.Algo2 -> true
  | Election.Algo3 _ | Election.Algo3_resample -> false

(* All instances in a flock share one topology, so non-oriented jobs
   of ring size [n] share one scramble drawn from [n] (unlike
   [colring elect], whose scramble is drawn per run from its seed —
   batches are "many elections on the same ring"). *)
let topology ~oriented ~n =
  if oriented then Topology.oriented n
  else Topology.random_non_oriented (Rng.create ~seed:n) n

type outcome = {
  reports : Election.report array;
  latencies : float array;
  elapsed : float;
}

(* One wave: consecutive jobs of one topology group, at most the
   flock's slot count, all run on whichever domain claims the wave. *)
type wave = { w_oriented : bool; w_n : int; w_idxs : int array }

let waves_of_specs specs ~slots =
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i s ->
      let key = (oriented_algorithm s.algorithm, s.n) in
      match Hashtbl.find_opt groups key with
      | Some r -> r := i :: !r
      | None ->
          Hashtbl.add groups key (ref [ i ]);
          order := key :: !order)
    specs;
  let waves = ref [] in
  List.iter
    (fun ((oriented, n) as key) ->
      let idxs = Array.of_list (List.rev !(Hashtbl.find groups key)) in
      let count = Array.length idxs in
      let w = ref 0 in
      while !w < count do
        let len = min slots (count - !w) in
        waves :=
          { w_oriented = oriented; w_n = n; w_idxs = Array.sub idxs !w len }
          :: !waves;
        w := !w + len
      done)
    (List.rev !order);
  Array.of_list (List.rev !waves)

(* Flocks are single-domain state, so each domain keeps its own cache
   of one warm flock per (oriented, n) group — the steady state of a
   long batch or a job server reloads slots instead of allocating. *)
let flock_cache : (bool * int, Flock.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let flock_for ~slots ~oriented ~n =
  let cache = Domain.DLS.get flock_cache in
  match Hashtbl.find_opt cache (oriented, n) with
  | Some fl -> fl
  | None ->
      let fl = Flock.create ~slots (topology ~oriented ~n) in
      Hashtbl.add cache (oriented, n) fl;
      fl

let run ?(jobs = 1) ?(mode = Pool.Static) ?(slots = 256) ?(events = false)
    ?journal ?now ~sched specs =
  let count = Array.length specs in
  let t0 = match now with Some f -> f () | None -> 0. in
  let reports = Array.make count None in
  let latencies =
    match now with Some _ -> Array.make count 0. | None -> [||]
  in
  let buffers =
    match journal with
    | Some _ -> Array.init count (fun _ -> Buffer.create 256)
    | None -> [||]
  in
  let sink_for i =
    match journal with
    | Some _ -> Sink.jsonl_buffer ~events buffers.(i)
    | None -> Sink.null
  in
  let waves = waves_of_specs specs ~slots in
  let run_wave w =
    let wave = waves.(w) in
    let fl = flock_for ~slots ~oriented:wave.w_oriented ~n:wave.w_n in
    let wjobs =
      Array.map
        (fun i ->
          let s = specs.(i) in
          Election.job ~seed:s.seed ~sink:(sink_for i) s.algorithm
            ~ids:(ids_of_spec s) ~sched:(sched s.seed))
        wave.w_idxs
    in
    let on_complete =
      match now with
      | None -> None
      | Some f ->
          Some (fun local _report -> latencies.(wave.w_idxs.(local)) <- f () -. t0)
    in
    let rs =
      Election.run_flock ~flock:fl ?on_complete
        ~topo:(Flock.topology fl) wjobs
    in
    Array.iteri (fun local r -> reports.(wave.w_idxs.(local)) <- Some r) rs
  in
  Pool.run ~mode ~chunk:1 ~jobs (Array.length waves) run_wave;
  (match journal with
  | None -> ()
  | Some emit -> Array.iteri (fun i b -> emit i (Buffer.contents b)) buffers);
  {
    reports =
      Array.map
        (function Some r -> r | None -> assert false (* every wave ran *))
        reports;
    latencies;
    elapsed = (match now with Some f -> f () -. t0 | None -> 0.);
  }

let percentile sorted p =
  let m = Array.length sorted in
  if m = 0 then 0.
  else sorted.(min (m - 1) (int_of_float (p *. float_of_int m)))
