module G = Colring_graph.Gtopology
module Rng = Colring_stats.Rng

type t =
  | Ring of int option
  | Theta of int
  | K4
  | Bowtie
  | Random2ec of { n : int; seed : int }

let to_string = function
  | Ring None -> "ring"
  | Ring (Some n) -> Printf.sprintf "ring:%d" n
  | Theta n -> Printf.sprintf "theta:%d" n
  | K4 -> "k4"
  | Bowtie -> "bowtie"
  | Random2ec { n; seed } -> Printf.sprintf "random2ec:%d:%d" n seed

let is_ring = function Ring _ -> true | _ -> false

let syntax =
  "expected ring[:N], theta:N, k4, bowtie (alias two-ear), or random2ec:N:SEED"

let parse s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_field name v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> err "--topology %s: %s %S is not an integer" s name v
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ "ring" ] -> Ok (Ring None)
  | [ "ring"; n ] ->
      let* n = int_field "ring size" n in
      if n >= 2 then Ok (Ring (Some n))
      else err "--topology %s: ring size must be at least 2" s
  | [ "theta"; n ] ->
      let* n = int_field "node count" n in
      if n >= 4 then Ok (Theta n)
      else err "--topology %s: a theta graph needs at least 4 nodes" s
  | [ "k4" ] -> Ok K4
  | [ "bowtie" ] | [ "two-ear" ] -> Ok Bowtie
  | [ "random2ec"; n; seed ] ->
      let* n = int_field "node count" n in
      let* seed = int_field "seed" seed in
      if n >= 4 then Ok (Random2ec { n; seed })
      else err "--topology %s: random2ec needs at least 4 nodes" s
  | _ -> err "--topology %s: %s" s syntax

let node_count ~default_n = function
  | Ring None -> default_n
  | Ring (Some n) -> n
  | Theta n -> n
  | K4 -> 4
  | Bowtie -> 5
  | Random2ec { n; _ } -> n

let materialize ~default_n = function
  | Ring _ as t -> G.ring (node_count ~default_n t)
  | Theta n ->
      (* n nodes total: two hubs plus n-2 inner nodes spread as evenly
         as possible over the three paths (at most one path empty). *)
      let inner = n - 2 in
      G.theta ((inner + 2) / 3) ((inner + 1) / 3) (inner / 3)
  | K4 -> G.complete 4
  | Bowtie -> G.bowtie ()
  | Random2ec { n; seed } ->
      G.cycle_with_chords (Rng.create ~seed) ~n ~chords:(1 + (n / 4))
