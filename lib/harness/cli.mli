(** Shared validation for command-line flags.

    The cmdliner driver ([bin/colring.ml]) and the bench runner both
    parse numeric flags; these helpers give them one set of rules and
    one error shape ([Error "<flag> <value>: <reason>"]), so a bad
    [-j], [-n] or [--max-deliveries] is rejected up front instead of
    surfacing as a backtrace from whatever constructor first chokes on
    it. *)

val positive : flag:string -> int -> (int, string) result
(** [>= 1] — worker counts, delivery budgets, cadences. *)

val non_negative : flag:string -> int -> (int, string) result
(** [>= 0] — latencies, jitters, anything where zero means "off". *)

val ring_size : flag:string -> int -> (int, string) result
(** [>= 2] — a ring needs two nodes for its links to exist. *)

val jobs : flag:string -> int option -> (int, string) result
(** [None] resolves to {!Colring_runtime.Pool.default_jobs};
    [Some v] must be positive. *)

val exit_or : cmd:string -> ('a, string) result -> 'a
(** Unwrap, or print ["<cmd>: <msg>"] to stderr and [exit 2] — the
    conventional usage-error exit for both entry points. *)
