(** Shared-memory transport backend: one OCaml domain per node.

    The content-oblivious channel made literal — pulses are
    indistinguishable, so each directed link is a single atomic
    counter: sending is an increment by the (unique) sender, delivery
    a CAS-decrement by the (unique) receiver.  Nodes run concurrently
    (built on {!Colring_runtime.Pool}, which joins every domain even
    when a node program raises); the realised delivery order is
    appended to a lock-protected schedule whose total order respects
    send/deliver causality, so the returned
    {!Colring_engine.Transport.trace} always replays cleanly on the
    simulator.

    Fault injection sleeps for {!Colring_engine.Transport.delay_us}
    microseconds before a pulse is consumed; delays on the two links
    into one node serialise through that node's loop (a modelling
    simplification — each node consumes one delivery at a time, as in
    the simulator).

    Quiescence is detected by a single live-token counter (pending
    starts + unconsumed pulses + in-progress activations), which hits
    zero exactly when no activation can ever run again. *)

val run :
  ?seed:int ->
  ?max_deliveries:int ->
  ?faults:Colring_engine.Transport.faults ->
  Colring_engine.Topology.t ->
  (int -> Colring_engine.Network.pulse Colring_engine.Network.program) ->
  Colring_engine.Transport.trace
(** Defaults mirror {!Colring_engine.Network.run}: seed 0, delivery
    budget 50M (exceeding it sets [exhausted] and stops every node).
    Spawns [n] domains regardless of [COLRING_JOBS].  A raising node
    program aborts the run cleanly (all domains joined) and re-raises
    in the caller. *)

val transport : unit -> Colring_engine.Transport.t
(** {!run} as a {!Colring_engine.Transport.t} named ["domains"]. *)
