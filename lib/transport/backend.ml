open Colring_engine
module Election = Colring_core.Election

(* Domain-safety contract (enforced by the shared-state lint,
   tools/lint/lint_domain.ml): this orchestrator owns no cross-domain
   state — it runs the live backend, then replays on the calling
   domain.  All real sharing lives in domains.ml behind its
   shared.sexp entry (atomic pulse counters, mutex-guarded schedule
   recorder, owner-indexed result arrays); the socket backend shares
   nothing but file descriptors across processes. *)

type spec = Sim | Domains | Socket of { tcp : bool }

let name = function
  | Sim -> "sim"
  | Domains -> "domains"
  | Socket { tcp = false } -> "socket"
  | Socket { tcp = true } -> "socket-tcp"

let all = [ Sim; Domains; Socket { tcp = false }; Socket { tcp = true } ]

let of_name s =
  match s with
  | "sim" -> Ok Sim
  | "domains" -> Ok Domains
  | "socket" -> Ok (Socket { tcp = false })
  | "socket-tcp" -> Ok (Socket { tcp = true })
  | _ ->
      Error
        (Printf.sprintf
           "unknown backend %S (expected one of: %s)" s
           (String.concat ", " (List.map name all)))

let transport ?sched = function
  | Sim -> Transport.sim ?sched ()
  | Domains -> Domains.transport ()
  | Socket { tcp } -> Socket.transport ~tcp ()

type elect_result = {
  report : Election.report;
  live : Transport.trace;
  verified : bool;
}

let elect ?(seed = 0) ?max_deliveries ?(faults = Transport.no_fault)
    ?(sink = Sink.null) ?workload ?snapshot_every ?sched spec algorithm ~topo
    ~ids =
  let make_program v = Election.program_of algorithm ~id:ids.(v) in
  let t = transport ?sched spec in
  let live = t.Transport.run ~seed ?max_deliveries ~faults topo make_program in
  (* The journal and report come from the schedule replayed on the
     simulator — the one set of semantics every backend answers to.
     Recording the replay's own picks closes the loop: [verified]
     means the replay reproduced outputs, counters, termination order
     and the schedule itself. *)
  let replay_sched, recorded =
    Transport.recording
      (Scheduler.of_schedule ~name:live.Transport.scheduler
         live.Transport.schedule)
  in
  let report, net =
    Election.run ~seed ?max_deliveries ~sink ?workload ?snapshot_every
      algorithm ~topo ~ids ~sched:replay_sched
  in
  let replayed =
    {
      live with
      Transport.schedule = recorded ();
      outputs = Network.outputs net;
      sends = report.Election.sends;
      deliveries = report.Election.deliveries;
      drops = report.Election.post_term_deliveries;
      quiescent = report.Election.quiescent;
      all_terminated = report.Election.all_terminated;
      exhausted = report.Election.exhausted;
      termination_order = Network.termination_order net;
    }
  in
  { report; live; verified = Transport.equivalent live replayed }
