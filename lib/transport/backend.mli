(** Backend selection and the cross-checked election driver.

    This is the glue [colring elect --backend] stands on: pick a
    transport, run the election live on it, then re-run the recorded
    schedule through the simulator via
    {!Colring_engine.Scheduler.of_schedule} — the replay produces the
    journal and the {!Colring_core.Election.report}, and
    {!elect_result.verified} says whether the replay reproduced the
    live run exactly ({!Colring_engine.Transport.equivalent}).  An
    honest backend always verifies; a lying one cannot, because the
    simulator is the single source of semantics. *)

type spec = Sim | Domains | Socket of { tcp : bool }

val name : spec -> string
val all : spec list

val of_name : string -> (spec, string) result
(** ["sim"], ["domains"], ["socket"], ["socket-tcp"]; [Error] with the
    expected spellings otherwise. *)

val transport :
  ?sched:Colring_engine.Scheduler.t -> spec -> Colring_engine.Transport.t
(** [sched] only drives the fault-free [Sim] backend (the concurrent
    backends realise their own schedules). *)

type elect_result = {
  report : Colring_core.Election.report;
      (** Measured on the simulator replay of the live schedule. *)
  live : Colring_engine.Transport.trace;  (** The backend's own run. *)
  verified : bool;
      (** Replay reproduced outputs, counters, termination order and
          schedule — the mechanical cross-backend honesty check. *)
}

val elect :
  ?seed:int ->
  ?max_deliveries:int ->
  ?faults:Colring_engine.Transport.faults ->
  ?sink:Colring_engine.Sink.t ->
  ?workload:string ->
  ?snapshot_every:int ->
  ?sched:Colring_engine.Scheduler.t ->
  spec ->
  Colring_core.Election.algorithm ->
  topo:Colring_engine.Topology.t ->
  ids:int array ->
  elect_result
(** Runs the election live on the chosen backend, then replays the
    recorded schedule through {!Colring_core.Election.run} (which
    emits the journal to [sink] and computes the report).  With
    [spec = Sim] and no faults this is the ordinary simulator run,
    journaled identically to the direct path — plus the verification
    pass. *)
