(* Real-process transport: one forked child per node, pulse framing
   over local sockets (AF_UNIX socketpairs, or 127.0.0.1 TCP with
   [~tcp:true]).  The wire format is the model's whole point made
   concrete: a pulse is ONE BYTE whose only information is which port
   it crosses — there is nothing else to put on the wire.

   Framing (all single bytes):

     coordinator -> child   0x00/0x01  pulse arrival on that local port
                            0xF0       stop; child answers with its
                                       fixed-size report and exits
     child -> coordinator   0x00/0x01  pulse sent from that local port
                            0xFA       activation finished (ack)
                            0xFB       this node just terminated
                            0xFC       arrival while terminated (drop
                                       ack, in place of 0xFA)
                            0xFE       node program raised

   Every activation (the start, and each forwarded pulse) is answered
   by exactly one ack after the activation's sends, so the byte stream
   from a child is the concatenation, in activation order, of
   [sends... (0xFB)? ack].  The single-threaded coordinator therefore
   sees a send only after recording the delivery that caused it, which
   makes the recorded schedule causally consistent and replayable via
   [Scheduler.of_schedule] (same argument as the domains backend, with
   socket FIFO order standing in for the mutex).

   Latency/jitter run in the coordinator: a pulse read from its sender
   is held for [Transport.delay_us] microseconds before being
   forwarded.  Same-link reordering under jitter is unobservable —
   pulses are indistinguishable — which is why injected faults still
   replay exactly.

   The coordinator never trusts progress: a wall-clock deadline kills
   every child (SIGKILL) and raises [Failure] if the run wedges. *)

module Rng = Colring_stats.Rng
open Colring_engine

let byte_ack = 0xFA
let byte_term = 0xFB
let byte_drop = 0xFC
let byte_err = 0xFE
let byte_stop = 0xF0
let report_len = 24

(* ------------------------------------------------------------------ *)
(* Child side *)

let rec write_all fd b off len =
  if len > 0 then begin
    let w = Unix.write fd b off len in
    write_all fd b (off + w) (len - w)
  end

let write_byte fd c =
  let b = Bytes.make 1 (Char.chr c) in
  write_all fd b 0 1

let rec read_exactly fd b off len =
  if len > 0 then begin
    let r = Unix.read fd b off len in
    if r = 0 then failwith "Transport.socket: peer closed";
    read_exactly fd b (off + r) (len - r)
  end

let read_byte fd =
  let b = Bytes.create 1 in
  read_exactly fd b 0 1;
  Char.code (Bytes.get b 0)

let int32_be b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 3) (Char.chr (v land 0xFF))

let get_int32_be b off =
  let u =
    (Char.code (Bytes.get b off) lsl 24)
    lor (Char.code (Bytes.get b (off + 1)) lsl 16)
    lor (Char.code (Bytes.get b (off + 2)) lsl 8)
    lor Char.code (Bytes.get b (off + 3))
  in
  (* Sign-extend: output values may be negative. *)
  if u land 0x8000_0000 <> 0 then u - 0x1_0000_0000 else u

(* Fixed-size final report: role, claimed cw port, termination flag,
   output value (if any), sends, mailbox backlog.  [values] lists are
   not carried — the transport serves the election algorithms, which
   never set them. *)
let encode_report ~(output : Output.t) ~terminated ~sends ~backlog =
  let b = Bytes.make report_len '\000' in
  Bytes.set b 0
    (Char.chr
       (match output.Output.role with
       | Output.Leader -> 0
       | Output.Non_leader -> 1
       | Output.Undecided -> 2));
  Bytes.set b 1
    (Char.chr
       (match output.Output.cw_port with
       | Some p -> Port.index p
       | None -> 0xFF));
  Bytes.set b 2 (Char.chr (if terminated then 1 else 0));
  (match output.Output.value with
  | Some v ->
      Bytes.set b 3 '\001';
      int32_be b 4 v
  | None -> Bytes.set b 3 '\000');
  int32_be b 8 sends;
  int32_be b 12 backlog;
  b

let decode_report b =
  let role =
    match Char.code (Bytes.get b 0) with
    | 0 -> Output.Leader
    | 1 -> Output.Non_leader
    | _ -> Output.Undecided
  in
  let cw_port =
    match Char.code (Bytes.get b 1) with
    | 0 -> Some Port.P0
    | 1 -> Some Port.P1
    | _ -> None
  in
  let terminated = Char.code (Bytes.get b 2) = 1 in
  let value =
    if Char.code (Bytes.get b 3) = 1 then Some (get_int32_be b 4) else None
  in
  let sends = get_int32_be b 8 in
  let backlog = get_int32_be b 12 in
  ( { Output.role; cw_port; value; values = [] },
    terminated,
    sends,
    backlog )

(* The child never returns: it runs its node's program against the
   socket api until told to stop, then reports and [_exit]s (skipping
   at_exit / inherited channel flushing). *)
let child_main fd ~seed ~v program =
  let exit_code = ref 0 in
  (try
     let rng = Rng.split_at (Rng.create ~seed) v in
     let mailbox = [| 0; 0 |] in
     let sends = ref 0 in
     let term = ref false in
     let output = ref Output.empty in
     let api =
       {
         Network.node = v;
         recv =
           (fun p ->
             let i = Port.index p in
             if mailbox.(i) = 0 then None
             else begin
               mailbox.(i) <- mailbox.(i) - 1;
               Some Network.pulse
             end);
         recv_pulse =
           (fun p ->
             let i = Port.index p in
             if mailbox.(i) = 0 then false
             else begin
               mailbox.(i) <- mailbox.(i) - 1;
               true
             end);
         peek =
           (fun p ->
             if mailbox.(Port.index p) = 0 then None else Some Network.pulse);
         pending = (fun p -> mailbox.(Port.index p));
         send =
           (fun p _ ->
             if !term then failwith "Transport.socket: send after terminate";
             incr sends;
             write_byte fd (Port.index p));
         set_output = (fun o -> output := o);
         terminate =
           (fun () ->
             if not !term then begin
               term := true;
               write_byte fd byte_term
             end);
         rng;
       }
     in
     program.Network.start api;
     write_byte fd byte_ack;
     let running = ref true in
     while !running do
       match read_byte fd with
       | (0 | 1) as pi ->
           if !term then write_byte fd byte_drop
           else begin
             mailbox.(pi) <- mailbox.(pi) + 1;
             program.Network.wake api;
             write_byte fd byte_ack
           end
       | b when b = byte_stop ->
           write_all fd
             (encode_report ~output:!output ~terminated:!term ~sends:!sends
                ~backlog:(mailbox.(0) + mailbox.(1)))
             0 report_len;
           running := false
       | b ->
           failwith (Printf.sprintf "Transport.socket: bad opcode %#x" b)
     done
   with _ ->
     exit_code := 1;
     (try write_byte fd byte_err with _ -> ()));
  Unix._exit !exit_code

(* ------------------------------------------------------------------ *)
(* Coordinator side *)

type child = {
  pid : int;
  fd : Unix.file_descr;
  pending : int Queue.t; (* activation tags, oldest first *)
  mutable report : (Output.t * bool * int * int) option;
}

(* In-transit pulses held for their fault delay.  Traffic volumes are
   small (a few thousand pulses at most in flight), so an unsorted
   list with a linear min-scan beats carrying a heap. *)
type flight = { due : float; fseq : int; link : int }

(* Earliest-due pulse (forward order breaking due ties), if it is
   already due; paired with the remaining list. *)
let pop_due flights now =
  let earlier a b = a.due < b.due || (a.due = b.due && a.fseq < b.fseq) in
  let best =
    List.fold_left
      (fun acc f ->
        match acc with Some b when earlier b f -> acc | _ -> Some f)
      None flights
  in
  match best with
  | Some f when f.due <= now ->
      Some (f, List.filter (fun g -> g.fseq <> f.fseq) flights)
  | _ -> None

let next_due flights =
  List.fold_left
    (fun a f -> match a with None -> Some f.due | Some d -> Some (min d f.due))
    None flights

let kill_children children =
  Array.iter
    (fun c ->
      (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    children;
  Array.iter
    (fun c -> try ignore (Unix.waitpid [] c.pid) with Unix.Unix_error _ -> ())
    children

(* [Unix.fork] is forbidden for the rest of the process lifetime once
   any domain has ever been spawned (OCaml 5 runtime rule) — so a
   socket-backend run must precede every domains-backend run sharing
   its process.  Translate the runtime's message into that advice. *)
let fork_node () =
  try Unix.fork ()
  with Failure msg ->
    failwith
      ("Transport.socket: " ^ msg
     ^ " — the socket backend must run before any domains-backend (or \
        other Domain.spawn) use in the same process; run it in its own \
        process instead")

(* Reap an array of pids unconditionally (partial-spawn cleanup). *)
let kill_pids pids =
  Array.iter
    (fun pid ->
      if pid > 0 then (
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()))
    pids

let spawn_ring ~tcp ~seed ~n make_program =
  if not tcp then begin
    let pids = Array.make n 0 in
    let fds = Array.make n Unix.stdin in
    (try
       for v = 0 to n - 1 do
         let coord_fd, child_fd =
           Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
         in
         match fork_node () with
         | 0 ->
             (* Keep only our own end: coordinator-side fds inherited
                from earlier iterations must not pin peers open. *)
             Unix.close coord_fd;
             for u = 0 to v - 1 do
               Unix.close fds.(u)
             done;
             child_main child_fd ~seed ~v (make_program v)
         | pid ->
             Unix.close child_fd;
             pids.(v) <- pid;
             fds.(v) <- coord_fd
       done
     with e ->
       kill_pids pids;
       raise e);
    (pids, fds)
  end
  else begin
    let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let pids = Array.make n 0 in
    (try
       Unix.setsockopt listener Unix.SO_REUSEADDR true;
       Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
       Unix.listen listener n;
       let addr = Unix.getsockname listener in
       for v = 0 to n - 1 do
         match fork_node () with
         | 0 ->
             Unix.close listener;
             let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
             Unix.connect fd addr;
             Unix.setsockopt fd Unix.TCP_NODELAY true;
             (* Identify ourselves: accept order is arbitrary. *)
             write_byte fd v;
             child_main fd ~seed ~v (make_program v)
         | pid -> pids.(v) <- pid
       done;
       let fds = Array.make n Unix.stdin in
       for _ = 1 to n do
         (* A child that dies before connecting would hang accept:
            bound the handshake. *)
         (match Unix.select [ listener ] [] [] 10. with
         | [], _, _ -> failwith "Transport.socket: TCP handshake timed out"
         | _ -> ());
         let fd, _ = Unix.accept listener in
         Unix.setsockopt fd Unix.TCP_NODELAY true;
         let v = read_byte fd in
         fds.(v) <- fd
       done;
       Unix.close listener;
       (pids, fds)
     with e ->
       (try Unix.close listener with Unix.Unix_error _ -> ());
       kill_pids pids;
       raise e)
  end

let run ?(seed = 0) ?(max_deliveries = 50_000_000)
    ?(faults = Transport.no_fault) ?(tcp = false) ?(deadline_s = 120.) topo
    make_program =
  Topology.check topo;
  let n = Topology.n topo in
  (* Anything buffered on inherited channels would be duplicated by
     every child's exit path. *)
  flush stdout;
  flush stderr;
  let pids, fds = spawn_ring ~tcp ~seed ~n make_program in
  let children =
    Array.init n (fun v ->
        let pending = Queue.create () in
        Queue.push (v - n) pending;
        { pid = pids.(v); fd = fds.(v); pending; report = None })
  in
  let sched = Transport.recorder () in
  let deliveries = ref 0 in
  let drops = ref 0 in
  let terms_rev = ref [] in
  let outstanding = ref n (* unacked activations; the n starts first *) in
  let flights = ref [] in
  let fseq = ref 0 in
  let sent_on = Array.make (Topology.num_links topo) 0 in
  let exhausted = ref false in
  let t0 = Unix.gettimeofday () in
  let fail msg =
    kill_children children;
    failwith ("Transport.socket: " ^ msg)
  in
  let forward f =
    if (not !exhausted) && sched.Transport.len >= max_deliveries then
      exhausted := true;
    if !exhausted then ()
    else begin
      let dst, dst_port = Topology.link_dst topo f.link in
      let idx = sched.Transport.len in
      Transport.record sched f.link;
      Queue.push idx children.(dst).pending;
      incr outstanding;
      write_byte children.(dst).fd (Port.index dst_port)
    end
  in
  let on_send u pi =
    let link = Topology.link_id topo u (Port.of_index pi) in
    let k = sent_on.(link) in
    sent_on.(link) <- k + 1;
    let d = Transport.delay_us faults ~link ~k in
    let f =
      { due = Unix.gettimeofday () +. (float_of_int d *. 1e-6); fseq = !fseq; link }
    in
    incr fseq;
    flights := f :: !flights
  in
  let on_child_byte u b =
    let c = children.(u) in
    if b = 0 || b = 1 then on_send u b
    else if b = byte_term then
      (* The activation being processed is the oldest unacked one. *)
      terms_rev := (Queue.peek c.pending, u) :: !terms_rev
    else if b = byte_ack || b = byte_drop then begin
      let tag = Queue.pop c.pending in
      decr outstanding;
      if tag >= 0 then
        if b = byte_ack then incr deliveries else incr drops
    end
    else if b = byte_err then fail "a node program raised"
    else fail (Printf.sprintf "unexpected opcode %#x from node %d" b u)
  in
  let buf = Bytes.create 4096 in
  let all_fds = Array.to_list (Array.map (fun c -> c.fd) children) in
  let has_flights () = match !flights with [] -> false | _ :: _ -> true in
  (* Block up to [timeout] for child bytes and process them. *)
  let read_ready timeout =
    let readable, _, _ = Unix.select all_fds [] [] timeout in
    List.iter
      (fun fd ->
        let u =
          let rec find i = if children.(i).fd == fd then i else find (i + 1) in
          find 0
        in
        let r = Unix.read fd buf 0 (Bytes.length buf) in
        if r = 0 then fail (Printf.sprintf "node %d exited early" u);
        for i = 0 to r - 1 do
          on_child_byte u (Char.code (Bytes.get buf i))
        done)
      readable
  in
  (* Main loop: forward due pulses, then block on child bytes until
     the next pulse is due (or the watchdog fires). *)
  while (not !exhausted) && (!outstanding > 0 || has_flights ()) do
    let now = Unix.gettimeofday () in
    if now -. t0 > deadline_s then fail "deadline exceeded (wedged run?)";
    let rec drain () =
      match pop_due !flights (Unix.gettimeofday ()) with
      | Some (f, rest) ->
          flights := rest;
          forward f;
          drain ()
      | None -> ()
    in
    drain ();
    if !outstanding > 0 || has_flights () then begin
      let timeout =
        match next_due !flights with
        | None -> 0.25
        | Some due -> Float.max 0. (Float.min 0.25 (due -. Unix.gettimeofday ()))
      in
      if !outstanding > 0 then read_ready timeout
      else if timeout > 0. then
        (* Nothing to read — just wait out the next delay. *)
        Unix.sleepf timeout
    end
  done;
  (* Exhausted runs still owe the children a clean shutdown: drain the
     in-progress activations so the stop opcode is unambiguous (a
     child never blocks for long — fault delays live up here). *)
  (if !exhausted then
     let give_up = Unix.gettimeofday () +. 5. in
     while !outstanding > 0 do
       if Unix.gettimeofday () > give_up then fail "exhausted run won't drain";
       read_ready 0.05
     done);
  (* Stop everyone and collect reports. *)
  Array.iter (fun c -> write_byte c.fd byte_stop) children;
  Array.iter
    (fun c ->
      let b = Bytes.create report_len in
      (try read_exactly c.fd b 0 report_len
       with e ->
         kill_children children;
         raise e);
      c.report <- Some (decode_report b))
    children;
  Array.iter
    (fun c ->
      Unix.close c.fd;
      ignore (Unix.waitpid [] c.pid))
    children;
  let report v =
    match children.(v).report with
    | Some r -> r
    | None -> assert false (* filled above *)
  in
  let outputs = Array.init n (fun v -> let o, _, _, _ = report v in o) in
  let sends =
    Array.to_list (Array.init n (fun v -> let _, _, s, _ = report v in s))
    |> List.fold_left ( + ) 0
  in
  let backlog =
    Array.to_list (Array.init n (fun v -> let _, _, _, b = report v in b))
    |> List.fold_left ( + ) 0
  in
  let all_terminated =
    Array.for_all
      (fun c ->
        match c.report with Some (_, t, _, _) -> t | None -> false)
      children
  in
  let terms =
    List.stable_sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (List.rev !terms_rev)
  in
  {
    Transport.backend = (if tcp then "socket-tcp" else "socket");
    scheduler = (if tcp then "socket-tcp-live" else "socket-live");
    n;
    schedule = Transport.recorded sched;
    outputs;
    sends;
    deliveries = !deliveries;
    drops = !drops;
    quiescent =
      (not !exhausted)
      && (match !flights with [] -> true | _ :: _ -> false)
      && backlog = 0;
    all_terminated;
    exhausted = !exhausted;
    termination_order = List.map snd terms;
  }

let transport ?(tcp = false) () =
  {
    Transport.name = (if tcp then "socket-tcp" else "socket");
    run =
      (fun ?seed ?max_deliveries ?faults topo make_program ->
        run ?seed ?max_deliveries ?faults ~tcp topo make_program);
  }
