(** Real-process transport backend: one forked child per node, pulse
    framing over local sockets.

    The wire format is the content-oblivious model made concrete: a
    pulse is a single byte whose only information is the port it
    crosses.  A single-threaded coordinator owns the channels: it
    reads each child's sent pulses, holds every pulse for its
    {!Colring_engine.Transport.delay_us} microseconds of injected
    latency/jitter, forwards it to the destination child, and records
    the forwarding order as the run's schedule.  Every activation is
    bounded by an explicit ack byte, so the coordinator observes a
    send only after recording the delivery that caused it — the
    recorded schedule is causally consistent and replays exactly on
    the simulator (same-link reordering under jitter is unobservable:
    pulses are indistinguishable).

    Children derive their node RNG exactly as the simulator does and
    exit via [Unix._exit]; the coordinator enforces a wall-clock
    deadline and SIGKILLs the ring rather than hang. *)

val run :
  ?seed:int ->
  ?max_deliveries:int ->
  ?faults:Colring_engine.Transport.faults ->
  ?tcp:bool ->
  ?deadline_s:float ->
  Colring_engine.Topology.t ->
  (int -> Colring_engine.Network.pulse Colring_engine.Network.program) ->
  Colring_engine.Transport.trace
(** [tcp:false] (default) wires each child over an [AF_UNIX]
    socketpair; [tcp:true] runs the ring over loopback TCP
    ([127.0.0.1], [TCP_NODELAY]) with an id-byte handshake.
    [deadline_s] (default 120) bounds the whole run in wall-clock
    seconds; past it the children are killed and [Failure] is raised.
    Node programs that raise are reported by an error opcode and
    surface as [Failure] here, with every child reaped.  The transport
    serves the election algorithms: [Output.values] lists are not
    carried by the final report. *)

val transport : ?tcp:bool -> unit -> Colring_engine.Transport.t
(** {!run} as a {!Colring_engine.Transport.t}, named ["socket"] or
    ["socket-tcp"]. *)
