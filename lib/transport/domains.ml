(* Shared-memory transport: one OCaml domain per node, one atomic
   pulse counter per directed link.  The channel representation is the
   model made literal — pulses are indistinguishable, so a channel
   *is* its pulse count; sending is [Atomic.incr], delivering is a
   CAS-decrement by the (single) receiving domain.

   Replay honesty: every take appends its link id to a mutex-protected
   schedule, and the append happens after the send's increment, which
   happens during the sender's activation, which happens after that
   activation's own delivery was appended.  The mutex gives a total
   order consistent with that causality, so the recorded schedule
   always fits [Scheduler.of_schedule] on the simulator, and — nodes
   sharing no state — the per-node projection reproduces each node's
   behaviour exactly (same consumed-pulse sequences, same RNG stream
   derivation as [Network.create]).

   Quiescence detection is a single [live] counter: one token per
   pending start activation, plus one per pulse from its send until
   the delivery that consumed it has been fully processed (the token
   is handed from channel to activation at take time, so [live = 0]
   really means no activation can ever run again). *)

module Rng = Colring_stats.Rng
open Colring_engine

type shared = {
  topo : Topology.t;
  faults : Transport.faults;
  chan : int Atomic.t array; (* by link id: pulses in flight *)
  live : int Atomic.t;
  abort : bool Atomic.t;
  mutable exhausted : bool; (* under [lock] *)
  max_deliveries : int;
  lock : Mutex.t;
  sched : Transport.recorder;
  mutable deliveries : int; (* under [lock] *)
  mutable drops : int; (* under [lock] *)
  mutable terms_rev : (int * int) list; (* (activation tag, node) *)
  outputs : Output.t array; (* slot v written only by node v *)
  term : bool Atomic.t array;
  sends : int array; (* per node, owner-written *)
  backlog : int array; (* per node, owner-written at exit *)
}

(* Take one pulse off a channel.  The receiving domain is the only
   decrementer, so the CAS only ever retries against concurrent
   increments. *)
let rec try_take c =
  let v = Atomic.get c in
  if v = 0 then false
  else if Atomic.compare_and_set c v (v - 1) then true
  else begin
    (* A failed CAS means the sender just bumped the counter; yield
       the cache line before re-spinning. *)
    Domain.cpu_relax ();
    try_take c
  end

(* Append a delivery under the lock; [None] means the budget is spent
   (the caller puts the pulse back and aborts).  Budget counts proper
   deliveries, like the simulator's run loop. *)
let record_delivery sh ~link ~drop =
  Mutex.lock sh.lock;
  let r =
    if (not drop) && sh.deliveries >= sh.max_deliveries then begin
      sh.exhausted <- true;
      None
    end
    else begin
      let idx = sh.sched.Transport.len in
      Transport.record sh.sched link;
      if drop then sh.drops <- sh.drops + 1
      else sh.deliveries <- sh.deliveries + 1;
      Some idx
    end
  in
  Mutex.unlock sh.lock;
  r

let record_terminate sh ~tag ~node =
  Mutex.lock sh.lock;
  sh.terms_rev <- (tag, node) :: sh.terms_rev;
  Mutex.unlock sh.lock

let node_body sh make_program ~seed v =
  let n = Topology.n sh.topo in
  let program = make_program v in
  let rng = Rng.split_at (Rng.create ~seed) v in
  let mailbox = [| 0; 0 |] in
  (* Incoming link of local port p: the link its peer sends on. *)
  let in_link =
    Array.init 2 (fun pi ->
        let p = Port.of_index pi in
        let u, q = Topology.peer sh.topo v p in
        Topology.link_id sh.topo u q)
  in
  let consumed = [| 0; 0 |] in
  (* Tag of the running activation: starts sort as [v - n] (before
     every delivery, in node order — the simulator's start order),
     deliveries by schedule index. *)
  let tag = ref (v - n) in
  let terminated () = Atomic.get sh.term.(v) in
  let api =
    {
      Network.node = v;
      recv =
        (fun p ->
          let i = Port.index p in
          if mailbox.(i) = 0 then None
          else begin
            mailbox.(i) <- mailbox.(i) - 1;
            Some Network.pulse
          end);
      recv_pulse =
        (fun p ->
          let i = Port.index p in
          if mailbox.(i) = 0 then false
          else begin
            mailbox.(i) <- mailbox.(i) - 1;
            true
          end);
      peek =
        (fun p -> if mailbox.(Port.index p) = 0 then None else Some Network.pulse);
      pending = (fun p -> mailbox.(Port.index p));
      send =
        (fun p _ ->
          if terminated () then failwith "Transport.domains: send after terminate";
          let link = Topology.link_id sh.topo v p in
          sh.sends.(v) <- sh.sends.(v) + 1;
          (* The pulse's [live] token: held until the delivery that
             consumes it finishes processing. *)
          Atomic.incr sh.live;
          Atomic.incr sh.chan.(link));
      set_output = (fun o -> sh.outputs.(v) <- o);
      terminate =
        (fun () ->
          if not (terminated ()) then begin
            Atomic.set sh.term.(v) true;
            record_terminate sh ~tag:!tag ~node:v
          end);
      rng;
    }
  in
  program.Network.start api;
  (* The start activation's token was pre-charged at pool creation. *)
  Atomic.decr sh.live;
  let idle = ref 0 in
  let took = ref false in
  (* [live = 0] is stable: a pulse's token is handed from channel to
     activation at take time and released only after the wake, so the
     counter can never dip to zero while work remains. *)
  while (not (Atomic.get sh.abort)) && Atomic.get sh.live > 0 do
    took := false;
    for pi = 0 to 1 do
      if (not !took) && (not (Atomic.get sh.abort)) && try_take sh.chan.(in_link.(pi))
      then begin
        took := true;
        let link = in_link.(pi) in
        let k = consumed.(pi) in
        let d = Transport.delay_us sh.faults ~link ~k in
        if d > 0 then Unix.sleepf (float_of_int d *. 1e-6);
        let drop = terminated () in
        match record_delivery sh ~link ~drop with
        | None ->
            (* Budget spent: put the pulse back (its token stays) and
               let everyone drain out via [abort]. *)
            Atomic.incr sh.chan.(link);
            Atomic.set sh.abort true
        | Some idx ->
            consumed.(pi) <- k + 1;
            if not drop then begin
              mailbox.(pi) <- mailbox.(pi) + 1;
              tag := idx;
              program.Network.wake api
            end;
            (* Processing done: release the pulse's token. *)
            Atomic.decr sh.live
      end
    done;
    if not !took then begin
      incr idle;
      Domain.cpu_relax ();
      (* Domains routinely outnumber cores (one per node): back off so
         idle nodes stop starving the active ones. *)
      if !idle > 2_000 then begin
        idle := 0;
        Unix.sleepf 0.0002
      end
    end
    else idle := 0
  done;
  sh.backlog.(v) <- mailbox.(0) + mailbox.(1)

let run ?(seed = 0) ?(max_deliveries = 50_000_000) ?(faults = Transport.no_fault)
    topo make_program =
  Topology.check topo;
  let n = Topology.n topo in
  let sh =
    {
      topo;
      faults;
      chan = Array.init (Topology.num_links topo) (fun _ -> Atomic.make 0);
      live = Atomic.make n (* one token per pending start *);
      abort = Atomic.make false;
      exhausted = false;
      max_deliveries;
      lock = Mutex.create ();
      sched = Transport.recorder ();
      deliveries = 0;
      drops = 0;
      terms_rev = [];
      outputs = Array.make n Output.empty;
      term = Array.init n (fun _ -> Atomic.make false);
      sends = Array.make n 0;
      backlog = Array.make n 0;
    }
  in
  (* [on_failure] flips [abort] the instant a node program (or a
     domain spawn) raises: node loops block on [live] reaching zero,
     which never happens once an activation dies mid-way, so without
     the flag the surviving loops would spin forever and [Pool.run]
     could not reach its joins. *)
  Colring_runtime.Pool.run ~jobs:n
    ~on_failure:(fun () -> Atomic.set sh.abort true)
    n
    (fun v -> node_body sh make_program ~seed v);
  let in_flight = Array.fold_left (fun a c -> a + Atomic.get c) 0 sh.chan in
  let backlog = Array.fold_left ( + ) 0 sh.backlog in
  let terms =
    List.stable_sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (List.rev sh.terms_rev)
  in
  {
    Transport.backend = "domains";
    scheduler = "domains-live";
    n;
    schedule = Transport.recorded sh.sched;
    outputs = Array.copy sh.outputs;
    sends = Array.fold_left ( + ) 0 sh.sends;
    deliveries = sh.deliveries;
    drops = sh.drops;
    quiescent = (not sh.exhausted) && in_flight = 0 && backlog = 0;
    all_terminated = Array.for_all Atomic.get sh.term;
    exhausted = sh.exhausted;
    termination_order = List.map snd terms;
  }

let transport () =
  {
    Transport.name = "domains";
    run =
      (fun ?seed ?max_deliveries ?faults topo make_program ->
        run ?seed ?max_deliveries ?faults topo make_program);
  }
