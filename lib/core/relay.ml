open Colring_engine

(* On an oriented ring, clockwise pulses are sent from Port_1 and
   received on Port_0 (the paper's convention, Section 2). *)
let cw_out = Port.P1
let cw_in = Port.P0

type state = { mutable rho : int; mutable forwarded : bool }

let program () =
  let st = { rho = 0; forwarded = false } in
  let start (api : _ Network.api) = api.send cw_out () in
  let wake (api : _ Network.api) =
    while api.recv_pulse cw_in do
      st.rho <- st.rho + 1;
      if not st.forwarded then begin
        st.forwarded <- true;
        api.send cw_out ()
      end
    done
  in
  let inspect () =
    [ ("rho", st.rho); ("forwarded", if st.forwarded then 1 else 0) ]
  in
  let snap =
    Some
      {
        Engine_intf.save =
          (fun () -> [| st.rho; (if st.forwarded then 1 else 0) |]);
        load =
          (fun a ->
            st.rho <- a.(0);
            st.forwarded <- a.(1) <> 0);
      }
  in
  { Network.start; wake; inspect; snap }

let total_pulses ~n = 2 * n
let final_rho = 2
