open Colring_engine

(* On an oriented ring, clockwise pulses are sent from Port_1 and
   received on Port_0 (the paper's convention, Section 2). *)
let cw_out = Port.P1
let cw_in = Port.P0

type state = { id : int; mutable rho_cw : int; mutable sigma_cw : int }

let send_cw (api : _ Network.api) st =
  api.send cw_out ();
  st.sigma_cw <- st.sigma_cw + 1

let recv_cw (api : _ Network.api) st =
  api.recv_pulse cw_in
  && begin
       st.rho_cw <- st.rho_cw + 1;
       true
     end

let program ~id =
  if id < 1 then invalid_arg "Algo1.program: id must be positive";
  let st = { id; rho_cw = 0; sigma_cw = 0 } in
  let start api = send_cw api st in
  let wake (api : _ Network.api) =
    while recv_cw api st do
      if st.rho_cw = st.id then api.set_output Output.leader
      else begin
        (* v acts as a relay unless ρcw = ID_v. *)
        api.set_output Output.non_leader;
        send_cw api st
      end
    done
  in
  let inspect () =
    [ ("id", st.id); ("rho_cw", st.rho_cw); ("sigma_cw", st.sigma_cw) ]
  in
  let snap =
    Some
      {
        Engine_intf.save = (fun () -> [| st.rho_cw; st.sigma_cw |]);
        load =
          (fun a ->
            st.rho_cw <- a.(0);
            st.sigma_cw <- a.(1));
      }
  in
  { Network.start; wake; inspect; snap }

let total_pulses = Formulas.algo1_total
