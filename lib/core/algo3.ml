open Colring_engine
module Rng = Colring_stats.Rng

type id_scheme = Doubled | Improved

type state = {
  mutable id : int; (* mutable only for the Proposition 19 variant *)
  scheme : id_scheme;
  rho : int array; (* received per local port *)
  sigma : int array; (* sent per local port *)
  mutable resamples : int;
  (* Output last published via set_output, so [decide] only allocates a
     fresh [Output.t] when the decision actually changed. *)
  mutable out_role : Output.role;
  mutable out_cw_port : Port.t option;
}

(* ID^(i) governs forwarding *out of* port i (= absorbing pulses that
   arrived on port 1-i), line 2 of Algorithm 3. *)
let virtual_id st i =
  match st.scheme with
  | Doubled -> (2 * st.id) - 1 + i
  | Improved -> st.id + i

let send (api : _ Network.api) st i =
  api.send (Port.of_index i) ();
  st.sigma.(i) <- st.sigma.(i) + 1

let recv (api : _ Network.api) st i =
  api.recv_pulse (Port.of_index i)
  && begin
       st.rho.(i) <- st.rho.(i) + 1;
       true
     end

(* Lines 8-16: recompute the (revisable) output from the counters. *)
let decide (api : _ Network.api) st =
  if max st.rho.(0) st.rho.(1) >= virtual_id st 1 then begin
    let role =
      if st.rho.(0) = virtual_id st 1 && st.rho.(1) < virtual_id st 1 then
        Output.Leader
      else Output.Non_leader
    in
    (* More arrivals on a port means the larger-ID direction comes in
       there; clockwise pulses arrive at counterclockwise ports. *)
    let cw_port = if st.rho.(0) > st.rho.(1) then Port.P1 else Port.P0 in
    let changed =
      match st.out_cw_port with
      | Some p -> st.out_role <> role || not (Port.equal p cw_port)
      | None -> true
    in
    if changed then begin
      st.out_role <- role;
      st.out_cw_port <- Some cw_port;
      api.set_output
        (Output.with_cw_port cw_port (Output.with_role role Output.empty))
    end
  end

(* Proposition 19: resample upon receipt while min(ρ0,ρ1) > ID.  By the
   time this fires the node has absorbed its one pulse in each
   direction, and the fresh ID stays below both counters, so the node
   remains a pure relay: pulse dynamics are unchanged. *)
let maybe_resample (api : _ Network.api) st =
  let m = min st.rho.(0) st.rho.(1) in
  if m > st.id then begin
    st.id <- Rng.int_incl api.rng 1 (m - 1);
    st.resamples <- st.resamples + 1
  end

(* Line 6: pulses received at port 1-i are forwarded at port i unless
   the count matches ID^(i).  Top-level so a wake allocates nothing. *)
let poll api st ~resample i =
  recv api st (1 - i)
  && begin
       if st.rho.(1 - i) <> virtual_id st i then send api st i;
       if resample then maybe_resample api st;
       true
     end

let rec wake_loop api st ~resample =
  let progress0 = poll api st ~resample 0 in
  let progress1 = poll api st ~resample 1 in
  decide api st;
  if progress0 || progress1 then wake_loop api st ~resample

let make ~resample ~scheme ~id =
  if id < 1 then invalid_arg "Algo3.program: id must be positive";
  let st =
    {
      id;
      scheme;
      rho = [| 0; 0 |];
      sigma = [| 0; 0 |];
      resamples = 0;
      out_role = Output.Undecided;
      out_cw_port = None;
    }
  in
  let start api =
    for i = 0 to 1 do
      send api st i
    done
  in
  let wake api = wake_loop api st ~resample in
  let inspect () =
    [
      ("id", st.id);
      ("id0", virtual_id st 0);
      ("id1", virtual_id st 1);
      ("rho0", st.rho.(0));
      ("rho1", st.rho.(1));
      ("sigma0", st.sigma.(0));
      ("sigma1", st.sigma.(1));
      ("resamples", st.resamples);
    ]
  in
  let role_code = function
    | Output.Undecided -> 0
    | Output.Leader -> 1
    | Output.Non_leader -> 2
  in
  let role_of = function
    | 1 -> Output.Leader
    | 2 -> Output.Non_leader
    | _ -> Output.Undecided
  in
  let snap =
    Some
      {
        Engine_intf.save =
          (fun () ->
            [|
              st.id;
              st.rho.(0);
              st.rho.(1);
              st.sigma.(0);
              st.sigma.(1);
              st.resamples;
              role_code st.out_role;
              (match st.out_cw_port with
              | None -> -1
              | Some p -> Port.index p);
            |]);
        load =
          (fun a ->
            st.id <- a.(0);
            st.rho.(0) <- a.(1);
            st.rho.(1) <- a.(2);
            st.sigma.(0) <- a.(3);
            st.sigma.(1) <- a.(4);
            st.resamples <- a.(5);
            st.out_role <- role_of a.(6);
            st.out_cw_port <-
              (if a.(7) < 0 then None else Some (Port.of_index a.(7))));
      }
  in
  { Network.start; wake; inspect; snap }

let program ~scheme ~id = make ~resample:false ~scheme ~id
let program_resampling ~id = make ~resample:true ~scheme:Improved ~id

let total_pulses ~scheme ~n ~id_max =
  match scheme with
  | Doubled -> Formulas.algo3_doubled_total ~n ~id_max
  | Improved -> Formulas.algo3_improved_total ~n ~id_max
