open Colring_engine

let cw_out = Port.P1
let cw_in = Port.P0
let ccw_out = Port.P0
let ccw_in = Port.P1

let role_code = function
  | Output.Undecided -> 0
  | Output.Leader -> 1
  | Output.Non_leader -> 2

let role_of = function
  | 1 -> Output.Leader
  | 2 -> Output.Non_leader
  | _ -> Output.Undecided

(* Algorithm 2 minus the lag: both instances start at initialization
   and the CCW block is not gated on rho_cw >= id.  Compare Algo2. *)
let algo2_no_lag ~id =
  if id < 1 then invalid_arg "Ablation.algo2_no_lag: id must be positive";
  let rho_cw = ref 0 and rho_ccw = ref 0 in
  let term_initiated = ref false in
  let finished = ref false in
  let role = ref Output.Undecided in
  let start (api : _ Network.api) =
    api.send cw_out ();
    api.send ccw_out () (* no lag: CCW launches immediately *)
  in
  let finish (api : _ Network.api) =
    finished := true;
    api.set_output (Output.with_role !role Output.empty);
    api.terminate ()
  in
  let wake (api : _ Network.api) =
    let continue = ref true in
    while !continue && not !finished do
      if !term_initiated then begin
        match api.recv ccw_in with
        | Some () ->
            incr rho_ccw;
            finish api
        | None -> continue := false
      end
      else begin
        let progress = ref false in
        (match api.recv cw_in with
        | Some () ->
            progress := true;
            incr rho_cw;
            if !rho_cw = id then role := Output.Leader
            else begin
              role := Output.Non_leader;
              api.send cw_out ()
            end
        | None -> ());
        (* No rho_cw >= id guard here: the broken part. *)
        (match api.recv ccw_in with
        | Some () ->
            progress := true;
            incr rho_ccw;
            if !rho_ccw <> id then api.send ccw_out ()
        | None -> ());
        if (not !term_initiated) && !rho_cw = id && !rho_ccw = id then begin
          api.send ccw_out ();
          term_initiated := true;
          progress := true
        end;
        if !rho_ccw > !rho_cw then finish api
        else if not !progress then continue := false
      end
    done
  in
  let inspect () =
    [ ("id", id); ("rho_cw", !rho_cw); ("rho_ccw", !rho_ccw) ]
  in
  let snap =
    Some
      {
        Engine_intf.save =
          (fun () ->
            [|
              !rho_cw;
              !rho_ccw;
              (if !term_initiated then 1 else 0);
              (if !finished then 1 else 0);
              role_code !role;
            |]);
        load =
          (fun a ->
            rho_cw := a.(0);
            rho_ccw := a.(1);
            term_initiated := a.(2) = 1;
            finished := a.(3) = 1;
            role := role_of a.(4));
      }
  in
  { Network.start; wake; inspect; snap }

(* Algorithm 3 with identical virtual IDs per direction. *)
let algo3_same_virtual_ids ~id =
  if id < 1 then invalid_arg "Ablation.algo3_same_virtual_ids: id > 0";
  let rho = [| 0; 0 |] in
  let start (api : _ Network.api) =
    api.send Port.P0 ();
    api.send Port.P1 ()
  in
  let wake (api : _ Network.api) =
    let progress = ref true in
    while !progress do
      progress := false;
      for i = 0 to 1 do
        match api.recv (Port.of_index (1 - i)) with
        | Some () ->
            progress := true;
            rho.(1 - i) <- rho.(1 - i) + 1;
            if rho.(1 - i) <> id then api.send (Port.of_index i) ()
        | None -> ()
      done;
      if max rho.(0) rho.(1) >= id then begin
        let role =
          if rho.(0) = id && rho.(1) < id then Output.Leader
          else Output.Non_leader
        in
        let cw_port = if rho.(0) > rho.(1) then Port.P1 else Port.P0 in
        api.set_output
          (Output.with_cw_port cw_port (Output.with_role role Output.empty))
      end
    done
  in
  let inspect () = [ ("id", id); ("rho0", rho.(0)); ("rho1", rho.(1)) ] in
  let snap =
    Some
      {
        Engine_intf.save = (fun () -> [| rho.(0); rho.(1) |]);
        load =
          (fun a ->
            rho.(0) <- a.(0);
            rho.(1) <- a.(1));
      }
  in
  { Network.start; wake; inspect; snap }

(* Algorithm 1 without the absorption case. *)
let algo1_no_absorption ~id =
  if id < 1 then invalid_arg "Ablation.algo1_no_absorption: id > 0";
  let rho = ref 0 in
  let start (api : _ Network.api) = api.send cw_out () in
  let wake (api : _ Network.api) =
    let continue = ref true in
    while !continue do
      match api.recv cw_in with
      | Some () ->
          incr rho;
          api.set_output
            (if !rho = id then Output.leader else Output.non_leader);
          api.send cw_out () (* always relays: never absorbs *)
      | None -> continue := false
    done
  in
  let inspect () = [ ("id", id); ("rho_cw", !rho) ] in
  let snap =
    Some
      {
        Engine_intf.save = (fun () -> [| !rho |]);
        load = (fun a -> rho := a.(0));
      }
  in
  { Network.start; wake; inspect; snap }

type failure = {
  wrong_leader : bool;
  not_quiescent : bool;
  post_term_deliveries : int;
  exhausted : bool;
  sends : int;
}

let observe ?(max_deliveries = 200_000) factory ~topo ~ids ~sched =
  let net = Network.create topo (fun v -> factory ~id:ids.(v)) in
  let result = Network.run ~max_deliveries net sched in
  let outputs = Network.outputs net in
  let leaders = ref [] in
  Array.iteri
    (fun v (o : Output.t) ->
      if Output.equal_role o.role Output.Leader then leaders := v :: !leaders)
    outputs;
  let wrong_leader =
    match !leaders with [ v ] -> v <> Ids.argmax ids | [] | _ :: _ -> true
  in
  {
    wrong_leader;
    not_quiescent = not result.quiescent;
    post_term_deliveries =
      Metrics.post_termination_deliveries (Network.metrics net);
    exhausted = result.exhausted;
    sends = result.sends;
  }

let failed f =
  f.wrong_leader || f.not_quiescent || f.post_term_deliveries > 0 || f.exhausted
