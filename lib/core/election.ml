open Colring_engine

type algorithm = Algo1 | Algo2 | Algo3 of Algo3.id_scheme | Algo3_resample

let algorithm_name = function
  | Algo1 -> "algo1"
  | Algo2 -> "algo2"
  | Algo3 Algo3.Doubled -> "algo3-doubled"
  | Algo3 Algo3.Improved -> "algo3-improved"
  | Algo3_resample -> "algo3-resample"

type report = {
  algorithm : string;
  n : int;
  id_max : int;
  sends : int;
  expected_sends : int;
  sends_cw : int;
  sends_ccw : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  post_term_deliveries : int;
  causal_span : int;
  leader : int option;
  leader_is_max : bool;
  roles_ok : bool;
  orientation_ok : bool option;
  termination_order_ok : bool option;
  final_ids : int array;
}

let unique_leader outputs =
  let leaders = ref [] in
  Array.iteri
    (fun v (o : Output.t) -> if o.role = Output.Leader then leaders := v :: !leaders)
    outputs;
  match !leaders with [ v ] -> Some v | [] | _ :: _ -> None

let roles_ok outputs =
  match unique_leader outputs with
  | None -> false
  | Some _ ->
      Array.for_all
        (fun (o : Output.t) ->
          Output.equal_role o.role Output.Leader
          || Output.equal_role o.role Output.Non_leader)
        outputs

let orientation_consistent topo outputs =
  let claimed v =
    match (outputs.(v) : Output.t).cw_port with
    | Some p -> p
    | None -> raise Exit
  in
  try
    let n = Topology.n topo in
    let consistent = ref true in
    for v = 0 to n - 1 do
      (* A clockwise pulse leaves w via w's clockwise port, so it must
         arrive at the peer on the port *opposite* the peer's claimed
         clockwise port. *)
      let w, q = Topology.peer topo v (claimed v) in
      if Port.equal q (claimed w) then consistent := false
    done;
    !consistent
  with Exit -> false

let expected_termination_order topo ~leader =
  let n = Topology.n topo in
  let rec go cur acc k =
    if k = n then List.rev acc
    else
      let next = Topology.ccw_neighbor topo cur in
      go next (next :: acc) (k + 1)
  in
  (* CCW walk starting one step before the leader... i.e. the pulse
     from the leader reaches the leader's CCW neighbour first and the
     leader itself last. *)
  go leader [] 0

let program_of algorithm ~id =
  match algorithm with
  | Algo1 -> Algo1.program ~id
  | Algo2 -> Algo2.program ~id
  | Algo3 scheme -> Algo3.program ~scheme ~id
  | Algo3_resample -> Algo3.program_resampling ~id

let expected_sends algorithm ~n ~id_max =
  match algorithm with
  | Algo1 -> Formulas.algo1_total ~n ~id_max
  | Algo2 -> Formulas.algo2_total ~n ~id_max
  | Algo3 Algo3.Doubled -> Formulas.algo3_doubled_total ~n ~id_max
  | Algo3 Algo3.Improved | Algo3_resample ->
      Formulas.algo3_improved_total ~n ~id_max

let ok r =
  r.sends = r.expected_sends && r.quiescent && (not r.exhausted)
  && r.post_term_deliveries = 0 && r.leader_is_max && r.roles_ok
  && Option.value ~default:true r.orientation_ok
  && Option.value ~default:true r.termination_order_ok
  && (r.algorithm <> "algo2" || r.all_terminated)

(* The report as flat journal fields, in declaration order; absent
   options become "none"/"n/a" strings so every run_end record has the
   same keys. *)
let report_fields r =
  let open Sink in
  let opt_bool = function
    | Some b -> Bool b
    | None -> String "n/a"
  in
  [
    ("algorithm", String r.algorithm);
    ("n", Int r.n);
    ("id_max", Int r.id_max);
    ("sends", Int r.sends);
    ("expected_sends", Int r.expected_sends);
    ("sends_cw", Int r.sends_cw);
    ("sends_ccw", Int r.sends_ccw);
    ("deliveries", Int r.deliveries);
    ("quiescent", Bool r.quiescent);
    ("all_terminated", Bool r.all_terminated);
    ("exhausted", Bool r.exhausted);
    ("post_term_deliveries", Int r.post_term_deliveries);
    ("causal_span", Int r.causal_span);
    ("leader", match r.leader with Some v -> Int v | None -> String "none");
    ("leader_is_max", Bool r.leader_is_max);
    ("roles_ok", Bool r.roles_ok);
    ("orientation_ok", opt_bool r.orientation_ok);
    ("termination_order_ok", opt_bool r.termination_order_ok);
    ("final_ids",
     String
       (String.concat ";"
          (Array.to_list (Array.map string_of_int r.final_ids))));
    ("ok", Bool (ok r));
  ]

let run ?(seed = 0) ?max_deliveries ?record_trace ?(sink = Sink.null)
    ?(workload = "-") ?(snapshot_every = 10_000) algorithm ~topo ~ids ~sched =
  let n = Topology.n topo in
  if Array.length ids <> n then invalid_arg "Election.run: |ids| <> n";
  Array.iter
    (fun id -> if id < 1 then invalid_arg "Election.run: ids must be positive")
    ids;
  (match algorithm with
  | Algo1 | Algo2 ->
      if not (Topology.is_oriented topo) then
        invalid_arg "Election.run: Algorithms 1 and 2 need an oriented ring"
  | Algo3 _ | Algo3_resample -> ());
  let id_max = Ids.id_max ids in
  (* The run_start record comes first: creating the network already
     emits the start-up activations (wakes and initial sends). *)
  if sink.Sink.enabled then
    sink.Sink.on_run_start
      [
        ("algorithm", Sink.String (algorithm_name algorithm));
        ("n", Sink.Int n);
        ("id_max", Sink.Int id_max);
        ("seed", Sink.Int seed);
        ("workload", Sink.String workload);
        ("scheduler", Sink.String sched.Scheduler.name);
      ];
  let net =
    Network.create ?record_trace ~sink ~seed topo (fun v ->
        program_of algorithm ~id:ids.(v))
  in
  let result = Network.run ?max_deliveries ~snapshot_every net sched in
  let outputs = Network.outputs net in
  let m = Network.metrics net in
  let leader = unique_leader outputs in
  let leader_is_max =
    match leader with Some v -> v = Ids.argmax ids | None -> false
  in
  let orientation_ok =
    match algorithm with
    | Algo3 _ | Algo3_resample -> Some (orientation_consistent topo outputs)
    | Algo1 | Algo2 -> None
  in
  let termination_order_ok =
    match (algorithm, leader) with
    | Algo2, Some l ->
        Some (result.termination_order = expected_termination_order topo ~leader:l)
    | Algo2, None -> Some false
    | (Algo1 | Algo3 _ | Algo3_resample), _ -> None
  in
  let final_ids =
    Array.init n (fun v ->
        match List.assoc_opt "id" (Network.inspect net v) with
        | Some id -> id
        | None -> ids.(v))
  in
  let report =
    {
      algorithm = algorithm_name algorithm;
      n;
      id_max;
      sends = result.sends;
      expected_sends = expected_sends algorithm ~n ~id_max;
      sends_cw = Metrics.sends_cw m;
      sends_ccw = Metrics.sends_ccw m;
      deliveries = result.deliveries;
      quiescent = result.quiescent;
      all_terminated = result.all_terminated;
      exhausted = result.exhausted;
      post_term_deliveries = Metrics.post_termination_deliveries m;
      causal_span = Network.causal_span net;
      leader;
      leader_is_max;
      roles_ok = roles_ok outputs;
      orientation_ok;
      termination_order_ok;
      final_ids;
    }
  in
  if sink.Sink.enabled then begin
    (* A closing snapshot at the final delivery count, so a journal
       always ends with the exact [Metrics.to_assoc] of the run, then
       the report itself. *)
    sink.Sink.on_snapshot ~step:result.deliveries (Metrics.to_assoc m);
    sink.Sink.on_run_end (report_fields report);
    sink.Sink.flush ()
  end;
  (report, net)

let run_report ?seed ?max_deliveries ?sink ?workload ?snapshot_every algorithm
    ~topo ~ids ~sched =
  fst
    (run ?seed ?max_deliveries ?sink ?workload ?snapshot_every algorithm ~topo
       ~ids ~sched)
