open Colring_engine

type algorithm = Algo1 | Algo2 | Algo3 of Algo3.id_scheme | Algo3_resample

let algorithm_name = function
  | Algo1 -> "algo1"
  | Algo2 -> "algo2"
  | Algo3 Algo3.Doubled -> "algo3-doubled"
  | Algo3 Algo3.Improved -> "algo3-improved"
  | Algo3_resample -> "algo3-resample"

type report = {
  algorithm : string;
  n : int;
  id_max : int;
  sends : int;
  expected_sends : int;
  sends_cw : int;
  sends_ccw : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  post_term_deliveries : int;
  causal_span : int;
  leader : int option;
  leader_is_max : bool;
  roles_ok : bool;
  orientation_ok : bool option;
  termination_order_ok : bool option;
  final_ids : int array;
}

let unique_leader outputs =
  let leaders = ref [] in
  Array.iteri
    (fun v (o : Output.t) -> if o.role = Output.Leader then leaders := v :: !leaders)
    outputs;
  match !leaders with [ v ] -> Some v | [] | _ :: _ -> None

let roles_ok outputs =
  match unique_leader outputs with
  | None -> false
  | Some _ ->
      Array.for_all
        (fun (o : Output.t) ->
          Output.equal_role o.role Output.Leader
          || Output.equal_role o.role Output.Non_leader)
        outputs

let orientation_consistent topo outputs =
  let claimed v =
    match (outputs.(v) : Output.t).cw_port with
    | Some p -> p
    | None -> raise Exit
  in
  try
    let n = Topology.n topo in
    let consistent = ref true in
    for v = 0 to n - 1 do
      (* A clockwise pulse leaves w via w's clockwise port, so it must
         arrive at the peer on the port *opposite* the peer's claimed
         clockwise port. *)
      let w, q = Topology.peer topo v (claimed v) in
      if Port.equal q (claimed w) then consistent := false
    done;
    !consistent
  with Exit -> false

let expected_termination_order topo ~leader =
  let n = Topology.n topo in
  let rec go cur acc k =
    if k = n then List.rev acc
    else
      let next = Topology.ccw_neighbor topo cur in
      go next (next :: acc) (k + 1)
  in
  (* CCW walk starting one step before the leader... i.e. the pulse
     from the leader reaches the leader's CCW neighbour first and the
     leader itself last. *)
  go leader [] 0

let program_of algorithm ~id =
  match algorithm with
  | Algo1 -> Algo1.program ~id
  | Algo2 -> Algo2.program ~id
  | Algo3 scheme -> Algo3.program ~scheme ~id
  | Algo3_resample -> Algo3.program_resampling ~id

let expected_sends algorithm ~n ~id_max =
  match algorithm with
  | Algo1 -> Formulas.algo1_total ~n ~id_max
  | Algo2 -> Formulas.algo2_total ~n ~id_max
  | Algo3 Algo3.Doubled -> Formulas.algo3_doubled_total ~n ~id_max
  | Algo3 Algo3.Improved | Algo3_resample ->
      Formulas.algo3_improved_total ~n ~id_max

let ok r =
  r.sends = r.expected_sends && r.quiescent && (not r.exhausted)
  && r.post_term_deliveries = 0 && r.leader_is_max && r.roles_ok
  && Option.value ~default:true r.orientation_ok
  && Option.value ~default:true r.termination_order_ok
  && (r.algorithm <> "algo2" || r.all_terminated)

(* The report as flat journal fields, in declaration order; absent
   options become "none"/"n/a" strings so every run_end record has the
   same keys. *)
let report_fields r =
  let open Sink in
  let opt_bool = function
    | Some b -> Bool b
    | None -> String "n/a"
  in
  [
    ("algorithm", String r.algorithm);
    ("n", Int r.n);
    ("id_max", Int r.id_max);
    ("sends", Int r.sends);
    ("expected_sends", Int r.expected_sends);
    ("sends_cw", Int r.sends_cw);
    ("sends_ccw", Int r.sends_ccw);
    ("deliveries", Int r.deliveries);
    ("quiescent", Bool r.quiescent);
    ("all_terminated", Bool r.all_terminated);
    ("exhausted", Bool r.exhausted);
    ("post_term_deliveries", Int r.post_term_deliveries);
    ("causal_span", Int r.causal_span);
    ("leader", match r.leader with Some v -> Int v | None -> String "none");
    ("leader_is_max", Bool r.leader_is_max);
    ("roles_ok", Bool r.roles_ok);
    ("orientation_ok", opt_bool r.orientation_ok);
    ("termination_order_ok", opt_bool r.termination_order_ok);
    ("final_ids",
     String
       (String.concat ";"
          (Array.to_list (Array.map string_of_int r.final_ids))));
    ("ok", Bool (ok r));
  ]

(* Prologue shared by the single-instance and flock runners:
   argument validation, then the run_start record — which must be
   emitted before the network exists, because creating one already
   emits the start-up activations (wakes and initial sends). *)
let validate algorithm ~topo ~ids =
  let n = Topology.n topo in
  if Array.length ids <> n then invalid_arg "Election.run: |ids| <> n";
  Array.iter
    (fun id -> if id < 1 then invalid_arg "Election.run: ids must be positive")
    ids;
  (match algorithm with
  | Algo1 | Algo2 ->
      if not (Topology.is_oriented topo) then
        invalid_arg "Election.run: Algorithms 1 and 2 need an oriented ring"
  | Algo3 _ | Algo3_resample -> ());
  Ids.id_max ids

let emit_run_start ~(sink : Sink.t) ~seed ~workload ~sched_name algorithm ~n
    ~id_max =
  if sink.Sink.enabled then
    sink.Sink.on_run_start
      [
        ("algorithm", Sink.String (algorithm_name algorithm));
        ("n", Sink.Int n);
        ("id_max", Sink.Int id_max);
        ("seed", Sink.Int seed);
        ("workload", Sink.String workload);
        ("scheduler", Sink.String sched_name);
      ]

(* Epilogue shared the same way: verdicts and the report from raw
   measurements, engine-agnostic (the flock runner feeds it its own
   accessors). *)
let build_report algorithm ~topo ~ids ~id_max ~sends ~sends_cw ~sends_ccw
    ~deliveries ~quiescent ~all_terminated ~exhausted ~post_term_deliveries
    ~causal_span ~termination_order ~outputs ~inspect =
  let n = Topology.n topo in
  let leader = unique_leader outputs in
  let leader_is_max =
    match leader with Some v -> v = Ids.argmax ids | None -> false
  in
  let orientation_ok =
    match algorithm with
    | Algo3 _ | Algo3_resample -> Some (orientation_consistent topo outputs)
    | Algo1 | Algo2 -> None
  in
  let termination_order_ok =
    match (algorithm, leader) with
    | Algo2, Some l ->
        Some (termination_order = expected_termination_order topo ~leader:l)
    | Algo2, None -> Some false
    | (Algo1 | Algo3 _ | Algo3_resample), _ -> None
  in
  let final_ids =
    Array.init n (fun v ->
        match List.assoc_opt "id" (inspect v) with
        | Some id -> id
        | None -> ids.(v))
  in
  {
    algorithm = algorithm_name algorithm;
    n;
    id_max;
    sends;
    expected_sends = expected_sends algorithm ~n ~id_max;
    sends_cw;
    sends_ccw;
    deliveries;
    quiescent;
    all_terminated;
    exhausted;
    post_term_deliveries;
    causal_span;
    leader;
    leader_is_max;
    roles_ok = roles_ok outputs;
    orientation_ok;
    termination_order_ok;
    final_ids;
  }

let emit_run_end ~(sink : Sink.t) ~metrics_assoc report =
  if sink.Sink.enabled then begin
    (* A closing snapshot at the final delivery count, so a journal
       always ends with the exact [Metrics.to_assoc] of the run, then
       the report itself. *)
    sink.Sink.on_snapshot ~step:report.deliveries metrics_assoc;
    sink.Sink.on_run_end (report_fields report);
    sink.Sink.flush ()
  end

let run ?(seed = 0) ?max_deliveries ?(sink = Sink.null) ?(workload = "-")
    ?(snapshot_every = 10_000) algorithm ~topo ~ids ~sched =
  let n = Topology.n topo in
  let id_max = validate algorithm ~topo ~ids in
  emit_run_start ~sink ~seed ~workload ~sched_name:sched.Scheduler.name
    algorithm ~n ~id_max;
  let net =
    Network.create ~sink ~seed topo (fun v -> program_of algorithm ~id:ids.(v))
  in
  let result = Network.run ?max_deliveries ~snapshot_every net sched in
  let m = Network.metrics net in
  let report =
    build_report algorithm ~topo ~ids ~id_max ~sends:result.sends
      ~sends_cw:(Metrics.sends_cw m) ~sends_ccw:(Metrics.sends_ccw m)
      ~deliveries:result.deliveries ~quiescent:result.quiescent
      ~all_terminated:result.all_terminated ~exhausted:result.exhausted
      ~post_term_deliveries:(Metrics.post_termination_deliveries m)
      ~causal_span:(Network.causal_span net)
      ~termination_order:result.termination_order
      ~outputs:(Network.outputs net)
      ~inspect:(Network.inspect net)
  in
  emit_run_end ~sink ~metrics_assoc:(Metrics.to_assoc m) report;
  (report, net)

let run_report ?seed ?max_deliveries ?sink ?workload ?snapshot_every algorithm
    ~topo ~ids ~sched =
  fst
    (run ?seed ?max_deliveries ?sink ?workload ?snapshot_every algorithm ~topo
       ~ids ~sched)

(* ------------------------------------------------------------------ *)
(* Batched runs over a Flock *)

type job = {
  j_algorithm : algorithm;
  j_ids : int array;
  j_seed : int;
  j_sched : Scheduler.t;
  j_sink : Sink.t;
  j_workload : string;
  j_snapshot_every : int;
  j_max_deliveries : int;
}

let job ?(seed = 0) ?(max_deliveries = 50_000_000) ?(sink = Sink.null)
    ?(workload = "-") ?(snapshot_every = 10_000) algorithm ~ids ~sched =
  {
    j_algorithm = algorithm;
    j_ids = ids;
    j_seed = seed;
    j_sched = sched;
    j_sink = sink;
    j_workload = workload;
    j_snapshot_every = snapshot_every;
    j_max_deliveries = max_deliveries;
  }

(* Algorithms 1 and 2 never read [api.rng] (they are deterministic
   relays); skipping their per-node stream splits is most of the
   per-instance setup cost the flock exists to amortise.  The Algo3
   family keeps real streams: resampling draws, and the classification
   is per-algorithm, not per-run, so it cannot go stale silently —
   adding a draw to Algorithm 1/2 would have to revisit this list. *)
let draws_randomness = function
  | Algo1 | Algo2 -> false
  | Algo3 _ | Algo3_resample -> true

let finish_flock_job fl slot j ~id_max ~topo =
  let report =
    build_report j.j_algorithm ~topo ~ids:j.j_ids ~id_max
      ~sends:(Flock.sends fl slot) ~sends_cw:(Flock.sends_cw fl slot)
      ~sends_ccw:(Flock.sends_ccw fl slot)
      ~deliveries:(Flock.deliveries fl slot)
      ~quiescent:(Flock.quiescent fl slot)
      ~all_terminated:(Flock.all_terminated fl slot)
      ~exhausted:(Flock.exhausted fl slot)
      ~post_term_deliveries:(Flock.post_termination_deliveries fl slot)
      ~causal_span:(Flock.causal_span fl slot)
      ~termination_order:(Flock.termination_order fl slot)
      ~outputs:(Flock.outputs fl slot)
      ~inspect:(fun v -> Flock.inspect fl ~slot ~node:v)
  in
  emit_run_end ~sink:j.j_sink ~metrics_assoc:(Flock.metrics_assoc fl slot)
    report;
  report

let run_flock ?(slots = 256) ?flock ?on_complete ~topo jobs =
  let count = Array.length jobs in
  let fl =
    match flock with
    | Some fl ->
        if Flock.size fl <> Topology.n topo then
          invalid_arg "Election.run_flock: flock ring size <> |topo|";
        fl
    | None -> Flock.create ~slots:(min slots (max count 1)) topo
  in
  let k = Flock.slots fl in
  (* Validate every job before any journal line is written, so a bad
     job in the middle of a batch cannot leave half the journals
     behind. *)
  let id_maxes = Array.map (fun j -> validate j.j_algorithm ~topo ~ids:j.j_ids) jobs in
  let reports = Array.make count None in
  let base = ref 0 in
  while !base < count do
    let wave = min k (count - !base) in
    for s = 0 to wave - 1 do
      let j = jobs.(!base + s) in
      emit_run_start ~sink:j.j_sink ~seed:j.j_seed ~workload:j.j_workload
        ~sched_name:j.j_sched.Scheduler.name j.j_algorithm ~n:(Topology.n topo)
        ~id_max:id_maxes.(!base + s);
      Flock.load fl ~slot:s ~seed:j.j_seed
        ~rng:(draws_randomness j.j_algorithm)
        ~max_deliveries:j.j_max_deliveries
        ~snapshot_every:j.j_snapshot_every ~sink:j.j_sink ~sched:j.j_sched
        (fun v -> program_of j.j_algorithm ~id:j.j_ids.(v))
    done;
    let wave_base = !base in
    Flock.drain fl
      ~on_complete:(fun slot ->
        let ix = wave_base + slot in
        let r =
          finish_flock_job fl slot jobs.(ix) ~id_max:id_maxes.(ix) ~topo
        in
        reports.(ix) <- Some r;
        match on_complete with None -> () | Some f -> f ix r);
    base := !base + wave
  done;
  Array.map
    (function Some r -> r | None -> assert false (* drain completes slots *))
    reports
