(** End-to-end election runs with verdict checking.

    A runner builds the network for one of the paper's algorithms,
    executes it under a scheduler, and returns a {!report} holding both
    the raw measurements (pulse counts by direction, deliveries,
    quiescence) and the correctness verdicts the theorems promise
    (unique max-ID leader, exact pulse totals, termination order,
    orientation consistency).  Tests assert on reports; benches print
    them. *)

type algorithm =
  | Algo1  (** Warm-up, oriented ring, stabilizing (Section 3.1). *)
  | Algo2  (** Oriented ring, quiescently terminating (Theorem 1). *)
  | Algo3 of Algo3.id_scheme
      (** Non-oriented ring, stabilizing (Prop. 15 / Theorem 2). *)
  | Algo3_resample
      (** Improved scheme plus Proposition 19 ID resampling. *)

val algorithm_name : algorithm -> string

type report = {
  algorithm : string;
  n : int;
  id_max : int;
  sends : int;  (** Measured message complexity. *)
  expected_sends : int;  (** The paper's closed form for this instance. *)
  sends_cw : int;
  sends_ccw : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  post_term_deliveries : int;
  causal_span : int;
      (** Asynchronous time: longest chain of causally dependent
          deliveries ({!Colring_engine.Network.causal_span}).  Not a
          paper quantity — reported because it is schedule-independent
          too and shows the algorithms pay for obliviousness in time as
          well as in messages. *)
  leader : int option;  (** The unique Leader node, if exactly one. *)
  leader_is_max : bool;
      (** Leader is the node assigned the (unique) maximal input ID. *)
  roles_ok : bool;
      (** Exactly one Leader and [n-1] Non-Leaders at the end. *)
  orientation_ok : bool option;
      (** For Algorithm 3: all claimed clockwise ports form one
          consistent direction around the ring.  [None] otherwise. *)
  termination_order_ok : bool option;
      (** For Algorithm 2: non-leaders terminate in counterclockwise
          ring order starting at the leader's counterclockwise
          neighbour, and the leader terminates last. *)
  final_ids : int array;
      (** IDs after the run (differs from the input only under
          resampling). *)
}

val ok : report -> bool
(** All verdicts that apply to the algorithm hold, totals match the
    closed form exactly, and the run was neither exhausted nor left
    pulses behind (plus full quiescent termination for Algorithm 2). *)

val report_fields : report -> (string * Colring_engine.Sink.value) list
(** The report as flat journal fields (declaration order, ending with
    ["ok"]); [None] verdicts appear as ["n/a"], a missing leader as
    ["none"].  This is what {!run} emits as its run_end record. *)

val run :
  ?seed:int ->
  ?max_deliveries:int ->
  ?sink:Colring_engine.Sink.t ->
  ?workload:string ->
  ?snapshot_every:int ->
  algorithm ->
  topo:Colring_engine.Topology.t ->
  ids:int array ->
  sched:Colring_engine.Scheduler.t ->
  report * Colring_engine.Network.pulse Colring_engine.Network.t
(** Runs to completion.  Algorithms 1 and 2 require an oriented
    topology ([Invalid_argument] otherwise); IDs must be positive and
    as unique as the algorithm demands (callers pick workloads from
    {!Ids}).

    [sink] (default {!Colring_engine.Sink.null}) observes the whole
    run: a run_start record (algorithm, n, id_max, seed, [workload] —
    default ["-"] — and scheduler name), every engine event, a counter
    snapshot every [snapshot_every] deliveries (default 10_000; the
    final snapshot at the last delivery is always emitted), and a
    run_end record carrying {!report_fields}.  The sink is flushed
    before returning.  (The pre-sink [?record_trace] switch was
    removed on the DESIGN.md §6 timeline: pass
    [~sink:(Colring_engine.Sink.memory ())] and read the buffer back
    with {!Colring_engine.Network.trace}.) *)

val run_report :
  ?seed:int ->
  ?max_deliveries:int ->
  ?sink:Colring_engine.Sink.t ->
  ?workload:string ->
  ?snapshot_every:int ->
  algorithm ->
  topo:Colring_engine.Topology.t ->
  ids:int array ->
  sched:Colring_engine.Scheduler.t ->
  report
(** {!run} without the network. *)

(** {2 Batched runs}

    Many independent elections over one topology shape, executed on a
    {!Colring_engine.Flock} so per-instance setup is amortised and
    instances step interleaved with cache locality.  Each job's sink
    observes an event stream byte-identical to what {!run} would
    produce for the same job (the determinism tests pin this), because
    every piece of per-instance state — scheduler, RNG streams, sink,
    counters, queues — is owned by the job's instance slot. *)

type job
(** One election: algorithm, IDs, seed, scheduler, sink, and the
    budget/cadence knobs of {!run}. *)

val job :
  ?seed:int ->
  ?max_deliveries:int ->
  ?sink:Colring_engine.Sink.t ->
  ?workload:string ->
  ?snapshot_every:int ->
  algorithm ->
  ids:int array ->
  sched:Colring_engine.Scheduler.t ->
  job
(** Defaults match {!run}'s.  Stateful schedulers must be private to
    the job (one per job, as one per run). *)

val run_flock :
  ?slots:int ->
  ?flock:Colring_engine.Flock.t ->
  ?on_complete:(int -> report -> unit) ->
  topo:Colring_engine.Topology.t ->
  job array ->
  report array
(** [run_flock ~topo jobs] validates every job up front, then runs
    them in waves of at most [slots] (default 256, capped at the job
    count) on a flock over [topo], returning reports in job order.
    Algorithms 1 and 2 are loaded with [~rng:false] (they never read
    [api.rng]); the Algo3 family gets real per-node streams split
    from the job seed, exactly as {!run} would.

    [flock] reuses an existing (warm) flock instead of creating one —
    the job server's steady state; its topology must have the same
    ring size as [topo] (and should be [topo] itself).  [on_complete]
    fires once per job, with the job index and its report, as soon as
    that instance finishes — not in job order; callers that timestamp
    completions for latency percentiles hook it. *)

(** {2 Pieces, exposed for tests and transport backends} *)

val program_of :
  algorithm ->
  id:int ->
  Colring_engine.Network.pulse Colring_engine.Network.program
(** The per-node program for [algorithm] with input [id] — exactly what
    {!run} instantiates at each node.  Transport backends use it to run
    the same node code outside the simulator (in a domain or a forked
    process). *)

val unique_leader : Colring_engine.Output.t array -> int option

val orientation_consistent :
  Colring_engine.Topology.t -> Colring_engine.Output.t array -> bool

val expected_termination_order :
  Colring_engine.Topology.t -> leader:int -> int list
(** CCW order from the leader's CCW neighbour, ending at the leader. *)
