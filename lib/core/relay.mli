(** An anonymous clockwise pulse relay.

    Every node runs the {e identical} program — no ids anywhere — so
    the system is invariant under ring rotation: it is the exercise
    target for the model checker's symmetry reduction.  Each node
    emits one clockwise pulse at start-up, relays the {e first} pulse
    it ever receives, and absorbs all later ones.

    On an oriented ring of [n] nodes every node's predecessor sends
    exactly twice, so every node receives exactly {!final_rho} pulses
    and the run quiesces after exactly [total_pulses n] sends — both
    facts independent of the delivery schedule, and both invariant
    under rotation, as symmetry-reduced checking requires. *)

val program : unit -> Colring_engine.Network.pulse Colring_engine.Network.program
(** One relay node.  Anonymous: every call builds the same program. *)

val total_pulses : n:int -> int
(** Schedule-independent send total: [2 * n]. *)

val final_rho : int
(** Pulses every node has received at quiescence: 2. *)
