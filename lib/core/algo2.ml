open Colring_engine

(* Clockwise pulses leave via Port_1 and arrive on Port_0;
   counterclockwise pulses leave via Port_0 and arrive on Port_1. *)
let cw_out = Port.P1
let cw_in = Port.P0
let ccw_out = Port.P0
let ccw_in = Port.P1

type state = {
  id : int;
  mutable rho_cw : int;
  mutable sigma_cw : int;
  mutable rho_ccw : int;
  mutable sigma_ccw : int;
  mutable role : Output.role;
  mutable out_role : Output.role; (* role last published via set_output *)
  mutable term_initiated : bool;
  mutable finished : bool;
}

let send_cw (api : _ Network.api) st =
  api.send cw_out ();
  st.sigma_cw <- st.sigma_cw + 1

let send_ccw (api : _ Network.api) st =
  api.send ccw_out ();
  st.sigma_ccw <- st.sigma_ccw + 1

let recv_cw (api : _ Network.api) st =
  api.recv_pulse cw_in
  && begin
       st.rho_cw <- st.rho_cw + 1;
       true
     end

let recv_ccw (api : _ Network.api) st =
  api.recv_pulse ccw_in
  && begin
       st.rho_ccw <- st.rho_ccw + 1;
       true
     end

(* The simulator deduplicates equal outputs, so publishing only on a
   role change is observationally identical to republishing after every
   pulse — it just skips allocating the [Output.t]. *)
let publish_role (api : _ Network.api) st =
  if st.role <> st.out_role then begin
    st.out_role <- st.role;
    api.set_output (Output.with_role st.role Output.empty)
  end

let finish (api : _ Network.api) st =
  st.finished <- true;
  publish_role api st;
  api.terminate ()

(* One call re-runs the repeat-loop body (lines 3-18) to a fixpoint,
   mirroring the paper's continuously polling loop.  A top-level tail
   recursion over immediate booleans, so a wake allocates nothing. *)
let rec wake_loop (api : _ Network.api) st =
  if st.finished then ()
  else if st.term_initiated then begin
    (* Line 16: busy-wait for the returning termination pulse; it is
       consumed here (not by line 11) and hence never forwarded. *)
    if recv_ccw api st then finish api st
  end
  else begin
    (* Lines 3-8: Algorithm 1 over the CW channel. *)
    let progress_cw = recv_cw api st in
    if progress_cw then begin
      if st.rho_cw = st.id then st.role <- Output.Leader
      else begin
        st.role <- Output.Non_leader;
        send_cw api st
      end;
      publish_role api st
    end;
    (* Lines 9-13: Algorithm 1 over the CCW channel, lagging. *)
    let progress_ccw =
      st.rho_cw >= st.id
      && begin
           let initiated =
             st.sigma_ccw = 0
             && begin
                  send_ccw api st;
                  true
                end
           in
           let received =
             recv_ccw api st
             && begin
                  if st.rho_ccw <> st.id then send_ccw api st;
                  true
                end
           in
           initiated || received
         end
    in
    (* Lines 14-15: the election-complete event, unique to the
       node of maximal ID. *)
    let progress_term =
      (not st.term_initiated)
      && st.rho_cw = st.id
      && st.rho_ccw = st.id
      && begin
           send_ccw api st;
           st.term_initiated <- true;
           true
         end
    in
    (* Line 18: the exit condition. *)
    if st.rho_ccw > st.rho_cw then finish api st
    else if progress_cw || progress_ccw || progress_term then wake_loop api st
  end

let program ~id =
  if id < 1 then invalid_arg "Algo2.program: id must be positive";
  let st =
    {
      id;
      rho_cw = 0;
      sigma_cw = 0;
      rho_ccw = 0;
      sigma_ccw = 0;
      role = Output.Undecided;
      out_role = Output.Undecided;
      term_initiated = false;
      finished = false;
    }
  in
  let start api = send_cw api st in
  let wake api = wake_loop api st in
  let inspect () =
    [
      ("id", st.id);
      ("rho_cw", st.rho_cw);
      ("sigma_cw", st.sigma_cw);
      ("rho_ccw", st.rho_ccw);
      ("sigma_ccw", st.sigma_ccw);
      ("term_initiated", if st.term_initiated then 1 else 0);
    ]
  in
  let role_code = function
    | Output.Undecided -> 0
    | Output.Leader -> 1
    | Output.Non_leader -> 2
  in
  let role_of = function
    | 1 -> Output.Leader
    | 2 -> Output.Non_leader
    | _ -> Output.Undecided
  in
  let snap =
    Some
      {
        Engine_intf.save =
          (fun () ->
            [|
              st.rho_cw;
              st.sigma_cw;
              st.rho_ccw;
              st.sigma_ccw;
              role_code st.role;
              role_code st.out_role;
              (if st.term_initiated then 1 else 0);
              (if st.finished then 1 else 0);
            |]);
        load =
          (fun a ->
            st.rho_cw <- a.(0);
            st.sigma_cw <- a.(1);
            st.rho_ccw <- a.(2);
            st.sigma_ccw <- a.(3);
            st.role <- role_of a.(4);
            st.out_role <- role_of a.(5);
            st.term_initiated <- a.(6) = 1;
            st.finished <- a.(7) = 1);
      }
  in
  { Network.start; wake; inspect; snap }

let total_pulses = Formulas.algo2_total
