type value = Bool of bool | Int of int | Float of float | String of string

type t = {
  name : string;
  enabled : bool;
  on_send : node:int -> port:int -> seq:int -> link:int -> cw:bool -> unit;
  on_deliver : node:int -> port:int -> seq:int -> unit;
  on_drop : node:int -> port:int -> seq:int -> unit;
  on_consume : node:int -> port:int -> unit;
  on_wake : node:int -> unit;
  on_decide : node:int -> output:Output.t -> unit;
  on_terminate : node:int -> unit;
  on_run_start : (string * value) list -> unit;
  on_snapshot : step:int -> (string * int) list -> unit;
  on_run_end : (string * value) list -> unit;
  on_row : table:string -> (string * value) list -> unit;
  flush : unit -> unit;
  buffer : Trace.t option;
}

let null =
  {
    name = "null";
    enabled = false;
    on_send = (fun ~node:_ ~port:_ ~seq:_ ~link:_ ~cw:_ -> ());
    on_deliver = (fun ~node:_ ~port:_ ~seq:_ -> ());
    on_drop = (fun ~node:_ ~port:_ ~seq:_ -> ());
    on_consume = (fun ~node:_ ~port:_ -> ());
    on_wake = (fun ~node:_ -> ());
    on_decide = (fun ~node:_ ~output:_ -> ());
    on_terminate = (fun ~node:_ -> ());
    on_run_start = (fun _ -> ());
    on_snapshot = (fun ~step:_ _ -> ());
    on_run_end = (fun _ -> ());
    on_row = (fun ~table:_ _ -> ());
    flush = (fun () -> ());
    buffer = None;
  }

let memory () =
  let tr = Trace.create () in
  {
    null with
    name = "memory";
    enabled = true;
    on_send = (fun ~node ~port ~seq ~link:_ ~cw:_ ->
      Trace.record tr (Trace.Send { node; port = Port.of_index port; seq }));
    on_deliver = (fun ~node ~port ~seq ->
      Trace.record tr (Trace.Deliver { node; port = Port.of_index port; seq }));
    (* No [on_drop]: the pre-sink [Trace] recorded nothing for
       post-termination arrivals, and solitude extraction depends on
       consumed-port sequences only. *)
    on_consume = (fun ~node ~port ->
      Trace.record tr (Trace.Consume { node; port = Port.of_index port }));
    on_decide = (fun ~node ~output ->
      Trace.record tr (Trace.Decide { node; output }));
    on_terminate = (fun ~node -> Trace.record tr (Trace.Terminate { node }));
    buffer = Some tr;
  }

let counters m =
  {
    null with
    name = "counters";
    enabled = true;
    on_send = (fun ~node ~port:_ ~seq:_ ~link ~cw ->
      Metrics.on_send m ~link ~node ~cw);
    on_deliver = (fun ~node ~port ~seq:_ ->
      Metrics.on_deliver m ~node ~port_index:port);
    on_drop = (fun ~node:_ ~port:_ ~seq:_ ->
      Metrics.on_post_termination_delivery m);
    on_consume = (fun ~node ~port ->
      Metrics.on_consume m ~node ~port_index:port);
    on_wake = (fun ~node:_ -> Metrics.on_wake m);
  }

(* --------------------------------------------------------------- *)
(* JSONL *)

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* Mirrors the Bench_io writer, so journals and reports agree. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s ->
      Buffer.add_char buf '"';
      escape_json buf s;
      Buffer.add_char buf '"'

let add_key buf k =
  Buffer.add_char buf '"';
  escape_json buf k;
  Buffer.add_string buf "\":"

let add_field buf k v =
  Buffer.add_char buf ',';
  add_key buf k;
  add_value buf v

let add_fields buf fields = List.iter (fun (k, v) -> add_field buf k v) fields

let jsonl ?(events = true) ~emit () =
  let buf = Buffer.create 256 in
  let start typ =
    Buffer.clear buf;
    Buffer.add_string buf "{\"type\":\"";
    Buffer.add_string buf typ;
    Buffer.add_char buf '"'
  in
  let finish () =
    Buffer.add_char buf '}';
    emit (Buffer.contents buf)
  in
  let int_field k i =
    Buffer.add_char buf ',';
    add_key buf k;
    Buffer.add_string buf (string_of_int i)
  in
  let event3 typ ~node ~port ~seq =
    start typ;
    int_field "node" node;
    int_field "port" port;
    int_field "seq" seq;
    finish ()
  in
  let base =
    {
      null with
      name = "jsonl";
      enabled = true;
      on_run_start = (fun meta ->
        start "run_start";
        add_fields buf meta;
        finish ());
      on_snapshot = (fun ~step counters ->
        start "snapshot";
        int_field "step" step;
        Buffer.add_string buf ",\"counters\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            add_key buf k;
            Buffer.add_string buf (string_of_int v))
          counters;
        Buffer.add_char buf '}';
        finish ());
      on_run_end = (fun fields ->
        start "run_end";
        add_fields buf fields;
        finish ());
      on_row = (fun ~table fields ->
        start "row";
        add_field buf "table" (String table);
        Buffer.add_string buf ",\"fields\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            add_key buf k;
            add_value buf v)
          fields;
        Buffer.add_char buf '}';
        finish ());
    }
  in
  if not events then base
  else
    {
      base with
      on_send = (fun ~node ~port ~seq ~link ~cw ->
        start "send";
        int_field "node" node;
        int_field "port" port;
        int_field "seq" seq;
        int_field "link" link;
        Buffer.add_string buf (if cw then ",\"cw\":true" else ",\"cw\":false");
        finish ());
      on_deliver = (fun ~node ~port ~seq -> event3 "deliver" ~node ~port ~seq);
      on_drop = (fun ~node ~port ~seq -> event3 "drop" ~node ~port ~seq);
      on_consume = (fun ~node ~port ->
        start "consume";
        int_field "node" node;
        int_field "port" port;
        finish ());
      on_wake = (fun ~node ->
        start "wake";
        int_field "node" node;
        finish ());
      on_decide = (fun ~node ~(output : Output.t) ->
        start "decide";
        int_field "node" node;
        add_field buf "role" (String (Output.role_to_string output.role));
        (match output.cw_port with
        | Some p -> int_field "cw_port" (Port.index p)
        | None -> ());
        (match output.value with Some v -> int_field "value" v | None -> ());
        finish ());
      on_terminate = (fun ~node ->
        start "terminate";
        int_field "node" node;
        finish ());
    }

let jsonl_buffer ?events out =
  jsonl ?events ()
    ~emit:(fun line ->
      Buffer.add_string out line;
      Buffer.add_char out '\n')

let jsonl_channel ?events oc =
  let pending = Buffer.create 65536 in
  let flush_pending () =
    Buffer.output_buffer oc pending;
    Buffer.clear pending
  in
  let s =
    jsonl ?events ()
      ~emit:(fun line ->
        Buffer.add_string pending line;
        Buffer.add_char pending '\n';
        if Buffer.length pending >= 65536 then flush_pending ())
  in
  {
    s with
    flush = (fun () ->
      flush_pending ();
      Stdlib.flush oc);
  }

let with_jsonl_channel ?events path f =
  let oc = open_out path in
  let sink = jsonl_channel ?events oc in
  Fun.protect
    ~finally:(fun () ->
      (* Flush even when [f] raises: a journal whose run died mid-way
         must still hold every record emitted before the failure (the
         valid-prefix guarantee fastsim's over-budget exception and the
         engine's own invariant failures rely on). *)
      sink.flush ();
      close_out oc)
    (fun () -> f sink)

let tee a b =
  if a == null then b
  else if b == null then a
  else
    {
      name = a.name ^ "+" ^ b.name;
      enabled = a.enabled || b.enabled;
      on_send = (fun ~node ~port ~seq ~link ~cw ->
        a.on_send ~node ~port ~seq ~link ~cw;
        b.on_send ~node ~port ~seq ~link ~cw);
      on_deliver = (fun ~node ~port ~seq ->
        a.on_deliver ~node ~port ~seq;
        b.on_deliver ~node ~port ~seq);
      on_drop = (fun ~node ~port ~seq ->
        a.on_drop ~node ~port ~seq;
        b.on_drop ~node ~port ~seq);
      on_consume = (fun ~node ~port ->
        a.on_consume ~node ~port;
        b.on_consume ~node ~port);
      on_wake = (fun ~node ->
        a.on_wake ~node;
        b.on_wake ~node);
      on_decide = (fun ~node ~output ->
        a.on_decide ~node ~output;
        b.on_decide ~node ~output);
      on_terminate = (fun ~node ->
        a.on_terminate ~node;
        b.on_terminate ~node);
      on_run_start = (fun meta ->
        a.on_run_start meta;
        b.on_run_start meta);
      on_snapshot = (fun ~step counters ->
        a.on_snapshot ~step counters;
        b.on_snapshot ~step counters);
      on_run_end = (fun fields ->
        a.on_run_end fields;
        b.on_run_end fields);
      on_row = (fun ~table fields ->
        a.on_row ~table fields;
        b.on_row ~table fields);
      flush = (fun () ->
        a.flush ();
        b.flush ());
      buffer = (match a.buffer with Some _ -> a.buffer | None -> b.buffer);
    }

let trace t = t.buffer
