(** Resizable circular buffers — the engine's allocation-free queues.

    [Queue.t] allocates a cons cell per [add]; on the simulator's hot
    path (tens of millions of deliveries per sweep) that dominates the
    GC load.  A [Ring.t] stores its elements in a flat array that grows
    by doubling, so pushes and pops allocate nothing once the buffer
    has reached its steady-state capacity.

    Popped slots are cleared: the type gives no dummy element, so the
    first element ever pushed is kept as the fill value and written
    over each popped slot.  A ring therefore retains at most that one
    element beyond its live contents — never an arbitrary popped
    value — and clearing is a plain store, so the hot path stays
    allocation-free. *)

type 'a t

val create : unit -> 'a t
(** An empty ring; no storage is allocated until the first push. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail.  O(1) amortised, allocation-free when the
    buffer does not grow. *)

val peek : 'a t -> 'a
(** The oldest element.  Raises [Invalid_argument] when empty. *)

val pop : 'a t -> 'a
(** Remove and return the oldest element.  Raises [Invalid_argument]
    when empty. *)

val push_front : 'a t -> 'a -> unit
(** Insert at the head — the inverse of {!pop}.  Exists for the model
    checker's incremental undo. *)

val pop_back : 'a t -> 'a
(** Remove and return the newest element — the inverse of {!push}.
    Raises [Invalid_argument] when empty. *)

val to_array : 'a t -> 'a array
(** The buffered elements, oldest first.  Allocates; for invariant
    probes, not the hot path. *)
