(** Resizable circular buffers — the engine's allocation-free queues.

    [Queue.t] allocates a cons cell per [add]; on the simulator's hot
    path (tens of millions of deliveries per sweep) that dominates the
    GC load.  A [Ring.t] stores its elements in a flat array that grows
    by doubling, so pushes and pops allocate nothing once the buffer
    has reached its steady-state capacity.

    Popped slots are not cleared (the type gives no dummy element to
    overwrite them with), so a popped boxed value is retained until its
    slot is reused.  The simulator's payloads are almost always [unit]
    pulses, making this a non-issue in practice. *)

type 'a t

val create : unit -> 'a t
(** An empty ring; no storage is allocated until the first push. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail.  O(1) amortised, allocation-free when the
    buffer does not grow. *)

val peek : 'a t -> 'a
(** The oldest element.  Raises [Invalid_argument] when empty. *)

val pop : 'a t -> 'a
(** Remove and return the oldest element.  Raises [Invalid_argument]
    when empty. *)
