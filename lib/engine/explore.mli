(** Exhaustive exploration of the asynchronous adversary's choices —
    bounded model checking for pulse protocols.

    The only nondeterminism in the model is which non-empty link
    delivers next, so the reachable behaviours of an instance form a
    tree of link choices.  {!exhaustive} walks that tree depth-first,
    de-duplicating states by a fingerprint built from everything that
    determines future behaviour: per-link queue lengths (pulses are
    contentless, so lengths suffice), mailbox lengths, termination
    flags, node outputs, and every counter the programs expose through
    [inspect].

    Soundness of the de-duplication requires programs to be
    {e state-transparent}: two nodes with equal inspect counters, equal
    outputs and equal termination status must behave identically.  All
    algorithms in this repository satisfy this (their whole mutable
    state is exported).

    States are reconstructed by replaying the decision path from a
    fresh network, so no state snapshotting is needed; this is
    quadratic in path depth and meant for small instances (tens of
    total deliveries), where it proves a theorem-like statement: {e
    every} reachable execution satisfies the property. *)

type stats = {
  distinct_states : int;  (** Fingerprint-distinct states visited. *)
  terminal_states : int;  (** States with no message in flight. *)
  replayed_deliveries : int;  (** Total work done, in deliveries. *)
  failures : int;  (** Terminal states where the property failed. *)
  truncated : bool;  (** Hit [max_states] before finishing. *)
  max_depth : int;  (** Longest decision path seen. *)
}

val exhaustive :
  ?max_states:int ->
  make:(unit -> Network.pulse Network.t) ->
  check:(Network.pulse Network.t -> bool) ->
  unit ->
  stats
(** [exhaustive ~make ~check ()] explores every schedule of the
    instance built by [make] (default [max_states] 200_000) and
    evaluates [check] at each distinct terminal state. *)

val fingerprint : 'm Network.t -> string
(** The state fingerprint described above (exposed for tests and
    reused by the [lib/mc] checker; polymorphic in the payload because
    it never looks at message contents — callers exploring
    content-carrying protocols must not rely on it alone). *)
