let legend =
  "legend: > clockwise pulse delivered, < counterclockwise pulse delivered,\n\
  \        L decided Leader, l decided Non-Leader, X terminated"

let render ?(max_rows = 500) trace ~n =
  let buf = Buffer.create 1024 in
  let header = Buffer.create 64 in
  Buffer.add_string header "  step |";
  for v = 0 to n - 1 do
    Buffer.add_string header (Printf.sprintf "%3d" v)
  done;
  Buffer.add_string buf (Buffer.contents header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (Buffer.contents header)) '-');
  Buffer.add_char buf '\n';
  let rows = ref 0 in
  let step = ref 0 in
  let emit node ch =
    incr rows;
    if !rows <= max_rows then begin
      Buffer.add_string buf (Printf.sprintf "%6d |" !step);
      for v = 0 to n - 1 do
        Buffer.add_string buf
          (if Int.equal v node then Printf.sprintf "  %c" ch else "  .")
      done;
      Buffer.add_char buf '\n'
    end
  in
  List.iter
    (fun event ->
      match event with
      | Trace.Deliver { node; port; _ } ->
          incr step;
          emit node (match port with Port.P0 -> '>' | Port.P1 -> '<')
      | Trace.Decide { node; output } ->
          let ch =
            match output.Output.role with
            | Output.Leader -> 'L'
            | Output.Non_leader -> 'l'
            | Output.Undecided -> '?'
          in
          emit node ch
      | Trace.Terminate { node } -> emit node 'X'
      | Trace.Send _ | Trace.Consume _ -> ())
    (Trace.events trace);
  if !rows > max_rows then
    Buffer.add_string buf
      (Printf.sprintf "... (%d rows elided)\n" (!rows - max_rows));
  Buffer.contents buf
