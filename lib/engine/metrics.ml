type t = {
  mutable sends : int;
  mutable sends_cw : int;
  mutable deliveries : int;
  mutable consumes : int;
  mutable wakes : int;
  mutable post_term : int;
  ports : int; (* per-node port stride of [delivered]/[consumed] *)
  sends_by_node : int array;
  sends_by_link : int array;
  delivered : int array; (* node * ports + port *)
  consumed : int array;
}

let create ?(ports_per_node = 2) ~n_nodes ~n_links () =
  {
    sends = 0;
    sends_cw = 0;
    deliveries = 0;
    consumes = 0;
    wakes = 0;
    post_term = 0;
    ports = ports_per_node;
    sends_by_node = Array.make n_nodes 0;
    sends_by_link = Array.make n_links 0;
    delivered = Array.make (n_nodes * ports_per_node) 0;
    consumed = Array.make (n_nodes * ports_per_node) 0;
  }

let on_send t ~link ~node ~cw =
  t.sends <- t.sends + 1;
  if cw then t.sends_cw <- t.sends_cw + 1;
  t.sends_by_node.(node) <- t.sends_by_node.(node) + 1;
  t.sends_by_link.(link) <- t.sends_by_link.(link) + 1

let on_deliver t ~node ~port_index =
  t.deliveries <- t.deliveries + 1;
  let i = (node * t.ports) + port_index in
  t.delivered.(i) <- t.delivered.(i) + 1

let on_consume t ~node ~port_index =
  t.consumes <- t.consumes + 1;
  let i = (node * t.ports) + port_index in
  t.consumed.(i) <- t.consumed.(i) + 1

let on_post_termination_delivery t = t.post_term <- t.post_term + 1
let on_wake t = t.wakes <- t.wakes + 1

(* Exact inverses of the [on_*] updates, called by the engines'
   [undo_step] for each event recorded in an undo journal — scalars
   and per-node/per-link arrays stay consistent without snapshotting
   the whole counter block. *)
let undo_send t ~link ~node ~cw =
  t.sends <- t.sends - 1;
  if cw then t.sends_cw <- t.sends_cw - 1;
  t.sends_by_node.(node) <- t.sends_by_node.(node) - 1;
  t.sends_by_link.(link) <- t.sends_by_link.(link) - 1

let undo_deliver t ~node ~port_index =
  t.deliveries <- t.deliveries - 1;
  let i = (node * t.ports) + port_index in
  t.delivered.(i) <- t.delivered.(i) - 1

let undo_consume t ~node ~port_index =
  t.consumes <- t.consumes - 1;
  let i = (node * t.ports) + port_index in
  t.consumed.(i) <- t.consumed.(i) - 1

let undo_post_termination_delivery t = t.post_term <- t.post_term - 1
let undo_wake t = t.wakes <- t.wakes - 1

let sends t = t.sends
let sends_cw t = t.sends_cw
let sends_ccw t = t.sends - t.sends_cw
let deliveries t = t.deliveries
let consumes t = t.consumes
let wakes t = t.wakes
let sends_by t ~node = t.sends_by_node.(node)
let sends_on_link t ~link = t.sends_by_link.(link)
let delivered_to t ~node ~port_index = t.delivered.((node * t.ports) + port_index)
let consumed_by t ~node ~port_index = t.consumed.((node * t.ports) + port_index)
let post_termination_deliveries t = t.post_term

(* Stable schema: snake_case keys in alphabetical order (see the .mli;
   a test pins the exact list). *)
let to_assoc t =
  [
    ("consumes", t.consumes);
    ("deliveries", t.deliveries);
    ("post_termination_deliveries", t.post_term);
    ("sends", t.sends);
    ("sends_ccw", sends_ccw t);
    ("sends_cw", t.sends_cw);
    ("wakes", t.wakes);
  ]

let pp ppf t =
  Format.fprintf ppf "sends=%d (cw=%d ccw=%d) deliveries=%d consumes=%d wakes=%d post-term=%d"
    t.sends t.sends_cw (sends_ccw t) t.deliveries t.consumes t.wakes t.post_term
