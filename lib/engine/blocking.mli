(** Direct-style node programs via effect handlers.

    The paper writes its protocols as sequential code that blocks on
    [recv] (e.g. Algorithm 2 line 16 busy-waits for a pulse).  This
    module lets such code be written directly: a program body calls
    {!recv} / {!recv_any}, which suspend the node until the scheduler
    has delivered a suitable pulse, while sends go through the ordinary
    {!Network.api}.  Underneath, the body runs as a one-shot
    delimited continuation resumed on wake-ups, so it composes with the
    event-driven simulator without threads.

    Only pulse networks ([Network.pulse] payloads) are supported; the
    content-carrying baselines use plain event-driven programs.

    Telemetry: blocking bodies need no [?sink] of their own — every
    observable action ({!recv} consuming a pulse, sends, decisions,
    termination) goes through the wrapped {!Network.api}, so the
    {!Sink.t} passed to {!Network.create} sees a blocking program
    exactly as it sees an event-driven one. *)

val recv : Port.t -> unit
(** Block until one pulse can be consumed from the given local port,
    then consume it.  Must be called from inside a {!make} body. *)

val recv_any : unit -> Port.t
(** Block until any port has a pulse; consume it and return the port
    it came from.  When both ports have pulses, [P0] wins. *)

val make :
  ?inspect:(unit -> (string * int) list) ->
  (Network.pulse Network.api -> unit) ->
  Network.pulse Network.program
(** [make body] wraps a blocking body as an event-driven program.  The
    body runs until it blocks on {!recv}/{!recv_any} or returns; a body
    that returns without calling [api.terminate] simply goes silent
    (quiescent stabilization), one that loops forever stays receptive. *)
