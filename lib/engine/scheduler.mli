(** Asynchronous adversaries.

    In the fully-defective model the only power the network has is the
    choice of which in-flight pulse gets delivered next (delays are
    arbitrary but finite, channels never drop, duplicate or reorder
    pulses).  A scheduler realizes one such choice policy.  Algorithms
    must be correct under *every* scheduler; the test-suite runs each
    algorithm against all of them, including seeded random ones.

    A scheduler sees a {!view} of the in-flight state — which directed
    links are non-empty, the age of each link's oldest pulse — and
    returns the link to deliver from.  It never sees pulse contents
    (there are none) nor node states.

    The view is a single mutable record the simulator refreshes in
    place before every pick, so the steady-state hot path allocates
    nothing.  Schedulers must treat it as read-only and must not retain
    it across picks. *)

type view = {
  nonempty : int array;
      (** Scratch buffer owned by the simulator.  The first {!count}
          entries are the link ids with pulses in flight, in
          unspecified (but deterministic) order; entries beyond
          [count] are garbage.  Do not mutate. *)
  mutable count : int;  (** Number of valid entries in {!nonempty}. *)
  head_seq : int -> int;
      (** Global send-sequence number of a link's oldest pulse. *)
  head_batch : int -> int;
      (** Send batch (one per node activation) of a link's oldest
          pulse; pulses of one batch were sent "at the same time". *)
  travels_cw : int -> bool option;
      (** Ground-truth direction of a link, for topologies that define
          one ([Some] on rings).  General graphs report [None];
          direction-biased schedulers then treat every link as
          non-preferred and degrade to their FIFO tie-break. *)
  dst_node : int -> int;  (** Receiving node of a link. *)
  mutable step : int;  (** Deliveries performed so far. *)
}

type t = { name : string; pick : view -> int }

val fifo : t
(** Definition 21's scheduler: oldest pulse first, batch ties broken in
    favour of clockwise pulses. *)

val global_fifo : t
(** Strict global send order (sequence numbers only). *)

val lifo : t
(** Always delivers the link whose oldest pulse is youngest; an
    aggressive reordering adversary. *)

val round_robin : unit -> t
(** Rotates over link ids with an in-place modular cursor: the smallest
    non-empty link at or after the cursor is picked, wrapping to the
    smallest non-empty link when none remains.  Stateful, create one
    per run. *)

val random : Colring_stats.Rng.t -> t
(** Uniform choice among non-empty links. *)

val bias_direction : cw:bool -> t
(** Prefers delivering pulses travelling in the given ground-truth
    direction; falls back to FIFO among the preferred class.  With
    [~cw:false] this starves the clockwise instance, stressing
    Algorithm 2's requirement that the counterclockwise instance lag. *)

val starve_node : node:int -> t
(** Withholds deliveries to [node] for as long as any other delivery is
    possible. *)

val hog_node : node:int -> t
(** Delivers to [node] whenever possible. *)

val starve_link : link:int -> t
(** Withholds one directed link as long as possible — the
    slow-channel adversary. *)

val of_schedule : ?name:string -> ?after:t -> int array -> t
(** [of_schedule schedule] replays an explicit link sequence: the k-th
    pick returns [schedule.(k)], raising [Invalid_argument] if that
    link holds no message at that point (the schedule does not fit the
    run).  Once the schedule is exhausted, picks delegate to [after]
    (default {!fifo}).  This is how the model checker's recorded
    choice sequences — in particular minimized counterexamples — are
    replayed through the ordinary {!Colring_engine.Network.run} loop,
    and how {!Transport} backends replay a real-network delivery trace
    on the simulator.  [name] overrides the scheduler's display name
    (the default spells out the schedule length and fallback) — replay
    journals use it to carry the originating backend's name, so a
    replayed run's [run_start] record is byte-identical to the
    original's.  Stateful (an internal cursor): create one per run. *)

val all_deterministic : unit -> t list
(** Fresh instances of every deterministic scheduler above (node- and
    link-specific ones instantiated for node 0 / link 0). *)

val pp : Format.formatter -> t -> unit
