(** Engine-side counters.

    These are maintained by the simulator independently of whatever
    counters the node programs keep (the paper's ρ and σ), so tests can
    cross-check the two.  Message complexity in the paper counts *sent*
    pulses; {!sends} is the number the benches report. *)

type t

val create : ?ports_per_node:int -> n_nodes:int -> n_links:int -> unit -> t
(** [ports_per_node] sizes the per-port counter arrays (default [2],
    the ring stride; general-graph engines pass their maximum degree).
    Port indices at or above the stride are out of bounds. *)

val on_send : t -> link:int -> node:int -> cw:bool -> unit
val on_deliver : t -> node:int -> port_index:int -> unit
val on_consume : t -> node:int -> port_index:int -> unit
val on_post_termination_delivery : t -> unit
val on_wake : t -> unit

(** Exact inverses of the [on_*] updates, one per journalled event —
    the engines' [undo_step] uses them to roll counters back without
    snapshotting the whole block. *)

val undo_send : t -> link:int -> node:int -> cw:bool -> unit
val undo_deliver : t -> node:int -> port_index:int -> unit
val undo_consume : t -> node:int -> port_index:int -> unit
val undo_post_termination_delivery : t -> unit
val undo_wake : t -> unit

val sends : t -> int
(** Total pulses sent — the paper's message complexity. *)

val sends_cw : t -> int
(** Pulses sent that travel clockwise (ground-truth direction). *)

val sends_ccw : t -> int

val deliveries : t -> int
val consumes : t -> int
val wakes : t -> int

val sends_by : t -> node:int -> int
val sends_on_link : t -> link:int -> int
val delivered_to : t -> node:int -> port_index:int -> int
val consumed_by : t -> node:int -> port_index:int -> int

val post_termination_deliveries : t -> int
(** Number of pulses delivered to already-terminated nodes.  Zero iff
    termination was quiescent in the paper's sense. *)

val to_assoc : t -> (string * int) list
(** All scalar counters by name, for machine-readable reports and for
    whole-run equality checks in determinism tests.

    The key set is a frozen, documented schema — journal snapshots and
    external post-processing depend on it.  Keys are snake_case, in
    alphabetical order, exactly:
    [consumes], [deliveries], [post_termination_deliveries], [sends],
    [sends_ccw], [sends_cw], [wakes].
    Extending the schema means adding a key in order and updating the
    pinning test; never rename or reorder. *)

val pp : Format.formatter -> t -> unit
