(** Per-link envelope queues, struct-of-arrays.

    The seed engine boxed every in-flight pulse in an
    [{ payload; seq; batch; depth }] record inside a [Queue.t] — two
    heap blocks per send.  An [Envq.t] keeps the payloads in one
    circular array and the three integer stamps in a parallel flat
    [int array] (stride 3), so steady-state sends and deliveries
    allocate nothing and the stamps of the head envelope can be read
    without materialising it.

    Capacity grows by doubling; like {!Ring}, popped payload slots are
    cleared with the first payload ever pushed, so a queue retains at
    most that one payload beyond its live contents. *)

type 'm t

val create : unit -> 'm t
(** An empty queue; no storage is allocated until the first push. *)

val length : 'm t -> int
val is_empty : 'm t -> bool

val push : 'm t -> 'm -> seq:int -> batch:int -> depth:int -> unit
(** Append an envelope at the tail.  O(1) amortised, allocation-free
    when the buffer does not grow. *)

val head_seq : 'm t -> int
val head_batch : 'm t -> int
val head_depth : 'm t -> int
(** Stamps of the oldest envelope.  Raise [Invalid_argument] when
    empty. *)

val pop : 'm t -> 'm
(** Remove the oldest envelope and return its payload.  Read the
    [head_*] stamps first if they are needed.  Raises
    [Invalid_argument] when empty. *)

val peek : 'm t -> 'm
(** Payload of the oldest envelope without removing it.  Raises
    [Invalid_argument] when empty. *)

val push_front : 'm t -> 'm -> seq:int -> batch:int -> depth:int -> unit
(** Re-file an envelope at the head — the inverse of {!pop} with the
    original stamps.  Exists for the model checker's incremental undo;
    FIFO order of the untouched contents is preserved. *)

val pop_back : 'm t -> 'm
(** Remove and return the newest envelope's payload — the inverse of
    {!push}.  Raises [Invalid_argument] when empty. *)

val to_payload_array : 'm t -> 'm array
(** The queued payloads, oldest first.  Allocates; for invariant
    probes, not the hot path. *)
