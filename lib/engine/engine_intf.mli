(** The topology-parameterized engine surface.

    Rings ({!Network}) and general multigraphs
    ([Colring_graph.Gnetwork]) implement the same simulator contract:
    build a network of per-node programs over a topology, deliver
    in-flight pulses one at a time under a {!Scheduler}, observe the
    run through a {!Sink}, and expose the enabled-set/force-step hooks
    the model checker drives.  {!NETWORK} is that contract, written
    down once so the duplication is structural rather than accidental:
    the ring engine is the degree-2 instantiation ([Unify.Ring_network])
    and the graph engine the general one
    ([Colring_graph.Unified.Graph_network]); generic drivers — the
    model-checker functor [Colring_mc.Mc.Make] in particular — are
    functors over it.

    Per-topology capabilities stay out of this signature on purpose:
    blocking receives, traces, diagrams, injection and causal clocks
    are ring-engine extras, exactly as scheduler direction bias is an
    optional capability (a view's [travels_cw] may answer [None]). *)

type run_result = {
  sends : int;  (** Total pulses sent — the paper's message complexity. *)
  deliveries : int;
  quiescent : bool;
      (** Nothing in flight and every mailbox empty when the run ended. *)
  all_terminated : bool;
  exhausted : bool;  (** Stopped by [max_deliveries] instead of quiescence. *)
  termination_order : int list;  (** Chronological. *)
}
(** One run's outcome, shared by every engine (each re-exports it with
    a type equation, so results cross engine boundaries without
    conversion). *)

(** The simulator contract.  See {!Network} for the reference
    semantics of each operation; conforming engines must match them
    observably (budget semantics, sink emission order, enabled-set
    enumeration order). *)
module type NETWORK = sig
  type topology
  type 'm t
  type 'm api
  type 'm program

  val create :
    ?sink:Sink.t -> ?seed:int -> topology -> (int -> 'm program) -> 'm t

  val run :
    ?max_deliveries:int ->
    ?snapshot_every:int ->
    ?probe:(step:int -> unit) ->
    'm t ->
    Scheduler.t ->
    run_result

  val step : 'm t -> Scheduler.t -> bool
  val force_step : 'm t -> link:int -> unit
  val enabled_count : 'm t -> int
  val enabled_link : 'm t -> after:int -> int

  val fingerprint : 'm t -> string
  (** A canonical string of the observable configuration (channel and
      mailbox depths, termination flags, outputs, inspect counters) —
      equal iff the states are observably equal.  The model checker's
      dedup key builds on it. *)

  val topology : 'm t -> topology
  val size : 'm t -> int
  val num_links : topology -> int
  val link_dst_node : topology -> int -> int
  val output : 'm t -> int -> Output.t
  val outputs : 'm t -> Output.t array
  val terminated : 'm t -> int -> bool
  val all_terminated : 'm t -> bool
  val termination_order : 'm t -> int list
  val inspect : 'm t -> int -> (string * int) list
  val inspect_counter : 'm t -> int -> string -> int
  val metrics : 'm t -> Metrics.t
  val in_flight : 'm t -> int
  val mailbox_backlog : 'm t -> int
  val is_quiescent : 'm t -> bool
end
