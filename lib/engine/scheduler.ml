type view = {
  nonempty : int array;
  mutable count : int;
  head_seq : int -> int;
  head_batch : int -> int;
  travels_cw : int -> bool option;
  dst_node : int -> int;
  mutable step : int;
}

type t = { name : string; pick : view -> int }

(* Lexicographic argmin over the first [count] links.  The three integer
   keys are evaluated lazily (k2 and k3 only on k1 ties) and the scan is
   a top-level tail recursion over immediate arguments (a [let rec]
   nested in the pick would allocate its closure on every call), so a
   pick allocates nothing.  Ties on the full key keep the earlier link
   in the buffer; every built-in scheduler below has a globally unique
   third key (the send sequence number), so buffer order never
   influences the choice. *)
let rec argmin_scan key1 key2 key3 v i best b1 b2 b3 =
  if i >= v.count then best
  else
    let l = v.nonempty.(i) in
    let k1 = key1 v l in
    if k1 > b1 then argmin_scan key1 key2 key3 v (i + 1) best b1 b2 b3
    else if k1 < b1 then
      argmin_scan key1 key2 key3 v (i + 1) l k1 (key2 v l) (key3 v l)
    else
      let k2 = key2 v l in
      if k2 > b2 then argmin_scan key1 key2 key3 v (i + 1) best b1 b2 b3
      else if k2 < b2 then
        argmin_scan key1 key2 key3 v (i + 1) l b1 k2 (key3 v l)
      else
        let k3 = key3 v l in
        if k3 < b3 then argmin_scan key1 key2 key3 v (i + 1) l b1 b2 k3
        else argmin_scan key1 key2 key3 v (i + 1) best b1 b2 b3

let argmin3 key1 key2 key3 v =
  let l0 = v.nonempty.(0) in
  argmin_scan key1 key2 key3 v 1 l0 (key1 v l0) (key2 v l0) (key3 v l0)

let k_seq v l = v.head_seq l
let k_neg_seq v l = -v.head_seq l
let k_batch v l = v.head_batch l
(* Direction keys read the optional ground truth: links without a
   defined direction (general graphs report [None]) sort with the
   non-preferred class, so direction bias degrades to FIFO there. *)
let k_cw_first v l = match v.travels_cw l with Some true -> 0 | _ -> 1
let k_zero _ _ = 0

(* Key tuples are ordered lexicographically as (key1, key2, key3). *)
let fifo =
  { name = "fifo-cw-priority"; pick = argmin3 k_batch k_cw_first k_seq }

let global_fifo = { name = "global-fifo"; pick = argmin3 k_seq k_zero k_zero }
let lifo = { name = "lifo"; pick = argmin3 k_neg_seq k_zero k_zero }

(* Smallest non-empty link at or after the cursor [c]; when none
   remains, wrap to the smallest non-empty link overall.  The buffer is
   unordered, so both minima are found in one scan. *)
let rec rr_scan v c i best_ge best_min =
  if i >= v.count then if best_ge < max_int then best_ge else best_min
  else
    let l = v.nonempty.(i) in
    let best_min = if l < best_min then l else best_min in
    let best_ge = if l >= c && l < best_ge then l else best_ge in
    rr_scan v c (i + 1) best_ge best_min

let round_robin () =
  let cursor = ref 0 in
  {
    name = "round-robin";
    pick =
      (fun v ->
        let link = rr_scan v !cursor 0 max_int max_int in
        cursor := link + 1;
        link);
  }

let random rng =
  {
    name = "random";
    pick = (fun v -> v.nonempty.(Colring_stats.Rng.int rng v.count));
  }

let bias_direction ~cw =
  let k_pref v l =
    match v.travels_cw l with Some d when Bool.equal d cw -> 0 | _ -> 1
  in
  {
    name = (if cw then "bias-cw" else "bias-ccw");
    pick = argmin3 k_pref k_seq k_zero;
  }

let starve_node ~node =
  let k_starved v l = if Int.equal (v.dst_node l) node then 1 else 0 in
  {
    name = Printf.sprintf "starve-node-%d" node;
    pick = argmin3 k_starved k_seq k_zero;
  }

let hog_node ~node =
  let k_hogged v l = if Int.equal (v.dst_node l) node then 0 else 1 in
  {
    name = Printf.sprintf "hog-node-%d" node;
    pick = argmin3 k_hogged k_seq k_zero;
  }

let starve_link ~link:starved =
  let k_starved _ l = if Int.equal l starved then 1 else 0 in
  {
    name = Printf.sprintf "starve-link-%d" starved;
    pick = argmin3 k_starved k_seq k_zero;
  }

(* Membership scan over the view's non-empty buffer (unordered, so a
   linear scan is all there is). *)
let rec mem_scan v l i =
  if i >= v.count then false
  else if Int.equal v.nonempty.(i) l then true
  else mem_scan v l (i + 1)

let of_schedule ?name ?(after = fifo) schedule =
  let cursor = ref 0 in
  {
    name =
      (match name with
      | Some n -> n
      | None ->
          Printf.sprintf "schedule-%d-then-%s" (Array.length schedule)
            after.name);
    pick =
      (fun v ->
        let c = !cursor in
        if c >= Array.length schedule then after.pick v
        else begin
          cursor := c + 1;
          let l = schedule.(c) in
          if not (mem_scan v l 0) then
            invalid_arg "Scheduler.of_schedule: scheduled link is empty";
          l
        end);
  }

let all_deterministic () =
  [
    fifo;
    global_fifo;
    lifo;
    round_robin ();
    bias_direction ~cw:true;
    bias_direction ~cw:false;
    starve_node ~node:0;
    hog_node ~node:0;
    starve_link ~link:0;
  ]

let pp ppf t = Format.pp_print_string ppf t.name
