type t = {
  size : int;
  peers : (int * Port.t) array; (* index: node * 2 + port *)
  cw_ports : Port.t array; (* ground-truth clockwise sending port per node *)
  cw_links : bool array; (* per link id: does it travel clockwise? *)
}

let n t = t.size

let slot v (p : Port.t) = (v * 2) + Port.index p

let peer t v p = t.peers.(slot v p)
let cw_send_port t v = t.cw_ports.(v)
let flipped t v = Port.equal t.cw_ports.(v) Port.P0
let is_oriented t = Array.for_all (fun p -> Port.equal p Port.P1) t.cw_ports

let non_oriented ~flips =
  let size = Array.length flips in
  if size < 1 then invalid_arg "Topology.non_oriented: empty ring";
  let cw_ports =
    Array.map (fun f -> if f then Port.P0 else Port.P1) flips
  in
  let peers = Array.make (size * 2) (-1, Port.P0) in
  for v = 0 to size - 1 do
    let w = (v + 1) mod size in
    (* v's clockwise-out port connects to w's counterclockwise-out port
       (i.e. the port through which w receives clockwise pulses). *)
    let vp = cw_ports.(v) and wp = Port.opposite cw_ports.(w) in
    peers.(slot v vp) <- (w, wp);
    peers.(slot w wp) <- (v, vp)
  done;
  let cw_links =
    Array.init (size * 2) (fun id ->
        Port.equal (Port.of_index (id mod 2)) cw_ports.(id / 2))
  in
  { size; peers; cw_ports; cw_links }

let oriented size =
  if size < 1 then invalid_arg "Topology.oriented: n must be >= 1";
  non_oriented ~flips:(Array.make size false)

let random_non_oriented rng size =
  if size < 1 then invalid_arg "Topology.random_non_oriented: n must be >= 1";
  non_oriented ~flips:(Array.init size (fun _ -> Colring_stats.Rng.bool rng))

let cw_neighbor t v = fst (peer t v (cw_send_port t v))
let ccw_neighbor t v = fst (peer t v (Port.opposite (cw_send_port t v)))

let distance_cw t u v =
  let rec go cur d =
    if Int.equal cur v then d
    else if d > t.size then failwith "Topology.distance_cw: not a ring"
    else go (cw_neighbor t cur) (d + 1)
  in
  go u 0

let num_links t = t.size * 2
let link_id _t v p = slot v p
let link_src _t id = (id / 2, Port.of_index (id mod 2))
let link_dst t id = t.peers.(id)

let link_travels_cw t id = t.cw_links.(id)

let check t =
  (* Wiring symmetry: the peer relation is an involution on endpoints. *)
  for id = 0 to num_links t - 1 do
    let v, p = link_src t id in
    let w, q = peer t v p in
    let v', p' = peer t w q in
    if (not (Int.equal v' v)) || not (Port.equal p' p) then
      failwith "Topology.check: wiring not symmetric"
  done;
  (* Single clockwise cycle covering all nodes. *)
  let visited = Array.make t.size false in
  let rec walk cur steps =
    if steps > t.size then failwith "Topology.check: walk too long"
    else begin
      if steps < t.size then begin
        if visited.(cur) then failwith "Topology.check: premature revisit";
        visited.(cur) <- true;
        walk (cw_neighbor t cur) (steps + 1)
      end
      else if cur <> 0 then failwith "Topology.check: cycle does not close"
    end
  in
  walk 0 0;
  if not (Array.for_all Fun.id visited) then
    failwith "Topology.check: disconnected"

let pp ppf t =
  Format.fprintf ppf "@[<v>ring n=%d%s@," t.size
    (if is_oriented t then " (oriented)" else " (non-oriented)");
  for v = 0 to t.size - 1 do
    Format.fprintf ppf "  node %d: cw-port=%a cw->%d ccw->%d@," v Port.pp
      t.cw_ports.(v) (cw_neighbor t v) (ccw_neighbor t v)
  done;
  Format.fprintf ppf "@]"
