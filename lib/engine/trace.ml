type event =
  | Send of { node : int; port : Port.t; seq : int }
  | Deliver of { node : int; port : Port.t; seq : int }
  | Consume of { node : int; port : Port.t }
  | Terminate of { node : int }
  | Decide of { node : int; output : Output.t }

type t = { mutable events : event list; mutable length : int } (* reversed *)

let create () = { events = []; length = 0 }

let record t e =
  t.events <- e :: t.events;
  t.length <- t.length + 1

let events t = List.rev t.events
let length t = t.length

let consumed_ports t ~node =
  List.filter_map
    (function
      | Consume { node = v; port } when Int.equal v node -> Some port
      | Send _ | Deliver _ | Consume _ | Terminate _ | Decide _ -> None)
    (events t)

let pp_event ppf = function
  | Send { node; port; seq } ->
      Format.fprintf ppf "send    node=%d %a seq=%d" node Port.pp port seq
  | Deliver { node; port; seq } ->
      Format.fprintf ppf "deliver node=%d %a seq=%d" node Port.pp port seq
  | Consume { node; port } ->
      Format.fprintf ppf "consume node=%d %a" node Port.pp port
  | Terminate { node } -> Format.fprintf ppf "term    node=%d" node
  | Decide { node; output } ->
      Format.fprintf ppf "decide  node=%d %a" node Output.pp output

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_event e) (events t);
  Format.fprintf ppf "@]"
