(** Node outputs.

    A single record covers every algorithm in the repository: leader
    election sets {!field-role}; ring orientation sets
    {!field-cw_port}; composed computations (Corollary 5) set
    {!field-value} or {!field-values}.  Outputs are revisable until the
    node terminates — stabilizing algorithms overwrite them as pulses
    arrive, exactly like the [state] variable of Algorithm 1. *)

type role = Leader | Non_leader | Undecided

type t = {
  role : role;
  cw_port : Port.t option;
      (** The local port this node believes leads to its clockwise
          neighbour, for orientation algorithms. *)
  value : int option;  (** Scalar result of a composed computation. *)
  values : int list;  (** Vector result (e.g. an all-gather). *)
}

val empty : t
(** Undecided, no orientation, no values. *)

val leader : t
val non_leader : t

val with_role : role -> t -> t
val with_cw_port : Port.t -> t -> t
val with_value : int -> t -> t
val with_values : int list -> t -> t

val role_to_string : role -> string
val equal_role : role -> role -> bool

val equal : t -> t -> bool
(** Structural equality, field by field and monomorphic throughout —
    the engine compares outputs on every [set_output], so this must
    never fall back to polymorphic compare. *)

val add_int : Buffer.t -> int -> unit
(** Append [n] in decimal, digit-direct (no [string_of_int]
    allocation): the int renderer of the engine fingerprints. *)

val add_compact : Buffer.t -> t -> unit
(** Append an unambiguous compact rendering (fixed field order, one
    token per field): two outputs render equal iff {!equal} holds.
    The allocation-light path the engine fingerprints use — the model
    checker calls it for every node of every state. *)

val pp : Format.formatter -> t -> unit
