type 'a t = {
  mutable elems : 'a array; (* length is 0 or a power of two *)
  mutable head : int;
  mutable len : int;
  (* One-element array holding the fill value used to clear popped
     slots (the first element ever pushed); empty until the first
     grow.  An array rather than ['a option] so [pop] reads it without
     a branch or a [Some] allocation. *)
  mutable filler : 'a array;
}

let create () = { elems = [||]; head = 0; len = 0; filler = [||] }
let length t = t.len
let is_empty t = t.len = 0

(* [x] doubles as the fill element for the fresh array, so growth works
   for any element type without a dummy value. *)
let grow t x =
  let cap = Array.length t.elems in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let elems = Array.make ncap x in
  if Array.length t.filler = 0 then t.filler <- Array.make 1 x;
  for i = 0 to t.len - 1 do
    elems.(i) <- t.elems.((t.head + i) land (cap - 1))
  done;
  t.elems <- elems;
  t.head <- 0

let push t x =
  if Int.equal t.len (Array.length t.elems) then grow t x;
  t.elems.((t.head + t.len) land (Array.length t.elems - 1)) <- x;
  t.len <- t.len + 1

let peek t =
  if t.len = 0 then invalid_arg "Ring.peek: empty";
  t.elems.(t.head)

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let x = t.elems.(t.head) in
  (* Clear the slot so the buffer does not retain the popped value
     ([t.len > 0] implies [grow] ran, so [filler] is non-empty). *)
  t.elems.(t.head) <- t.filler.(0);
  t.head <- (t.head + 1) land (Array.length t.elems - 1);
  t.len <- t.len - 1;
  x

(* The deque half of the interface exists for the model checker's
   incremental undo: [push_front] re-files a popped element at the
   head and [pop_back] retracts the most recent push. *)
let push_front t x =
  if Int.equal t.len (Array.length t.elems) then grow t x;
  let cap = Array.length t.elems in
  let s = (t.head + cap - 1) land (cap - 1) in
  t.head <- s;
  t.elems.(s) <- x;
  t.len <- t.len + 1

let pop_back t =
  if t.len = 0 then invalid_arg "Ring.pop_back: empty";
  let s = (t.head + t.len - 1) land (Array.length t.elems - 1) in
  let x = t.elems.(s) in
  t.elems.(s) <- t.filler.(0);
  t.len <- t.len - 1;
  x

let to_array t =
  Array.init t.len (fun i ->
      t.elems.((t.head + i) land (Array.length t.elems - 1)))
