type 'a t = {
  mutable elems : 'a array; (* length is 0 or a power of two *)
  mutable head : int;
  mutable len : int;
}

let create () = { elems = [||]; head = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

(* [x] doubles as the fill element for the fresh array, so growth works
   for any element type without a dummy value. *)
let grow t x =
  let cap = Array.length t.elems in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let elems = Array.make ncap x in
  for i = 0 to t.len - 1 do
    elems.(i) <- t.elems.((t.head + i) land (cap - 1))
  done;
  t.elems <- elems;
  t.head <- 0

let push t x =
  if Int.equal t.len (Array.length t.elems) then grow t x;
  t.elems.((t.head + t.len) land (Array.length t.elems - 1)) <- x;
  t.len <- t.len + 1

let peek t =
  if t.len = 0 then invalid_arg "Ring.peek: empty";
  t.elems.(t.head)

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let x = t.elems.(t.head) in
  t.head <- (t.head + 1) land (Array.length t.elems - 1);
  t.len <- t.len - 1;
  x
