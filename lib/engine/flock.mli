(** Multi-instance batched engine: one struct-of-arrays state packing
    [slots] independent election instances over a shared topology
    shape, stepped in an interleaved batch loop.

    {!Network} owns exactly one election, so a sweep of many small
    rings pays per-instance allocation (queues, closures, RNG
    streams) and cold caches for every run.  A flock allocates those
    once, for [slots] instances, and recycles them: {!load} resets a
    slot in place (buffers keep their capacity), so the steady state
    of a long batch allocates nothing per election beyond what the
    programs themselves allocate.

    {2 Ownership and determinism}

    Everything an instance touches is keyed by its {e slot index},
    never by whichever loop or domain happens to step it: the
    scheduler, the RNG streams, the sink, the counters and the queue
    slabs of slot [s] belong to slot [s] alone.  Interleaving
    therefore cannot leak state between instances, and the event
    sequence each sink observes is byte-identical to the sequence the
    same job produces under {!Network.create}/{!Network.run} — same
    start-up activation order, same per-delivery callback order, same
    snapshot cadence, same counter values (a test pins this).  A
    flock itself is single-domain state: to use many domains, give
    each domain its own flock.

    {2 What is shared}

    Only the topology shape (link -> destination tables) and, for
    slots loaded with [~rng:false], one inert RNG that is never drawn
    from.  Nothing an instance mutates is shared. *)

type t

val create : ?slots:int -> Topology.t -> t
(** [create ~slots topo] allocates a flock of [slots] (default 256)
    instance slots over [topo] (checked, as {!Network.create} does).
    All slots start [Idle].  Raises [Invalid_argument] when
    [slots < 1]. *)

(** A slot's lifecycle: [Idle] (never loaded, or {!release}d),
    [Running] (loaded, deliveries remain), [Settled] (no pulses in
    flight — the normal end of a run), [Exhausted] (delivery budget
    hit with pulses still in flight). *)
type status = Idle | Running | Settled | Exhausted

val status : t -> int -> status
val slots : t -> int
val size : t -> int
(** Ring size [n] of the shared topology. *)

val topology : t -> Topology.t

val load :
  t ->
  slot:int ->
  ?seed:int ->
  ?rng:bool ->
  ?max_deliveries:int ->
  ?snapshot_every:int ->
  ?sink:Sink.t ->
  sched:Scheduler.t ->
  (int -> Network.pulse Network.program) ->
  unit
(** [load t ~slot ~sched make_program] resets [slot] in place and
    starts a new instance on it: programs are instantiated per node,
    per-node RNG streams are split from [seed] (default 0) exactly as
    {!Network.create} splits them, and the start-up activations run
    (batch bump, wake, [start]) in node order — so a sink on the slot
    sees the same event prefix a fresh network would emit.

    [rng:false] (default [true]) skips the [Rng.split_at] calls and
    leaves every api a shared inert stream; only pass it when no
    program of the instance reads [api.rng] (Algorithms 1 and 2 —
    splitting streams is most of the per-instance setup cost).

    [max_deliveries] (default 50_000_000), [snapshot_every] (default
    0 = never; the cadence and the [enabled] gating match
    {!Network.run}) and [sink] (default {!Sink.null}) mean what they
    mean there.  The slot's scheduler must be private to the slot
    (stateful schedulers: create one per load).

    Raises [Invalid_argument] on a bad slot, a [Running] slot, or a
    non-positive budget. *)

val step : t -> int -> bool
(** [step t s] performs one delivery for slot [s]: [false] when the
    slot is not [Running], just hit its budget (now [Exhausted]), or
    has no pulse in flight (now [Settled]); [true] after a delivery
    (including a post-termination drop). *)

val drain : ?batch:int -> ?on_complete:(int -> unit) -> t -> unit
(** [drain t] steps every [Running] slot, [batch] (default 64)
    deliveries per slot per round, until none is [Running].
    [on_complete] fires once per slot, in the round it leaves
    [Running], with the slot index — read the slot's results there,
    or {!load} it again after the drain.  Raises [Invalid_argument]
    when [batch < 1]. *)

val release : t -> int -> unit
(** Mark a finished slot [Idle].  Raises [Invalid_argument] on a
    [Running] slot. *)

(** {2 Per-slot observation}

    All mirror their {!Network} counterparts; indices are slot
    numbers and are not range-checked on the counter accessors. *)

val sends : t -> int -> int
val sends_cw : t -> int -> int
val sends_ccw : t -> int -> int
val deliveries : t -> int -> int
val consumes : t -> int -> int
val wakes : t -> int -> int
val post_termination_deliveries : t -> int -> int
val causal_span : t -> int -> int
val in_flight : t -> int -> int
val mailbox_backlog : t -> int -> int
val quiescent : t -> int -> bool
val exhausted : t -> int -> bool
val all_terminated : t -> int -> bool
val terminated : t -> slot:int -> node:int -> bool
val termination_order : t -> int -> int list
val output : t -> slot:int -> node:int -> Output.t
val outputs : t -> int -> Output.t array
(** Fresh copy of the slot's output row. *)

val inspect : t -> slot:int -> node:int -> (string * int) list

val metrics_assoc : t -> int -> (string * int) list
(** The slot's counters in the frozen {!Metrics.to_assoc} schema
    (what snapshot records carry). *)
