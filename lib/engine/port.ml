type t = P0 | P1

let opposite = function P0 -> P1 | P1 -> P0
let index = function P0 -> 0 | P1 -> 1

let of_index = function
  | 0 -> P0
  | 1 -> P1
  | i -> invalid_arg (Printf.sprintf "Port.of_index: %d" i)

let all = [ P0; P1 ]
let equal a b = Int.equal (index a) (index b)
let compare a b = Int.compare (index a) (index b)
let to_string = function P0 -> "Port0" | P1 -> "Port1"
let pp ppf p = Format.pp_print_string ppf (to_string p)
