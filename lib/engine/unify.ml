(* The conformance witness: sealing [Network] to the unified signature
   in unify.mli is what actually checks — at compile time — that the
   ring engine satisfies the contract generic drivers are written
   against.  [Colring_graph.Unified] does the same for the graph
   engine. *)

module Ring_network = struct
  type topology = Topology.t

  include Network
end
