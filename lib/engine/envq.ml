type 'm t = {
  mutable payloads : 'm array; (* length is 0 or a power of two *)
  mutable meta : int array; (* stride 3 per slot: seq, batch, depth *)
  mutable head : int;
  mutable len : int;
  (* One-element array holding the fill value used to clear popped
     payload slots (the first payload ever pushed); empty until the
     first grow — see {!Ring.t.filler}. *)
  mutable filler : 'm array;
}

let create () = { payloads = [||]; meta = [||]; head = 0; len = 0; filler = [||] }
let length t = t.len
let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.payloads in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let payloads = Array.make ncap x in
  if Array.length t.filler = 0 then t.filler <- Array.make 1 x;
  let meta = Array.make (3 * ncap) 0 in
  for i = 0 to t.len - 1 do
    let s = (t.head + i) land (cap - 1) in
    payloads.(i) <- t.payloads.(s);
    meta.(3 * i) <- t.meta.(3 * s);
    meta.((3 * i) + 1) <- t.meta.((3 * s) + 1);
    meta.((3 * i) + 2) <- t.meta.((3 * s) + 2)
  done;
  t.payloads <- payloads;
  t.meta <- meta;
  t.head <- 0

let push t x ~seq ~batch ~depth =
  if Int.equal t.len (Array.length t.payloads) then grow t x;
  let s = (t.head + t.len) land (Array.length t.payloads - 1) in
  t.payloads.(s) <- x;
  t.meta.(3 * s) <- seq;
  t.meta.((3 * s) + 1) <- batch;
  t.meta.((3 * s) + 2) <- depth;
  t.len <- t.len + 1

let head_seq t =
  if t.len = 0 then invalid_arg "Envq.head_seq: empty";
  t.meta.(3 * t.head)

let head_batch t =
  if t.len = 0 then invalid_arg "Envq.head_batch: empty";
  t.meta.((3 * t.head) + 1)

let head_depth t =
  if t.len = 0 then invalid_arg "Envq.head_depth: empty";
  t.meta.((3 * t.head) + 2)

let pop t =
  if t.len = 0 then invalid_arg "Envq.pop: empty";
  let x = t.payloads.(t.head) in
  (* Clear the slot so the queue does not retain the popped payload
     ([t.len > 0] implies [grow] ran, so [filler] is non-empty). *)
  t.payloads.(t.head) <- t.filler.(0);
  t.head <- (t.head + 1) land (Array.length t.payloads - 1);
  t.len <- t.len - 1;
  x

let peek t =
  if t.len = 0 then invalid_arg "Envq.peek: empty";
  t.payloads.(t.head)

(* The deque half of the interface exists for the model checker's
   incremental undo: [push_front] re-files a popped head envelope (with
   its original stamps) and [pop_back] retracts the most recent push.
   Both preserve FIFO order for the untouched contents. *)
let push_front t x ~seq ~batch ~depth =
  if Int.equal t.len (Array.length t.payloads) then grow t x;
  let cap = Array.length t.payloads in
  let s = (t.head + cap - 1) land (cap - 1) in
  t.head <- s;
  t.payloads.(s) <- x;
  t.meta.(3 * s) <- seq;
  t.meta.((3 * s) + 1) <- batch;
  t.meta.((3 * s) + 2) <- depth;
  t.len <- t.len + 1

let pop_back t =
  if t.len = 0 then invalid_arg "Envq.pop_back: empty";
  let s = (t.head + t.len - 1) land (Array.length t.payloads - 1) in
  let x = t.payloads.(s) in
  t.payloads.(s) <- t.filler.(0);
  t.len <- t.len - 1;
  x

let to_payload_array t =
  Array.init t.len (fun i ->
      t.payloads.((t.head + i) land (Array.length t.payloads - 1)))
