(** The ring engine, sealed to the unified {!Engine_intf.NETWORK}
    contract.

    [Ring_network] is {!Network} viewed through the
    topology-parameterized signature — the degree-2 instantiation of
    the one engine surface.  The type equations keep it interchangeable
    with plain {!Network} values, so generic code (the model-checker
    functor [Colring_mc.Mc.Make], conformance tests) composes with
    ring-specific code without conversion.  Ring-only capabilities
    (blocking receives, traces, injection, diagrams, causal clocks)
    are deliberately outside the shared signature: reach them through
    {!Network} directly. *)

module Ring_network :
  Engine_intf.NETWORK
    with type topology = Topology.t
     and type 'm t = 'm Network.t
     and type 'm api = 'm Network.api
     and type 'm program = 'm Network.program
