(** Transport backends: one election, many substrates.

    A backend runs a ring of per-node programs to completion and
    returns a {!trace} — outputs, counters, and crucially the exact
    delivery {!trace.schedule} it realised (one link id per delivery,
    post-termination drops included).  Honesty across backends is
    enforced mechanically rather than argued: any trace replays on the
    deterministic simulator via {!Scheduler.of_schedule}, and the
    replay must reproduce the run exactly ({!equivalent}; journal
    byte-diffs in the test-suite).  The replay argument: a delivery's
    index is assigned before the receiver's wake runs, the wake
    precedes every send it causes, and those sends precede the
    deliveries that consume them — so every recorded schedule is
    causally consistent and fits [of_schedule]; since nodes share no
    state, the per-node projection of the schedule fully determines
    each node's behaviour, which the simulator then reproduces.

    This module is the backend-independent half: fault model, jittered
    adversary, recording, the simulator backend, and replay.  The
    shared-memory (domains) and real-process (socket) backends live in
    [Colring_transport] — they need unix, which the engine must not
    depend on. *)

(** {2 Fault injection}

    Per-link latency/jitter.  On real backends the unit is
    microseconds of wall-clock sleep; on the simulator it is abstract
    time units (one unit = one send).  The jitter draw for the [k]-th
    pulse of a link is a pure hash of (seed, link, k) — {!delay_us} —
    so the fault pattern is reproducible on every backend and under
    replay. *)

type fault = { latency : int; jitter : int }
(** Base delay plus a uniform draw in [\[0, jitter\]], both [>= 0]. *)

type faults = {
  fseed : int;  (** Seed of the jitter hash (independent of run seed). *)
  default : fault;  (** Applied to links without an override. *)
  per_link : (int * fault) list;  (** Overrides by link id. *)
}

val no_fault : faults
(** Zero latency, zero jitter everywhere — the identity fault model. *)

val faults :
  ?seed:int -> ?per_link:(int * fault) list -> latency:int -> jitter:int ->
  unit -> faults
(** Raises [Invalid_argument] on any negative latency or jitter. *)

val is_pure : faults -> bool
(** No link delays anything: backends may skip the fault layer. *)

val fault_of : faults -> link:int -> fault

val delay_us : faults -> link:int -> k:int -> int
(** Delay of the [k]-th pulse consumed from [link]: the link's latency
    plus [hash(seed, link, k) mod (jitter + 1)].  Pure, allocation-free
    (native-int mixing; listed in [tools/lint/hot.sexp]). *)

val jittered : faults -> Scheduler.t
(** The fault model as a deterministic adversary for the simulator:
    each in-flight pulse's virtual arrival time is its global send
    sequence number plus its {!delay_us} draw; the earliest arrival is
    delivered first (ties by send order).  This is how [--latency] /
    [--jitter] act on the [sim] backend — the engine itself never
    sleeps. *)

type recorder = { mutable buf : int array; mutable len : int }
(** A growable append-only link buffer — the raw material of schedule
    recording.  Exposed concretely so concurrent backends can append
    under their own lock (the next free index, [len], doubles as the
    delivery index they tag terminations with). *)

val recorder : unit -> recorder
val record : recorder -> int -> unit
val recorded : recorder -> int array

val recording : Scheduler.t -> Scheduler.t * (unit -> int array)
(** [recording sched] wraps a scheduler so every pick is appended to a
    growable {!recorder}; the returned thunk snapshots the schedule so
    far.  The wrapper keeps [sched]'s name, so journals are
    unaffected. *)

(** {2 Backends} *)

type trace = {
  backend : string;  (** Which backend produced the run. *)
  scheduler : string;
      (** Adversary name to stamp on replays (via
          [Scheduler.of_schedule ~name]), so replayed journals carry
          the original's scheduler field byte-for-byte. *)
  n : int;
  schedule : int array;
      (** Realised delivery order, as link ids — drops included.
          Length = [deliveries + drops]. *)
  outputs : Output.t array;
  sends : int;
  deliveries : int;
  drops : int;  (** Post-termination arrivals (quiescence violations). *)
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;  (** Stopped by [max_deliveries], not quiescence. *)
  termination_order : int list;
}

type t = {
  name : string;
  run :
    ?seed:int ->
    ?max_deliveries:int ->
    ?faults:faults ->
    Topology.t ->
    (int -> Network.pulse Network.program) ->
    trace;
      (** Runs every node's program to quiescence (or the delivery
          budget) and returns the realised trace.  [seed] derives node
          RNG streams exactly as {!Network.create} does — backends must
          reproduce that derivation.  [faults] defaults to
          {!no_fault}. *)
}

val sim : ?sched:Scheduler.t -> unit -> t
(** The deterministic simulator as a backend (reference semantics).
    [sched] (default {!Scheduler.fifo}) drives the fault-free case;
    when [faults] are live the {!jittered} adversary replaces it. *)

val replay :
  ?seed:int ->
  trace ->
  Topology.t ->
  (int -> Network.pulse Network.program) ->
  trace
(** Re-runs a trace's schedule on the simulator.  For a quiescent
    trace obtained from the same [seed], topology and programs, the
    result satisfies {!equivalent} for every honest backend — the
    mechanical cross-backend check. *)

val equivalent : trace -> trace -> bool
(** Same size, outputs, counters, termination order and schedule
    (backend names may differ — that is the point). *)
