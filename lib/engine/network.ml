module Rng = Colring_stats.Rng

type 'm api = {
  node : int;
  recv : Port.t -> 'm option;
  recv_pulse : Port.t -> bool;
  peek : Port.t -> 'm option;
  pending : Port.t -> int;
  send : Port.t -> 'm -> unit;
  set_output : Output.t -> unit;
  terminate : unit -> unit;
  mutable rng : Rng.t;
}

type 'm program = {
  start : 'm api -> unit;
  wake : 'm api -> unit;
  inspect : unit -> (string * int) list;
  snap : Engine_intf.snapshot option;
}

let silent_program =
  {
    start = (fun _ -> ());
    wake = (fun _ -> ());
    inspect = (fun () -> []);
    snap = Some { Engine_intf.save = (fun () -> [||]); load = (fun _ -> ()) };
  }

(* Per-step journal scratch for [force_step_undo]: the wake's consumed
   pulses (port + payload) and sent links, in order.  One per network,
   reused across steps; arrays grow by doubling and are copied out
   into each undo record. *)
type 'm ulog = {
  mutable cports : int array;
  mutable cpayloads : 'm array;
  mutable clen : int;
  mutable slinks : int array;
  mutable slen : int;
}

let ulog_create () =
  { cports = [||]; cpayloads = [||]; clen = 0; slinks = [||]; slen = 0 }

let grow_ints a len =
  if Int.equal len (Array.length a) then
    Array.append a (Array.make (max 8 len) 0)
  else a

let ulog_send g link =
  g.slinks <- grow_ints g.slinks g.slen;
  g.slinks.(g.slen) <- link;
  g.slen <- g.slen + 1

let ulog_consume g port m =
  g.cports <- grow_ints g.cports g.clen;
  if Int.equal g.clen (Array.length g.cpayloads) then
    g.cpayloads <- Array.append g.cpayloads (Array.make (max 8 g.clen) m);
  g.cports.(g.clen) <- port;
  g.cpayloads.(g.clen) <- m;
  g.clen <- g.clen + 1

type 'm t = {
  topo : Topology.t;
  programs : 'm program array;
  mutable apis : 'm api array;
  channels : 'm Envq.t array; (* by link id *)
  mailboxes : 'm Ring.t array; (* node * 2 + port *)
  outputs : Output.t array;
  term : bool array;
  mutable term_order_rev : int list;
  metrics : Metrics.t;
  (* The effective sink: the engine's own [Sink.counters] teed with
     whatever the caller passed, so counting and user telemetry are a
     single emission path.  [observed] remembers whether the caller's
     sink is live — the guard that keeps snapshot emission (and any
     other record that must allocate its payload) off the default
     path. *)
  sink : Sink.t;
  observed : bool;
  mutable next_seq : int;
  mutable next_batch : int;
  mutable in_flight : int;
  mutable mailbox_backlog : int;
  (* Causal clocks: [local_clock.(v)] is the largest causal depth of
     any pulse delivered to v; pulses sent by v's current activation
     carry depth [local_clock.(v) + 1].  The maximum over all delivered
     pulses is the run's asynchronous time (every message counted as
     one time unit). *)
  local_clock : int array;
  mutable causal_span : int;
  (* The non-empty-link set, maintained incrementally on send/deliver:
     the first [nonempty_count] entries of [nonempty] are the links
     with pulses in flight (unordered), and [link_pos] is the inverse
     permutation (-1 when absent).  [nonempty] doubles as the scratch
     buffer of the reusable scheduler [view], so refreshing a view
     copies nothing. *)
  nonempty : int array;
  link_pos : int array;
  mutable nonempty_count : int;
  mutable view : Scheduler.view;
  (* Incremental-undo support: [ulog] collects the current step's wake
     effects while [logging] is set (only inside [force_step_undo]);
     [undo_ok] is fixed at creation — every program must carry a
     [snap] codec and no user sink may observe the run, since emitted
     events cannot be unemitted. *)
  ulog : 'm ulog;
  mutable logging : bool;
  undo_ok : bool;
}

let slot v p = (v * 2) + Port.index p

let mark_nonempty t link =
  if t.link_pos.(link) < 0 then begin
    t.nonempty.(t.nonempty_count) <- link;
    t.link_pos.(link) <- t.nonempty_count;
    t.nonempty_count <- t.nonempty_count + 1
  end

let unmark_if_empty t link =
  if Envq.is_empty t.channels.(link) then begin
    let pos = t.link_pos.(link) in
    let last = t.nonempty_count - 1 in
    let moved = t.nonempty.(last) in
    t.nonempty.(pos) <- moved;
    t.link_pos.(moved) <- pos;
    t.link_pos.(link) <- -1;
    t.nonempty_count <- last
  end

(* The one enqueue path: [send] and [inject] share it, so both stamp
   envelopes with the batch convention of the current activation
   ([t.next_batch] is bumped at activation boundaries only).  Sink
   callbacks take immediate arguments only — no event value is
   materialised — so the steady-state hot path stays allocation-free
   under the default (counters-only) sink. *)
let enqueue t ~link ~node ~port m =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  mark_nonempty t link;
  Envq.push t.channels.(link) m ~seq ~batch:t.next_batch
    ~depth:(t.local_clock.(node) + 1);
  t.in_flight <- t.in_flight + 1;
  if t.logging then ulog_send t.ulog link;
  t.sink.Sink.on_send ~node ~port:(Port.index port) ~seq ~link
    ~cw:(Topology.link_travels_cw t.topo link)

let make_api t v rng =
  let consume v p =
    t.mailbox_backlog <- t.mailbox_backlog - 1;
    t.sink.Sink.on_consume ~node:v ~port:(Port.index p)
  in
  let recv p =
    let mb = t.mailboxes.(slot v p) in
    if Ring.is_empty mb then None
    else begin
      let m = Ring.pop mb in
      consume v p;
      if t.logging then ulog_consume t.ulog (Port.index p) m;
      Some m
    end
  in
  let recv_pulse p =
    let mb = t.mailboxes.(slot v p) in
    if Ring.is_empty mb then false
    else begin
      let m = Ring.pop mb in
      consume v p;
      if t.logging then ulog_consume t.ulog (Port.index p) m;
      true
    end
  in
  let peek p =
    let mb = t.mailboxes.(slot v p) in
    if Ring.is_empty mb then None else Some (Ring.peek mb)
  in
  let pending p = Ring.length t.mailboxes.(slot v p) in
  let send p m =
    if t.term.(v) then failwith "Network: send after terminate";
    enqueue t ~link:(Topology.link_id t.topo v p) ~node:v ~port:p m
  in
  let set_output o =
    if not (Output.equal t.outputs.(v) o) then begin
      t.outputs.(v) <- o;
      t.sink.Sink.on_decide ~node:v ~output:o
    end
  in
  let terminate () =
    if not t.term.(v) then begin
      t.term.(v) <- true;
      t.term_order_rev <- v :: t.term_order_rev;
      t.sink.Sink.on_terminate ~node:v
    end
  in
  { node = v; recv; recv_pulse; peek; pending; send; set_output; terminate; rng }

let create ?(sink = Sink.null) ?(seed = 0) topo make_program =
  Topology.check topo;
  let n = Topology.n topo in
  let num_links = Topology.num_links topo in
  let programs = Array.init n make_program in
  let metrics = Metrics.create ~n_nodes:n ~n_links:num_links () in
  let user_sink = sink in
  let undo_ok =
    (not user_sink.Sink.enabled)
    && Array.for_all (fun p -> Option.is_some p.snap) programs
  in
  let t =
    {
      topo;
      programs;
      apis = [||];
      channels = Array.init num_links (fun _ -> Envq.create ());
      mailboxes = Array.init (n * 2) (fun _ -> Ring.create ());
      outputs = Array.make n Output.empty;
      term = Array.make n false;
      term_order_rev = [];
      metrics;
      sink = Sink.tee (Sink.counters metrics) user_sink;
      observed = user_sink.Sink.enabled;
      next_seq = 0;
      next_batch = 0;
      in_flight = 0;
      mailbox_backlog = 0;
      local_clock = Array.make n 0;
      causal_span = 0;
      nonempty = Array.make num_links 0;
      link_pos = Array.make num_links (-1);
      nonempty_count = 0;
      ulog = ulog_create ();
      logging = false;
      undo_ok;
      view =
        {
          Scheduler.nonempty = [||];
          count = 0;
          head_seq = (fun _ -> 0);
          head_batch = (fun _ -> 0);
          travels_cw = (fun _ -> None);
          dst_node = (fun _ -> 0);
          step = 0;
        };
    }
  in
  (* The reusable scheduler view: closures are built once here, and
     [nonempty] aliases the incrementally-maintained set, so refreshing
     a view per step is two integer stores. *)
  t.view <-
    {
      Scheduler.nonempty = t.nonempty;
      count = 0;
      head_seq = (fun link -> Envq.head_seq t.channels.(link));
      head_batch = (fun link -> Envq.head_batch t.channels.(link));
      travels_cw =
        (* Static [Some] constants: the per-pick closure must not
           allocate. *)
        (fun link ->
          if Topology.link_travels_cw t.topo link then Some true
          else Some false);
      dst_node = (fun link -> fst (Topology.link_dst t.topo link));
      step = 0;
    };
  let root_rng = Rng.create ~seed in
  t.apis <- Array.init n (fun v -> make_api t v (Rng.split_at root_rng v));
  for v = 0 to n - 1 do
    t.next_batch <- t.next_batch + 1;
    t.sink.Sink.on_wake ~node:v;
    t.programs.(v).start t.apis.(v)
  done;
  t

let view t =
  let v = t.view in
  v.Scheduler.count <- t.nonempty_count;
  v.Scheduler.step <- Metrics.deliveries t.metrics;
  v

let deliver_from t link =
  let q = t.channels.(link) in
  let seq = Envq.head_seq q in
  let depth = Envq.head_depth q in
  let payload = Envq.pop q in
  unmark_if_empty t link;
  t.in_flight <- t.in_flight - 1;
  let dst, dst_port = Topology.link_dst t.topo link in
  if t.term.(dst) then
    (* Terminated nodes ignore pulses; each such arrival is a
       violation of quiescent termination, which tests assert away. *)
    t.sink.Sink.on_drop ~node:dst ~port:(Port.index dst_port) ~seq
  else begin
    t.sink.Sink.on_deliver ~node:dst ~port:(Port.index dst_port) ~seq;
    Ring.push t.mailboxes.(slot dst dst_port) payload;
    t.mailbox_backlog <- t.mailbox_backlog + 1;
    if depth > t.local_clock.(dst) then t.local_clock.(dst) <- depth;
    if depth > t.causal_span then t.causal_span <- depth;
    t.next_batch <- t.next_batch + 1;
    t.sink.Sink.on_wake ~node:dst;
    t.programs.(dst).wake t.apis.(dst)
  end

let step t (sched : Scheduler.t) =
  if t.in_flight = 0 then false
  else begin
    deliver_from t (sched.pick (view t));
    true
  end

let active_links t =
  let acc = ref [] in
  for link = Array.length t.channels - 1 downto 0 do
    if not (Envq.is_empty t.channels.(link)) then acc := link :: !acc
  done;
  !acc

let force_step t ~link =
  if Envq.is_empty t.channels.(link) then
    invalid_arg "Network.force_step: empty link";
  deliver_from t link

(* ------------------------------------------------------------------ *)
(* Incremental undo (Engine_intf.NETWORK contract).  One record per
   delivery: the popped envelope with its stamps, the destination's
   pre-wake program snapshot and engine-side scalars, and the wake's
   journalled consume/send effects.  [undo_step] applies the inverses
   in reverse order, so a LIFO stack of records walks the network back
   along any prefix of the forced schedule. *)

type 'm undo = {
  u_link : int;
  u_payload : 'm;
  u_seq : int;
  u_batch : int;
  u_depth : int;
  u_dst : int;
  u_dst_port : int;
  u_dropped : bool; (* destination was terminated: no wake ran *)
  u_prev_output : Output.t;
  u_became_term : bool;
  u_prev_clock : int;
  u_prev_span : int;
  u_prev_next_seq : int;
  u_prev_next_batch : int;
  u_snap : int array; (* destination program state before the wake *)
  u_consumed_ports : int array;
  u_consumed_payloads : 'm array;
  u_sent_links : int array;
}

let undo_capable t = t.undo_ok

let force_step_undo t ~link =
  if Envq.is_empty t.channels.(link) then
    invalid_arg "Network.force_step_undo: empty link";
  if not t.undo_ok then
    invalid_arg "Network.force_step_undo: network is not undo-capable";
  let q = t.channels.(link) in
  let u_seq = Envq.head_seq q in
  let u_batch = Envq.head_batch q in
  let u_depth = Envq.head_depth q in
  let u_payload = Envq.peek q in
  let dst, dst_port = Topology.link_dst t.topo link in
  let dropped = t.term.(dst) in
  let u_snap =
    if dropped then [||]
    else
      match t.programs.(dst).snap with
      | Some s -> s.Engine_intf.save ()
      | None -> assert false (* undo_ok *)
  in
  let u_prev_output = t.outputs.(dst) in
  let u_prev_clock = t.local_clock.(dst) in
  let u_prev_span = t.causal_span in
  let u_prev_next_seq = t.next_seq in
  let u_prev_next_batch = t.next_batch in
  let g = t.ulog in
  g.clen <- 0;
  g.slen <- 0;
  t.logging <- true;
  deliver_from t link;
  t.logging <- false;
  {
    u_link = link;
    u_payload;
    u_seq;
    u_batch;
    u_depth;
    u_dst = dst;
    u_dst_port = Port.index dst_port;
    u_dropped = dropped;
    u_prev_output;
    u_became_term = (not dropped) && t.term.(dst);
    u_prev_clock;
    u_prev_span;
    u_prev_next_seq;
    u_prev_next_batch;
    u_snap;
    u_consumed_ports = Array.sub g.cports 0 g.clen;
    u_consumed_payloads = Array.sub g.cpayloads 0 g.clen;
    u_sent_links = Array.sub g.slinks 0 g.slen;
  }

let undo_step t u =
  let dst = u.u_dst in
  if u.u_dropped then Metrics.undo_post_termination_delivery t.metrics
  else begin
    (* Retract the wake's sends, newest first. *)
    for i = Array.length u.u_sent_links - 1 downto 0 do
      let l = u.u_sent_links.(i) in
      ignore (Envq.pop_back t.channels.(l));
      unmark_if_empty t l;
      t.in_flight <- t.in_flight - 1;
      Metrics.undo_send t.metrics ~link:l ~node:dst
        ~cw:(Topology.link_travels_cw t.topo l)
    done;
    (* Re-file the wake's consumed pulses, newest first: this restores
       the mailbox to its state just after the delivery pushed the
       incoming payload at the tail... *)
    for i = Array.length u.u_consumed_ports - 1 downto 0 do
      let p = u.u_consumed_ports.(i) in
      Ring.push_front t.mailboxes.((dst * 2) + p) u.u_consumed_payloads.(i);
      t.mailbox_backlog <- t.mailbox_backlog + 1;
      Metrics.undo_consume t.metrics ~node:dst ~port_index:p
    done;
    (* ... so popping that tail element retracts the delivery. *)
    ignore (Ring.pop_back t.mailboxes.((dst * 2) + u.u_dst_port));
    t.mailbox_backlog <- t.mailbox_backlog - 1;
    Metrics.undo_deliver t.metrics ~node:dst ~port_index:u.u_dst_port;
    Metrics.undo_wake t.metrics;
    (match t.programs.(dst).snap with
    | Some s -> s.Engine_intf.load u.u_snap
    | None -> assert false);
    t.outputs.(dst) <- u.u_prev_output;
    if u.u_became_term then begin
      t.term.(dst) <- false;
      t.term_order_rev <-
        (match t.term_order_rev with _ :: rest -> rest | [] -> assert false)
    end;
    t.local_clock.(dst) <- u.u_prev_clock;
    t.causal_span <- u.u_prev_span;
    t.next_seq <- u.u_prev_next_seq;
    t.next_batch <- u.u_prev_next_batch
  end;
  (* Put the envelope back at the head of its channel. *)
  Envq.push_front t.channels.(u.u_link) u.u_payload ~seq:u.u_seq
    ~batch:u.u_batch ~depth:u.u_depth;
  mark_nonempty t u.u_link;
  t.in_flight <- t.in_flight + 1

let enabled_count t = t.nonempty_count

(* Smallest non-empty link strictly greater than [link], by scanning
   the unordered non-empty buffer; -1 when none.  Written as a
   top-level tail recursion over immediate arguments so an enumeration
   of the enabled set allocates nothing (the model checker calls this
   in its innermost loop). *)
let rec enabled_scan t link i best =
  if i >= t.nonempty_count then best
  else
    let l = t.nonempty.(i) in
    if l > link && (best < 0 || l < best) then enabled_scan t link (i + 1) l
    else enabled_scan t link (i + 1) best

let enabled_link t ~after = enabled_scan t after 0 (-1)

let channel_length t ~link = Envq.length t.channels.(link)
let mailbox_length t ~node ~port = Ring.length t.mailboxes.(slot node port)
let channel_payloads t ~link = Envq.to_payload_array t.channels.(link)
let mailbox_payloads t ~node ~port = Ring.to_array t.mailboxes.(slot node port)

let inject t ~node ~port m =
  enqueue t ~link:(Topology.link_id t.topo node port) ~node ~port m

type run_result = Engine_intf.run_result = {
  sends : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  termination_order : int list;
}

let all_terminated t = Array.for_all Fun.id t.term
let in_flight t = t.in_flight
let mailbox_backlog t = t.mailbox_backlog
let is_quiescent t = t.in_flight = 0 && t.mailbox_backlog = 0

let run ?(max_deliveries = 50_000_000) ?(snapshot_every = 0) ?probe t sched =
  let exhausted = ref false in
  let continue = ref true in
  while !continue do
    if Metrics.deliveries t.metrics >= max_deliveries then begin
      exhausted := true;
      continue := false
    end
    else if not (step t sched) then continue := false
    else begin
      (if snapshot_every > 0 && t.observed then
         let d = Metrics.deliveries t.metrics in
         if d mod snapshot_every = 0 then
           t.sink.Sink.on_snapshot ~step:d (Metrics.to_assoc t.metrics));
      match probe with
      | None -> ()
      | Some f -> f ~step:(Metrics.deliveries t.metrics)
    end
  done;
  {
    sends = Metrics.sends t.metrics;
    deliveries = Metrics.deliveries t.metrics;
    quiescent = is_quiescent t;
    all_terminated = all_terminated t;
    exhausted = !exhausted;
    termination_order = List.rev t.term_order_rev;
  }

let causal_span t = t.causal_span

let topology t = t.topo
let size t = Topology.n t.topo
let output t v = t.outputs.(v)
let outputs t = Array.copy t.outputs
let terminated t v = t.term.(v)
let termination_order t = List.rev t.term_order_rev
let inspect t v = t.programs.(v).inspect ()

let inspect_counter t v name =
  match List.assoc_opt name (inspect t v) with
  | Some x -> x
  | None -> raise Not_found

let metrics t = t.metrics
let trace t = Sink.trace t.sink
let num_links topo = Topology.num_links topo
let link_dst_node topo link = fst (Topology.link_dst topo link)

(* Canonical observable-state string; {!Explore.fingerprint} and the
   model checker's dedup key delegate here.  Covers channel depths,
   per-port mailbox depths, termination flags, outputs and inspect
   counters — everything a monitor can see. *)
let fingerprint t =
  let buf = Buffer.create 128 in
  let n = size t in
  for link = 0 to Topology.num_links t.topo - 1 do
    Output.add_int buf (channel_length t ~link);
    Buffer.add_char buf ','
  done;
  Buffer.add_char buf '|';
  for v = 0 to n - 1 do
    Output.add_int buf (mailbox_length t ~node:v ~port:Port.P0);
    Buffer.add_char buf ':';
    Output.add_int buf (mailbox_length t ~node:v ~port:Port.P1);
    Buffer.add_char buf ';';
    Buffer.add_string buf (if terminated t v then "T" else "t");
    Output.add_compact buf (output t v);
    (* Program state via the [inspect] counters, NOT the snapshot
       codec: fingerprints must agree across implementation variants
       that share observable counters but differ in internal layout
       (e.g. the two Algorithm 2 engines in the differential tests). *)
    List.iter
      (fun (k, x) ->
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Output.add_int buf x;
        Buffer.add_char buf ' ')
      (inspect t v);
    Buffer.add_char buf '|'
  done;
  Buffer.contents buf

type pulse = unit

let pulse = ()
