(* The backend-independent half of the transport abstraction: fault
   models, the jittered adversary, schedule recording, and the
   reference (simulator) backend.  The concurrent backends — one OCaml
   domain per node, one Unix process per node — live in
   [Colring_transport]; they depend on unix and must stay out of the
   engine library.  Everything here is deterministic and
   dependency-free. *)

type fault = { latency : int; jitter : int }

type faults = {
  fseed : int;
  default : fault;
  per_link : (int * fault) list;
}

let zero_fault = { latency = 0; jitter = 0 }
let no_fault = { fseed = 0; default = zero_fault; per_link = [] }

let check_fault what f =
  if f.latency < 0 then invalid_arg ("Transport.faults: negative " ^ what ^ " latency");
  if f.jitter < 0 then invalid_arg ("Transport.faults: negative " ^ what ^ " jitter")

let faults ?(seed = 0) ?(per_link = []) ~latency ~jitter () =
  let t = { fseed = seed; default = { latency; jitter }; per_link } in
  check_fault "default" t.default;
  List.iter (fun (_, f) -> check_fault "per-link" f) per_link;
  t

let is_pure t =
  let zero f = f.latency = 0 && f.jitter = 0 in
  zero t.default && List.for_all (fun (_, f) -> zero f) t.per_link

(* Per-link fault lookup without [List.assoc] (no option allocation on
   the miss path, monomorphic comparison). *)
let rec fault_scan per_link link default =
  match per_link with
  | [] -> default
  | (l, f) :: rest ->
      if Int.equal l link then f else fault_scan rest link default

let fault_of t ~link = fault_scan t.per_link link t.default

(* SplitMix-style avalanche mixer on native ints (constants fit 63
   bits; multiplication wraps, which is exactly what a finalizer
   wants).  Boxing-free — [Int64] ops would allocate per draw. *)
let mix z =
  let z = (z lxor (z lsr 29)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 32)) * 0x1A85EC53 in
  (z lxor (z lsr 29)) land max_int

(* The jitter draw for the [k]-th pulse on [link]: latency plus a
   uniform-ish hash of (seed, link, k) in [0, jitter].  A pure function
   of its arguments, so every backend — and a replay — draws the same
   delay for the same pulse. *)
let delay_us t ~link ~k =
  let f = fault_scan t.per_link link t.default in
  if f.jitter = 0 then f.latency
  else
    f.latency
    + mix (t.fseed + (link * 0x9E3779B9) + (k * 0x85EBCA77)) mod (f.jitter + 1)

(* The jittered adversary: each pulse's virtual arrival time is its
   global send sequence number (one abstract time unit per send) plus
   its per-link delay draw; earliest arrival is delivered first, ties
   broken by send order.  On the simulator the fault layer is *this
   scheduler* — delays never touch the engine. *)
let rec jit_scan t v i best bkey bseq =
  if i >= v.Scheduler.count then best
  else begin
    let l = v.Scheduler.nonempty.(i) in
    let s = v.Scheduler.head_seq l in
    let key = s + delay_us t ~link:l ~k:s in
    if key < bkey || (Int.equal key bkey && s < bseq) then
      jit_scan t v (i + 1) l key s
    else jit_scan t v (i + 1) best bkey bseq
  end

let jittered t =
  {
    Scheduler.name =
      Printf.sprintf "jittered(seed=%d,lat=%d,jit=%d)" t.fseed
        t.default.latency t.default.jitter;
    pick =
      (fun v ->
        let l0 = v.Scheduler.nonempty.(0) in
        let s0 = v.Scheduler.head_seq l0 in
        jit_scan t v 1 l0 (s0 + delay_us t ~link:l0 ~k:s0) s0);
  }

(* --------------------------------------------------------------- *)
(* Schedule recording *)

type recorder = { mutable buf : int array; mutable len : int }

let recorder () = { buf = Array.make 64 0; len = 0 }

let record r link =
  (if Int.equal r.len (Array.length r.buf) then begin
     let b = Array.make (2 * r.len) 0 in
     Array.blit r.buf 0 b 0 r.len;
     r.buf <- b
   end);
  r.buf.(r.len) <- link;
  r.len <- r.len + 1

let recorded r = Array.sub r.buf 0 r.len

let recording (sched : Scheduler.t) =
  let r = recorder () in
  ( {
      Scheduler.name = sched.Scheduler.name;
      pick =
        (fun v ->
          let l = sched.Scheduler.pick v in
          record r l;
          l);
    },
    fun () -> recorded r )

(* --------------------------------------------------------------- *)
(* Backends *)

type trace = {
  backend : string;
  scheduler : string;
  n : int;
  schedule : int array;
  outputs : Output.t array;
  sends : int;
  deliveries : int;
  drops : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  termination_order : int list;
}

type t = {
  name : string;
  run :
    ?seed:int ->
    ?max_deliveries:int ->
    ?faults:faults ->
    Topology.t ->
    (int -> Network.pulse Network.program) ->
    trace;
}

let trace_of_net ~backend ~scheduler ~schedule net (r : Network.run_result) =
  let m = Network.metrics net in
  {
    backend;
    scheduler;
    n = Network.size net;
    schedule;
    outputs = Network.outputs net;
    sends = r.Network.sends;
    deliveries = r.Network.deliveries;
    drops = Metrics.post_termination_deliveries m;
    quiescent = r.Network.quiescent;
    all_terminated = r.Network.all_terminated;
    exhausted = r.Network.exhausted;
    termination_order = r.Network.termination_order;
  }

let sim ?(sched = Scheduler.fifo) () =
  {
    name = "sim";
    run =
      (fun ?(seed = 0) ?max_deliveries ?(faults = no_fault) topo make_program ->
        (* With live faults the adversary *is* the fault model; the
           caller's scheduler only applies to the fault-free case. *)
        let base = if is_pure faults then sched else jittered faults in
        let recorder, recorded = recording base in
        let net = Network.create ~seed topo make_program in
        let r = Network.run ?max_deliveries net recorder in
        trace_of_net ~backend:"sim" ~scheduler:base.Scheduler.name
          ~schedule:(recorded ()) net r);
  }

let replay ?(seed = 0) trace topo make_program =
  let sched = Scheduler.of_schedule ~name:trace.scheduler trace.schedule in
  let net = Network.create ~seed topo make_program in
  let r = Network.run net sched in
  trace_of_net ~backend:trace.backend ~scheduler:trace.scheduler
    ~schedule:trace.schedule net r

let equivalent a b =
  Int.equal a.n b.n
  && Int.equal (Array.length a.outputs) (Array.length b.outputs)
  && Array.for_all2 Output.equal a.outputs b.outputs
  && Int.equal a.sends b.sends
  && Int.equal a.deliveries b.deliveries
  && Int.equal a.drops b.drops
  && Bool.equal a.quiescent b.quiescent
  && Bool.equal a.all_terminated b.all_terminated
  && List.equal Int.equal a.termination_order b.termination_order
  && Int.equal (Array.length a.schedule) (Array.length b.schedule)
  && Array.for_all2 Int.equal a.schedule b.schedule
