type _ Effect.t += Recv : Port.t -> unit Effect.t
type _ Effect.t += Recv_any : Port.t Effect.t

let recv p = Effect.perform (Recv p)
let recv_any () = Effect.perform Recv_any

type waiting =
  | Idle
  | On_port of Port.t * (unit, unit) Effect.Deep.continuation
  | On_any of (Port.t, unit) Effect.Deep.continuation
  | Finished

let first_available (api : Network.pulse Network.api) =
  if api.pending Port.P0 > 0 then Some Port.P0
  else if api.pending Port.P1 > 0 then Some Port.P1
  else None

let make ?(inspect = fun () -> []) body =
  let state = ref Idle in
  let handler api =
    {
      Effect.Deep.retc = (fun () -> state := Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Recv p ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if api.Network.recv_pulse p then Effect.Deep.continue k ()
                  else state := On_port (p, k))
          | Recv_any ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  match first_available api with
                  | Some p ->
                      if api.Network.recv_pulse p then Effect.Deep.continue k p
                      else assert false
                  | None -> state := On_any k)
          | _ -> None);
    }
  in
  let start api = Effect.Deep.match_with body api (handler api) in
  let wake (api : Network.pulse Network.api) =
    match !state with
    | Idle | Finished -> ()
    | On_port (p, k) ->
        if api.recv_pulse p then begin
          state := Idle;
          Effect.Deep.continue k ()
        end
    | On_any k -> (
        match first_available api with
        | Some p ->
            if api.recv_pulse p then begin
              state := Idle;
              Effect.Deep.continue k p
            end
            else assert false
        | None -> ())
  in
  (* No codec: the blocked state is a pending effect continuation,
     which cannot be flattened to ints (or resumed twice). *)
  { Network.start; wake; inspect; snap = None }
