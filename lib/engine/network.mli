(** The asynchronous fully-defective network simulator.

    Nodes are event-driven (Section 2): a node acts once at start-up
    and afterwards only when the scheduler delivers a pulse to it.  The
    simulator keeps, per directed link, a FIFO queue of in-flight
    messages, and per node and local port a mailbox of delivered but
    not yet consumed messages — the paper's "incoming queue" that
    [recvCW]/[recvCCW] poll.  A {!Scheduler.t} decides which in-flight
    message moves into a mailbox next; after each delivery the
    receiving node's program is woken and polls its mailboxes.

    The payload type ['m] is [unit] for content-oblivious algorithms
    (see {!pulse}); the classic baselines instantiate it with real
    message contents.  Nothing in the simulator lets a scheduler or a
    program observe anything the model forbids. *)

type 'm t

(** {2 Node programs} *)

type 'm api = {
  node : int;  (** This node's index; programs must not use it as an ID. *)
  recv : Port.t -> 'm option;
      (** Consume the oldest mailbox entry of a local port, if any —
          the paper's [recv*()] (returns 0/1 there). *)
  recv_pulse : Port.t -> bool;
      (** Like {!field-recv} but discards the payload, returning only
          whether a pulse was consumed.  This is the whole [recv*()]
          observable for content-oblivious algorithms ([pulse = unit]),
          and unlike [recv] it allocates nothing. *)
  peek : Port.t -> 'm option;  (** Look without consuming. *)
  pending : Port.t -> int;  (** Mailbox length. *)
  send : Port.t -> 'm -> unit;
      (** Emit through a local port.  Raises after {!field-terminate}. *)
  set_output : Output.t -> unit;
      (** Revise this node's output (allowed until termination). *)
  terminate : unit -> unit;
      (** Enter the terminating state: all later incoming pulses are
          ignored (and counted as quiescence violations). *)
  mutable rng : Colring_stats.Rng.t;
      (** Private randomness source.  Mutable so a multi-instance
          engine ({!Flock}) can rebind a recycled slot's per-node
          streams without rebuilding the closure record; programs must
          treat it as read-only. *)
}

type 'm program = {
  start : 'm api -> unit;  (** The one initial activation. *)
  wake : 'm api -> unit;
      (** Called after every delivery to this node; must poll mailboxes
          to a fixpoint and return (never block). *)
  inspect : unit -> (string * int) list;
      (** Named internal counters (ρ, σ, …) for invariant probes. *)
  snap : Engine_intf.snapshot option;
      (** Program-state codec for the model checker's incremental undo:
          [save] flattens the program's whole mutable state to ints,
          [load] restores it exactly.  [None] opts out — the checker
          then falls back to replay-from-prefix for this network. *)
}

val silent_program : 'm program
(** A program that never sends, consumes or decides (and has a trivial
    snapshot, since it holds no state). *)

(** {2 Construction} *)

val create :
  ?sink:Sink.t -> ?seed:int -> Topology.t -> (int -> 'm program) -> 'm t
(** [create topo make_program] instantiates [make_program v] for every
    node [v] and runs each program's [start].  [seed] derives every
    node's private {!Colring_stats.Rng.t} stream (default 0).

    [sink] observes every event of the run (default {!Sink.null}).
    The engine tees its own {!Sink.counters} over [sink], so
    {!metrics} is a by-product of the same emission path; with the
    default null sink the steady-state hot path allocates nothing.
    (The pre-sink [?record_trace] switch was removed on the DESIGN.md
    §6 timeline: pass [~sink:(Sink.memory ())] and read the buffer
    back with {!trace}.) *)

(** {2 Execution} *)

type run_result = Engine_intf.run_result = {
  sends : int;  (** Total pulses sent — the paper's message complexity. *)
  deliveries : int;
  quiescent : bool;
      (** Nothing in flight and every mailbox empty when the run ended. *)
  all_terminated : bool;
  exhausted : bool;  (** Stopped by [max_deliveries] instead of quiescence. *)
  termination_order : int list;  (** Chronological. *)
}
(** Re-export of {!Engine_intf.run_result}, the outcome record every
    engine shares. *)

val run :
  ?max_deliveries:int ->
  ?snapshot_every:int ->
  ?probe:(step:int -> unit) ->
  'm t ->
  Scheduler.t ->
  run_result
(** Deliver until no message is in flight (or [max_deliveries] is hit,
    default [50_000_000]).  An exceeded budget is reported as
    {!run_result.exhausted}, never raised — the same semantics (and
    default) as [Colring_graph.Gnetwork.run]; only
    [Colring_fastsim.Driver.run] intentionally deviates, raising
    [Invalid_argument] because its closed-form resolution cannot stop
    mid-pulse.  [probe] runs after every delivery-and-wake,
    letting tests assert invariants at each reachable configuration.
    [snapshot_every] (default 0 = off) emits a {!Sink.t.on_snapshot}
    counter record every that many deliveries — only when a live sink
    was passed at {!create}, so the default path never allocates the
    counter list. *)

val step : 'm t -> Scheduler.t -> bool
(** Deliver exactly one message; [false] when nothing was in flight. *)

val active_links : 'm t -> int list
(** Directed links that currently hold in-flight messages, ascending —
    the choice points of the asynchronous adversary. *)

val force_step : 'm t -> link:int -> unit
(** Deliver the oldest message of one specific link (bypassing any
    scheduler); raises [Invalid_argument] if the link is empty.  Used
    by the exhaustive explorer and the model checker. *)

val enabled_count : 'm t -> int
(** Number of links with messages in flight — the branching factor of
    the asynchronous adversary at the current state.  O(1). *)

val enabled_link : 'm t -> after:int -> int
(** [enabled_link t ~after] is the smallest non-empty link strictly
    greater than [after], or [-1] when none; start with [~after:(-1)]
    and feed each result back to enumerate the enabled set in
    ascending link order without allocating.  O({!enabled_count}) per
    call. *)

val channel_length : 'm t -> link:int -> int
val mailbox_length : 'm t -> node:int -> port:Port.t -> int

val channel_payloads : 'm t -> link:int -> 'm array
(** In-flight payloads of one directed link, oldest first.  Allocates;
    for invariant probes ({!Colring_mc.Inductive}), not the hot path. *)

val mailbox_payloads : 'm t -> node:int -> port:Port.t -> 'm array
(** Delivered-but-unconsumed payloads of one mailbox, oldest first. *)

(** {2 Incremental undo}

    The {!Engine_intf.NETWORK} undo contract: [force_step_undo] is
    {!force_step} plus a record of everything the delivery mutated;
    [undo_step] restores the pre-delivery state exactly, including
    metrics, clocks, mailbox/channel contents and the destination
    program's state (via its [snap] codec).  Records must be undone in
    LIFO order.  Only legal on an {!undo_capable} network: every
    program carries a [snap] codec and no user sink observes the run
    (events cannot be unemitted); programs must also not consume
    [rng] randomness, which is not rolled back — the model checker
    requires deterministic programs anyway. *)

type 'm undo

val undo_capable : 'm t -> bool

val force_step_undo : 'm t -> link:int -> 'm undo
(** Raises [Invalid_argument] when the link is empty or the network is
    not undo-capable. *)

val undo_step : 'm t -> 'm undo -> unit

val inject : 'm t -> node:int -> port:Port.t -> 'm -> unit
(** Put a message in flight on [node]'s outgoing channel at [port] as
    if the node had sent it — a deliberate *violation* of the model
    (Section 2: "pulses cannot be dropped or injected by the channel").
    Exists only so tests and benches can demonstrate that the
    no-injection assumption is load-bearing: a single spurious pulse
    breaks Algorithm 2's counting.  Injected messages go through the
    same enqueue path as {!field-send}: they are counted in
    {!Metrics.sends} and stamped with the current batch number, exactly
    as if sent by the most recent activation. *)

(** {2 Observation} *)

val topology : 'm t -> Topology.t
val size : 'm t -> int
val output : 'm t -> int -> Output.t
val outputs : 'm t -> Output.t array
val terminated : 'm t -> int -> bool
val all_terminated : 'm t -> bool
val termination_order : 'm t -> int list
val inspect : 'm t -> int -> (string * int) list
val inspect_counter : 'm t -> int -> string -> int
(** Raises [Not_found] for an unknown counter name. *)

val metrics : 'm t -> Metrics.t

val fingerprint : 'm t -> string
(** Canonical observable-state string ({!Engine_intf.NETWORK}'s
    contract): channel and mailbox depths, termination flags, outputs
    and inspect counters.  Two states print equal iff no monitor can
    tell them apart. *)

val num_links : Topology.t -> int
(** {!Topology.num_links}, re-exported so the ring engine satisfies
    {!Engine_intf.NETWORK} verbatim. *)

val link_dst_node : Topology.t -> int -> int
(** The destination node of a directed link (the node component of
    {!Topology.link_dst}). *)

val trace : 'm t -> Trace.t option
(** The buffer of the memory sink attached to this network via [?sink],
    if any. *)

val in_flight : 'm t -> int
(** Messages in channels (sent, not yet delivered). *)

val mailbox_backlog : 'm t -> int
(** Messages delivered but not yet consumed, over all nodes. *)

val is_quiescent : 'm t -> bool
(** [in_flight = 0] and [mailbox_backlog = 0]. *)

val causal_span : 'm t -> int
(** The asynchronous time of the run so far: the longest chain of
    causally dependent deliveries, counting each message as one time
    unit (a pulse sent by an activation carries depth one more than the
    deepest pulse its node has received).  The paper analyses message
    complexity only; this exposes the orthogonal time dimension. *)

(** {2 Pulses} *)

type pulse = unit

val pulse : pulse
