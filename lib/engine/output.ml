type role = Leader | Non_leader | Undecided

type t = {
  role : role;
  cw_port : Port.t option;
  value : int option;
  values : int list;
}

let empty = { role = Undecided; cw_port = None; value = None; values = [] }
let leader = { empty with role = Leader }
let non_leader = { empty with role = Non_leader }
let with_role role t = { t with role }
let with_cw_port p t = { t with cw_port = Some p }
let with_value v t = { t with value = Some v }
let with_values vs t = { t with values = vs }

let role_to_string = function
  | Leader -> "Leader"
  | Non_leader -> "Non-Leader"
  | Undecided -> "Undecided"

let equal_role a b =
  match (a, b) with
  | Leader, Leader | Non_leader, Non_leader | Undecided, Undecided -> true
  | (Leader | Non_leader | Undecided), _ -> false

let equal a b =
  equal_role a.role b.role
  && Option.equal Port.equal a.cw_port b.cw_port
  && Option.equal Int.equal a.value b.value
  && List.equal Int.equal a.values b.values

(* Digit-direct decimal rendering: [string_of_int] allocates and
   copies, which dominates fingerprint construction at model-checker
   rates (dozens of ints per state, hundreds of thousands of states
   per second). *)
let rec add_int buf n =
  if n < 0 then begin
    Buffer.add_char buf '-';
    add_int buf (-n)
  end
  else begin
    if n >= 10 then add_int buf (n / 10);
    Buffer.add_char buf (Char.unsafe_chr (Char.code '0' + (n mod 10)))
  end

(* One unambiguous token per field, fixed order: 'add_compact a = add_compact b'
   iff 'equal a b'.  Buffer-direct because the engines fingerprint every
   node's output once per model-checker state. *)
let add_compact buf t =
  Buffer.add_char buf
    (match t.role with Leader -> 'L' | Non_leader -> 'N' | Undecided -> 'U');
  Buffer.add_char buf
    (match t.cw_port with
    | None -> '-'
    | Some p -> if Port.index p = 0 then '0' else '1');
  (match t.value with
  | None -> Buffer.add_char buf '-'
  | Some v -> add_int buf v);
  match t.values with
  | [] -> ()
  | vs ->
      Buffer.add_char buf '[';
      List.iter
        (fun v ->
          add_int buf v;
          Buffer.add_char buf '.')
        vs;
      Buffer.add_char buf ']'

let pp ppf t =
  Format.fprintf ppf "%s" (role_to_string t.role);
  Option.iter (fun p -> Format.fprintf ppf " cw=%a" Port.pp p) t.cw_port;
  Option.iter (fun v -> Format.fprintf ppf " value=%d" v) t.value;
  match t.values with
  | [] -> ()
  | vs ->
      Format.fprintf ppf " values=[%s]"
        (String.concat ";" (List.map string_of_int vs))
