type role = Leader | Non_leader | Undecided

type t = {
  role : role;
  cw_port : Port.t option;
  value : int option;
  values : int list;
}

let empty = { role = Undecided; cw_port = None; value = None; values = [] }
let leader = { empty with role = Leader }
let non_leader = { empty with role = Non_leader }
let with_role role t = { t with role }
let with_cw_port p t = { t with cw_port = Some p }
let with_value v t = { t with value = Some v }
let with_values vs t = { t with values = vs }

let role_to_string = function
  | Leader -> "Leader"
  | Non_leader -> "Non-Leader"
  | Undecided -> "Undecided"

let equal_role a b =
  match (a, b) with
  | Leader, Leader | Non_leader, Non_leader | Undecided, Undecided -> true
  | (Leader | Non_leader | Undecided), _ -> false

let equal a b =
  equal_role a.role b.role
  && Option.equal Port.equal a.cw_port b.cw_port
  && Option.equal Int.equal a.value b.value
  && List.equal Int.equal a.values b.values

let pp ppf t =
  Format.fprintf ppf "%s" (role_to_string t.role);
  Option.iter (fun p -> Format.fprintf ppf " cw=%a" Port.pp p) t.cw_port;
  Option.iter (fun v -> Format.fprintf ppf " value=%d" v) t.value;
  match t.values with
  | [] -> ()
  | vs ->
      Format.fprintf ppf " values=[%s]"
        (String.concat ";" (List.map string_of_int vs))
