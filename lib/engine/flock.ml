module Rng = Colring_stats.Rng

(* Domain-safety contract (enforced by the shared-state lint,
   tools/lint/lint_domain.ml): a flock is single-domain.  Nothing in
   this file is declared in shared.sexp on purpose — every mutable
   below (the struct-of-arrays slots, queues, mailboxes) belongs to
   whichever domain built the flock, and cross-domain reuse goes
   through [Harness.Batch]'s per-domain [Domain.DLS] cache, which
   hands each domain its own instance.  Sharing one [Flock.t] across
   domains is a bug the lint would flag at the spawn site. *)

(* Slot statuses, kept as ints so the stepping loop compares against
   immediates: 0 = idle (never loaded or released), 1 = running,
   2 = settled (no pulses in flight), 3 = exhausted (delivery budget
   hit).  The [status] accessor maps them back to the variant. *)

type status = Idle | Running | Settled | Exhausted

(* A channel in a pulse network carries no payload, so an envelope is
   pure metadata: a stride-3 circular buffer of (seq, batch, depth)
   replaces the generic {!Envq} (which stores and clears a payload
   slab alongside the metadata).  Same growth rule — capacity 0 or a
   power of two, doubled on overflow. *)
type pq = { mutable meta : int array; mutable head : int; mutable len : int }

let pq_create () = { meta = [||]; head = 0; len = 0 }

let pq_grow q =
  let cap = Array.length q.meta / 3 in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let meta = Array.make (3 * ncap) 0 in
  for i = 0 to q.len - 1 do
    let s = 3 * ((q.head + i) land (cap - 1)) in
    meta.(3 * i) <- q.meta.(s);
    meta.((3 * i) + 1) <- q.meta.(s + 1);
    meta.((3 * i) + 2) <- q.meta.(s + 2)
  done;
  q.meta <- meta;
  q.head <- 0

let pq_push q ~seq ~batch ~depth =
  if Int.equal (3 * q.len) (Array.length q.meta) then pq_grow q;
  let s = 3 * ((q.head + q.len) land ((Array.length q.meta / 3) - 1)) in
  q.meta.(s) <- seq;
  q.meta.(s + 1) <- batch;
  q.meta.(s + 2) <- depth;
  q.len <- q.len + 1

(* Head accessors are only called on non-empty queues (schedulers see
   a link only while it is in the non-empty set). *)
let pq_head_seq q = q.meta.(3 * q.head)
let pq_head_batch q = q.meta.((3 * q.head) + 1)

let pq_pop q =
  q.head <- (q.head + 1) land ((Array.length q.meta / 3) - 1);
  q.len <- q.len - 1

type t = {
  topo : Topology.t;
  n : int;
  links : int;
  slots : int;
  (* Shared, precomputed per link (the topology shape is common to
     every instance, so link -> destination lookups are one array
     read instead of a [Topology.link_dst] tuple). *)
  dst_node : int array;
  dst_port_ix : int array;
  cw : bool array;
  (* Per (slot, link): channel queues and the incremental
     non-empty-link set.  [nonempty] is an array per slot (not a flat
     slice) because each slot's scheduler view aliases its row. *)
  chans : pq array;
  nonempty : int array array;
  link_pos : int array;
  (* Per (slot, node, port): mailbox depth.  A pulse mailbox is just a
     count — {!Network} keeps a [Ring.t] of units here; the flock keeps
     the integer. *)
  mcount : int array;
  (* Per (slot, node). *)
  outputs : Output.t array;
  term : bool array;
  term_order : int array;
  local_clock : int array;
  programs : Network.pulse Network.program array;
  mutable apis : Network.pulse Network.api array;
  (* Per-slot scalars, struct-of-arrays. *)
  status : int array;
  nonempty_count : int array;
  next_seq : int array;
  next_batch : int array;
  in_flight : int array;
  backlog : int array;
  term_count : int array;
  causal : int array;
  sends : int array;
  sends_cw : int array;
  deliveries : int array;
  consumes : int array;
  wakes : int array;
  post_term : int array;
  budget : int array;
  snap_every : int array;
  sinks : Sink.t array;
  observed : bool array;
  enabled : bool array;
  scheds : Scheduler.t array;
  views : Scheduler.view array;
  (* One inert stream shared by every slot loaded with [~rng:false];
     never drawn from (the caller promises the programs are
     deterministic), it only keeps the api records total. *)
  dummy_rng : Rng.t;
}

(* ---------------------------------------------------------------- *)
(* Hot path: the per-delivery functions below are registered in
   tools/lint/hot.sexp and mirror lib/engine/network.ml line for
   line, with [Metrics]/[Sink.counters] dispatch replaced by inline
   counter stores and every user-sink callback behind an
   [observed]/[enabled] guard. *)

let mark_nonempty t s link =
  let lp = (s * t.links) + link in
  if t.link_pos.(lp) < 0 then begin
    let row = t.nonempty.(s) in
    let c = t.nonempty_count.(s) in
    row.(c) <- link;
    t.link_pos.(lp) <- c;
    t.nonempty_count.(s) <- c + 1
  end

(* Called with [link]'s queue already known empty. *)
let unmark t s link =
  let lp = (s * t.links) + link in
  let row = t.nonempty.(s) in
  let pos = t.link_pos.(lp) in
  let last = t.nonempty_count.(s) - 1 in
  let moved = row.(last) in
  row.(pos) <- moved;
  t.link_pos.((s * t.links) + moved) <- pos;
  t.link_pos.(lp) <- -1;
  t.nonempty_count.(s) <- last

(* [node]'s part of the envelope stamp ([local_clock] index and the
   sink's node label) is passed pre-offset by the api closures. *)
let enqueue t s ~link ~node ~nv ~port =
  let seq = t.next_seq.(s) in
  t.next_seq.(s) <- seq + 1;
  mark_nonempty t s link;
  pq_push
    t.chans.((s * t.links) + link)
    ~seq ~batch:t.next_batch.(s)
    ~depth:(t.local_clock.(nv) + 1);
  t.in_flight.(s) <- t.in_flight.(s) + 1;
  t.sends.(s) <- t.sends.(s) + 1;
  if t.cw.(link) then t.sends_cw.(s) <- t.sends_cw.(s) + 1;
  if t.observed.(s) then
    t.sinks.(s).Sink.on_send ~node ~port ~seq ~link ~cw:t.cw.(link)

let deliver t s link =
  let q = t.chans.((s * t.links) + link) in
  let h = 3 * q.head in
  let seq = q.meta.(h) in
  let depth = q.meta.(h + 2) in
  pq_pop q;
  if q.len = 0 then unmark t s link;
  t.in_flight.(s) <- t.in_flight.(s) - 1;
  let dst = t.dst_node.(link) in
  let nv = (s * t.n) + dst in
  if t.term.(nv) then begin
    t.post_term.(s) <- t.post_term.(s) + 1;
    if t.observed.(s) then
      t.sinks.(s).Sink.on_drop ~node:dst ~port:t.dst_port_ix.(link) ~seq
  end
  else begin
    t.deliveries.(s) <- t.deliveries.(s) + 1;
    if t.observed.(s) then
      t.sinks.(s).Sink.on_deliver ~node:dst ~port:t.dst_port_ix.(link) ~seq;
    t.mcount.((nv * 2) + t.dst_port_ix.(link)) <-
      t.mcount.((nv * 2) + t.dst_port_ix.(link)) + 1;
    t.backlog.(s) <- t.backlog.(s) + 1;
    if depth > t.local_clock.(nv) then t.local_clock.(nv) <- depth;
    if depth > t.causal.(s) then t.causal.(s) <- depth;
    t.next_batch.(s) <- t.next_batch.(s) + 1;
    t.wakes.(s) <- t.wakes.(s) + 1;
    if t.observed.(s) then t.sinks.(s).Sink.on_wake ~node:dst;
    t.programs.(nv).Network.wake t.apis.(nv)
  end

let view t s =
  let v = t.views.(s) in
  v.Scheduler.count <- t.nonempty_count.(s);
  v.Scheduler.step <- t.deliveries.(s);
  v

(* Counter snapshots match [Metrics.to_assoc] key for key (the frozen
   alphabetical schema), so flock journals and Network journals are
   interchangeable. *)
let metrics_assoc t s =
  [
    ("consumes", t.consumes.(s));
    ("deliveries", t.deliveries.(s));
    ("post_termination_deliveries", t.post_term.(s));
    ("sends", t.sends.(s));
    ("sends_ccw", t.sends.(s) - t.sends_cw.(s));
    ("sends_cw", t.sends_cw.(s));
    ("wakes", t.wakes.(s));
  ]

let emit_snapshot t s =
  t.sinks.(s).Sink.on_snapshot ~step:t.deliveries.(s) (metrics_assoc t s)

(* One delivery for slot [s], with [Network.run]'s loop conditions in
   the same order: budget first (the slot parks as exhausted), then
   quiescence of the channel system, then a scheduler pick.  The
   snapshot cadence check runs after every delivery, exactly as the
   single-instance run loop does. *)
let step t s =
  if t.status.(s) <> 1 then false
  else if t.deliveries.(s) >= t.budget.(s) then begin
    t.status.(s) <- 3;
    false
  end
  else if t.in_flight.(s) = 0 then begin
    t.status.(s) <- 2;
    false
  end
  else begin
    deliver t s (t.scheds.(s).Scheduler.pick (view t s));
    (if t.enabled.(s) && t.snap_every.(s) > 0 then
       if t.deliveries.(s) mod t.snap_every.(s) = 0 then emit_snapshot t s);
    true
  end

(* [step] unrolled over a batch for the drain loop: the status check
   runs once for the whole batch (a delivery never changes it — only
   the two parking transitions below do), everything else keeps
   [step]'s condition order and snapshot cadence. *)
let rec step_batch t s remaining =
  if remaining > 0 then
    if t.deliveries.(s) >= t.budget.(s) then t.status.(s) <- 3
    else if t.in_flight.(s) = 0 then t.status.(s) <- 2
    else begin
      deliver t s (t.scheds.(s).Scheduler.pick (view t s));
      (if t.enabled.(s) && t.snap_every.(s) > 0 then
         if t.deliveries.(s) mod t.snap_every.(s) = 0 then emit_snapshot t s);
      step_batch t s (remaining - 1)
    end

(* ---------------------------------------------------------------- *)
(* Construction *)

let make_view t s =
  let base = s * t.links in
  {
    Scheduler.nonempty = t.nonempty.(s);
    count = 0;
    head_seq = (fun link -> pq_head_seq t.chans.(base + link));
    head_batch = (fun link -> pq_head_batch t.chans.(base + link));
    travels_cw = (fun link -> if t.cw.(link) then Some true else Some false);
    dst_node = (fun link -> t.dst_node.(link));
    step = 0;
  }

let make_api t s v =
  let nv = (s * t.n) + v in
  (* Mailbox cells and outgoing link ids, resolved once per api
     instead of per call. *)
  let mb0 = nv * 2 in
  let mb1 = (nv * 2) + 1 in
  let l0 = Topology.link_id t.topo v Port.P0 in
  let l1 = Topology.link_id t.topo v Port.P1 in
  let consume p =
    t.backlog.(s) <- t.backlog.(s) - 1;
    t.consumes.(s) <- t.consumes.(s) + 1;
    if t.observed.(s) then
      t.sinks.(s).Sink.on_consume ~node:v ~port:(Port.index p)
  in
  let cell p = match p with Port.P0 -> mb0 | Port.P1 -> mb1 in
  let recv p =
    let c = cell p in
    if t.mcount.(c) = 0 then None
    else begin
      t.mcount.(c) <- t.mcount.(c) - 1;
      consume p;
      Some Network.pulse
    end
  in
  let recv_pulse p =
    let c = cell p in
    if t.mcount.(c) = 0 then false
    else begin
      t.mcount.(c) <- t.mcount.(c) - 1;
      consume p;
      true
    end
  in
  let peek p = if t.mcount.(cell p) = 0 then None else Some Network.pulse in
  let pending p = t.mcount.(cell p) in
  let send p m =
    ignore m;
    if t.term.(nv) then failwith "Network: send after terminate";
    enqueue t s
      ~link:(match p with Port.P0 -> l0 | Port.P1 -> l1)
      ~node:v ~nv ~port:(Port.index p)
  in
  let set_output o =
    if not (Output.equal t.outputs.(nv) o) then begin
      t.outputs.(nv) <- o;
      if t.observed.(s) then t.sinks.(s).Sink.on_decide ~node:v ~output:o
    end
  in
  let terminate () =
    if not t.term.(nv) then begin
      t.term.(nv) <- true;
      let c = t.term_count.(s) in
      t.term_order.((s * t.n) + c) <- v;
      t.term_count.(s) <- c + 1;
      if t.observed.(s) then t.sinks.(s).Sink.on_terminate ~node:v
    end
  in
  {
    Network.node = v;
    recv;
    recv_pulse;
    peek;
    pending;
    send;
    set_output;
    terminate;
    rng = t.dummy_rng;
  }

let dummy_view =
  {
    Scheduler.nonempty = [||];
    count = 0;
    head_seq = (fun _ -> 0);
    head_batch = (fun _ -> 0);
    travels_cw = (fun _ -> None);
    dst_node = (fun _ -> 0);
    step = 0;
  }

let create ?(slots = 256) topo =
  if slots < 1 then invalid_arg "Flock.create: slots must be >= 1";
  Topology.check topo;
  let n = Topology.n topo in
  let links = Topology.num_links topo in
  let k = slots in
  let dummy_rng = Rng.create ~seed:0 in
  let t =
    {
      topo;
      n;
      links;
      slots = k;
      dst_node = Array.init links (fun l -> fst (Topology.link_dst topo l));
      dst_port_ix =
        Array.init links (fun l -> Port.index (snd (Topology.link_dst topo l)));
      cw = Array.init links (fun l -> Topology.link_travels_cw topo l);
      chans = Array.init (k * links) (fun _ -> pq_create ());
      nonempty = Array.init k (fun _ -> Array.make links 0);
      link_pos = Array.make (k * links) (-1);
      mcount = Array.make (k * n * 2) 0;
      outputs = Array.make (k * n) Output.empty;
      term = Array.make (k * n) false;
      term_order = Array.make (k * n) 0;
      local_clock = Array.make (k * n) 0;
      programs = Array.make (k * n) Network.silent_program;
      apis = [||];
      status = Array.make k 0;
      nonempty_count = Array.make k 0;
      next_seq = Array.make k 0;
      next_batch = Array.make k 0;
      in_flight = Array.make k 0;
      backlog = Array.make k 0;
      term_count = Array.make k 0;
      causal = Array.make k 0;
      sends = Array.make k 0;
      sends_cw = Array.make k 0;
      deliveries = Array.make k 0;
      consumes = Array.make k 0;
      wakes = Array.make k 0;
      post_term = Array.make k 0;
      budget = Array.make k 0;
      snap_every = Array.make k 0;
      sinks = Array.make k Sink.null;
      observed = Array.make k false;
      enabled = Array.make k false;
      scheds = Array.make k Scheduler.fifo;
      views = Array.make k dummy_view;
      dummy_rng;
    }
  in
  (* The per-slot views and per-(slot, node) api closures need [t]
     itself, so they are filled in after construction, once, and
     recycled across loads. *)
  t.apis <- Array.init (k * n) (fun i -> make_api t (i / n) (i mod n));
  for s = 0 to k - 1 do
    t.views.(s) <- make_view t s
  done;
  t

(* ---------------------------------------------------------------- *)
(* Loading and draining *)

let reset_slot t s =
  let n = t.n and links = t.links in
  let nbase = s * n and lbase = s * links in
  for l = 0 to links - 1 do
    let q = t.chans.(lbase + l) in
    q.head <- 0;
    q.len <- 0;
    t.link_pos.(lbase + l) <- -1
  done;
  for v = 0 to n - 1 do
    t.mcount.((nbase + v) * 2) <- 0;
    t.mcount.(((nbase + v) * 2) + 1) <- 0;
    t.outputs.(nbase + v) <- Output.empty;
    t.term.(nbase + v) <- false;
    t.term_order.(nbase + v) <- 0;
    t.local_clock.(nbase + v) <- 0;
    t.programs.(nbase + v) <- Network.silent_program
  done;
  t.nonempty_count.(s) <- 0;
  t.next_seq.(s) <- 0;
  t.next_batch.(s) <- 0;
  t.in_flight.(s) <- 0;
  t.backlog.(s) <- 0;
  t.term_count.(s) <- 0;
  t.causal.(s) <- 0;
  t.sends.(s) <- 0;
  t.sends_cw.(s) <- 0;
  t.deliveries.(s) <- 0;
  t.consumes.(s) <- 0;
  t.wakes.(s) <- 0;
  t.post_term.(s) <- 0

let load t ~slot ?(seed = 0) ?(rng = true) ?(max_deliveries = 50_000_000)
    ?(snapshot_every = 0) ?(sink = Sink.null) ~sched make_program =
  if slot < 0 || slot >= t.slots then invalid_arg "Flock.load: bad slot";
  if t.status.(slot) = 1 then invalid_arg "Flock.load: slot is running";
  if max_deliveries < 1 then
    invalid_arg "Flock.load: max_deliveries must be >= 1";
  reset_slot t slot;
  let nbase = slot * t.n in
  for v = 0 to t.n - 1 do
    t.programs.(nbase + v) <- make_program v
  done;
  (* Per-node streams are split from the instance seed exactly as
     [Network.create] splits them, so a program that draws sees the
     same stream it would see in a single-instance run.  With
     [~rng:false] every api keeps the shared inert stream — the
     caller asserts the programs never touch [api.rng], and skipping
     the [Rng.split_at] calls is most of the per-instance setup
     cost. *)
  (if rng then begin
     let root = Rng.create ~seed in
     for v = 0 to t.n - 1 do
       t.apis.(nbase + v).Network.rng <- Rng.split_at root v
     done
   end
   else
     for v = 0 to t.n - 1 do
       t.apis.(nbase + v).Network.rng <- t.dummy_rng
     done);
  t.budget.(slot) <- max_deliveries;
  t.snap_every.(slot) <- snapshot_every;
  t.sinks.(slot) <- sink;
  t.observed.(slot) <- not (sink == Sink.null);
  t.enabled.(slot) <- sink.Sink.enabled;
  t.scheds.(slot) <- sched;
  t.status.(slot) <- 1;
  (* Start-up activations, in [Network.create]'s order: batch bump,
     wake, then the program's one initial activation, node by node. *)
  for v = 0 to t.n - 1 do
    t.next_batch.(slot) <- t.next_batch.(slot) + 1;
    t.wakes.(slot) <- t.wakes.(slot) + 1;
    if t.observed.(slot) then t.sinks.(slot).Sink.on_wake ~node:v;
    t.programs.(nbase + v).Network.start t.apis.(nbase + v)
  done

let drain ?(batch = 64) ?on_complete t =
  if batch < 1 then invalid_arg "Flock.drain: batch must be >= 1";
  let live = ref true in
  while !live do
    live := false;
    for s = 0 to t.slots - 1 do
      if t.status.(s) = 1 then begin
        step_batch t s batch;
        if t.status.(s) = 1 then live := true
        else match on_complete with None -> () | Some f -> f s
      end
    done
  done

let release t s =
  if s < 0 || s >= t.slots then invalid_arg "Flock.release: bad slot";
  if t.status.(s) = 1 then invalid_arg "Flock.release: slot is running";
  t.status.(s) <- 0

(* ---------------------------------------------------------------- *)
(* Observation *)

let check_slot t s name =
  if s < 0 || s >= t.slots then invalid_arg name

let status t s =
  check_slot t s "Flock.status: bad slot";
  match t.status.(s) with
  | 0 -> Idle
  | 1 -> Running
  | 2 -> Settled
  | _ -> Exhausted

let slots t = t.slots
let size t = t.n
let topology t = t.topo
let sends t s = t.sends.(s)
let sends_cw t s = t.sends_cw.(s)
let sends_ccw t s = t.sends.(s) - t.sends_cw.(s)
let deliveries t s = t.deliveries.(s)
let consumes t s = t.consumes.(s)
let wakes t s = t.wakes.(s)
let post_termination_deliveries t s = t.post_term.(s)
let causal_span t s = t.causal.(s)
let in_flight t s = t.in_flight.(s)
let mailbox_backlog t s = t.backlog.(s)
let quiescent t s = t.in_flight.(s) = 0 && t.backlog.(s) = 0
let exhausted t s = t.status.(s) = 3

let all_terminated t s =
  let ok = ref true in
  for v = 0 to t.n - 1 do
    if not t.term.((s * t.n) + v) then ok := false
  done;
  !ok

let terminated t ~slot ~node = t.term.((slot * t.n) + node)

let termination_order t s =
  List.init t.term_count.(s) (fun i -> t.term_order.((s * t.n) + i))

let output t ~slot ~node = t.outputs.((slot * t.n) + node)
let outputs t s = Array.sub t.outputs (s * t.n) t.n
let inspect t ~slot ~node = t.programs.((slot * t.n) + node).Network.inspect ()
