(* The topology-parameterized engine surface.  See engine_intf.mli —
   this module only declares types and module types, so the two files
   are textually identical. *)

type run_result = {
  sends : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  termination_order : int list;
}

module type NETWORK = sig
  type topology
  type 'm t
  type 'm api
  type 'm program

  val create :
    ?sink:Sink.t -> ?seed:int -> topology -> (int -> 'm program) -> 'm t

  val run :
    ?max_deliveries:int ->
    ?snapshot_every:int ->
    ?probe:(step:int -> unit) ->
    'm t ->
    Scheduler.t ->
    run_result

  val step : 'm t -> Scheduler.t -> bool
  val force_step : 'm t -> link:int -> unit
  val enabled_count : 'm t -> int
  val enabled_link : 'm t -> after:int -> int
  val fingerprint : 'm t -> string
  val topology : 'm t -> topology
  val size : 'm t -> int
  val num_links : topology -> int
  val link_dst_node : topology -> int -> int
  val output : 'm t -> int -> Output.t
  val outputs : 'm t -> Output.t array
  val terminated : 'm t -> int -> bool
  val all_terminated : 'm t -> bool
  val termination_order : 'm t -> int list
  val inspect : 'm t -> int -> (string * int) list
  val inspect_counter : 'm t -> int -> string -> int
  val metrics : 'm t -> Metrics.t
  val in_flight : 'm t -> int
  val mailbox_backlog : 'm t -> int
  val is_quiescent : 'm t -> bool
end
