(* The topology-parameterized engine surface.  See engine_intf.mli —
   this module only declares types and module types, so the two files
   are textually identical. *)

type run_result = {
  sends : int;
  deliveries : int;
  quiescent : bool;
  all_terminated : bool;
  exhausted : bool;
  termination_order : int list;
}

(* A program-state snapshot codec: [save] encodes the program's whole
   mutable state as a flat int array, [load] restores it exactly.
   Programs expose one through their [snap] field to opt into the
   model checker's incremental-undo backtracking; [None] keeps the
   checker on its replay-from-prefix fallback. *)
type snapshot = { save : unit -> int array; load : int array -> unit }

module type NETWORK = sig
  type topology
  type 'm t
  type 'm api
  type 'm program

  val create :
    ?sink:Sink.t -> ?seed:int -> topology -> (int -> 'm program) -> 'm t

  val run :
    ?max_deliveries:int ->
    ?snapshot_every:int ->
    ?probe:(step:int -> unit) ->
    'm t ->
    Scheduler.t ->
    run_result

  val step : 'm t -> Scheduler.t -> bool
  val force_step : 'm t -> link:int -> unit

  (* Incremental undo: [force_step_undo] is [force_step] plus an undo
     record capturing everything the delivery mutated (the popped
     envelope, the destination's program snapshot, queue/metric/clock
     effects of the wake); [undo_step] restores the pre-delivery state
     exactly.  Records must be undone in LIFO order.  Only legal when
     [undo_capable] holds: every program carries a [snap] codec and no
     user sink observes the run (events cannot be unemitted). *)
  type 'm undo

  val undo_capable : 'm t -> bool
  val force_step_undo : 'm t -> link:int -> 'm undo
  val undo_step : 'm t -> 'm undo -> unit
  val enabled_count : 'm t -> int
  val enabled_link : 'm t -> after:int -> int
  val fingerprint : 'm t -> string
  val topology : 'm t -> topology
  val size : 'm t -> int
  val num_links : topology -> int
  val link_dst_node : topology -> int -> int
  val output : 'm t -> int -> Output.t
  val outputs : 'm t -> Output.t array
  val terminated : 'm t -> int -> bool
  val all_terminated : 'm t -> bool
  val termination_order : 'm t -> int list
  val inspect : 'm t -> int -> (string * int) list
  val inspect_counter : 'm t -> int -> string -> int
  val metrics : 'm t -> Metrics.t
  val in_flight : 'm t -> int
  val mailbox_backlog : 'm t -> int
  val is_quiescent : 'm t -> bool
end
