type stats = {
  distinct_states : int;
  terminal_states : int;
  replayed_deliveries : int;
  failures : int;
  truncated : bool;
  max_depth : int;
}

(* The canonical fingerprint moved into the engine itself so every
   {!Engine_intf.NETWORK} provides it; this alias survives for the
   explorer's historical callers. *)
let fingerprint = Network.fingerprint

let replay make path =
  let net = make () in
  List.iter (fun link -> Network.force_step net ~link) (List.rev path);
  net

let exhaustive ?(max_states = 200_000) ~make ~check () =
  let seen = Hashtbl.create 4096 in
  let terminal = ref 0 in
  let failures = ref 0 in
  let replayed = ref 0 in
  let truncated = ref false in
  let max_depth = ref 0 in
  (* The stack holds decision paths (most recent decision first). *)
  let stack = ref [ [] ] in
  while !stack <> [] && not !truncated do
    match !stack with
    | [] -> ()
    | path :: rest ->
        stack := rest;
        let depth = List.length path in
        if depth > !max_depth then max_depth := depth;
        let net = replay make path in
        replayed := !replayed + depth;
        let fp = fingerprint net in
        if not (Hashtbl.mem seen fp) then begin
          Hashtbl.add seen fp ();
          if Hashtbl.length seen >= max_states then truncated := true;
          match Network.active_links net with
          | [] ->
              incr terminal;
              if not (check net) then incr failures
          | links ->
              List.iter (fun link -> stack := (link :: path) :: !stack) links
        end
  done;
  {
    distinct_states = Hashtbl.length seen;
    terminal_states = !terminal;
    replayed_deliveries = !replayed;
    failures = !failures;
    truncated = !truncated;
    max_depth = !max_depth;
  }
