(** Pluggable telemetry sinks.

    A {!t} is the one observability surface of the simulator: it
    receives the event stream that {!Trace} used to capture (sends,
    deliveries, consumptions, decisions, termination), the counter
    updates that {!Metrics} aggregates, and run-lifecycle records
    (run start, periodic counter snapshots, run end, result-table
    rows).  Everything that used to be a special case — the trace
    buffer of the lower-bound machinery, the engine counters, the
    bench table printers — is one of the four implementations below:

    - {!null}: ignores everything.  The default.  The engine's
      steady-state hot path stays allocation-free under it.
    - {!memory}: records events into a {!Trace.t}, exposed via
      {!trace} — the lower-bound machinery's buffer.
    - {!counters}: drives a {!Metrics.t}.  The engine composes one of
      these over its own counters with {!tee}, so counting and user
      telemetry are a single emission path.
    - {!jsonl}: writes one self-describing JSON object per
      event/record — the run journal behind [--journal FILE].

    Sinks are first-class records of callbacks, so a custom consumer
    is just a record literal (start from {!null} with a [with]
    expression).  Callbacks take immediate arguments only — no event
    value is materialised — which is what keeps {!null} free.

    Sinks are not synchronised: under {!Colring_runtime.Pool} each
    domain must own its sink ({!Colring_harness.Sweep.election} gives
    every sweep cell a private buffered jsonl sink and concatenates
    the chunks in cell-index order, so journals are byte-identical
    for every domain count). *)

(** A journal field value.  Journals are flat: every record is a list
    of named scalars. *)
type value = Bool of bool | Int of int | Float of float | String of string

type t = {
  name : string;  (** For diagnostics ("null", "memory", "a+b", …). *)
  enabled : bool;
      (** [false] only for {!null} (and tees of nulls).  Producers
          check this before building argument lists for the record
          callbacks ([on_run_start] and friends), so a null sink costs
          one branch and zero allocation. *)
  on_send : node:int -> port:int -> seq:int -> link:int -> cw:bool -> unit;
      (** [node] emitted pulse [seq] from its local port (as an
          integer index — ring engines pass [Port.index], general
          graphs their native port number) onto directed link [link];
          [cw] is the ground-truth direction when the topology defines
          one ([false] on general graphs, which have none). *)
  on_deliver : node:int -> port:int -> seq:int -> unit;
      (** Pulse [seq] moved from the channel into [node]'s mailbox. *)
  on_drop : node:int -> port:int -> seq:int -> unit;
      (** Pulse [seq] arrived at [node] after it terminated and was
          discarded — a quiescence violation.  {!Trace} never recorded
          these; {!memory} ignores them for compatibility. *)
  on_consume : node:int -> port:int -> unit;
      (** The program at [node] consumed one pulse from the mailbox of
          its local [port]. *)
  on_wake : node:int -> unit;
      (** [node]'s program is about to run (start-up or delivery). *)
  on_decide : node:int -> output:Output.t -> unit;
      (** The program revised its output. *)
  on_terminate : node:int -> unit;
  on_run_start : (string * value) list -> unit;
      (** Run metadata: algorithm, n, seed, workload, scheduler, … *)
  on_snapshot : step:int -> (string * int) list -> unit;
      (** Periodic counter snapshot — [step] is the delivery count,
          the list is {!Metrics.to_assoc} (stable schema). *)
  on_run_end : (string * value) list -> unit;
      (** Final measurements and verdicts (an {!Colring_core.Election}
          report, serialised field by field). *)
  on_row : table:string -> (string * value) list -> unit;
      (** One row of a named result table (the bench's E-tables). *)
  flush : unit -> unit;
      (** Force buffered output down to the underlying writer.  Runners
          call this at run end; it is a no-op for unbuffered sinks. *)
  buffer : Trace.t option;
      (** The event buffer, for {!memory} sinks ({!tee} propagates the
          first one).  [None] for the other implementations. *)
}

val null : t
(** Ignores everything; [enabled = false].  The default everywhere. *)

val memory : unit -> t
(** Records Send/Deliver/Consume/Decide/Terminate events into a fresh
    {!Trace.t} (retrieve it with {!trace}).  Drops, wakes and
    lifecycle records are ignored.  Ring engines only: {!Trace}
    events name ports as {!Port.t}, so a port index outside [{0,1}]
    (a general-graph node of higher degree) raises
    [Invalid_argument]. *)

val counters : Metrics.t -> t
(** Routes events into a {!Metrics.t}: sends, deliveries, consumes,
    wakes, and post-termination drops update the corresponding
    counters.  Lifecycle records are ignored.  This is the sink the
    engine installs over its own counters, so a run's metrics are a
    by-product of the same emission path user sinks observe. *)

val jsonl : ?events:bool -> emit:(string -> unit) -> unit -> t
(** [jsonl ~emit ()] formats every event/record as one self-describing
    JSON object — [{"type":"send","node":0,…}] — and passes the line
    (without the trailing newline) to [emit].  [events:false] (default
    [true]) suppresses the per-event lines and keeps only lifecycle
    records (run_start/snapshot/run_end/row) — what sweeps want, since
    a full event journal is as long as the run.  Ports appear as
    integer indices; every line is parseable by [Bench_io.of_string]. *)

val jsonl_buffer : ?events:bool -> Buffer.t -> t
(** {!jsonl} appending ["line\n"] to a buffer. *)

val jsonl_channel : ?events:bool -> out_channel -> t
(** {!jsonl} writing through an internal buffer to a channel; lines
    reach the channel in 64 KiB batches and on {!field-flush}. *)

val with_jsonl_channel : ?events:bool -> string -> (t -> 'a) -> 'a
(** [with_jsonl_channel path f] opens [path], runs [f] with a
    {!jsonl_channel} sink over it, and — whether [f] returns or raises
    — flushes the sink's internal buffer and closes the channel before
    propagating the outcome.  This is the only safe way to journal a
    run that may raise (e.g. [Colring_fastsim.Driver.run] past its
    delivery budget): the buffered tail of the journal survives the
    exception, so the file is always a valid, parseable prefix of the
    full journal. *)

val tee : t -> t -> t
(** [tee a b] forwards everything to [a] then [b].  Returns the other
    sink unchanged when either side is {!null}. *)

val trace : t -> Trace.t option
(** The {!field-buffer} of [t] — the recorded trace of a {!memory}
    sink (or of the first memory component of a tee). *)

val escape_json : Buffer.t -> string -> unit
(** JSON string-escaping shared with the jsonl formatter, for callers
    that assemble journal lines of their own. *)
